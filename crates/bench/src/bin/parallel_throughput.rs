//! Host-concurrency throughput bench: deterministic executor vs. the
//! threaded executor's per-item, batched, and lock-free transports.
//!
//! ```text
//! parallel_throughput [--quick] [--check] [--out PATH]
//! ```
//!
//! Runs synthetic pipelines at 2/4/8 stages (= threads) plus the full app
//! suite, measures wall time for each executor, cross-checks that all
//! four produce identical sink output, and writes `BENCH_parallel.json`
//! (items/sec, wall times, speedups, per-run effective core counts).
//! `--check` exits nonzero when the batched transport fails its speedup
//! floor against per-item locking, or — on hosts with enough cores to
//! actually run the guarded 4-stage pipeline in parallel — when the
//! lock-free transport fails its ≥2×-deterministic gate. On narrower
//! hosts that multicore gate is skipped with a loud log (the numbers
//! would only measure context-switch overhead), and the skip is recorded
//! in the JSON so archived reports can't masquerade as passes.
//! `--quick` shrinks inputs for CI smoke runs.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use cg_apps::beamformer::BeamformerApp;
use cg_apps::complex_fir::ComplexFirApp;
use cg_apps::fft_app::FftApp;
use cg_apps::jpeg::JpegApp;
use cg_apps::mp3::Mp3App;
use cg_apps::vocoder::VocoderApp;
use cg_campaign::json::Json;
use cg_fault::{FaultClass, Mtbe};
use cg_runtime::{
    run, run_parallel_with, Pacing, ParTransport, Program, RunReport, SimConfig, TelemetryConfig,
};
use commguard::graph::{GraphBuilder, NodeId, NodeKind};
use commguard::Protection;

/// Units per firing on every pipeline hop: large enough that the batched
/// transport has real batches to amortize.
const PIPELINE_RATE: u32 = 64;

/// The acceptance case for the multicore gate: the guarded 4-stage
/// pipeline must beat the deterministic executor by this factor on the
/// lock-free transport — but only when the host can actually run its
/// threads in parallel.
const MULTICORE_GATE_CASE: &str = "pipeline-4-guarded";
const MULTICORE_GATE_FLOOR: f64 = 2.0;

/// The paced SLO gate: the guarded 4-stage pipeline under burst faults,
/// released every [`PACED_GATE_PERIOD_US`] µs, must commit every frame
/// inside [`PACED_GATE_DEADLINE_US`] µs — zero deadline misses and a p99
/// release-to-commit latency within the SLO. The cadence is tight enough
/// that a stalled recovery cannot hide behind the schedule, the budget
/// loose enough that an unloaded CI worker clears it; like the multicore
/// gate it is skipped (and recorded as skipped) on hosts too narrow to
/// run the pipeline's threads in parallel. Setting the `PACED_GATE_FORCE`
/// environment variable runs the gate even on a narrow host — useful for
/// exercising the pass path where the threads merely time-slice; the
/// recorded `host_parallelism` still identifies such runs.
const PACED_GATE_CASE: &str = "pipeline-4-guarded-paced";
const PACED_GATE_PERIOD_US: u64 = 300;
const PACED_GATE_DEADLINE_US: u64 = 10_000;
const PACED_GATE_MTBE: u64 = 2_048;

struct Args {
    quick: bool,
    check: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!("usage: parallel_throughput [--quick] [--check] [--out PATH]");
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        check: false,
        out: "BENCH_parallel.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--out" => {
                i += 1;
                args.out = argv.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }
    args
}

/// One benchmark case: a program factory plus its run configuration.
struct Case {
    name: String,
    kind: &'static str,
    guarded: bool,
    frames: u64,
    build: Box<dyn Fn() -> (Program, NodeId)>,
}

impl Case {
    fn config(&self) -> SimConfig {
        if self.guarded {
            SimConfig {
                protection: Protection::commguard(),
                inject: false,
                ..SimConfig::error_free(self.frames)
            }
        } else {
            SimConfig::error_free(self.frames)
        }
    }
}

/// A transport-dominated pipeline: `stages` nodes moving
/// [`PIPELINE_RATE`] units per hop per firing with trivial compute.
fn pipeline_case(stages: usize, frames: u64, guarded: bool) -> Case {
    let build = move || -> (Program, NodeId) {
        let mut b = GraphBuilder::new("pipeline");
        let ids: Vec<NodeId> = (0..stages)
            .map(|i| {
                let kind = if i == 0 {
                    NodeKind::Source
                } else if i == stages - 1 {
                    NodeKind::Sink
                } else {
                    NodeKind::Filter
                };
                b.add_node(format!("n{i}"), kind)
            })
            .collect();
        b.pipeline(&ids, PIPELINE_RATE).unwrap();
        let mut p = Program::new(b.build().unwrap());
        let mut next = 0u32;
        p.set_source(ids[0], move |out| {
            for _ in 0..PIPELINE_RATE {
                out.push(next);
                next = next.wrapping_add(1);
            }
        });
        for &id in &ids[1..stages - 1] {
            p.set_filter(id, |inp, out| {
                out[0].extend(inp[0].iter().map(|&v| v.wrapping_mul(0x9E37_79B1)));
            });
        }
        (p, ids[stages - 1])
    };
    Case {
        name: format!("pipeline-{stages}{}", if guarded { "-guarded" } else { "" }),
        kind: "pipeline",
        guarded,
        frames,
        build: Box::new(build),
    }
}

fn app_cases(quick: bool) -> Vec<Case> {
    // Direct app constructors (not `Workload`) so input sizes — and with
    // them the bench duration — scale with `--quick`.
    let mut cases: Vec<Case> = Vec::new();
    let mut app = |name: &str, build: Box<dyn Fn() -> (Program, NodeId)>, frames: u64| {
        cases.push(Case {
            name: name.to_string(),
            kind: "app",
            guarded: true,
            frames,
            build,
        });
    };
    let beam = BeamformerApp::new(if quick { 512 } else { 4096 });
    let frames = beam.frames();
    app("audiobeamformer", Box::new(move || beam.build()), frames);
    let voc = VocoderApp::new(if quick { 512 } else { 4096 });
    let frames = voc.frames();
    app("channelvocoder", Box::new(move || voc.build()), frames);
    let cfir = ComplexFirApp::new(if quick { 512 } else { 4096 });
    let frames = cfir.frames();
    app("complex-fir", Box::new(move || cfir.build()), frames);
    let fft = FftApp::new(if quick { 16 } else { 128 });
    let frames = fft.frames();
    app("fft", Box::new(move || fft.build()), frames);
    let jpeg = if quick {
        JpegApp::new(64, 32, 75)
    } else {
        JpegApp::small()
    };
    let frames = jpeg.frames();
    app("jpeg", Box::new(move || jpeg.build()), frames);
    let mp3 = Mp3App::new(if quick { 1024 } else { 8192 });
    let frames = mp3.frames();
    app("mp3", Box::new(move || mp3.build()), frames);
    cases
}

/// Best-of-`repeats` wall time; returns the last report for accounting.
fn time_best(repeats: u32, mut f: impl FnMut() -> RunReport) -> (Duration, RunReport) {
    let mut best = Duration::MAX;
    let mut report = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed());
        report = Some(r);
    }
    (best, report.expect("repeats >= 1"))
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn items_per_sec(items: u64, d: Duration) -> f64 {
    items as f64 / d.as_secs_f64().max(1e-9)
}

fn main() -> ExitCode {
    let args = parse_args();
    let repeats: u32 = if args.quick { 2 } else { 3 };
    let (pipe_frames, pipe_frames_guarded) = if args.quick {
        (2_000, 1_000)
    } else {
        (20_000, 10_000)
    };

    let mut cases = vec![
        pipeline_case(2, pipe_frames, false),
        pipeline_case(4, pipe_frames, false),
        pipeline_case(8, pipe_frames, false),
        pipeline_case(4, pipe_frames_guarded, true),
    ];
    cases.extend(app_cases(args.quick));

    let host_parallelism = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut runs: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut gate = Json::object();
    gate.set("case", MULTICORE_GATE_CASE)
        .set("floor", MULTICORE_GATE_FLOOR)
        .set("host_parallelism", host_parallelism)
        .set("status", "case-not-run");
    for case in &cases {
        let cfg = case.config();
        let threads = (case.build)().0.graph().node_count();
        let (sink, name) = ((case.build)().1, &case.name);
        // Cores this run can genuinely use: its thread count, clamped by
        // the host. Speedups only mean real parallelism when this equals
        // `threads`.
        let effective_cores = threads.min(host_parallelism.max(1));

        let (det_time, det) = time_best(repeats, || run((case.build)().0, &cfg).expect("run"));
        let (pi_time, pi) = time_best(repeats, || {
            run_parallel_with((case.build)().0, &cfg, ParTransport::PerItem).expect("per-item run")
        });
        let (ba_time, ba) = time_best(repeats, || {
            run_parallel_with((case.build)().0, &cfg, ParTransport::Batched).expect("batched run")
        });
        let (lf_time, lf) = time_best(repeats, || {
            run_parallel_with((case.build)().0, &cfg, ParTransport::LockFree)
                .expect("lock-free run")
        });

        // The numbers only mean something if all four executors computed
        // the same stream.
        assert_eq!(
            ba.sink_output(sink),
            det.sink_output(sink),
            "{name}: batched output diverged from deterministic"
        );
        assert_eq!(
            pi.sink_output(sink),
            ba.sink_output(sink),
            "{name}: per-item output diverged from batched"
        );
        assert_eq!(
            lf.sink_output(sink),
            ba.sink_output(sink),
            "{name}: lock-free output diverged from batched"
        );

        // Untimed telemetry pass on the lock-free transport: frame-latency
        // percentiles for the bench trajectory. A separate run so the
        // probes can never skew the timed numbers above.
        let telem_cfg = SimConfig {
            telemetry: TelemetryConfig::enabled(),
            ..cfg.clone()
        };
        let latency = run_parallel_with((case.build)().0, &telem_cfg, ParTransport::LockFree)
            .expect("telemetry run")
            .telemetry
            .expect("telemetry was enabled")
            .merged_latency();

        let items = ba.queues.item_pushes;
        let frames_f = (case.frames as f64).max(1.0);
        let vs_per_item = ms(pi_time) / ms(ba_time).max(1e-9);
        let vs_det = ms(det_time) / ms(ba_time).max(1e-9);
        let lf_vs_batched = ms(ba_time) / ms(lf_time).max(1e-9);
        let lf_vs_det = ms(det_time) / ms(lf_time).max(1e-9);
        eprintln!(
            "{name:<22} threads={threads} cores={effective_cores} frames={} det={:.1}ms \
             per-item={:.1}ms batched={:.1}ms lock-free={:.1}ms \
             lock-free-vs-det={lf_vs_det:.2}x",
            case.frames,
            ms(det_time),
            ms(pi_time),
            ms(ba_time),
            ms(lf_time),
        );

        let mut j = Json::object();
        j.set("name", name.as_str())
            .set("kind", case.kind)
            .set("guarded", case.guarded)
            .set("threads", threads)
            .set("effective_cores", effective_cores)
            .set("frames", case.frames)
            .set("items_moved", items)
            .set("deterministic_ms", ms(det_time))
            .set("per_item_ms", ms(pi_time))
            .set("batched_ms", ms(ba_time))
            .set("lock_free_ms", ms(lf_time))
            // Per-frame wall-clock: comparable across cases (apps and
            // pipelines run different frame counts), so the bench
            // trajectory gets app-level datapoints, not just totals.
            .set("deterministic_ms_per_frame", ms(det_time) / frames_f)
            .set("per_item_ms_per_frame", ms(pi_time) / frames_f)
            .set("batched_ms_per_frame", ms(ba_time) / frames_f)
            .set("lock_free_ms_per_frame", ms(lf_time) / frames_f)
            .set("frame_latency_p50_us", latency.quantile(0.50))
            .set("frame_latency_p90_us", latency.quantile(0.90))
            .set("frame_latency_p99_us", latency.quantile(0.99))
            .set("frame_latency_max_us", latency.max())
            .set("per_item_items_per_sec", items_per_sec(items, pi_time))
            .set("batched_items_per_sec", items_per_sec(items, ba_time))
            .set("lock_free_items_per_sec", items_per_sec(items, lf_time))
            .set("speedup_batched_vs_per_item", vs_per_item)
            .set("speedup_batched_vs_deterministic", vs_det)
            .set(
                "speedup_per_item_vs_deterministic",
                ms(det_time) / ms(pi_time).max(1e-9),
            )
            .set("speedup_lock_free_vs_batched", lf_vs_batched)
            .set("speedup_lock_free_vs_deterministic", lf_vs_det);
        runs.push(j);

        // Speedup floors, enforced under --check: the unguarded 4-stage
        // pipeline is the acceptance case (>= 2x); every transport-bound
        // pipeline must at least not regress.
        if case.kind == "pipeline" {
            let floor = if case.name == "pipeline-4" { 2.0 } else { 1.0 };
            if vs_per_item < floor {
                failures.push(format!(
                    "{name}: batched-vs-per-item speedup {vs_per_item:.2}x < {floor:.1}x floor"
                ));
            }
        }
        // The multicore acceptance gate: guarded pipeline-4 on the
        // lock-free transport must beat the deterministic executor ≥2× —
        // but only where the host can schedule all its threads at once.
        if case.name == MULTICORE_GATE_CASE {
            gate = Json::object();
            gate.set("case", MULTICORE_GATE_CASE)
                .set("floor", MULTICORE_GATE_FLOOR)
                .set("threads", threads)
                .set("host_parallelism", host_parallelism);
            if host_parallelism >= threads {
                gate.set("speedup_lock_free_vs_deterministic", lf_vs_det);
                let pass = lf_vs_det >= MULTICORE_GATE_FLOOR;
                gate.set("status", if pass { "pass" } else { "fail" });
                if !pass {
                    failures.push(format!(
                        "{name}: lock-free-vs-deterministic speedup {lf_vs_det:.2}x < \
                         {MULTICORE_GATE_FLOOR:.1}x multicore gate \
                         ({host_parallelism} cores available for {threads} threads)"
                    ));
                }
            } else {
                // A sub-floor speedup measured on a narrow host reads as
                // a failure in archived reports, so the gate records null
                // instead of a time-slicing artifact; consumers must
                // check `status` before touching the number.
                gate.set("speedup_lock_free_vs_deterministic", Json::Null);
                gate.set("status", "skipped-single-core");
                eprintln!(
                    "{:<22} multicore gate: skipped ({host_parallelism} core(s), needs \
                     {threads})",
                    "gate"
                );
                eprintln!(
                    "==============================================================\n\
                     MULTICORE GATE SKIPPED: host has {host_parallelism} core(s) but \
                     '{name}' needs {threads} threads.\n\
                     The >= {MULTICORE_GATE_FLOOR:.1}x lock-free-vs-deterministic gate \
                     is NOT enforced on this host;\n\
                     the single-core speedup measures time-slicing, not \
                     parallelism, and is recorded as null.\n\
                     =============================================================="
                );
            }
        }
    }

    // The paced SLO gate runs once, on the lock-free transport only: it
    // measures deadline discipline under faults, not throughput, so the
    // timed matrix above stays untouched.
    let paced_frames: u64 = if args.quick { 200 } else { 1_000 };
    let paced_case = pipeline_case(4, paced_frames, true);
    let paced_threads = (paced_case.build)().0.graph().node_count();
    let mut paced_gate = Json::object();
    paced_gate
        .set("case", PACED_GATE_CASE)
        .set("period_us", PACED_GATE_PERIOD_US)
        .set("deadline_us", PACED_GATE_DEADLINE_US)
        .set("mtbe_instructions", PACED_GATE_MTBE)
        .set("frames", paced_frames)
        .set("threads", paced_threads)
        .set("host_parallelism", host_parallelism);
    if host_parallelism >= paced_threads || std::env::var("PACED_GATE_FORCE").is_ok() {
        let cfg = SimConfig {
            fault_class: FaultClass::Burst,
            ..SimConfig::with_errors(
                paced_frames,
                Protection::commguard(),
                Mtbe::instructions(PACED_GATE_MTBE),
                1,
            )
        }
        .pacing(Pacing::Paced {
            period: PACED_GATE_PERIOD_US,
            deadline: PACED_GATE_DEADLINE_US,
            slo: PACED_GATE_DEADLINE_US,
        });
        let (paced_prog, paced_sink) = (paced_case.build)();
        let report =
            run_parallel_with(paced_prog, &cfg, ParTransport::LockFree).expect("paced gate run");
        let pace = report.pacing.as_ref().expect("paced run reports pacing");
        let frame_exact =
            report.sink_output(paced_sink).len() as u64 == paced_frames * u64::from(PIPELINE_RATE);
        let pass = report.completed
            && frame_exact
            && pace.frames_observed() == paced_frames
            && pace.deadline_misses == 0
            && pace.slo_met();
        paced_gate
            .set("faults", report.total_faults().total())
            .set("frames_on_time", pace.frames_on_time)
            .set("deadline_misses", pace.deadline_misses)
            .set("degraded_for_deadline", pace.degraded_for_deadline)
            .set("p99_latency_us", pace.p99_latency())
            .set("slo_met", pace.slo_met())
            .set("status", if pass { "pass" } else { "fail" });
        eprintln!(
            "{:<22} paced gate: {} (misses={} on-time={}/{} p99={}us of {}us budget, \
             {} faults)",
            PACED_GATE_CASE,
            if pass { "pass" } else { "FAIL" },
            pace.deadline_misses,
            pace.frames_on_time,
            paced_frames,
            pace.p99_latency(),
            PACED_GATE_DEADLINE_US,
            report.total_faults().total(),
        );
        if !pass {
            failures.push(format!(
                "{PACED_GATE_CASE}: paced SLO gate failed (completed={} frame_exact={frame_exact} \
                 observed={} misses={} p99={}us, slo {}us)",
                report.completed,
                pace.frames_observed(),
                pace.deadline_misses,
                pace.p99_latency(),
                PACED_GATE_DEADLINE_US,
            ));
        }
    } else {
        paced_gate.set("status", "skipped-single-core");
        eprintln!(
            "{:<22} paced gate: skipped ({host_parallelism} core(s), needs {paced_threads})",
            PACED_GATE_CASE
        );
    }

    let mut doc = Json::object();
    doc.set("schema", "commguard-parallel-bench-v5")
        .set("mode", if args.quick { "quick" } else { "full" })
        // v4: ECC runs the table-driven batch codec and the queues move
        // slices through the zero-copy reserve/commit path; the multicore
        // gate's speedup is null when its status is a skip.
        // v5: adds the paced_slo_gate object (deadline discipline under
        // burst faults); its counters are absent when its status is a
        // skip.
        .set("ecc_mode", "batch-tabled")
        .set("transport_mode", "zero-copy-slices")
        .set("repeats", repeats)
        .set("host_parallelism", host_parallelism)
        .set("pipeline_rate", PIPELINE_RATE)
        .set("multicore_gate", gate)
        .set("paced_slo_gate", paced_gate)
        .set("runs", runs);
    if let Err(e) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("parallel_throughput: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    eprintln!("parallel_throughput: report written to {}", args.out);

    if args.check && !failures.is_empty() {
        for f in &failures {
            eprintln!("SPEEDUP FLOOR VIOLATED: {f}");
        }
        return ExitCode::FAILURE;
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("warning (not enforced without --check): {f}");
        }
    }
    ExitCode::SUCCESS
}
