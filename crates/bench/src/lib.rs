//! Criterion benchmark crate for the CommGuard reproduction; see `benches/`.
