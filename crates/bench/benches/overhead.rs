//! The wall-clock companion to Fig. 13: end-to-end simulated decode of
//! each benchmark with CommGuard modules enabled vs. disabled (reliable
//! queue only), error-free. The relative gap is the software cost of
//! header insertion, header checking and frame-boundary serialisation —
//! the quantity the paper bounds at a few percent on real hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cg_apps::{BenchApp, Size, Workload};
use cg_runtime::{run, SimConfig};
use commguard::Protection;

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_wallclock");
    g.sample_size(10);
    for app in BenchApp::all() {
        let w = Workload::new(app, Size::Small);
        for (label, protection) in [
            ("unguarded", Protection::PpuReliableQueue),
            ("commguard", Protection::commguard()),
        ] {
            g.bench_with_input(
                BenchmarkId::new(label, app.name()),
                &protection,
                |b, &protection| {
                    b.iter(|| {
                        let (p, _snk) = w.build();
                        let cfg = SimConfig {
                            protection,
                            ..SimConfig::error_free(w.frames())
                        };
                        run(p, &cfg).expect("runs")
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
