//! End-to-end simulation throughput per benchmark under the paper's
//! headline configuration (CommGuard, MTBE = 512k instructions) —
//! the cost of regenerating one data point of Figs. 8–11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cg_apps::{BenchApp, Size, Workload};
use cg_fault::Mtbe;
use cg_runtime::{run, SimConfig};
use commguard::Protection;

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_512k");
    g.sample_size(10);
    for app in BenchApp::all() {
        let w = Workload::new(app, Size::Small);
        g.bench_with_input(BenchmarkId::from_parameter(app.name()), &w, |b, w| {
            b.iter(|| {
                let (p, _snk) = w.build();
                let cfg = SimConfig::with_errors(
                    w.frames(),
                    Protection::commguard(),
                    Mtbe::kilo_instructions(512),
                    1,
                );
                run(p, &cfg).expect("runs")
            })
        });
    }
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("ppu_vm");
    for (name, prog) in cg_vm::kernels::all() {
        let input = cg_vm::kernels::input(512);
        g.bench_with_input(BenchmarkId::from_parameter(name), &prog, |b, prog| {
            b.iter(|| {
                let mut vm = cg_vm::Vm::new(prog.clone(), input.clone());
                vm.run(50_000_000).expect("halts")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_apps, bench_vm);
criterion_main!(benches);
