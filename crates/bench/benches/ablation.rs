//! Ablation benches for the design knobs DESIGN.md calls out: pad
//! policy (zero vs repeat-last), frame-size scaling, and queue
//! working-set amortisation. Criterion measures the runtime cost;
//! `fig10`/`fig11` measure the quality side of the same knobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cg_apps::{BenchApp, Size, Workload};
use cg_fault::Mtbe;
use cg_runtime::{run, SimConfig};
use commguard::config::GuardConfig;
use commguard::{PadPolicy, Protection};

fn bench_pad_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("pad_policy");
    g.sample_size(10);
    let w = Workload::new(BenchApp::Mp3, Size::Small);
    for (label, policy) in [
        ("zero", PadPolicy::Zero),
        ("repeat_last", PadPolicy::RepeatLast),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            b.iter(|| {
                let (p, _snk) = w.build();
                let cfg = SimConfig::with_errors(
                    w.frames(),
                    Protection::CommGuard(GuardConfig {
                        pad_policy: policy,
                        ..GuardConfig::default()
                    }),
                    Mtbe::kilo_instructions(128),
                    1,
                );
                run(p, &cfg).expect("runs")
            })
        });
    }
    g.finish();
}

fn bench_frame_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_scale");
    g.sample_size(10);
    let w = Workload::new(BenchApp::ComplexFir, Size::Small);
    for scale in [1u32, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            b.iter(|| {
                let (p, _snk) = w.build();
                let cfg = SimConfig {
                    protection: Protection::CommGuard(GuardConfig::with_frame_scale(scale)),
                    ..SimConfig::error_free(w.frames())
                };
                run(p, &cfg).expect("runs")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pad_policy, bench_frame_scale);
criterion_main!(benches);
