//! Telemetry-plane overhead ablation: verifies the "zero-cost when
//! disabled" claim of the metrics plane.
//!
//! Three variants of the same faulty complex-fir run are interleaved:
//! `off` (telemetry disabled — every probe site is a single `None`
//! check), `sparse` (probes on, one interval snapshot per 64 frames),
//! and `dense` (probes on, one interval snapshot per frame). The probed
//! variants do a strict superset of the disabled path's work, so the
//! disabled path must never be meaningfully slower than either: if its
//! median exceeds the faster probed variant by more than 2%, the
//! zero-cost invariant is broken and the bench prints a loud
//! `TELEMETRY-OVERHEAD FAIL` banner and exits 1.
//!
//! A plain harness (not Criterion) so the comparison can fail the build.

use std::time::Instant;

use cg_apps::{BenchApp, Size, Workload};
use cg_fault::Mtbe;
use cg_runtime::{run, SimConfig, TelemetryConfig};
use commguard::Protection;

const ROUNDS: usize = 9;
const TOLERANCE: f64 = 1.02;

fn config(w: &Workload, telemetry: TelemetryConfig) -> SimConfig {
    SimConfig {
        telemetry,
        ..SimConfig::with_errors(
            w.frames(),
            Protection::commguard(),
            Mtbe::kilo_instructions(128),
            1,
        )
    }
}

fn timed_run(w: &Workload, telemetry: TelemetryConfig) -> f64 {
    let (p, _snk) = w.build();
    let cfg = config(w, telemetry);
    let start = Instant::now();
    let report = run(p, &cfg).expect("runs");
    let secs = start.elapsed().as_secs_f64();
    assert!(report.completed, "bench run must complete");
    assert_eq!(
        report.telemetry.is_some(),
        cfg.telemetry.is_enabled(),
        "telemetry presence must track the config"
    );
    secs
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

fn main() {
    let w = Workload::new(BenchApp::ComplexFir, Size::Small);
    let variants = [
        ("off", TelemetryConfig::Off),
        ("sparse", TelemetryConfig::Enabled { interval: 64 }),
        ("dense", TelemetryConfig::Enabled { interval: 1 }),
    ];

    // Warm-up: touch every code path once before measuring.
    for &(_, telemetry) in &variants {
        let _ = timed_run(&w, telemetry);
    }

    // Interleave variants so drift (thermal, cache) hits all three alike.
    let mut samples = [const { Vec::new() }; 3];
    for _ in 0..ROUNDS {
        for (i, &(_, telemetry)) in variants.iter().enumerate() {
            samples[i].push(timed_run(&w, telemetry));
        }
    }

    let medians: Vec<f64> = samples.iter_mut().map(|s| median(s)).collect();
    let off = medians[0];
    println!("telemetry overhead ablation (complex-fir, mtbe=128k, {ROUNDS} rounds):");
    for (i, (name, _)) in variants.iter().enumerate() {
        println!(
            "  {name:<9} median {:>8.2} ms  ({:+.2}% vs off)",
            medians[i] * 1e3,
            (medians[i] / off - 1.0) * 100.0
        );
    }

    // The probed variants strictly add work on top of the disabled path.
    let fastest_probed = medians[1].min(medians[2]);
    if off > fastest_probed * TOLERANCE {
        println!(
            "\n============== TELEMETRY-OVERHEAD FAIL ==============\n\
             disabled-path median {:.3} ms exceeds the fastest probed\n\
             variant ({:.3} ms) by more than {:.0}% — the disabled\n\
             telemetry path is no longer zero-cost.\n\
             =====================================================",
            off * 1e3,
            fastest_probed * 1e3,
            (TOLERANCE - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "\ntelemetry overhead: OK (disabled path within {:.0}% of probed variants)",
        (TOLERANCE - 1.0) * 100.0
    );
}
