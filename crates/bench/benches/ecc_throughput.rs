//! ECC hot-path micro-bench: the table-driven batch SECDED codec vs the
//! scalar per-word routines, with a regression gate in the style of
//! `telemetry_overhead`.
//!
//! Two measured paths over identical data:
//!
//! * `encode` — `encode_slice` (byte-plane tables) vs
//!   `encode_slice_scalar` (per-word parity-mask popcounts);
//! * `decode` — `decode_slice` vs `decode_slice_scalar` over a stream
//!   where 1 in 8 codewords carries a single-bit flip (the correction
//!   path stays warm without dominating).
//!
//! The gate: the batch codec exists to make ECC cheap enough for the
//! zero-copy queue path, so its combined encode+decode median must beat
//! the scalar combined median by at least [`SPEEDUP_FLOOR`]. A plain
//! harness (not Criterion) so the comparison can fail the build.

use std::hint::black_box;
use std::time::Instant;

use cg_ecc::{
    decode_slice, decode_slice_scalar, encode_slice, encode_slice_scalar, Codeword, Decoded,
};

/// Words per timed round: large enough to amortise timer overhead, small
/// enough that both working sets stay cache-resident (the tables are
/// ~9 KiB; the data is 32 KiB + 64 KiB).
const WORDS: usize = 8_192;
/// Passes over the buffer per timed round.
const PASSES: usize = 64;
/// Timed rounds per path (medians are compared).
const ROUNDS: usize = 9;
/// The batch codec must be at least this many times faster than the
/// scalar codec on combined encode+decode (acceptance floor of the
/// vectorized hot path).
const SPEEDUP_FLOOR: f64 = 4.0;

/// A deterministic word stream (no RNG in benches: splitmix-style hash).
fn words() -> Vec<u32> {
    (0..WORDS as u64)
        .map(|i| {
            let mut z = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            (z ^ (z >> 27)) as u32
        })
        .collect()
}

/// Encoded stream with a single-bit flip on every eighth codeword.
fn corrupted(input: &[u32]) -> Vec<Codeword> {
    let mut cws = vec![Codeword::default(); input.len()];
    encode_slice(input, &mut cws);
    for (i, cw) in cws.iter_mut().enumerate() {
        if i % 8 == 0 {
            *cw = cw.with_flipped_bit((i as u32 / 8) % cg_ecc::CODEWORD_BITS);
        }
    }
    cws
}

fn time_encode(input: &[u32], out: &mut [Codeword], scalar: bool) -> f64 {
    let start = Instant::now();
    for _ in 0..PASSES {
        let stats = if scalar {
            encode_slice_scalar(black_box(input), out)
        } else {
            encode_slice(black_box(input), out)
        };
        black_box(&out[0]);
        black_box(stats);
    }
    start.elapsed().as_secs_f64()
}

fn time_decode(input: &[Codeword], out: &mut [Decoded], scalar: bool) -> f64 {
    let start = Instant::now();
    for _ in 0..PASSES {
        let stats = if scalar {
            decode_slice_scalar(black_box(input), out)
        } else {
            decode_slice(black_box(input), out)
        };
        black_box(&out[0]);
        black_box(stats);
    }
    start.elapsed().as_secs_f64()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

fn main() {
    let input = words();
    let cws = corrupted(&input);
    let mut enc_out = vec![Codeword::default(); WORDS];
    let mut dec_out = vec![Decoded::Detected; WORDS];

    // Warm-up: touch every path (and fault the tables in) before timing.
    for scalar in [false, true] {
        let _ = time_encode(&input, &mut enc_out, scalar);
        let _ = time_decode(&cws, &mut dec_out, scalar);
    }

    // Interleave paths so drift (thermal, cache) hits both alike.
    let mut enc_scalar = Vec::with_capacity(ROUNDS);
    let mut enc_batch = Vec::with_capacity(ROUNDS);
    let mut dec_scalar = Vec::with_capacity(ROUNDS);
    let mut dec_batch = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        enc_scalar.push(time_encode(&input, &mut enc_out, true));
        enc_batch.push(time_encode(&input, &mut enc_out, false));
        dec_scalar.push(time_decode(&cws, &mut dec_out, true));
        dec_batch.push(time_decode(&cws, &mut dec_out, false));
    }

    let es = median(&mut enc_scalar);
    let eb = median(&mut enc_batch);
    let ds = median(&mut dec_scalar);
    let db = median(&mut dec_batch);
    let enc_speedup = es / eb.max(1e-12);
    let dec_speedup = ds / db.max(1e-12);
    let combined = (es + ds) / (eb + db).max(1e-12);
    let mwps = |secs: f64| (WORDS * PASSES) as f64 / secs / 1e6;

    println!("ecc throughput ({WORDS} words x {PASSES} passes/round, {ROUNDS} rounds):");
    println!(
        "  encode   scalar {:>8.1} Mw/s  batch {:>8.1} Mw/s  speedup {enc_speedup:.2}x",
        mwps(es),
        mwps(eb),
    );
    println!(
        "  decode   scalar {:>8.1} Mw/s  batch {:>8.1} Mw/s  speedup {dec_speedup:.2}x",
        mwps(ds),
        mwps(db),
    );
    println!("  combined speedup {combined:.2}x (gate >= {SPEEDUP_FLOOR:.1}x)");

    if combined >= SPEEDUP_FLOOR {
        println!("\necc throughput: OK (batch codec clears the {SPEEDUP_FLOOR:.1}x floor)");
    } else {
        println!(
            "\n================ ECC-THROUGHPUT FAIL ================\n\
             combined batch speedup {combined:.2}x is below the {SPEEDUP_FLOOR:.1}x floor\n\
             (encode {enc_speedup:.2}x, decode {dec_speedup:.2}x).\n\
             The table-driven codec has regressed toward scalar cost.\n\
             ====================================================="
        );
        std::process::exit(1);
    }
}
