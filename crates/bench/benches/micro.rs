//! Micro-benchmarks of the CommGuard building blocks: SECDED encode /
//! decode (the `compute/check-ECC` suboperations of Table 3), queue push
//! /pop under both pointer-protection modes and several working-set
//! sizes (§5.1), and the AM FSM pop path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use commguard::ecc::{decode, encode};
use commguard::queue::{PointerMode, QueueSpec, SimQueue, Unit};
use commguard::{AlignmentManager, PadPolicy, SubopCounters};

fn bench_ecc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecc");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(encode(black_box(x)))
        })
    });
    g.bench_function("decode_clean", |b| {
        let cw = encode(0xDEAD_BEEF);
        b.iter(|| black_box(decode(black_box(cw))))
    });
    g.bench_function("decode_corrected", |b| {
        let cw = encode(0xDEAD_BEEF).with_flipped_bit(17);
        b.iter(|| black_box(decode(black_box(cw))))
    });
    g.finish();
}

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    g.throughput(Throughput::Elements(1024));
    for (label, mode) in [("raw_ptr", PointerMode::Raw), ("ecc_ptr", PointerMode::Ecc)] {
        for ws_div in [8usize, 1024] {
            let name = format!("push_pop_1k/{label}/ws_cap_div{ws_div}");
            g.bench_function(&name, |b| {
                let spec = QueueSpec {
                    capacity: 4096,
                    workset_size: 4096 / ws_div,
                    pointer_mode: mode,
                };
                b.iter(|| {
                    let mut q = SimQueue::new(spec);
                    for i in 0..1024u32 {
                        q.try_push(Unit::Item(i)).unwrap();
                    }
                    q.flush();
                    for _ in 0..1024 {
                        black_box(q.try_pop());
                    }
                })
            });
        }
    }
    g.finish();
}

fn bench_am(c: &mut Criterion) {
    let mut g = c.benchmark_group("alignment_manager");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("aligned_pops_1k", |b| {
        b.iter(|| {
            let mut q = SimQueue::new(QueueSpec::with_capacity(4096));
            let mut am = AlignmentManager::new(PadPolicy::Zero);
            let mut sub = SubopCounters::default();
            q.try_push(Unit::header(0)).unwrap();
            for i in 0..1024u32 {
                q.try_push(Unit::Item(i)).unwrap();
            }
            q.flush();
            for _ in 0..1024 {
                black_box(am.pop(&mut q, &mut sub));
            }
        })
    });
    g.bench_function("realigning_pops_1k", |b| {
        b.iter(|| {
            let mut q = SimQueue::new(QueueSpec::with_capacity(8192));
            let mut am = AlignmentManager::new(PadPolicy::Zero);
            let mut sub = SubopCounters::default();
            // 128 frames of 8 items, every other frame missing one item.
            for f in 0..128u32 {
                q.try_push(Unit::header(f)).unwrap();
                let n = if f % 2 == 0 { 8 } else { 7 };
                for i in 0..n {
                    q.try_push(Unit::Item(i)).unwrap();
                }
            }
            q.flush();
            for f in 0..128u32 {
                if f > 0 {
                    am.new_frame_computation(f, &mut sub);
                }
                for _ in 0..8 {
                    black_box(am.pop(&mut q, &mut sub));
                }
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ecc, bench_queue, bench_am);
criterion_main!(benches);
