//! Queue hot-path micro-bench: mutex/condvar [`SharedQueue`] vs the
//! lock-free SPSC ring, with a regression gate in the style of
//! `trace_overhead`.
//!
//! Three scenario families over the same `SimQueue` protocol:
//!
//! * `uncontended items` — single thread, one `produce`/`consume` call
//!   per unit (the per-item synchronization cost with nobody waiting);
//! * `uncontended slices` — single thread, one call per 64-unit batch
//!   through `push_slice`/`pop_slice` (the batched hot path);
//! * `ping-pong` — a real producer thread against a real consumer
//!   thread through a 64-slot queue, at batch sizes 1 and 64 (the
//!   contended path, including the spin-then-park slow path).
//!
//! Two gates. First, the lock-free transport exists to be cheaper than
//! the mutex baseline, so its median must never exceed the mutex median
//! by more than the tolerance. Second, the zero-copy slice path exists
//! to beat per-item calls, so the lock-free 64-unit slice scenario must
//! run at least [`ZERO_COPY_FLOOR`]x faster than the lock-free per-item
//! scenario. Uncontended scenarios are enforced on every
//! host; the contended ones only where `available_parallelism() >= 2`
//! (on a single core a ping-pong measures the scheduler, not the
//! queue — skipped with a loud log, like `parallel_throughput`'s
//! multicore gate).
//!
//! A plain harness (not Criterion) so the comparison can fail the build.

use std::time::{Duration, Instant};

use cg_queue::{spsc_pair, QueueSpec, SharedQueue, Side, SimQueue, Unit};

/// Queue capacity for every scenario: 8 worksets of 8 units, so per-item
/// scenarios exercise the shared-pointer publication cadence without any
/// explicit flushing.
const CAP: usize = 64;
/// Units moved per timed round in each scenario.
const TOTAL: usize = 32_768;
/// Timed rounds per transport (medians are compared).
const ROUNDS: usize = 9;
/// Uncontended gate: lock-free may not exceed mutex by more than this.
const UNCONTENDED_TOL: f64 = 1.15;
/// Contended gate, enforced only on multicore hosts.
const CONTENDED_TOL: f64 = 1.30;
/// Zero-copy gate: the 64-unit slice path must beat per-item calls on
/// the lock-free transport by at least this factor (the batch path is
/// the whole point of the reserve/commit ring segments).
const ZERO_COPY_FLOOR: f64 = 1.5;
/// Generous stall backstop — a wedged bench run should error, not hang.
const STALL: Duration = Duration::from_secs(10);

fn spec() -> QueueSpec {
    QueueSpec::with_capacity(CAP)
}

/// One blocking call per unit, single thread; `CAP`-unit bursts keep the
/// queue inside its capacity while crossing every workset boundary.
fn mutex_items() -> f64 {
    let q = SharedQueue::with_stall_timeout(SimQueue::new(spec()), STALL);
    let start = Instant::now();
    let mut v = 0u32;
    for _ in 0..TOTAL / CAP {
        for _ in 0..CAP {
            q.produce(|qq| qq.try_push(Unit::Item(v)).ok())
                .expect("push");
            v = v.wrapping_add(1);
        }
        for _ in 0..CAP {
            q.consume(|qq| qq.try_pop().map(|_| ())).expect("pop");
        }
    }
    let secs = start.elapsed().as_secs_f64();
    q.close(Side::Producer);
    q.close(Side::Consumer);
    secs
}

/// Lock-free twin of [`mutex_items`].
fn lock_free_items() -> f64 {
    let (mut p, mut c, _stats) = spsc_pair(spec(), STALL);
    let start = Instant::now();
    let mut v = 0u32;
    for _ in 0..TOTAL / CAP {
        for _ in 0..CAP {
            p.produce(|qq| qq.try_push(Unit::Item(v)).ok())
                .expect("push");
            v = v.wrapping_add(1);
        }
        for _ in 0..CAP {
            c.consume(|qq| qq.try_pop().map(|_| ())).expect("pop");
        }
    }
    start.elapsed().as_secs_f64()
}

/// One blocking call per `CAP`-unit slice, single thread.
fn mutex_slices() -> f64 {
    let q = SharedQueue::with_stall_timeout(SimQueue::new(spec()), STALL);
    let batch: Vec<Unit> = (0..CAP as u32).map(Unit::Item).collect();
    let mut out: Vec<Unit> = Vec::with_capacity(CAP);
    let start = Instant::now();
    for _ in 0..TOTAL / CAP {
        q.produce(|qq| (qq.push_slice(&batch) == CAP).then_some(()))
            .expect("push");
        q.consume(|qq| {
            out.clear();
            (qq.pop_slice(&mut out, CAP) == CAP).then_some(())
        })
        .expect("pop");
    }
    let secs = start.elapsed().as_secs_f64();
    q.close(Side::Producer);
    q.close(Side::Consumer);
    secs
}

/// Lock-free twin of [`mutex_slices`].
fn lock_free_slices() -> f64 {
    let (mut p, mut c, _stats) = spsc_pair(spec(), STALL);
    let batch: Vec<Unit> = (0..CAP as u32).map(Unit::Item).collect();
    let mut out: Vec<Unit> = Vec::with_capacity(CAP);
    let start = Instant::now();
    for _ in 0..TOTAL / CAP {
        p.produce(|qq| (qq.push_slice(&batch) == CAP).then_some(()))
            .expect("push");
        c.consume(|qq| {
            out.clear();
            (qq.pop_slice(&mut out, CAP) == CAP).then_some(())
        })
        .expect("pop");
    }
    start.elapsed().as_secs_f64()
}

/// Times one mutex-transport ping-pong round.
fn mutex_ping_pong(batch: usize) -> f64 {
    let q = SharedQueue::with_stall_timeout(SimQueue::new(spec()), STALL);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let qc = &q;
        scope.spawn(move || {
            let mut got = 0usize;
            let mut sink: Vec<Unit> = Vec::with_capacity(batch);
            while got < TOTAL {
                got += qc
                    .consume(|qq| {
                        sink.clear();
                        let n = qq.pop_slice(&mut sink, batch);
                        (n > 0).then_some(n)
                    })
                    .expect("pop");
            }
            qc.close(Side::Consumer);
        });
        let batch_units: Vec<Unit> = (0..batch as u32).map(Unit::Item).collect();
        let mut sent = 0usize;
        while sent < TOTAL {
            let want = batch.min(TOTAL - sent);
            let mut done = 0usize;
            while done < want {
                done += q
                    .produce(|qq| {
                        let n = qq.push_slice(&batch_units[..want - done]);
                        if n > 0 {
                            qq.flush();
                        }
                        (n > 0).then_some(n)
                    })
                    .expect("push");
            }
            sent += want;
        }
        q.close(Side::Producer);
    });
    start.elapsed().as_secs_f64()
}

/// Times one lock-free-transport ping-pong round.
fn lock_free_ping_pong(batch: usize) -> f64 {
    let (mut p, mut c, _stats) = spsc_pair(spec(), STALL);
    let start = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut got = 0usize;
            let mut sink: Vec<Unit> = Vec::with_capacity(batch);
            while got < TOTAL {
                got += c
                    .consume(|qq| {
                        sink.clear();
                        let n = qq.pop_slice(&mut sink, batch);
                        (n > 0).then_some(n)
                    })
                    .expect("pop");
            }
        });
        let batch_units: Vec<Unit> = (0..batch as u32).map(Unit::Item).collect();
        let mut sent = 0usize;
        while sent < TOTAL {
            let want = batch.min(TOTAL - sent);
            let mut done = 0usize;
            while done < want {
                done += p
                    .produce(|qq| {
                        let n = qq.push_slice(&batch_units[..want - done]);
                        if n > 0 {
                            qq.flush();
                        }
                        (n > 0).then_some(n)
                    })
                    .expect("push");
            }
            sent += want;
        }
        p.close();
    });
    start.elapsed().as_secs_f64()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

struct Outcome {
    name: &'static str,
    mutex_ms: f64,
    lock_free_ms: f64,
    tolerance: f64,
    enforced: bool,
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let multicore = cores >= 2;

    // (name, mutex round, lock-free round, tolerance, enforced)
    type Round = Box<dyn FnMut() -> f64>;
    let mut scenarios: Vec<(&'static str, Round, Round, f64, bool)> = vec![
        (
            "uncontended items",
            Box::new(mutex_items),
            Box::new(lock_free_items),
            UNCONTENDED_TOL,
            true,
        ),
        (
            "uncontended slices",
            Box::new(mutex_slices),
            Box::new(lock_free_slices),
            UNCONTENDED_TOL,
            true,
        ),
        (
            "ping-pong batch=1",
            Box::new(|| mutex_ping_pong(1)),
            Box::new(|| lock_free_ping_pong(1)),
            CONTENDED_TOL,
            multicore,
        ),
        (
            "ping-pong batch=64",
            Box::new(|| mutex_ping_pong(64)),
            Box::new(|| lock_free_ping_pong(64)),
            CONTENDED_TOL,
            multicore,
        ),
    ];

    // Warm-up: touch every code path once before measuring.
    for (_, m, l, _, _) in &mut scenarios {
        let _ = m();
        let _ = l();
    }

    let mut outcomes: Vec<Outcome> = Vec::new();
    for (name, m, l, tolerance, enforced) in &mut scenarios {
        // Interleave transports so drift (thermal, cache) hits both alike.
        let mut mutex_samples = Vec::with_capacity(ROUNDS);
        let mut lf_samples = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            mutex_samples.push(m());
            lf_samples.push(l());
        }
        outcomes.push(Outcome {
            name,
            mutex_ms: median(&mut mutex_samples) * 1e3,
            lock_free_ms: median(&mut lf_samples) * 1e3,
            tolerance: *tolerance,
            enforced: *enforced,
        });
    }

    println!("queue hot path ({TOTAL} units/round, cap {CAP}, {ROUNDS} rounds, {cores} core(s)):");
    let mut failures = Vec::new();
    for o in &outcomes {
        let ratio = o.lock_free_ms / o.mutex_ms.max(1e-9);
        println!(
            "  {:<20} mutex {:>8.3} ms  lock-free {:>8.3} ms  ratio {ratio:.2} \
             (gate <= {:.2}{})",
            o.name,
            o.mutex_ms,
            o.lock_free_ms,
            o.tolerance,
            if o.enforced { "" } else { ", not enforced" },
        );
        if o.enforced && ratio > o.tolerance {
            failures.push(format!(
                "{}: lock-free median {:.3} ms exceeds mutex median {:.3} ms \
                 by more than {:.0}%",
                o.name,
                o.lock_free_ms,
                o.mutex_ms,
                (o.tolerance - 1.0) * 100.0
            ));
        }
    }
    // Zero-copy gate: compare the lock-free slice path against the
    // lock-free per-item path from the same run (both already measured
    // above, so drift hits numerator and denominator alike).
    let lf_ms = |name: &str| {
        outcomes
            .iter()
            .find(|o| o.name == name)
            .expect("scenario measured")
            .lock_free_ms
    };
    let zero_copy_speedup = lf_ms("uncontended items") / lf_ms("uncontended slices").max(1e-9);
    println!(
        "  {:<20} per-item / slice-64 speedup {zero_copy_speedup:.2}x (gate >= {ZERO_COPY_FLOOR:.1}x)",
        "zero-copy batch-64",
    );
    if zero_copy_speedup < ZERO_COPY_FLOOR {
        failures.push(format!(
            "zero-copy batch-64: slice path is only {zero_copy_speedup:.2}x faster than \
             per-item calls on the lock-free transport (floor {ZERO_COPY_FLOOR:.1}x)"
        ));
    }

    if !multicore {
        println!(
            "\n==================================================================\n\
             CONTENDED GATE SKIPPED: host has {cores} core(s); ping-pong ratios\n\
             above measure time-slicing, not queue contention, and are NOT\n\
             enforced on this host.\n\
             =================================================================="
        );
    }

    if failures.is_empty() {
        println!("\nqueue hot path: OK (lock-free within tolerance of the mutex baseline)");
    } else {
        println!("\n================ QUEUE-HOT-PATH FAIL ================");
        for f in &failures {
            println!("{f}");
        }
        println!(
            "The lock-free transport has regressed past the mutex baseline.\n\
             ====================================================="
        );
        std::process::exit(1);
    }
}
