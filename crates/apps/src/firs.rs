//! FIR filter design substrate (windowed-sinc), used by the beamformer,
//! vocoder and complex-fir benchmarks.

use std::f32::consts::PI;

/// Designs a Hamming-windowed sinc low-pass FIR with `taps` coefficients
/// and normalised cutoff `fc` (0..0.5 of the sample rate).
///
/// # Panics
///
/// Panics if `taps == 0` or `fc` is outside (0, 0.5].
pub fn lowpass(taps: usize, fc: f32) -> Vec<f32> {
    assert!(taps > 0, "need at least one tap");
    assert!(fc > 0.0 && fc <= 0.5, "cutoff must be in (0, 0.5]");
    let m = (taps - 1) as f32;
    let mut h: Vec<f32> = (0..taps)
        .map(|n| {
            let x = n as f32 - m / 2.0;
            let sinc = if x == 0.0 {
                2.0 * fc
            } else {
                (2.0 * PI * fc * x).sin() / (PI * x)
            };
            let hamming = 0.54 - 0.46 * (2.0 * PI * n as f32 / m.max(1.0)).cos();
            sinc * hamming
        })
        .collect();
    // Normalise DC gain to 1.
    let sum: f32 = h.iter().sum();
    if sum.abs() > 1e-12 {
        for v in &mut h {
            *v /= sum;
        }
    }
    h
}

/// Designs a band-pass FIR centred at normalised frequency `f0` with
/// half-bandwidth `bw`, by modulating a low-pass prototype.
///
/// # Panics
///
/// Panics as [`lowpass`] for invalid parameters.
pub fn bandpass(taps: usize, f0: f32, bw: f32) -> Vec<f32> {
    let proto = lowpass(taps, bw);
    let m = (taps - 1) as f32;
    proto
        .iter()
        .enumerate()
        .map(|(n, &h)| 2.0 * h * (2.0 * PI * f0 * (n as f32 - m / 2.0)).cos())
        .collect()
}

/// A streaming FIR filter with internal history (replacing StreamIt's
/// `peek` construct: the window lives in filter state, rates stay 1:1).
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f32>,
    history: Vec<f32>,
    pos: usize,
}

impl Fir {
    /// A filter over the given taps with silent history.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f32>) -> Self {
        assert!(!taps.is_empty(), "need at least one tap");
        let n = taps.len();
        Fir {
            taps,
            history: vec![0.0; n],
            pos: 0,
        }
    }

    /// Processes one sample.
    pub fn step(&mut self, x: f32) -> f32 {
        self.history[self.pos] = x;
        let n = self.taps.len();
        let mut acc = 0.0f32;
        for (k, &t) in self.taps.iter().enumerate() {
            let idx = (self.pos + n - k) % n;
            acc += t * self.history[idx];
        }
        self.pos = (self.pos + 1) % n;
        acc
    }

    /// Processes a block of samples.
    pub fn process(&mut self, xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| self.step(x)).collect()
    }
}

/// An integer sample delay line.
#[derive(Debug, Clone)]
pub struct Delay {
    buf: Vec<f32>,
    pos: usize,
}

impl Delay {
    /// A delay of `n` samples (0 = pass-through).
    pub fn new(n: usize) -> Self {
        Delay {
            buf: vec![0.0; n.max(1)],
            pos: 0,
        }
    }

    /// Pushes a sample, returning the sample from `n` steps ago.
    pub fn step(&mut self, x: f32) -> f32 {
        let out = self.buf[self.pos];
        self.buf[self.pos] = x;
        self.pos = (self.pos + 1) % self.buf.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Measures filter gain at normalised frequency `f`.
    fn gain(h: &[f32], f: f32) -> f32 {
        let (mut re, mut im) = (0.0f32, 0.0f32);
        for (n, &c) in h.iter().enumerate() {
            re += c * (2.0 * PI * f * n as f32).cos();
            im -= c * (2.0 * PI * f * n as f32).sin();
        }
        (re * re + im * im).sqrt()
    }

    #[test]
    fn lowpass_passes_dc_blocks_high() {
        let h = lowpass(63, 0.1);
        assert!((gain(&h, 0.0) - 1.0).abs() < 1e-3);
        assert!(gain(&h, 0.05) > 0.9);
        assert!(gain(&h, 0.3) < 0.02);
    }

    #[test]
    fn bandpass_selects_centre() {
        let h = bandpass(63, 0.2, 0.03);
        assert!(gain(&h, 0.2) > 0.8, "centre gain {}", gain(&h, 0.2));
        assert!(gain(&h, 0.05) < 0.05);
        assert!(gain(&h, 0.4) < 0.05);
    }

    #[test]
    fn fir_impulse_response_equals_taps() {
        let taps = vec![0.5, -0.25, 0.125];
        let mut fir = Fir::new(taps.clone());
        let mut impulse = vec![0.0f32; 3];
        impulse[0] = 1.0;
        assert_eq!(fir.process(&impulse), taps);
    }

    #[test]
    fn delay_delays() {
        let mut d = Delay::new(3);
        let out: Vec<f32> = [1.0, 2.0, 3.0, 4.0, 5.0]
            .iter()
            .map(|&x| d.step(x))
            .collect();
        assert_eq!(out, vec![0.0, 0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_panic() {
        let _ = Fir::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn bad_cutoff_panics() {
        let _ = lowpass(31, 0.7);
    }
}
