//! The `channelvocoder` benchmark: an analysis/synthesis channel vocoder.
//!
//! The input is duplicated across 8 analysis bands; each band applies a
//! band-pass FIR and an envelope follower, and the combiner re-modulates
//! each band's envelope onto a synthetic carrier and sums. Rates are 8
//! samples per firing.

use cg_graph::{CostModel, NodeId, NodeKind};
use cg_runtime::{f32s, Program};
use commguard::graph::{self as cg_graph, GraphBuilder, StreamGraph};
use std::f32::consts::PI;

use crate::firs::{bandpass, lowpass, Fir};
use crate::signal;

/// Analysis band count.
pub const BANDS: usize = 8;

/// Samples per firing.
pub const HOP: u32 = 8;

/// The channelvocoder workload.
#[derive(Debug, Clone)]
pub struct VocoderApp {
    samples: usize,
}

impl VocoderApp {
    /// A workload over `samples` samples (rounded down to whole hops).
    ///
    /// # Panics
    ///
    /// Panics if fewer than one hop of samples is requested.
    pub fn new(samples: usize) -> Self {
        assert!(samples >= HOP as usize, "need at least one hop");
        VocoderApp { samples }
    }

    /// Steady iterations (one hop each).
    pub fn frames(&self) -> u64 {
        (self.samples / HOP as usize) as u64
    }

    /// Builds the 13-node graph:
    /// src → split(dup) → 8 bands → join → combine → sink.
    pub fn graph(&self) -> StreamGraph {
        let mut b = GraphBuilder::new("channelvocoder");
        let src = b.add_node_with_cost("source", NodeKind::Source, CostModel::new(40, 10));
        let split = b.add_node_with_cost("split", NodeKind::SplitDuplicate, CostModel::new(20, 6));
        let join = b.add_node_with_cost("join", NodeKind::JoinRoundRobin, CostModel::new(20, 6));
        let comb = b.add_node_with_cost("combine", NodeKind::Filter, CostModel::new(80, 60));
        let snk = b.add_node("sink", NodeKind::Sink);
        b.connect(src, split, HOP, HOP).unwrap();
        for band in 0..BANDS {
            let f = b.add_node_with_cost(
                format!("band{band}"),
                NodeKind::Filter,
                CostModel::new(60, 300),
            );
            b.connect(split, f, HOP, HOP).unwrap();
            b.connect(f, join, HOP, HOP).unwrap();
        }
        b.connect(join, comb, HOP * BANDS as u32, HOP * BANDS as u32)
            .unwrap();
        b.connect(comb, snk, HOP, HOP).unwrap();
        b.build().unwrap()
    }

    /// Builds the runnable program; returns it with the sink id.
    pub fn build(&self) -> (Program, NodeId) {
        let graph = self.graph();
        let src = graph.node_by_name("source").unwrap();
        let comb = graph.node_by_name("combine").unwrap();
        let snk = graph.node_by_name("sink").unwrap();
        let bands: Vec<NodeId> = (0..BANDS)
            .map(|i| graph.node_by_name(&format!("band{i}")).unwrap())
            .collect();
        let mut p = Program::new(graph);

        let input = signal::audio(self.samples);
        let mut pos = 0usize;
        p.set_source(src, move |out| {
            for _ in 0..HOP {
                out.push(input[pos % input.len()].to_bits());
                pos += 1;
            }
        });

        for (i, &node) in bands.iter().enumerate() {
            let f0 = Self::band_centre(i);
            let mut bp = Fir::new(bandpass(48, f0, 0.02));
            let mut env = Fir::new(lowpass(24, 0.02));
            p.set_filter(node, move |inp, out| {
                for &w in &inp[0] {
                    let x = f32::from_bits(w);
                    let band_sig = bp.step(x);
                    let envelope = env.step(band_sig.abs());
                    out[0].push(envelope.to_bits());
                }
            });
        }

        // Combine: band envelopes modulate carriers at each band centre.
        let mut t = 0usize;
        p.set_filter(comb, move |inp, out| {
            let x = f32s::from_words(&inp[0]);
            for s in 0..HOP as usize {
                let mut acc = 0.0f32;
                for band in 0..BANDS {
                    let envelope = x.get(band * HOP as usize + s).copied().unwrap_or(0.0);
                    let f0 = Self::band_centre(band);
                    let carrier = (2.0 * PI * f0 * (t + s) as f32).sin();
                    acc += envelope * carrier;
                }
                let y = acc * 2.0;
                let y = if y.is_finite() {
                    y.clamp(-4.0, 4.0)
                } else {
                    0.0
                };
                out[0].push(y.to_bits());
            }
            t += HOP as usize;
        });
        (p, snk)
    }

    /// Decodes the sink stream into `f32` samples.
    pub fn decode(&self, words: &[u32]) -> Vec<f32> {
        f32s::from_words(words)
    }

    /// Normalised centre frequency of analysis band `i`.
    fn band_centre(i: usize) -> f32 {
        0.02 + 0.05 * i as f32
    }
}

impl Default for VocoderApp {
    fn default() -> Self {
        VocoderApp::new(2048)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_runtime::{run, SimConfig};

    #[test]
    fn graph_shape() {
        let app = VocoderApp::new(64);
        let g = app.graph();
        assert_eq!(g.node_count(), 13);
        let sched = g.schedule().unwrap();
        assert!(sched.repetition_vector().iter().all(|&r| r == 1));
    }

    #[test]
    fn vocoded_output_is_full_length_with_energy() {
        let app = VocoderApp::new(512);
        let (p, snk) = app.build();
        let r = run(p, &SimConfig::error_free(app.frames())).unwrap();
        assert!(r.completed);
        let out = app.decode(r.sink_output(snk));
        assert_eq!(out.len(), 512);
        assert!(out.iter().all(|v| v.is_finite()));
        let energy: f32 = out.iter().map(|v| v * v).sum();
        assert!(energy > 0.01, "vocoder output silent: {energy}");
    }

    #[test]
    fn frames_round_down_to_hops() {
        assert_eq!(VocoderApp::new(65).frames(), 8);
    }
}
