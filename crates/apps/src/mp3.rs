//! The `mp3` benchmark: an MDCT subband audio codec with an mp3-shaped
//! streaming decoder.
//!
//! The encoder (host-side, error-free) analyses each stereo channel into
//! 32-coefficient MDCT granules and quantises them coarsely — coarse
//! enough that the error-free decode lands near the paper's ~9 dB SNR
//! operating point for lossy audio compression against the raw input.
//! The 9-node decoder splits the interleaved granule stream per channel,
//! dequantises, runs the stateful IMDCT/overlap-add, rejoins and limits.

use cg_graph::{CostModel, NodeId, NodeKind};
use cg_runtime::{f32s, Program};
use commguard::graph::{self as cg_graph, GraphBuilder, StreamGraph};

use crate::mdct::{analyze, OverlapAdd, M};
use crate::signal;

/// Quantiser step count per unit amplitude: coarse, mp3-at-low-bitrate
/// territory.
pub const QSCALE: f32 = 0.45;

/// Words per firing of the source (one granule per channel).
pub const GRANULE_WORDS: u32 = (2 * M) as u32;

/// The mp3 workload.
#[derive(Debug, Clone)]
pub struct Mp3App {
    samples: usize,
    left: Vec<f32>,
    right: Vec<f32>,
    encoded: Vec<u32>,
    granules: usize,
}

impl Mp3App {
    /// Encodes `samples` stereo samples of the synthetic test signal
    /// (rounded down to whole granules).
    ///
    /// # Panics
    ///
    /// Panics if fewer than one granule of samples is requested.
    pub fn new(samples: usize) -> Self {
        let samples = (samples / M) * M;
        assert!(samples >= M, "need at least one granule");
        let (left, right) = signal::audio_stereo(samples);
        let gl = analyze(&left);
        let gr = analyze(&right);
        let granules = gl.len();
        let mut encoded = Vec::with_capacity(granules * 2 * M);
        for g in 0..granules {
            for &c in &gl[g] {
                encoded.push(quant(c));
            }
            for &c in &gr[g] {
                encoded.push(quant(c));
            }
        }
        Mp3App {
            samples,
            left,
            right,
            encoded,
            granules,
        }
    }

    /// Steady iterations (one granule pair each).
    pub fn frames(&self) -> u64 {
        self.granules as u64
    }

    /// Raw PCM sample count per channel.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Builds the 9-node decoder graph.
    pub fn graph(&self) -> StreamGraph {
        let m = M as u32;
        let mut b = GraphBuilder::new("mp3");
        let src = b.add_node_with_cost("source", NodeKind::Source, CostModel::new(60, 6));
        let split =
            b.add_node_with_cost("split", NodeKind::SplitRoundRobin, CostModel::new(40, 10));
        let deq_l = b.add_node_with_cost("dequantL", NodeKind::Filter, CostModel::new(40, 12));
        let deq_r = b.add_node_with_cost("dequantR", NodeKind::Filter, CostModel::new(40, 12));
        let imdct_l = b.add_node_with_cost("imdctL", NodeKind::Filter, CostModel::new(600, 120));
        let imdct_r = b.add_node_with_cost("imdctR", NodeKind::Filter, CostModel::new(600, 120));
        let join = b.add_node_with_cost("join", NodeKind::JoinRoundRobin, CostModel::new(40, 10));
        let limit = b.add_node_with_cost("limiter", NodeKind::Filter, CostModel::new(40, 10));
        let snk = b.add_node("sink", NodeKind::Sink);
        b.connect(src, split, GRANULE_WORDS, GRANULE_WORDS).unwrap();
        b.connect(split, deq_l, m, m).unwrap();
        b.connect(split, deq_r, m, m).unwrap();
        b.connect(deq_l, imdct_l, m, m).unwrap();
        b.connect(deq_r, imdct_r, m, m).unwrap();
        b.connect(imdct_l, join, m, m).unwrap();
        b.connect(imdct_r, join, m, m).unwrap();
        b.connect(join, limit, GRANULE_WORDS, GRANULE_WORDS)
            .unwrap();
        b.connect(limit, snk, GRANULE_WORDS, GRANULE_WORDS).unwrap();
        b.build().unwrap()
    }

    /// Builds the runnable decoder; returns it with the sink id.
    pub fn build(&self) -> (Program, NodeId) {
        let graph = self.graph();
        let name = |n: &str| graph.node_by_name(n).unwrap();
        let (src, deq_l, deq_r, imdct_l, imdct_r, limit, snk) = (
            name("source"),
            name("dequantL"),
            name("dequantR"),
            name("imdctL"),
            name("imdctR"),
            name("limiter"),
            name("sink"),
        );
        let mut p = Program::new(graph);

        let encoded = self.encoded.clone();
        let mut pos = 0usize;
        p.set_source(src, move |out| {
            for _ in 0..GRANULE_WORDS {
                out.push(*encoded.get(pos).unwrap_or(&0));
                pos += 1;
            }
        });

        for node in [deq_l, deq_r] {
            p.set_filter(node, |inp, out| {
                for &w in &inp[0] {
                    out[0].push((w as i32 as f32 / QSCALE).to_bits());
                }
            });
        }

        for node in [imdct_l, imdct_r] {
            let mut ola = OverlapAdd::new();
            p.set_filter(node, move |inp, out| {
                let mut coeffs = [0.0f32; M];
                for (i, c) in coeffs.iter_mut().enumerate() {
                    *c = f32::from_bits(inp[0].get(i).copied().unwrap_or(0));
                }
                for s in ola.push(&coeffs) {
                    out[0].push(s.to_bits());
                }
            });
        }

        p.set_filter(limit, |inp, out| {
            for &w in &inp[0] {
                let v = f32::from_bits(w);
                let v = if v.is_finite() {
                    v.clamp(-1.0, 1.0)
                } else {
                    0.0
                };
                out[0].push(v.to_bits());
            }
        });
        (p, snk)
    }

    /// Decodes the sink stream into (left, right) PCM, dropping the
    /// leading overlap-add padding hop and truncating to the input
    /// length.
    pub fn decode(&self, words: &[u32]) -> (Vec<f32>, Vec<f32>) {
        let mut left = Vec::with_capacity(self.samples);
        let mut right = Vec::with_capacity(self.samples);
        // Sink order per granule: 32 L samples then 32 R samples.
        for (g, chunk) in words.chunks(2 * M).enumerate() {
            if g == 0 {
                continue; // padding hop
            }
            let samples = f32s::from_words(chunk);
            // PCM-writer saturation: a real decoder emits 16-bit PCM, so
            // out-of-range or non-finite words (possible when a fault
            // strikes after the limiter) clip to full scale.
            let pcm = |v: Option<&f32>| -> f32 {
                let v = v.copied().unwrap_or(0.0);
                if v.is_finite() {
                    v.clamp(-1.0, 1.0)
                } else {
                    0.0
                }
            };
            for i in 0..M {
                left.push(pcm(samples.get(i)));
                right.push(pcm(samples.get(M + i)));
            }
        }
        left.resize(self.samples, 0.0);
        right.resize(self.samples, 0.0);
        (left, right)
    }

    /// SNR of a decoded sink stream against the raw stereo input (the
    /// paper's mp3 quality metric).
    pub fn snr(&self, words: &[u32]) -> f64 {
        let (l, r) = self.decode(words);
        let reference: Vec<f32> = self.left.iter().chain(&self.right).copied().collect();
        let got: Vec<f32> = l.into_iter().chain(r).collect();
        cg_metrics::snr_f32(&reference, &got)
    }
}

impl Default for Mp3App {
    fn default() -> Self {
        Mp3App::new(8192)
    }
}

fn quant(c: f32) -> u32 {
    ((c * QSCALE).round() as i32).clamp(-32768, 32767) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_runtime::{run, SimConfig};

    #[test]
    fn graph_shape() {
        let app = Mp3App::new(256);
        let g = app.graph();
        assert_eq!(g.node_count(), 9);
        let sched = g.schedule().unwrap();
        assert!(sched.repetition_vector().iter().all(|&r| r == 1));
    }

    #[test]
    fn error_free_snr_is_near_paper_operating_point() {
        let app = Mp3App::new(4096);
        let (p, snk) = app.build();
        let r = run(p, &SimConfig::error_free(app.frames())).unwrap();
        assert!(r.completed);
        let snr = app.snr(r.sink_output(snk));
        // Paper: mp3 error-free SNR 9.4 dB. Anything in the high-single /
        // low-double digits is the same lossy operating point.
        assert!(
            (5.0..20.0).contains(&snr),
            "error-free SNR {snr} dB outside the lossy operating range"
        );
    }

    #[test]
    fn decode_length_matches_input() {
        let app = Mp3App::new(512);
        let (p, snk) = app.build();
        let r = run(p, &SimConfig::error_free(app.frames())).unwrap();
        let (l, rr) = app.decode(r.sink_output(snk));
        assert_eq!(l.len(), 512);
        assert_eq!(rr.len(), 512);
    }
}
