//! MDCT substrate for the mp3-like audio codec.
//!
//! A 32-band modified discrete cosine transform with the Princen–Bradley
//! sine window and 50 % overlap-add — the lapped-transform core of
//! MPEG-audio-style codecs. The window satisfies
//! `w²[n] + w²[n+M] = 1`, so the analysis/synthesis chain reconstructs
//! perfectly in the absence of quantisation.

use std::f32::consts::PI;

/// Subband count (MDCT length); each hop consumes/produces `M` samples.
pub const M: usize = 32;

/// Window length (2·M).
pub const W: usize = 2 * M;

fn window() -> [f32; W] {
    let mut w = [0.0f32; W];
    for (n, v) in w.iter_mut().enumerate() {
        *v = ((n as f32 + 0.5) * PI / W as f32).sin();
    }
    w
}

/// Forward MDCT of one windowed 64-sample block → 32 coefficients.
pub fn mdct(block: &[f32; W]) -> [f32; M] {
    let w = window();
    let mut out = [0.0f32; M];
    for (k, coeff) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for n in 0..W {
            acc += block[n]
                * w[n]
                * ((PI / M as f32) * (n as f32 + 0.5 + M as f32 / 2.0) * (k as f32 + 0.5)).cos();
        }
        *coeff = acc;
    }
    out
}

/// Inverse MDCT of 32 coefficients → one windowed 64-sample block, to be
/// overlap-added with its neighbours.
pub fn imdct(coeffs: &[f32; M]) -> [f32; W] {
    let w = window();
    let mut out = [0.0f32; W];
    for (n, sample) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for (k, &c) in coeffs.iter().enumerate() {
            acc +=
                c * ((PI / M as f32) * (n as f32 + 0.5 + M as f32 / 2.0) * (k as f32 + 0.5)).cos();
        }
        *sample = acc * w[n] * 2.0 / M as f32;
    }
    out
}

/// Analyses a signal into consecutive 32-coefficient MDCT granules
/// (hop = 32; the signal is zero-padded by one hop on each side).
pub fn analyze(signal: &[f32]) -> Vec<[f32; M]> {
    let hops = signal.len() / M;
    let mut out = Vec::with_capacity(hops + 1);
    let sample = |i: isize| -> f32 {
        if i < 0 || i as usize >= signal.len() {
            0.0
        } else {
            signal[i as usize]
        }
    };
    // Granule g covers samples [g*M - M/2 .. g*M + 3M/2)? We use the
    // simplest indexing: block g starts at (g-1)*M so that overlap-add of
    // granules 0..=hops reconstructs samples 0..hops*M.
    for g in 0..=hops {
        let mut block = [0.0f32; W];
        for (n, v) in block.iter_mut().enumerate() {
            *v = sample((g as isize - 1) * M as isize + n as isize);
        }
        out.push(mdct(&block));
    }
    out
}

/// Synthesises granules back into a signal of `len` samples by
/// overlap-add (inverse of [`analyze`]).
pub fn synthesize(granules: &[[f32; M]], len: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; len + 2 * M];
    for (g, coeffs) in granules.iter().enumerate() {
        let block = imdct(coeffs);
        let start = g * M; // (g-1)*M + M offset into padded buffer
        for (n, &v) in block.iter().enumerate() {
            if start + n >= M && start + n - M < out.len() {
                out[start + n - M] += v;
            }
        }
    }
    out.truncate(len);
    out
}

/// Streaming overlap-add synthesiser: feed one granule, get one hop (32
/// samples) of reconstructed audio. This is the stateful core of the mp3
/// decoder's IMDCT filter.
#[derive(Debug, Clone)]
pub struct OverlapAdd {
    carry: [f32; M],
}

impl OverlapAdd {
    /// A synthesiser with silent history.
    pub fn new() -> Self {
        OverlapAdd { carry: [0.0; M] }
    }

    /// Consumes one granule and emits the next `M` output samples.
    pub fn push(&mut self, coeffs: &[f32; M]) -> [f32; M] {
        let block = imdct(coeffs);
        let mut out = [0.0f32; M];
        for n in 0..M {
            out[n] = self.carry[n] + block[n];
            self.carry[n] = block[n + M];
        }
        out
    }
}

impl Default for OverlapAdd {
    fn default() -> Self {
        OverlapAdd::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_satisfies_princen_bradley() {
        let w = window();
        for n in 0..M {
            let s = w[n] * w[n] + w[n + M] * w[n + M];
            assert!((s - 1.0).abs() < 1e-5, "n={n}: {s}");
        }
    }

    #[test]
    fn analyze_synthesize_reconstructs() {
        let signal: Vec<f32> = (0..512)
            .map(|i| (i as f32 * 0.1).sin() * 0.8 + (i as f32 * 0.037).cos() * 0.2)
            .collect();
        let granules = analyze(&signal);
        let back = synthesize(&granules, signal.len());
        for (i, (a, b)) in signal.iter().zip(&back).enumerate() {
            assert!((a - b).abs() < 1e-3, "sample {i}: {a} vs {b}");
        }
    }

    #[test]
    fn streaming_overlap_add_matches_batch() {
        let signal: Vec<f32> = (0..256).map(|i| (i as f32 * 0.21).sin()).collect();
        let granules = analyze(&signal);
        let batch = synthesize(&granules, signal.len());
        let mut ola = OverlapAdd::new();
        let mut streamed = Vec::new();
        for g in &granules {
            streamed.extend(ola.push(g));
        }
        // The first hop of the streaming output corresponds to the batch
        // output offset: streaming starts emitting at granule 0's first
        // half which lands at sample -M..0 (padding); so skip one hop.
        for (i, (a, b)) in batch.iter().zip(streamed.iter().skip(M)).enumerate() {
            assert!((a - b).abs() < 1e-4, "sample {i}: {a} vs {b}");
        }
    }

    #[test]
    fn energy_compaction_on_tone() {
        // A pure subband-centred tone concentrates energy in few bins.
        let signal: Vec<f32> = (0..W)
            .map(|n| ((n as f32 + 0.5) * PI * 5.5 / M as f32).cos())
            .collect();
        let mut block = [0.0f32; W];
        block.copy_from_slice(&signal);
        let coeffs = mdct(&block);
        let total: f32 = coeffs.iter().map(|c| c * c).sum();
        let top: f32 = {
            let mut mags: Vec<f32> = coeffs.iter().map(|c| c * c).collect();
            mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
            mags[..3].iter().sum()
        };
        assert!(top / total > 0.9, "energy not compact: {}", top / total);
    }
}
