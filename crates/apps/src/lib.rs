//! # cg-apps — the StreamIt benchmark suite as guarded stream programs
//!
//! The paper evaluates six StreamIt applications on 10 error-prone cores
//! (§6): `audiobeamformer`, `channelvocoder`, `complex-fir`, `fft`, and
//! the multimedia decoders `jpeg` and `mp3`. This crate rebuilds each as
//! a [`cg_runtime::Program`] over the [`commguard::graph`] IR, together
//! with the codec/DSP substrate they need:
//!
//! * [`dct`] — 8×8 2-D DCT/IDCT, zigzag, quantisation (the jpeg codec);
//! * [`mdct`] — MDCT-32 with 50 % overlap-add (the mp3-like codec);
//! * [`firs`] — windowed-sinc FIR design (beamformer, vocoder, fir);
//! * [`signal`] — deterministic synthetic inputs (multi-tone audio and a
//!   structured test image), replacing the paper's copyrighted inputs;
//! * one module per benchmark, and [`suite`] with a uniform interface for
//!   the experiment harnesses.
//!
//! Quality metrics follow the paper: jpeg reports PSNR and mp3 reports
//! SNR against the *raw* input (so the error-free run shows the purely
//! algorithmic compression loss), while the four kernels report SNR
//! against their own error-free output (error-free SNR = ∞).

pub mod beamformer;
pub mod complex_fir;
pub mod dct;
pub mod fft_app;
pub mod firs;
pub mod jpeg;
pub mod mdct;
pub mod mp3;
pub mod signal;
pub mod suite;
pub mod vocoder;

pub use suite::{BenchApp, Size, Workload};
