//! 8×8 block DCT substrate for the jpeg benchmark.
//!
//! Separable 2-D DCT-II (forward) and DCT-III (inverse) over 8×8 blocks,
//! JPEG-style zigzag ordering, and quantisation with the standard JPEG
//! luminance table scaled by a quality factor — everything the block
//! image codec needs.

use std::f32::consts::PI;

/// Block edge length.
pub const N: usize = 8;

/// Coefficients per block.
pub const BLOCK: usize = N * N;

/// The standard JPEG luminance quantisation table (Annex K of the JPEG
/// standard), used here for all three channels.
pub const BASE_QTABLE: [u16; BLOCK] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zigzag scan order: `ZIGZAG[k]` is the raster index of the k-th
/// coefficient in zigzag order.
pub const ZIGZAG: [usize; BLOCK] = zigzag_table();

const fn zigzag_table() -> [usize; BLOCK] {
    let mut table = [0usize; BLOCK];
    let (mut x, mut y) = (0isize, 0isize);
    let mut k = 0;
    while k < BLOCK {
        table[k] = (y * N as isize + x) as usize;
        k += 1;
        // Even diagonals travel up-right, odd down-left.
        if (x + y) % 2 == 0 {
            if x == N as isize - 1 {
                y += 1;
            } else if y == 0 {
                x += 1;
            } else {
                x += 1;
                y -= 1;
            }
        } else if y == N as isize - 1 {
            x += 1;
        } else if x == 0 {
            y += 1;
        } else {
            x -= 1;
            y += 1;
        }
    }
    table
}

/// Scales the base table by JPEG quality (1..=100, 50 = base table).
pub fn qtable(quality: u8) -> [u16; BLOCK] {
    let q = quality.clamp(1, 100) as i32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut t = [1u16; BLOCK];
    for (i, &b) in BASE_QTABLE.iter().enumerate() {
        let v = (i32::from(b) * scale + 50) / 100;
        t[i] = v.clamp(1, 255) as u16;
    }
    t
}

fn cos_table() -> [[f32; N]; N] {
    let mut c = [[0.0f32; N]; N];
    for (u, row) in c.iter_mut().enumerate() {
        for (x, v) in row.iter_mut().enumerate() {
            *v = (((2 * x + 1) as f32 * u as f32 * PI) / (2.0 * N as f32)).cos();
        }
    }
    c
}

fn alpha(u: usize) -> f32 {
    if u == 0 {
        (1.0f32 / N as f32).sqrt()
    } else {
        (2.0f32 / N as f32).sqrt()
    }
}

/// Forward 2-D DCT-II of an 8×8 spatial block (row-major).
pub fn dct2(block: &[f32; BLOCK]) -> [f32; BLOCK] {
    let c = cos_table();
    let mut out = [0.0f32; BLOCK];
    for v in 0..N {
        for u in 0..N {
            let mut acc = 0.0f32;
            for (y, crow) in c[v].iter().enumerate() {
                for (x, cu) in c[u].iter().enumerate() {
                    acc += block[y * N + x] * cu * crow;
                }
            }
            out[v * N + u] = alpha(u) * alpha(v) * acc;
        }
    }
    out
}

/// Inverse 2-D DCT (DCT-III) back to the spatial block.
pub fn idct2(coeffs: &[f32; BLOCK]) -> [f32; BLOCK] {
    let c = cos_table();
    let mut out = [0.0f32; BLOCK];
    for y in 0..N {
        for x in 0..N {
            let mut acc = 0.0f32;
            for v in 0..N {
                for u in 0..N {
                    acc += alpha(u) * alpha(v) * coeffs[v * N + u] * c[u][x] * c[v][y];
                }
            }
            out[y * N + x] = acc;
        }
    }
    out
}

/// Quantises DCT coefficients to integers using `table`, in zigzag order.
pub fn quantize(coeffs: &[f32; BLOCK], table: &[u16; BLOCK]) -> [i32; BLOCK] {
    let mut out = [0i32; BLOCK];
    for (k, slot) in out.iter_mut().enumerate() {
        let raster = ZIGZAG[k];
        *slot = (coeffs[raster] / f32::from(table[raster])).round() as i32;
    }
    out
}

/// Dequantises zigzag-ordered integers back to raster-order coefficients.
pub fn dequantize(q: &[i32; BLOCK], table: &[u16; BLOCK]) -> [f32; BLOCK] {
    let mut out = [0.0f32; BLOCK];
    for (k, &v) in q.iter().enumerate() {
        let raster = ZIGZAG[k];
        out[raster] = v as f32 * f32::from(table[raster]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate zigzag index {i}");
            seen[i] = true;
        }
        // Spot checks: classic JPEG zigzag prefix.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[BLOCK - 1], 63);
    }

    #[test]
    fn dct_roundtrip_is_near_exact() {
        let mut block = [0.0f32; BLOCK];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i as f32 * 0.37).sin() * 100.0) - 30.0;
        }
        let back = idct2(&dct2(&block));
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let block = [42.0f32; BLOCK];
        let c = dct2(&block);
        assert!(
            (c[0] - 42.0 * 8.0).abs() < 1e-3,
            "DC = 8·mean, got {}",
            c[0]
        );
        for &v in &c[1..] {
            assert!(v.abs() < 1e-3);
        }
    }

    #[test]
    fn quantisation_roundtrip_bounded_error() {
        let mut block = [0.0f32; BLOCK];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 7 % 256) as f32) - 128.0;
        }
        let t = qtable(75);
        let coeffs = dct2(&block);
        let deq = dequantize(&quantize(&coeffs, &t), &t);
        let back = idct2(&deq);
        let rmse = (block
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / BLOCK as f32)
            .sqrt();
        assert!(rmse < 30.0, "quantisation error too large: {rmse}");
    }

    #[test]
    fn quality_scales_tables() {
        let q10 = qtable(10);
        let q90 = qtable(90);
        assert!(q10[1] > q90[1], "lower quality → coarser steps");
        assert_eq!(qtable(50), {
            let mut t = [0u16; BLOCK];
            for (i, &b) in BASE_QTABLE.iter().enumerate() {
                t[i] = b;
            }
            t
        });
        assert!(qtable(1).iter().all(|&v| v >= 1));
    }
}
