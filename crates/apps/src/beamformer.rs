//! The `audiobeamformer` benchmark: a 4-sensor delay-and-sum beamformer.
//!
//! Each sensor channel applies a steering delay and a low-pass FIR before
//! the coherent sum. Rates are one sample per firing, matching the
//! paper's observation that audiobeamformer has threads with a frame size
//! of one item (one header per data item — the worst case for CommGuard
//! overhead) and a median of 72 instructions per frame computation.

use cg_graph::{CostModel, NodeId, NodeKind};
use cg_runtime::{f32s, Program};
use commguard::graph::{self as cg_graph, GraphBuilder, StreamGraph};

use crate::firs::{lowpass, Delay, Fir};
use crate::signal;

/// Sensor count.
pub const CHANNELS: usize = 4;

/// The audiobeamformer workload.
#[derive(Debug, Clone)]
pub struct BeamformerApp {
    samples: usize,
}

impl BeamformerApp {
    /// A workload over `samples` output samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        BeamformerApp { samples }
    }

    /// Steady iterations (one sample each).
    pub fn frames(&self) -> u64 {
        self.samples as u64
    }

    /// Builds the 9-node graph:
    /// src → split(rr 1×4) → 4 channel filters → join(rr 1×4) → sum → sink.
    pub fn graph(&self) -> StreamGraph {
        let mut b = GraphBuilder::new("audiobeamformer");
        let src = b.add_node_with_cost("source", NodeKind::Source, CostModel::new(30, 10));
        let split = b.add_node_with_cost("split", NodeKind::SplitRoundRobin, CostModel::new(16, 6));
        let join = b.add_node_with_cost("join", NodeKind::JoinRoundRobin, CostModel::new(16, 6));
        let sum = b.add_node_with_cost("sum", NodeKind::Filter, CostModel::new(30, 10));
        let snk = b.add_node("sink", NodeKind::Sink);
        b.connect(src, split, CHANNELS as u32, CHANNELS as u32)
            .unwrap();
        for ch in 0..CHANNELS {
            let f = b.add_node_with_cost(
                format!("chan{ch}"),
                NodeKind::Filter,
                CostModel::new(80, 500),
            );
            b.connect(split, f, 1, 1).unwrap();
            b.connect(f, join, 1, 1).unwrap();
        }
        b.connect(join, sum, CHANNELS as u32, CHANNELS as u32)
            .unwrap();
        b.connect(sum, snk, 1, 1).unwrap();
        b.build().unwrap()
    }

    /// Builds the runnable program; returns it with the sink id.
    pub fn build(&self) -> (Program, NodeId) {
        let graph = self.graph();
        let src = graph.node_by_name("source").unwrap();
        let sum = graph.node_by_name("sum").unwrap();
        let snk = graph.node_by_name("sink").unwrap();
        let chans: Vec<NodeId> = (0..CHANNELS)
            .map(|c| graph.node_by_name(&format!("chan{c}")).unwrap())
            .collect();
        let mut p = Program::new(graph);

        let sensors = Self::sensor_inputs(self.samples);
        let mut pos = 0usize;
        p.set_source(src, move |out| {
            for ch in &sensors {
                out.push(ch[pos % ch.len()].to_bits());
            }
            pos += 1;
        });

        for (ch, &node) in chans.iter().enumerate() {
            // Steering delays undo the arrival skew (channel ch arrives
            // ch·2 samples late, so it gets the complementary delay).
            let mut delay = Delay::new((CHANNELS - 1 - ch) * 2 + 1);
            let mut fir = Fir::new(lowpass(64, 0.2));
            p.set_filter(node, move |inp, out| {
                let x = f32s::from_words(&inp[0]);
                let y = fir.step(delay.step(x[0]));
                out[0].push(y.to_bits());
            });
        }

        p.set_filter(sum, |inp, out| {
            let x = f32s::from_words(&inp[0]);
            let s: f32 = x.iter().sum::<f32>() / CHANNELS as f32;
            // Saturating output stage (fixed-point DAC semantics): bounds
            // the damage of exponent-bit corruption to one full-scale
            // sample.
            let s = if s.is_finite() {
                s.clamp(-2.0, 2.0)
            } else {
                0.0
            };
            out[0].push(s.to_bits());
        });
        (p, snk)
    }

    /// Decodes the sink stream into `f32` samples.
    pub fn decode(&self, words: &[u32]) -> Vec<f32> {
        f32s::from_words(words)
    }

    /// Per-sensor inputs: the same source signal with per-channel arrival
    /// delay and gain mismatch.
    fn sensor_inputs(n: usize) -> Vec<Vec<f32>> {
        let base = signal::audio(n + 2 * CHANNELS);
        (0..CHANNELS)
            .map(|ch| {
                let delay = ch * 2;
                let gain = 1.0 - ch as f32 * 0.05;
                (0..n)
                    .map(|i| base[i + 2 * CHANNELS - delay] * gain)
                    .collect()
            })
            .collect()
    }
}

impl Default for BeamformerApp {
    fn default() -> Self {
        BeamformerApp::new(2048)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_runtime::{run, SimConfig};

    #[test]
    fn graph_shape() {
        let app = BeamformerApp::new(8);
        let g = app.graph();
        assert_eq!(g.node_count(), 9);
        let sched = g.schedule().unwrap();
        assert!(sched.repetition_vector().iter().all(|&r| r == 1));
    }

    #[test]
    fn beamformed_output_has_energy() {
        let app = BeamformerApp::new(256);
        let (p, snk) = app.build();
        let r = run(p, &SimConfig::error_free(app.frames())).unwrap();
        assert!(r.completed);
        let out = app.decode(r.sink_output(snk));
        assert_eq!(out.len(), 256);
        let energy: f32 = out.iter().map(|v| v * v).sum();
        assert!(energy > 1.0, "coherent sum should carry energy: {energy}");
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn header_per_item_worst_case() {
        // With one-sample rates and CommGuard on, header pushes equal
        // frames per edge — the paper's worst-case frame/item ratio.
        let app = BeamformerApp::new(32);
        let (p, _snk) = app.build();
        let cfg = SimConfig {
            protection: commguard::Protection::commguard(),
            ..SimConfig::error_free(app.frames())
        };
        let r = run(p, &cfg).unwrap();
        // 11 edges × (32 frames + 1 end header).
        assert_eq!(r.queues.header_pushes, 11 * 33);
    }
}
