//! The `fft` benchmark: a radix-2 pipeline in the classic StreamIt shape —
//! a bit-reversal reorder stage followed by log₂(N) butterfly stages, each
//! running as its own node on its own core.
//!
//! Transform size is 64 complex points; each firing moves one whole block
//! (128 words, interleaved re/im).

use cg_graph::{CostModel, NodeId, NodeKind};
use cg_runtime::Program;
use commguard::graph::{self as cg_graph, GraphBuilder, StreamGraph};
use std::f32::consts::PI;

use crate::signal;

/// Transform size (complex points).
pub const POINTS: usize = 64;

/// Words per block (interleaved re/im).
pub const BLOCK_WORDS: u32 = (POINTS * 2) as u32;

const STAGES: usize = 6; // log2(64)

/// The fft workload: how many transform blocks to stream.
#[derive(Debug, Clone)]
pub struct FftApp {
    blocks: usize,
}

impl FftApp {
    /// A workload of `blocks` transforms.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0`.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks > 0, "need at least one block");
        FftApp { blocks }
    }

    /// Steady iterations (one block each).
    pub fn frames(&self) -> u64 {
        self.blocks as u64
    }

    /// Builds the 9-node graph: src → bitrev → 6 × butterfly → sink.
    pub fn graph(&self) -> StreamGraph {
        let mut b = GraphBuilder::new("fft");
        let src = b.add_node_with_cost("source", NodeKind::Source, CostModel::new(100, 8));
        let rev = b.add_node_with_cost("bitrev", NodeKind::Filter, CostModel::new(200, 20));
        let mut chain = vec![src, rev];
        for s in 0..STAGES {
            chain.push(b.add_node_with_cost(
                format!("butterfly{s}"),
                NodeKind::Filter,
                CostModel::new(400, 80),
            ));
        }
        chain.push(b.add_node("sink", NodeKind::Sink));
        b.pipeline(&chain, BLOCK_WORDS).unwrap();
        b.build().unwrap()
    }

    /// Builds the runnable program; returns it with the sink id.
    pub fn build(&self) -> (Program, NodeId) {
        let graph = self.graph();
        let src = graph.node_by_name("source").unwrap();
        let rev = graph.node_by_name("bitrev").unwrap();
        let snk = graph.node_by_name("sink").unwrap();
        let stages: Vec<NodeId> = (0..STAGES)
            .map(|s| graph.node_by_name(&format!("butterfly{s}")).unwrap())
            .collect();
        let mut p = Program::new(graph);

        let input = signal::audio(self.blocks * POINTS);
        let mut block = 0usize;
        p.set_source(src, move |out| {
            for i in 0..POINTS {
                let idx = block * POINTS + i;
                let re = if idx < input.len() { input[idx] } else { 0.0 };
                out.push(re.to_bits());
                out.push(0f32.to_bits()); // purely real input
            }
            block += 1;
        });

        p.set_filter(rev, |inp, out| {
            let words = &inp[0];
            for i in 0..POINTS {
                let j = (i as u32).reverse_bits() >> (32 - STAGES);
                let j = j as usize;
                let (re, im) = word_pair(words, j);
                out[0].extend([re, im]);
            }
        });

        for (s, &node) in stages.iter().enumerate() {
            let half = 1usize << s; // butterfly half-span at this stage
            p.set_filter(node, move |inp, out| {
                let words = &inp[0];
                let mut buf: Vec<(f32, f32)> = (0..POINTS)
                    .map(|i| {
                        let (re, im) = word_pair(words, i);
                        (f32::from_bits(re), f32::from_bits(im))
                    })
                    .collect();
                let span = half * 2;
                for group in (0..POINTS).step_by(span) {
                    for k in 0..half {
                        let ang = -PI * k as f32 / half as f32;
                        let (wr, wi) = (ang.cos(), ang.sin());
                        let (ar, ai) = buf[group + k];
                        let (br, bi) = buf[group + k + half];
                        let (tr, ti) = (br * wr - bi * wi, br * wi + bi * wr);
                        buf[group + k] = (ar + tr, ai + ti);
                        buf[group + k + half] = (ar - tr, ai - ti);
                    }
                }
                for (re, im) in buf {
                    // Saturate just above the legitimate range (strongest
                    // bin ≈ 16 for the test signal) — fixed-point FFT
                    // semantics — so exponent-bit flips cannot contribute
                    // astronomically wrong energies.
                    let sat = |v: f32| {
                        if v.is_finite() {
                            v.clamp(-32.0, 32.0)
                        } else {
                            0.0
                        }
                    };
                    out[0].extend([sat(re).to_bits(), sat(im).to_bits()]);
                }
            });
        }
        (p, snk)
    }

    /// Decodes the sink stream into complex spectra, one `Vec` per block.
    pub fn decode(&self, words: &[u32]) -> Vec<Vec<(f32, f32)>> {
        words
            .chunks(BLOCK_WORDS as usize)
            .map(|chunk| {
                chunk
                    .chunks(2)
                    .map(|p| {
                        (
                            f32::from_bits(p[0]),
                            f32::from_bits(*p.get(1).unwrap_or(&0)),
                        )
                    })
                    .collect()
            })
            .collect()
    }
}

impl Default for FftApp {
    fn default() -> Self {
        FftApp::new(64)
    }
}

/// Reads the complex pair at index `i`, tolerating short (error-damaged)
/// blocks.
fn word_pair(words: &[u32], i: usize) -> (u32, u32) {
    (
        words.get(2 * i).copied().unwrap_or(0),
        words.get(2 * i + 1).copied().unwrap_or(0),
    )
}

/// A reference scalar FFT for validation.
#[cfg(test)]
fn reference_fft(input: &[f32]) -> Vec<(f32, f32)> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut re = 0.0f32;
            let mut im = 0.0f32;
            for (t, &x) in input.iter().enumerate() {
                let ang = -2.0 * PI * (k * t) as f32 / n as f32;
                re += x * ang.cos();
                im += x * ang.sin();
            }
            (re, im)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_runtime::{run, SimConfig};

    #[test]
    fn graph_shape() {
        let app = FftApp::new(2);
        let g = app.graph();
        assert_eq!(g.node_count(), 9, "src + bitrev + 6 stages + sink");
        let sched = g.schedule().unwrap();
        assert!(sched.repetition_vector().iter().all(|&r| r == 1));
    }

    #[test]
    fn pipeline_matches_reference_dft() {
        let app = FftApp::new(3);
        let (p, snk) = app.build();
        let r = run(p, &SimConfig::error_free(app.frames())).unwrap();
        assert!(r.completed);
        let blocks = app.decode(r.sink_output(snk));
        assert_eq!(blocks.len(), 3);
        let input = signal::audio(3 * POINTS);
        for (bi, block) in blocks.iter().enumerate() {
            let want = reference_fft(&input[bi * POINTS..(bi + 1) * POINTS]);
            for (k, ((gr, gi), (wr, wi))) in block.iter().zip(&want).enumerate() {
                assert!(
                    (gr - wr).abs() < 1e-2 && (gi - wi).abs() < 1e-2,
                    "block {bi} bin {k}: got ({gr},{gi}) want ({wr},{wi})"
                );
            }
        }
    }
}
