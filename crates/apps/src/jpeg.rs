//! The `jpeg` benchmark: a block-DCT image codec whose decoder runs as
//! the paper's 10-node streaming graph (Fig. 1).
//!
//! The encoder (host-side, error-free) quantises 8×8 DCT blocks of each
//! RGB channel with the standard JPEG luminance table. The decoder
//! pipeline mirrors Fig. 1/2 exactly:
//!
//! ```text
//! F0 source ─192→ F1 dequant ─192→ F2 dezigzag ─192→ split(dup)
//!      ├─192→ F3R idct ─64┐
//!      ├─192→ F3G idct ─64┤ join(rr) ─192→ F4 combine ─192→ F7 sink
//!      └─192→ F3B idct ─64┘                      (pops one 8-row band)
//! ```
//!
//! One block is 192 items (64 coefficients × 3 channels); F4 pushes 192
//! items per firing and the sink pops `width/8 × 192` per firing — for a
//! 640-wide image that is 15 360 items, the exact numbers of the paper's
//! Fig. 2. One frame computation decodes one 8-pixel-high band.

use cg_graph::{CostModel, NodeId, NodeKind};
use cg_metrics::Image;
use cg_runtime::Program;
use commguard::graph::{self as cg_graph, GraphBuilder, StreamGraph};

use crate::dct::{dct2, dequantize, idct2, qtable, quantize, BLOCK, N, ZIGZAG};
use crate::signal;

/// Words per encoded block (3 channels × 64 coefficients).
pub const BLOCK_WORDS: u32 = (3 * BLOCK) as u32;

/// The jpeg workload: an encoded image plus everything needed to rebuild
/// and judge decodes.
#[derive(Debug, Clone)]
pub struct JpegApp {
    width: usize,
    height: usize,
    quality: u8,
    raw: Image,
    encoded: Vec<u32>,
}

impl JpegApp {
    /// Encodes the synthetic test image at `width`×`height` (multiples of
    /// 8) and JPEG quality `quality`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or not multiples of 8.
    pub fn new(width: usize, height: usize, quality: u8) -> Self {
        assert!(
            width > 0 && height > 0 && width.is_multiple_of(N) && height.is_multiple_of(N),
            "dimensions must be positive multiples of 8"
        );
        let raw = signal::test_image(width, height);
        let encoded = encode(&raw, quality);
        JpegApp {
            width,
            height,
            quality,
            raw,
            encoded,
        }
    }

    /// The paper-scale workload: 640×480.
    pub fn paper() -> Self {
        JpegApp::new(640, 480, 75)
    }

    /// A quick workload for sweeps and tests: 320×240.
    pub fn small() -> Self {
        JpegApp::new(320, 240, 75)
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The raw (pre-compression) image — the PSNR reference.
    pub fn raw(&self) -> &Image {
        &self.raw
    }

    /// Steady iterations: one 8-row band each.
    pub fn frames(&self) -> u64 {
        (self.height / N) as u64
    }

    /// Blocks per band (source firings per frame computation).
    pub fn blocks_per_band(&self) -> u32 {
        (self.width / N) as u32
    }

    /// Builds the 10-node decoder graph.
    pub fn graph(&self) -> StreamGraph {
        let band_words = BLOCK_WORDS * self.blocks_per_band();
        let mut b = GraphBuilder::new("jpeg");
        let f0 = b.add_node_with_cost("F0_source", NodeKind::Source, CostModel::new(100, 8));
        let f1 = b.add_node_with_cost("F1_dequant", NodeKind::Filter, CostModel::new(100, 20));
        let f2 = b.add_node_with_cost("F2_dezigzag", NodeKind::Filter, CostModel::new(100, 16));
        let split =
            b.add_node_with_cost("F3_split", NodeKind::SplitDuplicate, CostModel::new(40, 8));
        let f3r = b.add_node_with_cost("F3R_idct", NodeKind::Filter, CostModel::new(1000, 160));
        let f3g = b.add_node_with_cost("F3G_idct", NodeKind::Filter, CostModel::new(1000, 160));
        let f3b = b.add_node_with_cost("F3B_idct", NodeKind::Filter, CostModel::new(1000, 160));
        let join = b.add_node_with_cost("F4_join", NodeKind::JoinRoundRobin, CostModel::new(40, 8));
        let f4 = b.add_node_with_cost("F5_combine", NodeKind::Filter, CostModel::new(100, 24));
        let f7 = b.add_node("F7_sink", NodeKind::Sink);
        b.connect(f0, f1, BLOCK_WORDS, BLOCK_WORDS).unwrap();
        b.connect(f1, f2, BLOCK_WORDS, BLOCK_WORDS).unwrap();
        b.connect(f2, split, BLOCK_WORDS, BLOCK_WORDS).unwrap();
        for f3 in [f3r, f3g, f3b] {
            b.connect(split, f3, BLOCK_WORDS, BLOCK_WORDS).unwrap();
            b.connect(f3, join, BLOCK as u32, BLOCK as u32).unwrap();
        }
        b.connect(join, f4, BLOCK_WORDS, BLOCK_WORDS).unwrap();
        b.connect(f4, f7, BLOCK_WORDS, band_words).unwrap();
        b.build().unwrap()
    }

    /// Builds the runnable decoder; returns it with the sink id.
    pub fn build(&self) -> (Program, NodeId) {
        let graph = self.graph();
        let ids: Vec<NodeId> = [
            "F0_source",
            "F1_dequant",
            "F2_dezigzag",
            "F3R_idct",
            "F3G_idct",
            "F3B_idct",
            "F5_combine",
            "F7_sink",
        ]
        .iter()
        .map(|n| graph.node_by_name(n).unwrap())
        .collect();
        let (f0, f1, f2, f3r, f3g, f3b, f4, f7) = (
            ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6], ids[7],
        );
        let mut p = Program::new(graph);

        // F0: streams one encoded block per firing.
        let encoded = self.encoded.clone();
        let mut pos = 0usize;
        p.set_source(f0, move |out| {
            for _ in 0..BLOCK_WORDS {
                out.push(*encoded.get(pos).unwrap_or(&0));
                pos += 1;
            }
        });

        // F1: dequantise (zigzag-order ints → zigzag-order f32 words).
        let table = qtable(self.quality);
        p.set_filter(f1, move |inp, out| {
            for (k, &w) in inp[0].iter().enumerate() {
                let raster = ZIGZAG[k % BLOCK];
                let v = w as i32 as f32 * f32::from(table[raster]);
                out[0].push(v.to_bits());
            }
        });

        // F2: de-zigzag each 64-chunk to raster order.
        p.set_filter(f2, |inp, out| {
            let words = &inp[0];
            for chunk in 0..words.len().div_ceil(BLOCK) {
                let base = chunk * BLOCK;
                let mut raster = [0u32; BLOCK];
                for k in 0..BLOCK {
                    let w = words.get(base + k).copied().unwrap_or(0);
                    raster[ZIGZAG[k]] = w;
                }
                out[0].extend(raster);
            }
        });

        // F3{R,G,B}: select the channel's 64 coefficients, IDCT, level
        // shift back to pixel range.
        for (chan, node) in [(0usize, f3r), (1, f3g), (2, f3b)] {
            p.set_filter(node, move |inp, out| {
                let words = &inp[0];
                let mut coeffs = [0.0f32; BLOCK];
                for (i, c) in coeffs.iter_mut().enumerate() {
                    *c = f32::from_bits(words.get(chan * BLOCK + i).copied().unwrap_or(0));
                }
                let spatial = idct2(&coeffs);
                for v in spatial {
                    out[0].push((v + 128.0).to_bits());
                }
            });
        }

        // F5: interleave the three planes to per-pixel RGB integers.
        p.set_filter(f4, |inp, out| {
            let words = &inp[0];
            let chan = |c: usize, i: usize| -> u32 {
                let v = f32::from_bits(words.get(c * BLOCK + i).copied().unwrap_or(0));
                v.clamp(0.0, 255.0) as u32
            };
            for i in 0..BLOCK {
                out[0].push(chan(0, i));
                out[0].push(chan(1, i));
                out[0].push(chan(2, i));
            }
        });

        (p, f7)
    }

    /// Reassembles the sink stream into an image (bands of 8-pixel-high
    /// blocks, raster order; out-of-range words saturate).
    pub fn decode(&self, words: &[u32]) -> Image {
        let mut img = Image::new(self.width, self.height);
        let bpb = self.blocks_per_band() as usize;
        let band_words = BLOCK_WORDS as usize * bpb;
        for band in 0..self.height / N {
            for bx in 0..bpb {
                for py in 0..N {
                    for px in 0..N {
                        let pixel = py * N + px;
                        let base = band * band_words + bx * BLOCK_WORDS as usize + pixel * 3;
                        let get = |o: usize| -> u8 {
                            words.get(base + o).map_or(0, |&w| w.min(255) as u8)
                        };
                        img.set_pixel(bx * N + px, band * N + py, (get(0), get(1), get(2)));
                    }
                }
            }
        }
        img
    }

    /// PSNR of a decoded sink stream against the raw image (the paper's
    /// jpeg quality metric).
    pub fn psnr(&self, words: &[u32]) -> f64 {
        cg_metrics::psnr_images(&self.raw, &self.decode(words))
    }

    /// The error-free (lossy-compression-only) decode of the encoded
    /// stream, computed directly without the simulator — the quality
    /// baseline.
    pub fn baseline(&self) -> Image {
        decode_direct(&self.encoded, self.width, self.height, self.quality)
    }
}

/// Host-side encoder: image → zigzag-quantised coefficient stream, block
/// raster order within 8-row bands, 192 words per block (R, G, B).
pub fn encode(img: &Image, quality: u8) -> Vec<u32> {
    let table = qtable(quality);
    let (w, h) = (img.width(), img.height());
    let mut out = Vec::with_capacity(w * h * 3);
    for band in 0..h / N {
        for bx in 0..w / N {
            for chan in 0..3 {
                let mut block = [0.0f32; BLOCK];
                for py in 0..N {
                    for px in 0..N {
                        let p = img.pixel(bx * N + px, band * N + py);
                        let v = [p.0, p.1, p.2][chan];
                        block[py * N + px] = f32::from(v) - 128.0;
                    }
                }
                let q = quantize(&dct2(&block), &table);
                out.extend(q.iter().map(|&v| v as u32));
            }
        }
    }
    out
}

/// Host-side reference decoder (no simulation).
fn decode_direct(encoded: &[u32], width: usize, height: usize, quality: u8) -> Image {
    let table = qtable(quality);
    let mut img = Image::new(width, height);
    let mut pos = 0usize;
    for band in 0..height / N {
        for bx in 0..width / N {
            let mut planes = [[0u8; BLOCK]; 3];
            for plane in &mut planes {
                let mut q = [0i32; BLOCK];
                for v in q.iter_mut() {
                    *v = encoded[pos] as i32;
                    pos += 1;
                }
                let spatial = idct2(&dequantize(&q, &table));
                for (i, s) in spatial.iter().enumerate() {
                    plane[i] = (s + 128.0).clamp(0.0, 255.0) as u8;
                }
            }
            for py in 0..N {
                for px in 0..N {
                    let i = py * N + px;
                    img.set_pixel(
                        bx * N + px,
                        band * N + py,
                        (planes[0][i], planes[1][i], planes[2][i]),
                    );
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_metrics::psnr_images;
    use cg_runtime::{run, SimConfig};

    #[test]
    fn graph_matches_figure_1_and_2() {
        let app = JpegApp::new(640, 480, 75);
        let g = app.graph();
        assert_eq!(g.node_count(), 10, "Fig. 1: 10 parallel nodes");
        let sched = g.schedule().unwrap();
        let f4 = g.node_by_name("F5_combine").unwrap();
        let f7 = g.node_by_name("F7_sink").unwrap();
        // Fig. 2: 80 producer firings per 1 consumer firing, 15360-item
        // frames on the F6→F7 edge.
        assert_eq!(sched.repetitions(f4), 80);
        assert_eq!(sched.repetitions(f7), 1);
        let edge = g.node(f7).inputs()[0];
        assert_eq!(sched.items_per_iteration(edge), 15_360);
    }

    #[test]
    fn error_free_decode_matches_direct_decoder() {
        let app = JpegApp::new(64, 32, 75);
        let (p, snk) = app.build();
        let r = run(p, &SimConfig::error_free(app.frames())).unwrap();
        assert!(r.completed);
        let via_sim = app.decode(r.sink_output(snk));
        let direct = app.baseline();
        let psnr = psnr_images(&direct, &via_sim);
        assert!(
            psnr > 45.0,
            "streaming decoder must match the reference: {psnr} dB"
        );
    }

    #[test]
    fn baseline_compression_quality_is_photographic() {
        let app = JpegApp::new(64, 64, 75);
        let psnr = psnr_images(app.raw(), &app.baseline());
        assert!(
            (28.0..50.0).contains(&psnr),
            "algorithmic loss out of range: {psnr} dB"
        );
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn odd_dimensions_panic() {
        let _ = JpegApp::new(65, 32, 75);
    }
}
