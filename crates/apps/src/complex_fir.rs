//! The `complex-fir` benchmark: a cascade of two complex-coefficient FIR
//! filters over a complex input stream, followed by a magnitude stage.
//!
//! Rates are one complex sample (2 words) per firing, so — like the
//! paper's complex-fir — frames are tiny (the §5.3 discussion measures a
//! median of 33 instructions per frame computation) and header overhead
//! is at its worst case.

use cg_graph::{CostModel, NodeId, NodeKind};
use cg_runtime::{f32s, Program};
use commguard::graph::{self as cg_graph, GraphBuilder, StreamGraph};

use crate::firs::{bandpass, Fir};
use crate::signal;

/// One complex FIR: independent real FIRs for the four cross terms.
struct CplxFir {
    rr: Fir,
    ri: Fir,
    ir: Fir,
    ii: Fir,
}

impl CplxFir {
    fn new(re_taps: Vec<f32>, im_taps: Vec<f32>) -> Self {
        CplxFir {
            rr: Fir::new(re_taps.clone()),
            ri: Fir::new(re_taps),
            ir: Fir::new(im_taps.clone()),
            ii: Fir::new(im_taps),
        }
    }

    fn step(&mut self, re: f32, im: f32) -> (f32, f32) {
        // (hr + j·hi) · (xr + j·xi)
        let yr = self.rr.step(re) - self.ii.step(im);
        let yi = self.ri.step(im) + self.ir.step(re);
        (yr, yi)
    }
}

/// The complex-fir workload: input length and filter designs.
#[derive(Debug, Clone)]
pub struct ComplexFirApp {
    samples: usize,
}

impl ComplexFirApp {
    /// A workload over `samples` complex input samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        ComplexFirApp { samples }
    }

    /// Steady iterations (one complex sample each).
    pub fn frames(&self) -> u64 {
        self.samples as u64
    }

    /// Builds the stream graph: src → cfir1 → cfir2 → magnitude → sink.
    pub fn graph(&self) -> StreamGraph {
        let mut b = GraphBuilder::new("complex-fir");
        let src = b.add_node_with_cost("source", NodeKind::Source, CostModel::new(12, 8));
        let f1 = b.add_node_with_cost("cfir1", NodeKind::Filter, CostModel::new(20, 240));
        let f2 = b.add_node_with_cost("cfir2", NodeKind::Filter, CostModel::new(20, 240));
        let mag = b.add_node_with_cost("magnitude", NodeKind::Filter, CostModel::new(16, 16));
        let snk = b.add_node("sink", NodeKind::Sink);
        b.connect(src, f1, 2, 2).unwrap();
        b.connect(f1, f2, 2, 2).unwrap();
        b.connect(f2, mag, 2, 2).unwrap();
        b.connect(mag, snk, 1, 1).unwrap();
        b.build().unwrap()
    }

    /// Builds the runnable program; returns it with the sink id.
    pub fn build(&self) -> (Program, NodeId) {
        let graph = self.graph();
        let src = graph.node_by_name("source").unwrap();
        let f1 = graph.node_by_name("cfir1").unwrap();
        let f2 = graph.node_by_name("cfir2").unwrap();
        let mag = graph.node_by_name("magnitude").unwrap();
        let snk = graph.node_by_name("sink").unwrap();
        let mut p = Program::new(graph);

        let input = Self::input(self.samples);
        let mut pos = 0usize;
        p.set_source(src, move |out| {
            let (re, im) = input[pos % input.len()];
            pos += 1;
            out.push(re.to_bits());
            out.push(im.to_bits());
        });

        let mut c1 = CplxFir::new(bandpass(16, 0.15, 0.08), bandpass(16, 0.15, 0.05));
        p.set_filter(f1, move |inp, out| {
            let x = f32s::from_words(&inp[0]);
            let (re, im) = c1.step(x[0], x.get(1).copied().unwrap_or(0.0));
            out[0].extend([re.to_bits(), im.to_bits()]);
        });
        let mut c2 = CplxFir::new(bandpass(16, 0.18, 0.1), bandpass(16, 0.18, 0.06));
        p.set_filter(f2, move |inp, out| {
            let x = f32s::from_words(&inp[0]);
            let (re, im) = c2.step(x[0], x.get(1).copied().unwrap_or(0.0));
            out[0].extend([re.to_bits(), im.to_bits()]);
        });
        p.set_filter(mag, |inp, out| {
            let x = f32s::from_words(&inp[0]);
            let (re, im) = (x[0], x.get(1).copied().unwrap_or(0.0));
            let m = (re * re + im * im).sqrt();
            let m = if m.is_finite() {
                m.clamp(0.0, 8.0)
            } else {
                0.0
            };
            out[0].push(m.to_bits());
        });
        (p, snk)
    }

    /// Decodes the sink stream back to `f32` magnitudes.
    pub fn decode(&self, words: &[u32]) -> Vec<f32> {
        f32s::from_words(words)
    }

    fn input(n: usize) -> Vec<(f32, f32)> {
        let re = signal::audio(n);
        // A 90°-ish companion: the same tones, phase-shifted.
        let im = signal::audio(n + 7);
        (0..n).map(|i| (re[i], im[i + 7] * 0.7)).collect()
    }
}

impl Default for ComplexFirApp {
    fn default() -> Self {
        ComplexFirApp::new(2048)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_runtime::{run, SimConfig};

    #[test]
    fn graph_shape() {
        let app = ComplexFirApp::new(16);
        let g = app.graph();
        assert_eq!(g.node_count(), 5);
        let sched = g.schedule().unwrap();
        assert!(sched.repetition_vector().iter().all(|&r| r == 1));
    }

    #[test]
    fn error_free_output_is_finite_and_full_length() {
        let app = ComplexFirApp::new(64);
        let (p, snk) = app.build();
        let r = run(p, &SimConfig::error_free(app.frames())).unwrap();
        assert!(r.completed);
        let out = app.decode(r.sink_output(snk));
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|v| v.is_finite()));
        // Magnitudes are non-negative by construction.
        assert!(out.iter().all(|&v| v >= 0.0));
        // And the stream carries energy.
        assert!(out.iter().map(|v| v * v).sum::<f32>() > 1e-3);
    }

    #[test]
    fn deterministic_across_builds() {
        let app = ComplexFirApp::new(32);
        let out = |_| {
            let (p, snk) = app.build();
            let r = run(p, &SimConfig::error_free(app.frames())).unwrap();
            r.sink_output(snk).to_vec()
        };
        assert_eq!(out(0), out(1));
    }
}
