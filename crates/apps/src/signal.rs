//! Deterministic synthetic inputs.
//!
//! The paper uses a photograph and an MP3 clip; we synthesise structured
//! stand-ins so the repository is self-contained: a multi-tone audio
//! signal with an amplitude envelope (enough spectral and temporal
//! structure for SNR to be meaningful) and a "flower-like" test image
//! with radial petals, gradients and high-frequency texture (enough
//! spatial structure for block-DCT compression and PSNR to behave like
//! they do on photos).

use cg_metrics::Image;
use std::f32::consts::PI;

/// A deterministic multi-tone test signal of `n` samples at 44.1 kHz
/// nominal rate, in [-1, 1].
pub fn audio(n: usize) -> Vec<f32> {
    let sr = 44_100.0f32;
    (0..n)
        .map(|i| {
            let t = i as f32 / sr;
            // Three harmonically unrelated tones plus vibrato and a slow
            // envelope, so every subband carries energy.
            let carrier = 0.5 * (2.0 * PI * 440.0 * t).sin()
                + 0.25 * (2.0 * PI * 1_247.0 * t + 0.7).sin()
                + 0.15 * (2.0 * PI * 3_301.0 * t + 1.9).sin();
            let vibrato = (2.0 * PI * 5.0 * t).sin();
            let envelope = 0.55 + 0.45 * (2.0 * PI * 1.5 * t + vibrato * 0.3).sin();
            (carrier * envelope).clamp(-1.0, 1.0)
        })
        .collect()
}

/// A stereo pair: right channel is the left delayed and attenuated.
pub fn audio_stereo(n: usize) -> (Vec<f32>, Vec<f32>) {
    let left = audio(n + 16);
    let right: Vec<f32> = (0..n).map(|i| left[i + 16] * 0.8 + left[i] * 0.2).collect();
    (left[..n].to_vec(), right)
}

/// A structured synthetic test image ("flower" stand-in): radial petals
/// over a vertical sky-to-ground gradient, with a textured centre.
pub fn test_image(width: usize, height: usize) -> Image {
    let mut img = Image::new(width, height);
    let (cx, cy) = (width as f32 / 2.0, height as f32 * 0.55);
    let scale = width.min(height) as f32;
    for y in 0..height {
        for x in 0..width {
            let fx = (x as f32 - cx) / scale;
            let fy = (y as f32 - cy) / scale;
            let r = (fx * fx + fy * fy).sqrt();
            let theta = fy.atan2(fx);
            // Background gradient: sky to ground.
            let t = y as f32 / height as f32;
            let mut rgb = (
                40.0 + 80.0 * (1.0 - t),
                90.0 + 60.0 * (1.0 - t),
                160.0 * (1.0 - t) + 40.0,
            );
            // Petals: 8-lobed rose curve.
            let petal = (8.0 * theta).cos().abs();
            let petal_edge = 0.18 + 0.22 * petal;
            if r < petal_edge {
                let shade = 1.0 - (r / petal_edge);
                rgb = (
                    200.0 + 55.0 * shade,
                    60.0 + 120.0 * petal * shade,
                    90.0 + 40.0 * shade,
                );
            }
            // Textured centre disk.
            if r < 0.07 {
                let tex = ((x as f32 * 1.7).sin() * (y as f32 * 1.3).cos()).abs();
                rgb = (150.0 + 70.0 * tex, 120.0 + 60.0 * tex, 30.0 + 40.0 * tex);
            }
            // Mild high-frequency texture everywhere (foliage noise).
            let n = ((x as f32 * 0.9).sin() + (y as f32 * 1.1).cos()) * 6.0;
            img.set_pixel(
                x,
                y,
                (
                    (rgb.0 + n).clamp(0.0, 255.0) as u8,
                    (rgb.1 + n).clamp(0.0, 255.0) as u8,
                    (rgb.2 + n).clamp(0.0, 255.0) as u8,
                ),
            );
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audio_is_bounded_and_nontrivial() {
        let a = audio(4096);
        assert_eq!(a.len(), 4096);
        assert!(a.iter().all(|x| (-1.0..=1.0).contains(x)));
        let energy: f32 = a.iter().map(|x| x * x).sum();
        assert!(energy > 100.0, "signal must carry energy, got {energy}");
    }

    #[test]
    fn audio_is_deterministic() {
        assert_eq!(audio(256), audio(256));
    }

    #[test]
    fn stereo_channels_differ_but_correlate() {
        let (l, r) = audio_stereo(1024);
        assert_eq!(l.len(), 1024);
        assert_eq!(r.len(), 1024);
        assert_ne!(l, r);
    }

    #[test]
    fn image_has_structure() {
        let img = test_image(64, 48);
        // Not constant: some spatial variance in each channel.
        let mut mins = [255u8; 3];
        let mut maxs = [0u8; 3];
        for y in 0..48 {
            for x in 0..64 {
                let p = img.pixel(x, y);
                for (c, v) in [p.0, p.1, p.2].into_iter().enumerate() {
                    mins[c] = mins[c].min(v);
                    maxs[c] = maxs[c].max(v);
                }
            }
        }
        for c in 0..3 {
            assert!(maxs[c] - mins[c] > 60, "channel {c} too flat");
        }
    }
}
