//! Uniform access to the six benchmarks for the experiment harnesses.

use cg_graph::NodeId;
use cg_runtime::{run, Program, SimConfig};
use commguard::graph as cg_graph;

use crate::beamformer::BeamformerApp;
use crate::complex_fir::ComplexFirApp;
use crate::fft_app::FftApp;
use crate::jpeg::JpegApp;
use crate::mp3::Mp3App;
use crate::vocoder::VocoderApp;

/// The paper's six benchmarks (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchApp {
    /// 4-sensor delay-and-sum beamformer.
    AudioBeamformer,
    /// 8-band analysis/synthesis vocoder.
    ChannelVocoder,
    /// Cascaded complex FIR filters.
    ComplexFir,
    /// 64-point radix-2 FFT pipeline.
    Fft,
    /// Block-DCT image decoder (Fig. 1 graph).
    Jpeg,
    /// MDCT subband audio decoder.
    Mp3,
}

impl BenchApp {
    /// All six, in the paper's listing order.
    pub fn all() -> [BenchApp; 6] {
        [
            BenchApp::AudioBeamformer,
            BenchApp::ChannelVocoder,
            BenchApp::ComplexFir,
            BenchApp::Fft,
            BenchApp::Jpeg,
            BenchApp::Mp3,
        ]
    }

    /// The benchmark's name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            BenchApp::AudioBeamformer => "audiobeamformer",
            BenchApp::ChannelVocoder => "channelvocoder",
            BenchApp::ComplexFir => "complex-fir",
            BenchApp::Fft => "fft",
            BenchApp::Jpeg => "jpeg",
            BenchApp::Mp3 => "mp3",
        }
    }
}

impl std::fmt::Display for BenchApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Workload size: quick sweeps vs. paper-scale runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Size {
    /// Small inputs for CI and quick sweeps.
    Small,
    /// Paper-scale inputs (640×480 jpeg, longer audio).
    Paper,
}

enum Inner {
    Beam(BeamformerApp),
    Voc(VocoderApp),
    Cfir(ComplexFirApp),
    Fft(FftApp),
    Jpeg(Box<JpegApp>),
    Mp3(Box<Mp3App>),
}

/// A prepared benchmark workload: input data, reference output, and a
/// factory for fresh [`Program`]s (each simulated run consumes one).
pub struct Workload {
    app: BenchApp,
    inner: Inner,
    /// Error-free sink stream, used as the SNR reference for the kernels.
    reference: Vec<u32>,
    sink: NodeId,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("app", &self.app.name())
            .field("frames", &self.frames())
            .finish()
    }
}

impl Workload {
    /// Prepares `app` at `size`, including its error-free reference run.
    pub fn new(app: BenchApp, size: Size) -> Self {
        let inner = match (app, size) {
            (BenchApp::AudioBeamformer, Size::Small) => Inner::Beam(BeamformerApp::new(2048)),
            (BenchApp::AudioBeamformer, Size::Paper) => Inner::Beam(BeamformerApp::new(16_384)),
            (BenchApp::ChannelVocoder, Size::Small) => Inner::Voc(VocoderApp::new(2048)),
            (BenchApp::ChannelVocoder, Size::Paper) => Inner::Voc(VocoderApp::new(16_384)),
            (BenchApp::ComplexFir, Size::Small) => Inner::Cfir(ComplexFirApp::new(2048)),
            (BenchApp::ComplexFir, Size::Paper) => Inner::Cfir(ComplexFirApp::new(16_384)),
            (BenchApp::Fft, Size::Small) => Inner::Fft(FftApp::new(64)),
            (BenchApp::Fft, Size::Paper) => Inner::Fft(FftApp::new(512)),
            (BenchApp::Jpeg, Size::Small) => Inner::Jpeg(Box::new(JpegApp::small())),
            (BenchApp::Jpeg, Size::Paper) => Inner::Jpeg(Box::new(JpegApp::paper())),
            (BenchApp::Mp3, Size::Small) => Inner::Mp3(Box::new(Mp3App::new(8192))),
            (BenchApp::Mp3, Size::Paper) => Inner::Mp3(Box::new(Mp3App::new(65_536))),
        };
        let mut w = Workload {
            app,
            inner,
            reference: Vec::new(),
            sink: NodeId::from_index(0),
        };
        let (program, sink) = w.build();
        w.sink = sink;
        let report = run(program, &SimConfig::error_free(w.frames()))
            .expect("error-free reference run must succeed");
        assert!(report.completed, "reference run did not complete");
        w.reference = report.sink_output(sink).to_vec();
        w
    }

    /// Which benchmark this is.
    pub fn app(&self) -> BenchApp {
        self.app
    }

    /// Steady iterations for a full run.
    pub fn frames(&self) -> u64 {
        match &self.inner {
            Inner::Beam(a) => a.frames(),
            Inner::Voc(a) => a.frames(),
            Inner::Cfir(a) => a.frames(),
            Inner::Fft(a) => a.frames(),
            Inner::Jpeg(a) => a.frames(),
            Inner::Mp3(a) => a.frames(),
        }
    }

    /// Builds a fresh program for one run; returns it with the sink id.
    pub fn build(&self) -> (Program, NodeId) {
        match &self.inner {
            Inner::Beam(a) => a.build(),
            Inner::Voc(a) => a.build(),
            Inner::Cfir(a) => a.build(),
            Inner::Fft(a) => a.build(),
            Inner::Jpeg(a) => a.build(),
            Inner::Mp3(a) => a.build(),
        }
    }

    /// The sink node.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// The error-free sink stream.
    pub fn reference(&self) -> &[u32] {
        &self.reference
    }

    /// Output quality of a sink stream in dB, with the paper's semantics:
    /// jpeg = PSNR vs. raw image, mp3 = SNR vs. raw PCM, kernels = SNR
    /// vs. the error-free output.
    pub fn quality_db(&self, sink_words: &[u32]) -> f64 {
        match &self.inner {
            Inner::Jpeg(a) => a.psnr(sink_words),
            Inner::Mp3(a) => a.snr(sink_words),
            Inner::Beam(_) | Inner::Voc(_) | Inner::Cfir(_) | Inner::Fft(_) => {
                let reference: Vec<f32> = self
                    .reference
                    .iter()
                    .map(|&w| f32::from_bits(w))
                    .map(sanitize)
                    .collect();
                let got: Vec<f32> = sink_words
                    .iter()
                    .map(|&w| f32::from_bits(w))
                    .map(sanitize)
                    .collect();
                cg_metrics::snr_f32(&reference, &got)
            }
        }
    }

    /// Quality of the error-free run itself: ∞ for the kernels, the
    /// algorithmic compression loss for jpeg/mp3.
    pub fn error_free_quality_db(&self) -> f64 {
        self.quality_db(&self.reference)
    }

    /// For jpeg only: the decoded image of a sink stream.
    pub fn decode_image(&self, sink_words: &[u32]) -> Option<cg_metrics::Image> {
        match &self.inner {
            Inner::Jpeg(a) => Some(a.decode(sink_words)),
            _ => None,
        }
    }
}

/// Clamps non-finite and out-of-range words so SNR stays defined.
/// The bound (±256) sits above every kernel's legitimate output range
/// (beamformer ±2, vocoder ±4, fir magnitudes ≤8, fft bins ≤128), so it
/// only limits the energy a corrupted exponent can contribute — the
/// same effect a fixed-point output stage has in the paper's codecs.
fn sanitize(v: f32) -> f32 {
    if v.is_finite() {
        v.clamp(-256.0, 256.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_apps_prepare_and_reference() {
        for app in BenchApp::all() {
            // Small-but-not-tiny: construction runs the reference itself.
            let w = match app {
                // Keep the heavier apps extra small in this smoke test.
                BenchApp::Jpeg | BenchApp::Mp3 => continue,
                _ => Workload::new(app, Size::Small),
            };
            assert!(!w.reference().is_empty(), "{app}: empty reference");
            assert!(w.frames() > 0);
            assert!(
                w.error_free_quality_db().is_infinite(),
                "{app}: kernel reference must match itself exactly"
            );
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = BenchApp::all().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "audiobeamformer",
                "channelvocoder",
                "complex-fir",
                "fft",
                "jpeg",
                "mp3"
            ]
        );
    }
}
