//! Minimal 16-bit PCM WAV output, so the audio experiments produce
//! listenable artifacts (the paper links example mp3 outputs for its
//! error rates; `results/*.wav` are ours).

use std::io::{self, Write};
use std::path::Path;

/// Writes interleaved stereo (or mono) f32 samples in [-1, 1] as a
/// 16-bit PCM WAV file.
///
/// # Errors
///
/// Propagates writer errors.
///
/// # Panics
///
/// Panics if `channels` is 0 or `samples.len()` is not a multiple of
/// `channels`.
pub fn write_wav<W: Write>(
    mut w: W,
    samples: &[f32],
    channels: u16,
    sample_rate: u32,
) -> io::Result<()> {
    assert!(channels > 0, "need at least one channel");
    assert_eq!(
        samples.len() % channels as usize,
        0,
        "sample count must be a multiple of the channel count"
    );
    let data_len = (samples.len() * 2) as u32;
    let byte_rate = sample_rate * u32::from(channels) * 2;
    let block_align = channels * 2;

    w.write_all(b"RIFF")?;
    w.write_all(&(36 + data_len).to_le_bytes())?;
    w.write_all(b"WAVE")?;
    w.write_all(b"fmt ")?;
    w.write_all(&16u32.to_le_bytes())?;
    w.write_all(&1u16.to_le_bytes())?; // PCM
    w.write_all(&channels.to_le_bytes())?;
    w.write_all(&sample_rate.to_le_bytes())?;
    w.write_all(&byte_rate.to_le_bytes())?;
    w.write_all(&block_align.to_le_bytes())?;
    w.write_all(&16u16.to_le_bytes())?; // bits per sample
    w.write_all(b"data")?;
    w.write_all(&data_len.to_le_bytes())?;
    for &s in samples {
        let v = if s.is_finite() {
            (s.clamp(-1.0, 1.0) * 32767.0) as i16
        } else {
            0
        };
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Writes a `.wav` file at `path`; see [`write_wav`].
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_wav(
    path: impl AsRef<Path>,
    samples: &[f32],
    channels: u16,
    sample_rate: u32,
) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_wav(io::BufWriter::new(f), samples, channels, sample_rate)
}

/// Interleaves two equal-length channels.
///
/// # Panics
///
/// Panics if the channel lengths differ.
pub fn interleave(left: &[f32], right: &[f32]) -> Vec<f32> {
    assert_eq!(left.len(), right.len(), "channel length mismatch");
    left.iter().zip(right).flat_map(|(&l, &r)| [l, r]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout_is_correct() {
        let mut buf = Vec::new();
        write_wav(&mut buf, &[0.0, 0.5, -0.5, 1.0], 2, 44_100).unwrap();
        assert_eq!(&buf[0..4], b"RIFF");
        assert_eq!(&buf[8..12], b"WAVE");
        assert_eq!(&buf[12..16], b"fmt ");
        assert_eq!(&buf[36..40], b"data");
        // 4 samples * 2 bytes.
        assert_eq!(u32::from_le_bytes(buf[40..44].try_into().unwrap()), 8);
        assert_eq!(buf.len(), 44 + 8);
        // Full-scale sample saturates to 32767.
        let last = i16::from_le_bytes(buf[buf.len() - 2..].try_into().unwrap());
        assert_eq!(last, 32767);
    }

    #[test]
    fn non_finite_samples_are_silenced() {
        let mut buf = Vec::new();
        write_wav(&mut buf, &[f32::NAN], 1, 8000).unwrap();
        let v = i16::from_le_bytes(buf[44..46].try_into().unwrap());
        assert_eq!(v, 0);
    }

    #[test]
    fn interleave_zips() {
        assert_eq!(
            interleave(&[1.0, 2.0], &[3.0, 4.0]),
            vec![1.0, 3.0, 2.0, 4.0]
        );
    }

    #[test]
    #[should_panic(expected = "multiple of the channel count")]
    fn odd_stereo_panics() {
        let mut buf = Vec::new();
        let _ = write_wav(&mut buf, &[0.0; 3], 2, 8000);
    }
}
