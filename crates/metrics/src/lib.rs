//! # cg-metrics — output-quality metrics and experiment statistics
//!
//! The paper measures lossiness with signal-to-noise ratio (SNR) for
//! audio and peak-SNR (PSNR) for images (§6), reporting means and
//! standard deviations over 5 seeded runs per configuration. This crate
//! provides those metrics, simple run statistics (mean/stddev/geomean),
//! and a tiny RGB image type with PPM/PGM output so experiment binaries
//! can write the Fig. 3/7/9 artifacts to disk.

mod image;
mod snr;
mod stats;
pub mod wav;

pub use image::Image;
pub use snr::{psnr_images, psnr_u8, snr_db, snr_f32};
pub use stats::{geometric_mean, mean, stddev, Summary};
