//! Small statistics helpers for experiment sweeps.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Geometric mean of positive values (the paper reports "GMean" columns);
/// 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is not positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Mean ± stddev over a sweep's repeated runs (the paper's 5-seed bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Sample count.
    pub n: usize,
}

impl Summary {
    /// Summarises a set of samples.
    pub fn of(xs: &[f64]) -> Self {
        Summary {
            mean: mean(xs),
            stddev: stddev(xs),
            n: xs.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2} (n={})", self.mean, self.stddev, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138).abs() < 1e-3);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geomean_known_value() {
        assert!((geometric_mean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn summary_display() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.n, 2);
        assert!(s.to_string().contains("±"));
    }
}
