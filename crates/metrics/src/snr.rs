//! Signal-to-noise metrics.

use crate::image::Image;

/// SNR in decibels between a reference signal and a degraded signal:
/// `10·log10(Σ ref² / Σ (ref − sig)²)`.
///
/// Returns `f64::INFINITY` for identical signals. Signals shorter or
/// longer than the reference are compared over the overlap, with missing
/// samples counted as maximal noise (a lost sample is an error, not a
/// free pass).
pub fn snr_f32(reference: &[f32], signal: &[f32]) -> f64 {
    let overlap = reference.len().min(signal.len());
    let mut sig_energy = 0.0f64;
    let mut noise_energy = 0.0f64;
    for i in 0..overlap {
        let r = f64::from(reference[i]);
        let d = r - f64::from(signal[i]);
        sig_energy += r * r;
        noise_energy += d * d;
    }
    // Missing tail: the full reference energy there is noise.
    for &r in &reference[overlap..] {
        let r = f64::from(r);
        sig_energy += r * r;
        noise_energy += r * r;
    }
    snr_db(sig_energy, noise_energy)
}

/// SNR in dB from raw energies.
pub fn snr_db(signal_energy: f64, noise_energy: f64) -> f64 {
    if noise_energy == 0.0 {
        return f64::INFINITY;
    }
    if signal_energy == 0.0 {
        return 0.0;
    }
    10.0 * (signal_energy / noise_energy).log10()
}

/// PSNR in decibels between 8-bit sample streams (peak = 255):
/// `10·log10(255² / MSE)`.
///
/// Length mismatches count missing samples as maximally wrong.
pub fn psnr_u8(reference: &[u8], signal: &[u8]) -> f64 {
    if reference.is_empty() {
        return f64::INFINITY;
    }
    let overlap = reference.len().min(signal.len());
    let mut se = 0.0f64;
    for i in 0..overlap {
        let d = f64::from(reference[i]) - f64::from(signal[i]);
        se += d * d;
    }
    se += 255.0 * 255.0 * (reference.len() - overlap) as f64;
    let mse = se / reference.len() as f64;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (255.0 * 255.0 / mse).log10()
}

/// PSNR between two images of equal dimensions.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn psnr_images(reference: &Image, signal: &Image) -> f64 {
    assert_eq!(
        (reference.width(), reference.height()),
        (signal.width(), signal.height()),
        "image dimensions must match"
    );
    psnr_u8(reference.data(), signal.data())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_are_infinite() {
        let x = [1.0f32, -2.0, 3.0];
        assert!(snr_f32(&x, &x).is_infinite());
        assert!(psnr_u8(&[1, 2, 3], &[1, 2, 3]).is_infinite());
    }

    #[test]
    fn known_snr_value() {
        // signal [3,4] energy 25; noise [0,5-4=..] pick signal [3,3]:
        // noise = (4-3)^2 = 1 → SNR = 10 log10(25) ≈ 13.979.
        let snr = snr_f32(&[3.0, 4.0], &[3.0, 3.0]);
        assert!((snr - 13.9794).abs() < 1e-3, "{snr}");
    }

    #[test]
    fn short_signal_counts_tail_as_noise() {
        let full = snr_f32(&[1.0, 1.0], &[1.0]);
        // Half the energy is noise → 10 log10(2/1) ≈ 3.0103.
        assert!((full - 3.0103).abs() < 1e-3, "{full}");
    }

    #[test]
    fn psnr_single_off_by_one() {
        // MSE = 1/3 → PSNR = 10 log10(65025 * 3) ≈ 52.9.
        let p = psnr_u8(&[10, 20, 30], &[10, 21, 30]);
        assert!((p - 52.90).abs() < 0.05, "{p}");
    }

    #[test]
    fn psnr_degrades_with_more_noise() {
        let reference = vec![128u8; 100];
        let mild: Vec<u8> = reference.iter().map(|&v| v + 1).collect();
        let harsh: Vec<u8> = reference.iter().map(|&v| v + 100).collect();
        assert!(psnr_u8(&reference, &mild) > psnr_u8(&reference, &harsh));
    }

    #[test]
    fn zero_signal_gives_zero_db() {
        assert_eq!(snr_db(0.0, 5.0), 0.0);
    }

    #[test]
    fn empty_reference_is_infinite() {
        assert!(psnr_u8(&[], &[]).is_infinite());
    }
}
