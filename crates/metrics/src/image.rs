//! A minimal interleaved-RGB image with PPM output.

use std::io::{self, Write};
use std::path::Path;

/// An 8-bit RGB image (row-major, interleaved R,G,B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Image {
    /// A black image of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            data: vec![0; width * height * 3],
        }
    }

    /// Wraps raw interleaved RGB data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height * 3`.
    pub fn from_rgb(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height * 3, "rgb buffer size mismatch");
        Image {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The interleaved RGB bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> (u8, u8, u8) {
        let i = (y * self.width + x) * 3;
        (self.data[i], self.data[i + 1], self.data[i + 2])
    }

    /// Writes pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set_pixel(&mut self, x: usize, y: usize, rgb: (u8, u8, u8)) {
        let i = (y * self.width + x) * 3;
        self.data[i] = rgb.0;
        self.data[i + 1] = rgb.1;
        self.data[i + 2] = rgb.2;
    }

    /// Serialises as binary PPM (P6).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_ppm<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        w.write_all(&self.data)
    }

    /// Writes a `.ppm` file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_ppm(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.write_ppm(io::BufWriter::new(f))
    }

    /// Parses a binary PPM (P6) produced by [`Image::write_ppm`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed headers or truncated payloads.
    pub fn read_ppm(bytes: &[u8]) -> io::Result<Self> {
        let header_err = || io::Error::new(io::ErrorKind::InvalidData, "bad ppm header");
        let mut fields = Vec::new();
        let mut pos = 0usize;
        // Collect 4 whitespace-separated header fields: P6, w, h, maxval.
        while fields.len() < 4 {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            let start = pos;
            while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if start == pos {
                return Err(header_err());
            }
            fields.push(&bytes[start..pos]);
        }
        pos += 1; // single whitespace after maxval
        if fields[0] != b"P6" {
            return Err(header_err());
        }
        let parse = |f: &[u8]| -> io::Result<usize> {
            std::str::from_utf8(f)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(header_err)
        };
        let (w, h) = (parse(fields[1])?, parse(fields[2])?);
        let need = w * h * 3;
        if bytes.len() < pos + need {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "short ppm"));
        }
        Ok(Image::from_rgb(w, h, bytes[pos..pos + need].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_roundtrip() {
        let mut img = Image::new(4, 3);
        img.set_pixel(2, 1, (10, 20, 30));
        assert_eq!(img.pixel(2, 1), (10, 20, 30));
        assert_eq!(img.pixel(0, 0), (0, 0, 0));
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
    }

    #[test]
    fn ppm_roundtrip() {
        let mut img = Image::new(2, 2);
        img.set_pixel(0, 0, (255, 0, 0));
        img.set_pixel(1, 1, (0, 0, 255));
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n2 2\n255\n"));
        let back = Image::read_ppm(&buf).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(Image::read_ppm(b"P5\n2 2\n255\nxxxx").is_err());
        assert!(Image::read_ppm(b"P6\n2 2\n255\nxx").is_err());
        assert!(Image::read_ppm(b"").is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = Image::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_buffer_panics() {
        let _ = Image::from_rgb(2, 2, vec![0; 5]);
    }
}
