//! The Header Inserter (paper §4.1).
//!
//! On the producer side of every queue, the HI inserts an ECC-protected
//! frame header carrying the `active-fc` value at the start of each frame
//! computation, and the special end-of-computation header when the
//! thread's outermost scope exits. The thread itself is oblivious to the
//! HI's actions.

use cg_queue::{FrameId, SimQueue, Unit};

use crate::subop::SubopCounters;

/// The Header Inserter guarding one outgoing queue.
///
/// Because a header insertion can meet a full queue, the HI keeps the
/// pending header and retries; the core's pushes for the new frame stall
/// behind it ([`HeaderInserter::is_clear`]), which is exactly the
/// frame-boundary serialisation the paper accounts for in §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeaderInserter {
    pending: Option<FrameId>,
}

impl HeaderInserter {
    /// A fresh HI with no pending header.
    pub fn new() -> Self {
        HeaderInserter::default()
    }

    /// Queues the header for frame `fc` for insertion (`prepare-header` +
    /// `compute-ECC` suboperations).
    ///
    /// # Panics
    ///
    /// Panics if a previous header is still pending — the runtime must
    /// drain the HI (via [`HeaderInserter::tick`]) before the next
    /// boundary, which the frame structure guarantees.
    pub fn begin_frame(&mut self, fc: FrameId, sub: &mut SubopCounters) {
        assert!(
            self.pending.is_none(),
            "frame boundary reached with a header still pending"
        );
        sub.prepare_header_ops += 1;
        sub.counter_ops += 1; // read active-fc
        sub.ecc_ops += 1; // compute-ECC for the header
        sub.header_bit_ops += 1; // set header-bit
        self.pending = Some(fc);
    }

    /// Queues the end-of-computation header.
    pub fn begin_end(&mut self, sub: &mut SubopCounters) {
        self.begin_frame(cg_queue::END_FRAME_ID, sub);
    }

    /// Attempts to push the pending header; returns `true` when the HI is
    /// clear (nothing pending, or the push succeeded).
    pub fn tick(&mut self, q: &mut SimQueue, sub: &mut SubopCounters) -> bool {
        match self.pending {
            None => true,
            Some(fc) => {
                sub.fsm_ops += 1; // FSM-update per out-queue (Table 2).
                if q.try_push(Unit::header(fc)).is_ok() {
                    self.pending = None;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Forces the pending header into the queue past a full condition
    /// (queue-manager timeout path), overwriting unconsumed data.
    pub fn force(&mut self, q: &mut SimQueue, sub: &mut SubopCounters) {
        if let Some(fc) = self.pending.take() {
            sub.fsm_ops += 1;
            q.timeout_push(Unit::header(fc));
        }
    }

    /// `true` when no header is awaiting insertion.
    pub fn is_clear(&self) -> bool {
        self.pending.is_none()
    }

    /// The frame id awaiting insertion, if any.
    pub fn pending(&self) -> Option<FrameId> {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_queue::{PointerMode, QueueSpec};

    fn queue(cap: usize) -> SimQueue {
        SimQueue::new(QueueSpec {
            capacity: cap,
            workset_size: (cap / 8).max(1),
            pointer_mode: PointerMode::Ecc,
        })
    }

    #[test]
    fn inserts_header_with_frame_id() {
        let mut q = queue(64);
        let mut hi = HeaderInserter::new();
        let mut sub = SubopCounters::default();
        hi.begin_frame(7, &mut sub);
        assert!(!hi.is_clear());
        assert!(hi.tick(&mut q, &mut sub));
        assert!(hi.is_clear());
        q.flush();
        assert_eq!(q.try_pop().unwrap().header_id(), Some(7));
        assert_eq!(sub.prepare_header_ops, 1);
        assert_eq!(sub.ecc_ops, 1);
    }

    #[test]
    fn retries_on_full_queue() {
        let mut q = queue(8);
        for i in 0..8u32 {
            q.try_push(Unit::Item(i)).unwrap();
        }
        let mut hi = HeaderInserter::new();
        let mut sub = SubopCounters::default();
        hi.begin_frame(1, &mut sub);
        assert!(!hi.tick(&mut q, &mut sub), "queue full, header pends");
        // Drain one full workset so the producer sees room.
        let _ = q.try_pop();
        assert!(hi.tick(&mut q, &mut sub));
    }

    #[test]
    fn end_header_uses_reserved_id() {
        let mut q = queue(64);
        let mut hi = HeaderInserter::new();
        let mut sub = SubopCounters::default();
        hi.begin_end(&mut sub);
        assert!(hi.tick(&mut q, &mut sub));
        q.flush();
        assert_eq!(
            q.try_pop().unwrap().header_id(),
            Some(cg_queue::END_FRAME_ID)
        );
    }

    #[test]
    #[should_panic(expected = "still pending")]
    fn double_begin_panics() {
        let mut hi = HeaderInserter::new();
        let mut sub = SubopCounters::default();
        hi.begin_frame(1, &mut sub);
        hi.begin_frame(2, &mut sub);
    }
}
