//! The Header Inserter (paper §4.1).
//!
//! On the producer side of every queue, the HI inserts an ECC-protected
//! frame header carrying the `active-fc` value at the start of each frame
//! computation, and the special end-of-computation header when the
//! thread's outermost scope exits. The thread itself is oblivious to the
//! HI's actions.

use cg_queue::{FrameId, SimQueue, Unit};

use crate::harden::Hardened;
use crate::subop::SubopCounters;

/// The Header Inserter guarding one outgoing queue.
///
/// Because a header insertion can meet a full queue, the HI keeps the
/// pending header and retries; the core's pushes for the new frame stall
/// behind it ([`HeaderInserter::is_clear`]), which is exactly the
/// frame-boundary serialisation the paper accounts for in §5.3.
/// The pending slot is soft state held across queue-full retries, so it
/// is stored in [`Hardened`] triplicate (see [`crate::harden`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeaderInserter {
    pending: Hardened<Option<FrameId>>,
}

impl HeaderInserter {
    /// A fresh HI with no pending header.
    pub fn new() -> Self {
        HeaderInserter::default()
    }

    /// Queues the header for frame `fc` for insertion (`prepare-header` +
    /// `compute-ECC` suboperations).
    ///
    /// The frame protocol drains the HI (via [`HeaderInserter::tick`] or
    /// [`HeaderInserter::force`]) before every boundary, so the pending
    /// slot must be clear here. A majority-`Some` at this point can only
    /// be forged guard-state corruption (two replica strikes between
    /// scrubs outvote the truth); the phantom header is discarded and
    /// counted as a detected-and-corrected corruption — turning it into
    /// an abort would let a double strike kill the whole run.
    pub fn begin_frame(&mut self, fc: FrameId, sub: &mut SubopCounters) {
        if self.pending.scrub(sub).is_some() {
            sub.guard_state_detected += 1;
            sub.guard_state_corrected += 1;
            self.pending.set(None);
        }
        sub.prepare_header_ops += 1;
        sub.counter_ops += 1; // read active-fc
        sub.ecc_ops += 1; // compute-ECC for the header
        sub.header_bit_ops += 1; // set header-bit
        self.pending.set(Some(fc));
    }

    /// Queues the end-of-computation header.
    pub fn begin_end(&mut self, sub: &mut SubopCounters) {
        self.begin_frame(cg_queue::END_FRAME_ID, sub);
    }

    /// Attempts to push the pending header; returns `true` when the HI is
    /// clear (nothing pending, or the push succeeded).
    pub fn tick(&mut self, q: &mut SimQueue, sub: &mut SubopCounters) -> bool {
        match self.pending.scrub(sub) {
            None => true,
            Some(fc) => {
                sub.fsm_ops += 1; // FSM-update per out-queue (Table 2).
                if q.try_push(Unit::header(fc)).is_ok() {
                    self.pending.set(None);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Forces the pending header into the queue past a full condition
    /// (queue-manager timeout path), overwriting unconsumed data.
    pub fn force(&mut self, q: &mut SimQueue, sub: &mut SubopCounters) {
        if let Some(fc) = self.pending.scrub(sub) {
            self.pending.set(None);
            sub.fsm_ops += 1;
            q.timeout_push(Unit::header(fc));
        }
    }

    /// Majority-votes and heals the pending-slot replicas.
    pub fn heal(&mut self, sub: &mut SubopCounters) {
        self.pending.scrub(sub);
    }

    /// Fault-injection hook: corrupts one replica of the pending slot.
    pub fn corrupt_replica(&mut self, idx: usize, v: Option<FrameId>) {
        self.pending.corrupt_replica(idx, v);
    }

    /// `true` when no header is awaiting insertion.
    pub fn is_clear(&self) -> bool {
        self.pending.peek().is_none()
    }

    /// The frame id awaiting insertion, if any.
    pub fn pending(&self) -> Option<FrameId> {
        self.pending.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_queue::{PointerMode, QueueSpec};

    fn queue(cap: usize) -> SimQueue {
        SimQueue::new(QueueSpec {
            capacity: cap,
            workset_size: (cap / 8).max(1),
            pointer_mode: PointerMode::Ecc,
        })
    }

    #[test]
    fn inserts_header_with_frame_id() {
        let mut q = queue(64);
        let mut hi = HeaderInserter::new();
        let mut sub = SubopCounters::default();
        hi.begin_frame(7, &mut sub);
        assert!(!hi.is_clear());
        assert!(hi.tick(&mut q, &mut sub));
        assert!(hi.is_clear());
        q.flush();
        assert_eq!(q.try_pop().unwrap().header_id(), Some(7));
        assert_eq!(sub.prepare_header_ops, 1);
        assert_eq!(sub.ecc_ops, 1);
    }

    #[test]
    fn retries_on_full_queue() {
        let mut q = queue(8);
        for i in 0..8u32 {
            q.try_push(Unit::Item(i)).unwrap();
        }
        let mut hi = HeaderInserter::new();
        let mut sub = SubopCounters::default();
        hi.begin_frame(1, &mut sub);
        assert!(!hi.tick(&mut q, &mut sub), "queue full, header pends");
        // Drain one full workset so the producer sees room.
        let _ = q.try_pop();
        assert!(hi.tick(&mut q, &mut sub));
    }

    #[test]
    fn end_header_uses_reserved_id() {
        let mut q = queue(64);
        let mut hi = HeaderInserter::new();
        let mut sub = SubopCounters::default();
        hi.begin_end(&mut sub);
        assert!(hi.tick(&mut q, &mut sub));
        q.flush();
        assert_eq!(
            q.try_pop().unwrap().header_id(),
            Some(cg_queue::END_FRAME_ID)
        );
    }

    #[test]
    fn stale_pending_at_begin_is_discarded_as_corruption() {
        // The protocol always drains before the next begin, so a pending
        // header here can only be a forged majority; it must be dropped
        // and counted, never pushed and never turned into a panic.
        let mut hi = HeaderInserter::new();
        let mut sub = SubopCounters::default();
        hi.begin_frame(1, &mut sub);
        hi.begin_frame(2, &mut sub);
        assert_eq!(hi.pending(), Some(2));
        assert_eq!(sub.guard_state_detected, 1);
        assert_eq!(sub.guard_state_corrected, 1);
        let mut q = queue(64);
        assert!(hi.tick(&mut q, &mut sub));
        q.flush();
        assert_eq!(q.try_pop().unwrap().header_id(), Some(2));
        assert!(q.try_pop().is_none(), "the stale header must not appear");
    }

    #[test]
    fn forged_majority_pending_cannot_abort_the_frame() {
        // Two strikes on different replicas with the same value defeat the
        // majority vote; begin_frame must absorb the forgery.
        let mut hi = HeaderInserter::new();
        let mut sub = SubopCounters::default();
        hi.corrupt_replica(0, Some(9));
        hi.corrupt_replica(1, Some(9));
        hi.begin_frame(3, &mut sub);
        assert_eq!(hi.pending(), Some(3));
        // One detection from the scrub (the outvoted honest replica) plus
        // one from the protocol check that drops the phantom header.
        assert_eq!(sub.guard_state_detected, 2);
        assert_eq!(sub.guard_state_corrected, 2);
    }
}
