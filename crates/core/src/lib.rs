//! # commguard — FSM-based guards for error-prone parallel communication
//!
//! A full reproduction of **"CommGuard: Mitigating Communication Errors in
//! Error-Prone Parallel Execution"** (Yetim, Malik, Martonosi — ASPLOS
//! 2015). CommGuard converts potentially *catastrophic* communication and
//! control-flow errors between error-prone processor cores into ordinary,
//! often tolerable, *data* errors, by keeping each consumer's control flow
//! semantically aligned with the data arriving on its queues.
//!
//! Per core, CommGuard adds three small fully-reliable modules:
//!
//! * [`HeaderInserter`] — stamps every outgoing queue with an
//!   ECC-protected frame header at each frame-computation boundary (§4.1);
//! * [`AlignmentManager`] — the five-state FSM of the paper's Table 1
//!   that checks every pop against the expected frame and **discards** or
//!   **pads** items to restore alignment (§4.2);
//! * the queue-manager policy ([`qm`]) layering CommGuard's accounting and
//!   timeout behaviour over the [`cg_queue::SimQueue`] substrate (§4.3).
//!
//! [`CoreGuard`] bundles the modules for one core, and
//! [`Protection`] selects the evaluation configurations of the paper's
//! Fig. 3 (unprotected / reliable-queue / CommGuard).
//!
//! The substrate crates are re-exported for convenience: [`ecc`],
//! [`fault`], [`graph`], and [`queue`].
//!
//! ```
//! use commguard::{AlignmentManager, AmState, PadPolicy, SubopCounters};
//! use commguard::queue::{QueueSpec, SimQueue, Unit};
//!
//! // A producer inserts a header, then two items of frame 0.
//! let mut q = SimQueue::new(QueueSpec::with_capacity(64));
//! q.try_push(Unit::header(0)).unwrap();
//! q.try_push(Unit::Item(10)).unwrap();
//! q.try_push(Unit::Item(11)).unwrap();
//! q.flush();
//!
//! // The consumer-side AM delivers the aligned items.
//! let mut sub = SubopCounters::default();
//! let mut am = AlignmentManager::new(PadPolicy::Zero);
//! am.new_frame_computation(0, &mut sub);
//! assert_eq!(am.pop(&mut q, &mut sub), Some(10));
//! assert_eq!(am.pop(&mut q, &mut sub), Some(11));
//! assert_eq!(am.state(), AmState::RcvCmp);
//! ```

pub mod align;
pub mod analysis;
pub mod config;
pub mod fc;
pub mod guard;
pub mod harden;
pub mod hi;
pub mod qit;
pub mod qm;
pub mod subop;

pub use align::{AlignmentManager, AmState, PadPolicy};
pub use analysis::{analyze, unguarded_stream_reliability, Reliability};
pub use config::Protection;
pub use fc::{ActiveFc, FrameScale};
pub use guard::CoreGuard;
pub use harden::Hardened;
pub use hi::HeaderInserter;
pub use qit::Qit;
pub use subop::{RealignEvent, RealignKind, SubopCounters};

// Substrate re-exports.
pub use cg_ecc as ecc;
pub use cg_fault as fault;
pub use cg_graph as graph;
pub use cg_queue as queue;
