//! The Alignment Manager — the five-state FSM of the paper's Table 1.
//!
//! One AM guards one incoming queue of one consumer core. It observes two
//! event streams: the local thread's frame-computation boundaries
//! (delivered by the PPU protection module via
//! [`AlignmentManager::new_frame_computation`]) and the units popped from
//! the queue. Whenever the two disagree — an item where a header was
//! expected, a header from the past or the future — the AM repairs
//! alignment by **discarding** queued data (communication realignment) or
//! **padding** the thread's pops (computation realignment), so that every
//! new frame starts aligned and error effects stay ephemeral.

use cg_queue::{FrameId, SimQueue, Unit};

use crate::harden::Hardened;
use crate::subop::{RealignKind, SubopCounters};

/// AM FSM states (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmState {
    /// Receiving and computing on items for the active frame computation.
    RcvCmp,
    /// A new frame computation has started; the next unit from the queue
    /// should be the matching frame header.
    ExpHdr,
    /// Discarding whole frames from the queue (alignment error
    /// `AE_FE`: extra frames).
    DiscFr,
    /// Discarding items *and* frames from the queue (`AE_IE`, `AE_FE`).
    Disc,
    /// Padding the thread's pops for lost data (`AE_IL`, `AE_FL`); holds
    /// the future header that will end the episode.
    Pdg,
}

/// What the AM fabricates while padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PadPolicy {
    /// Respond to padded pops with 0 (the paper's Table 2 behaviour).
    #[default]
    Zero,
    /// Respond with the last successfully delivered item — an ablation
    /// that often improves output quality for smooth signals.
    RepeatLast,
}

/// Classification of a popped unit relative to the local `active-fc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeaderClass {
    Correct,
    Past,
    Future(FrameId),
}

/// The Alignment Manager for one incoming queue.
///
/// All three soft FSM fields (`state`, `active_fc`, `held`) are stored in
/// [`Hardened`] triplicate and voted/healed at every FSM event entry
/// point, so single-replica strikes cannot silently derail alignment
/// (see [`crate::harden`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignmentManager {
    state: Hardened<AmState>,
    active_fc: Hardened<FrameId>,
    /// Future header held while padding.
    held: Hardened<Option<FrameId>>,
    policy: PadPolicy,
    last_value: u32,
}

impl AlignmentManager {
    /// A fresh AM: the thread is about to begin frame 0 and expects that
    /// frame's header first.
    pub fn new(policy: PadPolicy) -> Self {
        AlignmentManager {
            state: Hardened::new(AmState::ExpHdr),
            active_fc: Hardened::new(0),
            held: Hardened::new(None),
            policy,
            last_value: 0,
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> AmState {
        self.state.peek()
    }

    /// The frame the local thread is currently computing.
    pub fn active_fc(&self) -> FrameId {
        self.active_fc.peek()
    }

    /// Majority-votes and heals all hardened FSM fields.
    pub fn heal(&mut self, sub: &mut SubopCounters) {
        self.state.scrub(sub);
        self.active_fc.scrub(sub);
        self.held.scrub(sub);
    }

    /// Fault-injection hook: corrupts one replica of one FSM field,
    /// selected by `selector` (field = selector % 3, replica = selector / 3).
    pub fn corrupt_replica(&mut self, selector: u64) {
        let idx = (selector / 3) as usize;
        match selector % 3 {
            0 => {
                let flipped = match self.state.peek() {
                    AmState::RcvCmp => AmState::ExpHdr,
                    _ => AmState::RcvCmp,
                };
                self.state.corrupt_replica(idx, flipped);
            }
            1 => {
                let v = self.active_fc.peek() ^ 1;
                self.active_fc.corrupt_replica(idx, v);
            }
            _ => {
                let v = match self.held.peek() {
                    None => Some(1),
                    Some(h) => Some(h ^ 1),
                };
                self.held.corrupt_replica(idx, v);
            }
        }
    }

    /// Handles the "new frame computation started" event: the PPU
    /// protection module has advanced the thread's `active-fc` to `fc`.
    pub fn new_frame_computation(&mut self, fc: FrameId, sub: &mut SubopCounters) {
        self.heal(sub);
        sub.fsm_ops += 1;
        sub.counter_ops += 1;
        self.active_fc.set(fc);
        let next = match self.state.peek() {
            AmState::RcvCmp => AmState::ExpHdr,
            // Rolled over again without ever finding the previous header:
            // keep expecting (the old target is now simply "past").
            AmState::ExpHdr => AmState::ExpHdr,
            // Still discarding towards the (new) frame boundary.
            AmState::DiscFr => AmState::DiscFr,
            AmState::Disc => AmState::Disc,
            AmState::Pdg => match self.held.peek() {
                // "New frame computation matched header" → resume.
                Some(h) if h == fc => {
                    self.held.set(None);
                    AmState::RcvCmp
                }
                // Local computation overshot the held header: the queued
                // data following it is stale; discard to the boundary.
                Some(h) if h < fc && h != cg_queue::END_FRAME_ID => {
                    self.held.set(None);
                    sub.record_event(fc, RealignKind::Discard);
                    AmState::DiscFr
                }
                _ => AmState::Pdg,
            },
        };
        self.state.set(next);
    }

    /// Handles one pop request from the local thread.
    ///
    /// Returns the delivered item — real, or fabricated per the
    /// [`PadPolicy`] while padding — or `None` when the queue has nothing
    /// visible and the thread must block (the FSM state is preserved so
    /// the request can simply be retried).
    pub fn pop(&mut self, q: &mut SimQueue, sub: &mut SubopCounters) -> Option<u32> {
        self.heal(sub);
        sub.fsm_ops += 1; // FSM-check on every pop request (Table 2).
        if self.state.peek() == AmState::Pdg {
            return Some(self.pad(sub));
        }
        // Defensive bound on the discard loop: even a queue flooded by
        // corrupted (unprotected) pointer state cannot wedge the AM in a
        // single pop request; the request yields and retries instead.
        let mut budget = 1u32 << 20;
        loop {
            budget = budget.checked_sub(1)?;
            let unit = q.try_pop()?;
            sub.header_bit_ops += 1; // is-header test on every unit.
            match unit {
                Unit::Item(v) => match self.state.peek() {
                    AmState::RcvCmp => {
                        sub.accepted_items += 1;
                        self.last_value = v;
                        return Some(v);
                    }
                    AmState::ExpHdr => {
                        // "Received item" in ExpHdr → DiscFr.
                        sub.fsm_ops += 1; // FSM-update (Table 2 loop)
                        self.state.set(AmState::DiscFr);
                        sub.record_event(self.active_fc.peek(), RealignKind::Discard);
                        sub.discarded_items += 1;
                    }
                    AmState::DiscFr | AmState::Disc => {
                        sub.fsm_ops += 1;
                        sub.discarded_items += 1;
                    }
                    AmState::Pdg => unreachable!("Pdg returns before the pop loop"),
                },
                Unit::Header(_) => {
                    sub.fsm_ops += 1; // FSM-check/update for the header
                    sub.ecc_ops += 1; // check-ECC for header (Table 2).
                    let class = self.classify(&unit);
                    match (self.state.peek(), class) {
                        // --- RcvCmp row of Table 1 ---
                        (AmState::RcvCmp, HeaderClass::Future(h)) => {
                            self.enter_padding(h, sub);
                            return Some(self.pad(sub));
                        }
                        (AmState::RcvCmp, _) => {
                            // Past header (a correct id mid-frame is a
                            // producer restart — equally "past").
                            self.state.set(AmState::Disc);
                            sub.record_event(self.active_fc.peek(), RealignKind::Discard);
                            sub.discarded_headers += 1;
                        }
                        // --- ExpHdr row ---
                        (AmState::ExpHdr, HeaderClass::Correct) => {
                            self.state.set(AmState::RcvCmp);
                            // Header consumed; loop on to fetch the item.
                        }
                        (AmState::ExpHdr, HeaderClass::Past) => {
                            self.state.set(AmState::DiscFr);
                            sub.record_event(self.active_fc.peek(), RealignKind::Discard);
                            sub.discarded_headers += 1;
                        }
                        (AmState::ExpHdr, HeaderClass::Future(h)) => {
                            self.enter_padding(h, sub);
                            return Some(self.pad(sub));
                        }
                        // --- DiscFr row ---
                        (AmState::DiscFr, HeaderClass::Correct) => {
                            self.state.set(AmState::RcvCmp);
                        }
                        (AmState::DiscFr, HeaderClass::Future(h)) => {
                            self.enter_padding(h, sub);
                            return Some(self.pad(sub));
                        }
                        (AmState::DiscFr, HeaderClass::Past) => {
                            sub.discarded_headers += 1;
                        }
                        // --- Disc row: only a future header exits ---
                        (AmState::Disc, HeaderClass::Future(h)) => {
                            self.enter_padding(h, sub);
                            return Some(self.pad(sub));
                        }
                        (AmState::Disc, _) => {
                            sub.discarded_headers += 1;
                        }
                        (AmState::Pdg, _) => {
                            unreachable!("Pdg returns before the pop loop")
                        }
                    }
                }
            }
        }
    }

    /// Bulk-accepts up to `max` items while the FSM is receiving
    /// (`RcvCmp`), appending them to `out` through the queue's zero-copy
    /// item path. Returns `(delivered, more)`: `more` is `true` when the
    /// caller must continue with per-unit [`Self::pop`] calls — the FSM is
    /// not receiving, or a header is queued and needs the full FSM walk.
    /// `more == false` with a short count means the queue has nothing
    /// visible (block and retry), and the one failed per-unit attempt the
    /// scalar loop would have made has already been accounted.
    ///
    /// Counter contract (bit-exact vs. a loop of `pop`): each delivered
    /// item costs one FSM check (`fsm_ops`), one is-header test
    /// (`header_bit_ops`) and one accepted item, exactly as the per-unit
    /// path; the hardened fields are healed once up front instead of once
    /// per pop, which is counter-identical because scrubbing an
    /// already-clean field counts nothing (see `crate::harden`) and any
    /// pre-existing strike is repaired — and counted — by the first heal
    /// on either path.
    pub fn pop_run(
        &mut self,
        q: &mut SimQueue,
        out: &mut Vec<u32>,
        max: usize,
        sub: &mut SubopCounters,
    ) -> (usize, bool) {
        self.heal(sub);
        if self.state.peek() != AmState::RcvCmp || max == 0 {
            return (0, true);
        }
        let start = out.len();
        let (n, hit_header) = q.pop_items(out, max);
        sub.fsm_ops += n as u64; // FSM-check per pop request (Table 2).
        sub.header_bit_ops += n as u64; // is-header test per unit.
        sub.accepted_items += n as u64;
        if n > 0 {
            self.last_value = out[start + n - 1];
        }
        if hit_header {
            return (n, true);
        }
        if n < max {
            // Queue dry: the per-unit loop would have made one more pop
            // attempt — heal, FSM check, then a failed `try_pop` (already
            // counted by `pop_items` as the blocked pop + refresh).
            self.heal(sub);
            sub.fsm_ops += 1;
        }
        (n, false)
    }

    /// Classifies a header against the local `active-fc`. Headers whose
    /// ECC detects uncorrectable corruption are conservatively treated as
    /// past (forcing a discard-realign rather than trusting a bogus id).
    fn classify(&self, unit: &Unit) -> HeaderClass {
        let active = self.active_fc.peek();
        match unit.header_id() {
            None => HeaderClass::Past,
            Some(id) if id == active => HeaderClass::Correct,
            Some(id) if id > active => HeaderClass::Future(id),
            Some(_) => HeaderClass::Past,
        }
    }

    fn enter_padding(&mut self, held: FrameId, sub: &mut SubopCounters) {
        self.state.set(AmState::Pdg);
        self.held.set(Some(held));
        sub.record_event(self.active_fc.peek(), RealignKind::Pad);
    }

    fn pad(&mut self, sub: &mut SubopCounters) -> u32 {
        sub.padded_items += 1;
        match self.policy {
            PadPolicy::Zero => 0,
            PadPolicy::RepeatLast => self.last_value,
        }
    }
}

impl Default for AlignmentManager {
    fn default() -> Self {
        AlignmentManager::new(PadPolicy::Zero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_queue::{QueueSpec, END_FRAME_ID};

    fn queue() -> SimQueue {
        SimQueue::new(QueueSpec {
            capacity: 256,
            workset_size: 32,
            pointer_mode: cg_queue::PointerMode::Ecc,
        })
    }

    fn push_frame(q: &mut SimQueue, id: FrameId, items: &[u32]) {
        q.try_push(Unit::header(id)).unwrap();
        for &v in items {
            q.try_push(Unit::Item(v)).unwrap();
        }
        q.flush();
    }

    /// Drives a well-formed stream through the AM: nothing realigns.
    #[test]
    fn aligned_stream_passes_through() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        for frame in 0..4u32 {
            push_frame(&mut q, frame, &[frame * 10, frame * 10 + 1]);
        }
        for frame in 0..4u32 {
            if frame > 0 {
                am.new_frame_computation(frame, &mut sub);
            }
            assert_eq!(am.pop(&mut q, &mut sub), Some(frame * 10));
            assert_eq!(am.pop(&mut q, &mut sub), Some(frame * 10 + 1));
            assert_eq!(am.state(), AmState::RcvCmp);
        }
        assert_eq!(sub.padded_items, 0);
        assert_eq!(sub.discarded_items, 0);
        assert_eq!(sub.accepted_items, 8);
    }

    /// Table 1, RcvCmp row: a future header mid-frame → Pdg, pops padded,
    /// realignment completes at the matching boundary.
    #[test]
    fn rcvcmp_future_header_pads_lost_items() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        // Frame 0 lost its second item; frame 1 follows immediately.
        push_frame(&mut q, 0, &[10]);
        push_frame(&mut q, 1, &[20, 21]);
        assert_eq!(am.pop(&mut q, &mut sub), Some(10));
        // Second pop of frame 0 meets header 1 (future) → pad.
        assert_eq!(am.pop(&mut q, &mut sub), Some(0));
        assert_eq!(am.state(), AmState::Pdg);
        // Boundary: matches held header → RcvCmp, frame 1 delivered.
        am.new_frame_computation(1, &mut sub);
        assert_eq!(am.state(), AmState::RcvCmp);
        assert_eq!(am.pop(&mut q, &mut sub), Some(20));
        assert_eq!(am.pop(&mut q, &mut sub), Some(21));
        assert_eq!(sub.padded_items, 1);
        assert_eq!(sub.pad_events, 1);
    }

    /// Table 1, RcvCmp row: a past header mid-frame → Disc until a future
    /// header appears.
    #[test]
    fn rcvcmp_past_header_discards() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        push_frame(&mut q, 0, &[10]);
        // Producer erroneously restarts frame 0 with stale items.
        push_frame(&mut q, 0, &[66, 67]);
        push_frame(&mut q, 1, &[20]);
        assert_eq!(am.pop(&mut q, &mut sub), Some(10));
        // Pop 2 of frame 0: header 0 again (past) → Disc → discards 66,67
        // → header 1 (future) → Pdg → pad.
        assert_eq!(am.pop(&mut q, &mut sub), Some(0));
        assert_eq!(am.state(), AmState::Pdg);
        assert_eq!(sub.discarded_items, 2);
        am.new_frame_computation(1, &mut sub);
        assert_eq!(am.pop(&mut q, &mut sub), Some(20));
    }

    /// Table 1, ExpHdr row: an item instead of a header → DiscFr, then the
    /// correct header resumes delivery.
    #[test]
    fn exphdr_item_discards_to_boundary() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        // Stray items precede the frame-0 header (producer pushed extra).
        q.try_push(Unit::Item(99)).unwrap();
        q.try_push(Unit::Item(98)).unwrap();
        q.flush();
        push_frame(&mut q, 0, &[10, 11]);
        assert_eq!(am.pop(&mut q, &mut sub), Some(10));
        assert_eq!(sub.discarded_items, 2);
        assert_eq!(am.pop(&mut q, &mut sub), Some(11));
        assert_eq!(am.state(), AmState::RcvCmp);
    }

    /// Table 1, ExpHdr row: a past header → DiscFr (whole stale frame
    /// dropped), correct header resumes.
    #[test]
    fn exphdr_past_header_discards_frame() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        push_frame(&mut q, 0, &[10]);
        // Duplicate stale frame 0 arrives where frame 1 should be.
        push_frame(&mut q, 0, &[55]);
        push_frame(&mut q, 1, &[20]);
        assert_eq!(am.pop(&mut q, &mut sub), Some(10));
        am.new_frame_computation(1, &mut sub);
        assert_eq!(am.state(), AmState::ExpHdr);
        assert_eq!(am.pop(&mut q, &mut sub), Some(20));
        assert_eq!(sub.discarded_items, 1);
        assert_eq!(sub.discarded_headers, 1);
    }

    /// Table 1, ExpHdr row: a future header → Pdg until the thread catches
    /// up (an entire frame of this queue was lost).
    #[test]
    fn exphdr_future_header_pads_whole_frame() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        push_frame(&mut q, 0, &[10]);
        // Frame 1 never arrives; frame 2 follows.
        push_frame(&mut q, 2, &[30]);
        assert_eq!(am.pop(&mut q, &mut sub), Some(10));
        am.new_frame_computation(1, &mut sub);
        // Frame 1's pop hits header 2 → pad.
        assert_eq!(am.pop(&mut q, &mut sub), Some(0));
        assert_eq!(am.state(), AmState::Pdg);
        am.new_frame_computation(2, &mut sub);
        assert_eq!(am.state(), AmState::RcvCmp);
        assert_eq!(am.pop(&mut q, &mut sub), Some(30));
    }

    /// Pdg row: boundaries that do not match the held header keep padding.
    #[test]
    fn padding_persists_until_match() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        push_frame(&mut q, 0, &[10]);
        push_frame(&mut q, 3, &[40]);
        assert_eq!(am.pop(&mut q, &mut sub), Some(10));
        am.new_frame_computation(1, &mut sub);
        assert_eq!(am.pop(&mut q, &mut sub), Some(0));
        am.new_frame_computation(2, &mut sub);
        assert_eq!(am.state(), AmState::Pdg);
        assert_eq!(am.pop(&mut q, &mut sub), Some(0));
        am.new_frame_computation(3, &mut sub);
        assert_eq!(am.state(), AmState::RcvCmp);
        assert_eq!(am.pop(&mut q, &mut sub), Some(40));
    }

    /// The end-of-computation header is always "future": the consumer pads
    /// until its own computation ends.
    #[test]
    fn end_header_pads_forever() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        push_frame(&mut q, 0, &[10]);
        q.try_push(Unit::end_header()).unwrap();
        q.flush();
        assert_eq!(am.pop(&mut q, &mut sub), Some(10));
        assert_eq!(am.pop(&mut q, &mut sub), Some(0));
        assert_eq!(am.state(), AmState::Pdg);
        for fc in 1..5 {
            am.new_frame_computation(fc, &mut sub);
            assert_eq!(am.state(), AmState::Pdg);
            assert_eq!(am.pop(&mut q, &mut sub), Some(0));
        }
        let _ = END_FRAME_ID;
    }

    /// Blocking: an empty queue returns `None` and preserves state.
    #[test]
    fn empty_queue_blocks_without_state_change() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        assert_eq!(am.pop(&mut q, &mut sub), None);
        assert_eq!(am.state(), AmState::ExpHdr);
        push_frame(&mut q, 0, &[7]);
        assert_eq!(am.pop(&mut q, &mut sub), Some(7));
    }

    /// A header consumed just before the queue drains is not lost: the
    /// FSM remembers it crossed into RcvCmp.
    #[test]
    fn partial_progress_across_blocking() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        q.try_push(Unit::header(0)).unwrap();
        q.flush();
        assert_eq!(am.pop(&mut q, &mut sub), None, "header eaten, no item yet");
        assert_eq!(am.state(), AmState::RcvCmp);
        q.try_push(Unit::Item(42)).unwrap();
        q.flush();
        assert_eq!(am.pop(&mut q, &mut sub), Some(42));
    }

    /// RepeatLast padding repeats the last delivered item.
    #[test]
    fn repeat_last_pad_policy() {
        let mut q = queue();
        let mut am = AlignmentManager::new(PadPolicy::RepeatLast);
        let mut sub = SubopCounters::default();
        push_frame(&mut q, 0, &[77]);
        push_frame(&mut q, 1, &[88]);
        assert_eq!(am.pop(&mut q, &mut sub), Some(77));
        assert_eq!(am.pop(&mut q, &mut sub), Some(77), "pad repeats 77");
        assert_eq!(am.state(), AmState::Pdg);
    }

    /// An uncorrectably corrupted header is treated as past (discard), not
    /// trusted.
    #[test]
    fn corrupt_header_treated_as_past() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        // Frame 0 header arrives hopelessly corrupted.
        if let Unit::Header(cw) = Unit::header(0) {
            q.try_push(Unit::Header(cw.with_flipped_bit(2).with_flipped_bit(20)))
                .unwrap();
        }
        q.try_push(Unit::Item(10)).unwrap();
        q.flush();
        push_frame(&mut q, 1, &[20]);
        // ExpHdr + past(header garbage) → DiscFr; item 10 discarded;
        // header 1 is future → Pdg.
        assert_eq!(am.pop(&mut q, &mut sub), Some(0));
        assert_eq!(am.state(), AmState::Pdg);
        am.new_frame_computation(1, &mut sub);
        assert_eq!(am.pop(&mut q, &mut sub), Some(20));
    }

    /// Overshoot: the thread's boundary passes the held header → DiscFr.
    #[test]
    fn pdg_overshoot_discards() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        push_frame(&mut q, 0, &[10]);
        push_frame(&mut q, 1, &[20]);
        assert_eq!(am.pop(&mut q, &mut sub), Some(10));
        // Hit header 1 mid-frame-0 → Pdg holding 1.
        assert_eq!(am.pop(&mut q, &mut sub), Some(0));
        // The local thread (erroneously) jumps straight to frame 2.
        am.new_frame_computation(2, &mut sub);
        assert_eq!(am.state(), AmState::DiscFr);
        // Frame 1's item is stale now; frame 2 never comes... until it does.
        push_frame(&mut q, 2, &[30]);
        assert_eq!(am.pop(&mut q, &mut sub), Some(30));
        assert_eq!(sub.discarded_items, 1, "frame 1 item dropped");
    }

    /// `pop_run` delivers the same items with the same subop counters and
    /// queue statistics as a per-unit pop loop, across headers, dry spells
    /// and exact-count batches. Both variants replay the guard's batch
    /// flow: a `(n, true)` return hands the next unit to a per-unit `pop`.
    #[test]
    fn pop_run_matches_per_unit_pops() {
        let drive = |bulk: bool| {
            let mut q = queue();
            let mut am = AlignmentManager::default();
            let mut sub = SubopCounters::default();
            push_frame(&mut q, 0, &[10, 11, 12]);
            let mut got = Vec::new();
            // First pop eats the header + first item through the FSM.
            got.push(am.pop(&mut q, &mut sub).unwrap());
            if bulk {
                // Exact-count run, then a dry run (blocked attempt).
                let (n, more) = am.pop_run(&mut q, &mut got, 2, &mut sub);
                assert_eq!((n, more), (2, false));
                let (n, more) = am.pop_run(&mut q, &mut got, 4, &mut sub);
                assert_eq!((n, more), (0, false), "dry: short count");
            } else {
                got.push(am.pop(&mut q, &mut sub).unwrap());
                got.push(am.pop(&mut q, &mut sub).unwrap());
                assert_eq!(am.pop(&mut q, &mut sub), None, "dry");
            }
            // Frame 1 arrives while frame 0 still computes: the bulk run
            // stops at the (future) header and the per-unit FSM pop takes
            // over, entering padding — exactly the guard's fallback.
            push_frame(&mut q, 1, &[20]);
            if bulk {
                let (n, more) = am.pop_run(&mut q, &mut got, 8, &mut sub);
                assert_eq!((n, more), (0, true), "header needs the FSM");
            }
            got.push(am.pop(&mut q, &mut sub).unwrap());
            assert_eq!(am.state(), AmState::Pdg);
            if bulk {
                let (n, more) = am.pop_run(&mut q, &mut got, 8, &mut sub);
                assert_eq!((n, more), (0, true), "Pdg is not receiving");
            }
            am.new_frame_computation(1, &mut sub);
            assert_eq!(am.state(), AmState::RcvCmp);
            if bulk {
                let (n, more) = am.pop_run(&mut q, &mut got, 8, &mut sub);
                assert_eq!((n, more), (1, false), "frame 1 item, then dry");
            } else {
                got.push(am.pop(&mut q, &mut sub).unwrap());
                assert_eq!(am.pop(&mut q, &mut sub), None, "dry");
            }
            (got, sub, *q.stats())
        };
        let (bulk, scalar) = (drive(true), drive(false));
        assert_eq!(bulk.0, vec![10, 11, 12, 0, 20], "frame-0 loss padded");
        assert_eq!(bulk.0, scalar.0);
        assert_eq!(bulk.1, scalar.1, "identical subop counters");
        assert_eq!(bulk.2, scalar.2, "identical queue statistics");
    }

    /// A corrupted FSM replica is healed by the bulk path's entry scrub
    /// with the same strike accounting as the per-unit path.
    #[test]
    fn pop_run_heals_strikes_like_per_unit() {
        let drive = |bulk: bool| {
            let mut q = queue();
            let mut am = AlignmentManager::default();
            let mut sub = SubopCounters::default();
            push_frame(&mut q, 0, &[10, 11]);
            let mut got = Vec::new();
            got.push(am.pop(&mut q, &mut sub).unwrap());
            am.corrupt_replica(1); // active_fc replica 0
            if bulk {
                assert_eq!(am.pop_run(&mut q, &mut got, 1, &mut sub), (1, false));
            } else {
                got.push(am.pop(&mut q, &mut sub).unwrap());
            }
            (got, sub, *q.stats())
        };
        let (bulk, scalar) = (drive(true), drive(false));
        assert_eq!(bulk.0, vec![10, 11]);
        assert_eq!(bulk.1, scalar.1);
        assert_eq!(bulk.1.guard_state_detected, 1);
        assert_eq!(bulk.1.guard_state_corrected, 1);
        assert_eq!(bulk.2, scalar.2);
    }

    /// Every state is reachable and reported by `state()`.
    #[test]
    fn state_accessors() {
        let am = AlignmentManager::default();
        assert_eq!(am.state(), AmState::ExpHdr);
        assert_eq!(am.active_fc(), 0);
    }

    /// A single corrupted FSM replica is out-voted before the next pop
    /// acts on it: alignment behaviour is unchanged and the strike is
    /// counted.
    #[test]
    fn corrupted_fsm_replica_is_healed_on_pop() {
        let mut q = queue();
        let mut am = AlignmentManager::default();
        let mut sub = SubopCounters::default();
        push_frame(&mut q, 0, &[10, 11]);
        assert_eq!(am.pop(&mut q, &mut sub), Some(10));
        // Strike each field in turn (field = sel % 3, replica = sel / 3).
        am.corrupt_replica(0); // state replica 0
        am.corrupt_replica(4); // active_fc replica 1
        am.corrupt_replica(8); // held replica 2
        assert_eq!(am.pop(&mut q, &mut sub), Some(11), "healed before use");
        assert_eq!(am.state(), AmState::RcvCmp);
        assert_eq!(sub.guard_state_detected, 3);
        assert_eq!(sub.guard_state_corrected, 3);
        assert_eq!(sub.padded_items, 0);
        assert_eq!(sub.discarded_items, 0);
    }
}
