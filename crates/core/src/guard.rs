//! Per-core bundle of CommGuard modules.
//!
//! [`CoreGuard`] ties together everything one core needs (Fig. 4): the
//! `active-fc` counter, the frame-scale saturating counter, one
//! [`HeaderInserter`] per outgoing queue and one [`AlignmentManager`] per
//! incoming queue, plus the core's [`SubopCounters`]. The runtime drives
//! it with four callbacks: thread start, scope boundary, pop/push, and
//! thread end.

use cg_queue::{PushError, SimQueue, Unit};
use cg_trace::{AmTag, Event, RealignTag, Tracer};

use crate::align::{AlignmentManager, AmState};
use crate::config::GuardConfig;
use crate::fc::{ActiveFc, FrameScale};
use crate::hi::HeaderInserter;
use crate::subop::SubopCounters;

/// The trace tag mirroring an [`AmState`].
pub fn am_tag(state: AmState) -> AmTag {
    match state {
        AmState::RcvCmp => AmTag::RcvCmp,
        AmState::ExpHdr => AmTag::ExpHdr,
        AmState::DiscFr => AmTag::DiscFr,
        AmState::Disc => AmTag::Disc,
        AmState::Pdg => AmTag::Pdg,
    }
}

/// Runs one AM operation and emits the state transition plus any
/// realignment-episode events it caused. Episode starts are detected by
/// diffing the pad/discard event counters around the call — they mirror
/// `SubopCounters::record_event` exactly, which fires on *entries into*
/// pad/discard handling, not merely on aligned→abnormal transitions (an
/// AM can hop between abnormal flavours and record a fresh episode).
fn traced_am<R>(
    tracer: &Tracer,
    am: &mut AlignmentManager,
    sub: &mut SubopCounters,
    port: u32,
    frame: u32,
    f: impl FnOnce(&mut AlignmentManager, &mut SubopCounters) -> R,
) -> R {
    if !tracer.is_enabled() {
        return f(am, sub);
    }
    let before = am.state();
    let pads = sub.pad_events;
    let discards = sub.discard_events;
    let out = f(am, sub);
    let after = am.state();
    if before != after {
        tracer.emit(Event::AmTransition {
            port,
            from: am_tag(before),
            to: am_tag(after),
        });
    }
    for _ in discards..sub.discard_events {
        tracer.emit(Event::RealignStart {
            port,
            kind: RealignTag::Discard,
            frame,
        });
    }
    for _ in pads..sub.pad_events {
        tracer.emit(Event::RealignStart {
            port,
            kind: RealignTag::Pad,
            frame,
        });
    }
    if !am_tag(before).is_aligned() && am_tag(after).is_aligned() {
        tracer.emit(Event::RealignEnd { port, frame });
    }
    out
}

/// The CommGuard modules of one core, or a pass-through stub for
/// configurations without CommGuard.
#[derive(Debug, Clone)]
pub struct CoreGuard {
    enabled: bool,
    fc: ActiveFc,
    scale: FrameScale,
    his: Vec<HeaderInserter>,
    ams: Vec<AlignmentManager>,
    sub: SubopCounters,
    tracer: Tracer,
}

impl CoreGuard {
    /// Active CommGuard modules for a core with `num_in` incoming and
    /// `num_out` outgoing queues. `fc_limit` is the frame id at which the
    /// thread's computation ends (from the application's run length), if
    /// known.
    pub fn new(num_in: usize, num_out: usize, cfg: &GuardConfig, fc_limit: Option<u32>) -> Self {
        CoreGuard {
            enabled: true,
            fc: ActiveFc::new(fc_limit),
            scale: FrameScale::new(cfg.frame_scale),
            his: vec![HeaderInserter::new(); num_out],
            ams: vec![AlignmentManager::new(cfg.pad_policy); num_in],
            sub: SubopCounters::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// A pass-through guard for non-CommGuard configurations: pops and
    /// pushes go straight to the queue, no headers exist.
    pub fn disabled(num_in: usize, num_out: usize) -> Self {
        CoreGuard {
            enabled: false,
            fc: ActiveFc::new(None),
            scale: FrameScale::default(),
            his: vec![HeaderInserter::new(); num_out],
            ams: vec![AlignmentManager::default(); num_in],
            sub: SubopCounters::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Connects this guard to a trace stream: AM transitions,
    /// realignment episodes, and header insertions are emitted.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Whether the guard modules are active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current `active-fc` value.
    pub fn active_fc(&self) -> u32 {
        self.fc.value()
    }

    /// The AM guarding incoming port `port` (for inspection).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn am_state(&self, port: usize) -> AmState {
        self.ams[port].state()
    }

    /// Suboperation counters for this core.
    pub fn subops(&self) -> &SubopCounters {
        &self.sub
    }

    /// Consumes the guard, returning its counters.
    pub fn into_subops(self) -> SubopCounters {
        self.sub
    }

    /// Thread start: queues frame 0's headers on every outgoing port.
    pub fn start(&mut self) {
        if !self.enabled {
            return;
        }
        let fc = self.fc.value();
        for hi in &mut self.his {
            hi.begin_frame(fc, &mut self.sub);
        }
    }

    /// Scope boundary (one frame computation finished). Under frame
    /// scaling only every Nth boundary is promoted; when promoted, the
    /// `active-fc` advances, AMs are notified, and new headers are queued.
    /// Returns `true` when promoted (the runtime must then drain the HIs
    /// before allowing further pushes — the §5.3 serialisation point).
    pub fn scope_boundary(&mut self) -> bool {
        if !self.enabled {
            return false;
        }
        // Frame-boundary scrub: vote/heal every hardened guard field so a
        // single-replica strike never survives past one frame (see
        // `crate::harden`). The AMs also heal inside
        // `new_frame_computation`, but non-promoted boundaries must scrub
        // too.
        self.fc.heal(&mut self.sub);
        for hi in &mut self.his {
            hi.heal(&mut self.sub);
        }
        for am in &mut self.ams {
            am.heal(&mut self.sub);
        }
        self.sub.counter_ops += 1; // saturating-counter increment
        if !self.scale.on_boundary(&mut self.sub) {
            return false;
        }
        let fc = self.fc.increment(&mut self.sub);
        self.sub.counter_ops += 1; // active-fc increment
        for (port, am) in self.ams.iter_mut().enumerate() {
            traced_am(
                &self.tracer,
                am,
                &mut self.sub,
                port as u32,
                fc,
                |am, sub| am.new_frame_computation(fc, sub),
            );
        }
        for hi in &mut self.his {
            hi.begin_frame(fc, &mut self.sub);
        }
        true
    }

    /// Thread end (outermost scope exited, per the PPU protection module):
    /// queues the end-of-computation header on every outgoing port.
    pub fn finish(&mut self) {
        if !self.enabled {
            return;
        }
        for hi in &mut self.his {
            hi.begin_end(&mut self.sub);
        }
    }

    /// Attempts to flush the pending header of outgoing port `port` into
    /// `q`. Returns `true` when that port is clear.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn hi_tick(&mut self, port: usize, q: &mut SimQueue) -> bool {
        let pending = self.his[port].pending();
        let clear = self.his[port].tick(q, &mut self.sub);
        if clear {
            if let Some(frame) = pending {
                self.tracer.emit(Event::HeaderInserted {
                    port: port as u32,
                    frame,
                    forced: false,
                });
            }
        }
        clear
    }

    /// Forces the pending header of `port` into `q` after a QM timeout.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn hi_force(&mut self, port: usize, q: &mut SimQueue) {
        let pending = self.his[port].pending();
        self.his[port].force(q, &mut self.sub);
        if let Some(frame) = pending {
            self.tracer.emit(Event::HeaderInserted {
                port: port as u32,
                frame,
                forced: true,
            });
        }
    }

    /// `true` when no outgoing port has a pending header (pushes may
    /// proceed).
    pub fn headers_clear(&self) -> bool {
        self.his.iter().all(HeaderInserter::is_clear)
    }

    /// A pop on incoming port `port`. With guards enabled this runs the
    /// AM FSM (alignment checks, pad/discard); otherwise it is a raw queue
    /// pop. `None` means the thread must block and retry.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn pop(&mut self, port: usize, q: &mut SimQueue) -> Option<u32> {
        if self.enabled {
            let fc = self.fc.value();
            traced_am(
                &self.tracer,
                &mut self.ams[port],
                &mut self.sub,
                port as u32,
                fc,
                |am, sub| am.pop(q, sub),
            )
        } else {
            let unit = q.try_pop()?;
            self.sub.accepted_items += 1;
            // Headers never exist without CommGuard; treat defensively.
            Some(unit.item_value().unwrap_or(0))
        }
    }

    /// Pops up to `max` items on incoming port `port`, appending them to
    /// `out`, and returns how many were delivered. Runs of plain items in
    /// the aligned state take the queue's zero-copy bulk path; headers,
    /// realignment episodes, and traced guards run the full per-unit
    /// [`Self::pop`] path. Either way AM FSM transitions, subop counters,
    /// and queue statistics are bit-identical to popping one at a time.
    /// A short count means the queue has nothing more visible: block and
    /// retry.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn pop_batch(
        &mut self,
        port: usize,
        q: &mut SimQueue,
        out: &mut Vec<u32>,
        max: usize,
    ) -> usize {
        if !self.tracer.is_enabled() {
            return self.pop_batch_fast(port, q, out, max);
        }
        // Traced guards keep the per-unit loop so the emitted event stream
        // is byte-identical to popping one at a time.
        for i in 0..max {
            match self.pop(port, q) {
                Some(v) => out.push(v),
                None => return i,
            }
        }
        max
    }

    /// The zero-copy batch pop: runs of plain items bypass the per-unit
    /// FSM walk through [`AlignmentManager::pop_run`] (guards enabled) or
    /// the queue's bulk item path directly (guards disabled); headers and
    /// abnormal FSM states fall back to per-unit [`Self::pop`] calls.
    /// Subop counters and queue statistics are bit-identical to the
    /// per-unit loop — pinned by `batch_ops_match_per_item_under_realignment`.
    fn pop_batch_fast(
        &mut self,
        port: usize,
        q: &mut SimQueue,
        out: &mut Vec<u32>,
        max: usize,
    ) -> usize {
        if !self.enabled {
            let (n, hit_header) = q.pop_items(out, max);
            self.sub.accepted_items += n as u64;
            if !hit_header {
                return n;
            }
            // Headers never exist without CommGuard; consume defensively
            // through the per-unit path.
            let mut delivered = n;
            while delivered < max {
                match self.pop(port, q) {
                    Some(v) => {
                        out.push(v);
                        delivered += 1;
                    }
                    None => break,
                }
            }
            return delivered;
        }
        let mut delivered = 0;
        while delivered < max {
            let (n, more) = self.ams[port].pop_run(q, out, max - delivered, &mut self.sub);
            delivered += n;
            if !more {
                return delivered;
            }
            // A header is queued (or the AM is realigning): one full FSM
            // pop, then retry the bulk run.
            match self.pop(port, q) {
                Some(v) => {
                    out.push(v);
                    delivered += 1;
                }
                None => return delivered,
            }
        }
        max
    }

    /// Pushes items from `values` on outgoing port `port` until the queue
    /// appears full, returning how many were accepted. Unit-accurate
    /// through the queue's zero-copy bulk item path.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn push_batch(&mut self, _port: usize, q: &mut SimQueue, values: &[u32]) -> usize {
        // A guarded push is a bare item push with no guard-side
        // accounting (headers travel through the HeaderInserter), so the
        // queue's zero-copy bulk item path is exact by construction —
        // including the blocked-push accounting on a short count. Traced
        // queues keep their per-unit event stream inside `push_items`.
        q.push_items(values)
    }

    /// Forces a pop after a QM timeout, delivering whatever stale unit is
    /// at the head (incorrect data, but forward progress).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn timeout_pop(&mut self, _port: usize, q: &mut SimQueue) -> u32 {
        let unit = q.timeout_pop();
        self.sub.accepted_items += 1;
        match unit {
            Unit::Item(v) => v,
            Unit::Header(cw) => cw.raw() as u32,
        }
    }

    /// A push on outgoing port `port`.
    ///
    /// # Errors
    ///
    /// Propagates [`PushError`] when the queue appears full; the thread
    /// blocks and retries (or times out).
    pub fn push(&mut self, _port: usize, q: &mut SimQueue, value: u32) -> Result<(), PushError> {
        q.try_push(Unit::Item(value))
    }

    /// Forces a push after a QM timeout, overwriting unconsumed data.
    pub fn timeout_push(&mut self, _port: usize, q: &mut SimQueue, value: u32) {
        q.timeout_push(Unit::Item(value));
    }

    /// Fault-injection hook: strikes a single replica of one hardened
    /// guard-state field, chosen by `selector`. The corruption is latent —
    /// the majority vote at the next heal point (FSM event or frame
    /// boundary) detects and repairs it, bumping the
    /// `guard_state_detected`/`guard_state_corrected` counters.
    pub fn corrupt_guard_state(&mut self, selector: u64) {
        if !self.enabled {
            return;
        }
        let targets = (1 + self.his.len() + self.ams.len()) as u64;
        let replica = (selector / targets) as usize;
        match (selector % targets) as usize {
            0 => {
                let v = self.fc.value() ^ 1;
                self.fc.corrupt_replica(replica, v);
            }
            t if t <= self.his.len() => {
                let hi = &mut self.his[t - 1];
                let v = match hi.pending() {
                    None => Some(1),
                    Some(fc) => Some(fc ^ 1),
                };
                hi.corrupt_replica(replica, v);
            }
            t => {
                self.ams[t - 1 - self.his.len()].corrupt_replica(selector / targets);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_queue::{PointerMode, QueueSpec};

    fn queue() -> SimQueue {
        SimQueue::new(QueueSpec {
            capacity: 256,
            workset_size: 32,
            pointer_mode: PointerMode::Ecc,
        })
    }

    /// A guarded producer core feeding a guarded consumer core, error
    /// free: items flow unchanged, one header per frame.
    #[test]
    fn producer_consumer_roundtrip() {
        let mut q = queue();
        let mut prod = CoreGuard::new(0, 1, &GuardConfig::default(), Some(3));
        let mut cons = CoreGuard::new(1, 0, &GuardConfig::default(), Some(3));
        prod.start();
        cons.start();
        for frame in 0..3u32 {
            if frame > 0 {
                assert!(prod.scope_boundary());
                assert!(cons.scope_boundary());
            }
            assert!(prod.hi_tick(0, &mut q));
            prod.push(0, &mut q, frame * 100).unwrap();
            prod.push(0, &mut q, frame * 100 + 1).unwrap();
            q.flush();
            assert_eq!(cons.pop(0, &mut q), Some(frame * 100));
            assert_eq!(cons.pop(0, &mut q), Some(frame * 100 + 1));
        }
        assert_eq!(cons.subops().accepted_items, 6);
        assert_eq!(cons.subops().padded_items, 0);
        assert_eq!(q.stats().header_pushes, 3);
    }

    /// A producer that loses items is padded at the consumer; frames stay
    /// aligned afterwards.
    #[test]
    fn lost_items_padded_and_realigned() {
        let mut q = queue();
        let mut prod = CoreGuard::new(0, 1, &GuardConfig::default(), Some(2));
        let mut cons = CoreGuard::new(1, 0, &GuardConfig::default(), Some(2));
        prod.start();
        cons.start();
        assert!(prod.hi_tick(0, &mut q));
        // Frame 0: control error — only 1 of 2 items pushed.
        prod.push(0, &mut q, 100).unwrap();
        prod.scope_boundary();
        assert!(prod.hi_tick(0, &mut q));
        prod.push(0, &mut q, 200).unwrap();
        prod.push(0, &mut q, 201).unwrap();
        q.flush();

        assert_eq!(cons.pop(0, &mut q), Some(100));
        assert_eq!(cons.pop(0, &mut q), Some(0), "lost item padded");
        cons.scope_boundary();
        assert_eq!(cons.pop(0, &mut q), Some(200));
        assert_eq!(cons.pop(0, &mut q), Some(201));
        assert_eq!(cons.subops().padded_items, 1);
    }

    /// Batch entry points are bit-identical to the per-item path, even
    /// across a realignment episode (the scenario of
    /// [`lost_items_padded_and_realigned`] replayed through batches).
    #[test]
    fn batch_ops_match_per_item_under_realignment() {
        let run = |batched: bool| {
            let mut q = queue();
            let mut prod = CoreGuard::new(0, 1, &GuardConfig::default(), Some(2));
            let mut cons = CoreGuard::new(1, 0, &GuardConfig::default(), Some(2));
            prod.start();
            cons.start();
            assert!(prod.hi_tick(0, &mut q));
            // Frame 0: control error — only 1 of 2 items pushed.
            assert_eq!(prod.push_batch(0, &mut q, &[100]), 1);
            prod.scope_boundary();
            assert!(prod.hi_tick(0, &mut q));
            if batched {
                assert_eq!(prod.push_batch(0, &mut q, &[200, 201]), 2);
            } else {
                prod.push(0, &mut q, 200).unwrap();
                prod.push(0, &mut q, 201).unwrap();
            }
            q.flush();
            let mut got = Vec::new();
            if batched {
                assert_eq!(cons.pop_batch(0, &mut q, &mut got, 2), 2);
            } else {
                got.push(cons.pop(0, &mut q).unwrap());
                got.push(cons.pop(0, &mut q).unwrap());
            }
            cons.scope_boundary();
            cons.pop_batch(0, &mut q, &mut got, 2);
            (got, cons.subops().clone(), *q.stats())
        };
        let (batched, per_item) = (run(true), run(false));
        assert_eq!(batched.0, vec![100, 0, 200, 201], "lost item padded");
        assert_eq!(batched.0, per_item.0);
        assert_eq!(batched.1, per_item.1, "identical subop counters");
        assert_eq!(batched.2, per_item.2, "identical queue statistics");
    }

    /// `pop_batch` stops at visible-empty with a short count;
    /// `push_batch` stops at full.
    #[test]
    fn batch_ops_stop_at_queue_limits() {
        let mut q = SimQueue::new(QueueSpec {
            capacity: 8,
            workset_size: 1,
            pointer_mode: PointerMode::Ecc,
        });
        let mut prod = CoreGuard::disabled(0, 1);
        let mut cons = CoreGuard::disabled(1, 0);
        let vals: Vec<u32> = (0..12).collect();
        assert_eq!(prod.push_batch(0, &mut q, &vals), 8, "full after 8");
        let mut out = Vec::new();
        assert_eq!(cons.pop_batch(0, &mut q, &mut out, 64), 8, "drained dry");
        assert_eq!(out, (0..8).collect::<Vec<u32>>());
    }

    /// Disabled guards pass raw values with no headers.
    #[test]
    fn disabled_guard_is_transparent() {
        let mut q = queue();
        let mut prod = CoreGuard::disabled(0, 1);
        let mut cons = CoreGuard::disabled(1, 0);
        prod.start();
        assert!(!prod.scope_boundary());
        assert!(prod.headers_clear());
        prod.push(0, &mut q, 5).unwrap();
        q.flush();
        assert_eq!(cons.pop(0, &mut q), Some(5));
        assert!(!cons.is_enabled());
        assert_eq!(q.stats().header_pushes, 0);
    }

    /// Frame scaling: scale 2 halves header frequency.
    #[test]
    fn frame_scaling_reduces_headers() {
        let mut q = queue();
        let cfg = GuardConfig::with_frame_scale(2);
        let mut prod = CoreGuard::new(0, 1, &cfg, None);
        prod.start();
        assert!(prod.hi_tick(0, &mut q));
        // 4 boundaries → only 2 promoted; drain the HI after each
        // promotion (as the runtime's serialisation point does).
        let promoted: Vec<bool> = (0..4)
            .map(|_| {
                let p = prod.scope_boundary();
                assert!(prod.hi_tick(0, &mut q));
                p
            })
            .collect();
        assert_eq!(promoted, vec![false, true, false, true]);
        q.flush();
        // Initial header + 2 promoted = 3.
        assert_eq!(q.stats().header_pushes, 3);
        assert_eq!(prod.active_fc(), 2);
    }

    /// `finish` emits the end header.
    #[test]
    fn finish_emits_end_header() {
        let mut q = queue();
        let mut prod = CoreGuard::new(0, 1, &GuardConfig::default(), Some(1));
        prod.start();
        assert!(prod.hi_tick(0, &mut q));
        prod.finish();
        assert!(prod.hi_tick(0, &mut q));
        q.flush();
        assert_eq!(q.try_pop().unwrap().header_id(), Some(0));
        assert_eq!(
            q.try_pop().unwrap().header_id(),
            Some(cg_queue::END_FRAME_ID)
        );
    }

    /// Timeout paths deliver garbage but keep moving.
    #[test]
    fn timeout_paths_progress() {
        let mut q = queue();
        let mut cons = CoreGuard::new(1, 0, &GuardConfig::default(), None);
        let v = cons.timeout_pop(0, &mut q);
        assert_eq!(v, 0, "stale slot content");
        let mut prod = CoreGuard::new(0, 1, &GuardConfig::default(), None);
        prod.timeout_push(0, &mut q, 9);
        assert_eq!(q.stats().timeout_pushes, 1);
    }

    /// Guard-state strikes on any hardened field are detected, corrected
    /// at the frame-boundary scrub, and leave the data stream untouched.
    #[test]
    fn guard_state_strikes_are_scrubbed_at_boundaries() {
        let mut q = queue();
        let mut prod = CoreGuard::new(0, 1, &GuardConfig::default(), Some(4));
        let mut cons = CoreGuard::new(1, 0, &GuardConfig::default(), Some(4));
        prod.start();
        cons.start();
        for frame in 0..4u32 {
            if frame > 0 {
                // Strike a different field/replica each frame, on both
                // sides, right before the boundary scrub.
                prod.corrupt_guard_state(u64::from(frame) * 5 + 1);
                cons.corrupt_guard_state(u64::from(frame) * 7 + 2);
                assert!(prod.scope_boundary());
                assert!(cons.scope_boundary());
            }
            assert!(prod.hi_tick(0, &mut q));
            prod.push(0, &mut q, frame * 100).unwrap();
            q.flush();
            assert_eq!(cons.pop(0, &mut q), Some(frame * 100));
        }
        let detected = prod.subops().guard_state_detected + cons.subops().guard_state_detected;
        let corrected = prod.subops().guard_state_corrected + cons.subops().guard_state_corrected;
        assert_eq!(detected, 6, "every strike detected");
        assert_eq!(corrected, 6, "every strike out-voted");
        assert_eq!(cons.subops().padded_items, 0, "data stream unharmed");
        assert_eq!(cons.subops().discarded_items, 0);
    }

    /// Strikes on a disabled guard are ignored.
    #[test]
    fn disabled_guard_ignores_strikes() {
        let mut g = CoreGuard::disabled(1, 1);
        g.corrupt_guard_state(42);
        assert_eq!(g.subops().guard_state_detected, 0);
    }

    #[test]
    fn am_state_accessor() {
        let cons = CoreGuard::new(2, 0, &GuardConfig::default(), None);
        assert_eq!(cons.am_state(0), AmState::ExpHdr);
        assert_eq!(cons.am_state(1), AmState::ExpHdr);
    }

    /// A traced run of the lost-item scenario emits the full story:
    /// header insertions, AM transitions, a pad episode, and its end.
    #[test]
    fn tracer_sees_pad_episode_and_headers() {
        use cg_trace::{EventKind, TraceConfig};
        let tracer = TraceConfig::ring().tracer();
        let mut q = queue();
        let mut prod = CoreGuard::new(0, 1, &GuardConfig::default(), Some(2));
        let mut cons = CoreGuard::new(1, 0, &GuardConfig::default(), Some(2));
        prod.attach_tracer(tracer.clone());
        cons.attach_tracer(tracer.clone());
        prod.start();
        cons.start();
        assert!(prod.hi_tick(0, &mut q));
        prod.push(0, &mut q, 100).unwrap();
        prod.scope_boundary();
        assert!(prod.hi_tick(0, &mut q));
        prod.push(0, &mut q, 200).unwrap();
        prod.push(0, &mut q, 201).unwrap();
        q.flush();

        assert_eq!(cons.pop(0, &mut q), Some(100));
        assert_eq!(cons.pop(0, &mut q), Some(0), "lost item padded");
        cons.scope_boundary();
        assert_eq!(cons.pop(0, &mut q), Some(200));
        assert_eq!(cons.pop(0, &mut q), Some(201));

        let data = tracer.finish().expect("enabled");
        assert_eq!(data.counts.count(EventKind::HeaderInserted), 2);
        assert_eq!(data.counts.realign_episodes(), 1, "one pad episode");
        assert_eq!(
            data.counts.realign_episodes(),
            cons.subops().pad_events + cons.subops().discard_events,
            "trace episodes mirror the subop counters"
        );
        assert!(data.counts.count(EventKind::AmTransition) >= 2);
        assert_eq!(
            data.counts.count(EventKind::RealignEnd),
            1,
            "the AM realigned after the pad episode"
        );
        let starts: Vec<_> = data
            .records
            .iter()
            .filter(|r| r.event.kind() == EventKind::RealignStart)
            .collect();
        assert_eq!(
            starts[0].event,
            Event::RealignStart {
                port: 0,
                kind: RealignTag::Pad,
                frame: 0
            }
        );
    }

    /// Forced header insertion is emitted with the `forced` flag.
    #[test]
    fn forced_header_is_traced() {
        use cg_trace::{EventKind, TraceConfig};
        let tracer = TraceConfig::ring().tracer();
        let mut q = SimQueue::new(QueueSpec {
            capacity: 8,
            workset_size: 1,
            pointer_mode: PointerMode::Ecc,
        });
        for i in 0..8u32 {
            q.try_push(Unit::Item(i)).unwrap();
        }
        let mut prod = CoreGuard::new(0, 1, &GuardConfig::default(), None);
        prod.attach_tracer(tracer.clone());
        prod.start();
        assert!(!prod.hi_tick(0, &mut q), "queue full, header pends");
        prod.hi_force(0, &mut q);
        let data = tracer.finish().expect("enabled");
        let inserted: Vec<_> = data
            .records
            .iter()
            .filter(|r| r.event.kind() == EventKind::HeaderInserted)
            .collect();
        assert_eq!(inserted.len(), 1);
        assert_eq!(
            inserted[0].event,
            Event::HeaderInserted {
                port: 0,
                frame: 0,
                forced: true
            }
        );
    }
}
