//! Queue-manager policy helpers (paper §4.3, §5.1).
//!
//! The data path of the queue manager lives in [`cg_queue::SimQueue`]
//! (working sets, ECC-protected shared pointers). This module adds the
//! QM's *policy* responsibilities: blocking operations must not block
//! forever on error-skewed queue state, so every port carries a
//! [`TimeoutTracker`] that fires after a bounded number of fruitless
//! attempts, at which point the runtime forces a `timeout_pop`/
//! `timeout_push` ("a timeout may cause incorrect data to be transmitted
//! but frame checking would still ensure alignment at the frame
//! boundaries").

/// Counts consecutive blocked attempts on one queue port and fires a
/// timeout after a configurable threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutTracker {
    threshold: u64,
    blocked: u64,
    fired: u64,
}

impl TimeoutTracker {
    /// A tracker firing after `threshold` consecutive blocked attempts.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`.
    pub fn new(threshold: u64) -> Self {
        assert!(threshold > 0, "timeout threshold must be positive");
        TimeoutTracker {
            threshold,
            blocked: 0,
            fired: 0,
        }
    }

    /// Registers a blocked attempt; returns `true` when the timeout fires
    /// (and resets the count).
    pub fn on_block(&mut self) -> bool {
        self.blocked += 1;
        if self.blocked >= self.threshold {
            self.blocked = 0;
            self.fired += 1;
            true
        } else {
            false
        }
    }

    /// Registers successful progress, resetting the streak.
    pub fn on_progress(&mut self) {
        self.blocked = 0;
    }

    /// Arms the tracker so its next blocked attempt fires immediately,
    /// regardless of the configured threshold (watchdog escalation).
    pub fn arm(&mut self) {
        self.blocked = self.threshold - 1;
    }

    /// Blocked attempts still needed before the timeout fires at the
    /// current streak — the QM's "time to fire" in fruitless visits.
    /// Deadline-aware executors compare this against a frame's remaining
    /// slack: a timeout that would land after the frame's deadline is
    /// useless, so the port is [`Self::arm`]ed instead and the blocked
    /// operation forces (possibly stale) transfer while it can still
    /// commit on time.
    pub fn time_to_fire(&self) -> u64 {
        self.threshold - self.blocked
    }

    /// Number of timeouts fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }
}

impl Default for TimeoutTracker {
    /// Generous default: a port must stall 10 000 consecutive scheduling
    /// rounds before the QM forces progress. Error-free executions never
    /// time out (the paper: "we did not observe any timeouts in any of
    /// our experiments").
    fn default() -> Self {
        TimeoutTracker::new(10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_threshold() {
        let mut t = TimeoutTracker::new(3);
        assert!(!t.on_block());
        assert!(!t.on_block());
        assert!(t.on_block());
        assert_eq!(t.fired(), 1);
        // Count restarts after firing.
        assert!(!t.on_block());
    }

    #[test]
    fn progress_resets_streak() {
        let mut t = TimeoutTracker::new(2);
        assert!(!t.on_block());
        t.on_progress();
        assert!(!t.on_block());
        assert!(t.on_block());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        let _ = TimeoutTracker::new(0);
    }

    #[test]
    fn time_to_fire_tracks_the_streak() {
        let mut t = TimeoutTracker::new(5);
        assert_eq!(t.time_to_fire(), 5);
        t.on_block();
        t.on_block();
        assert_eq!(t.time_to_fire(), 3);
        t.on_progress();
        assert_eq!(t.time_to_fire(), 5);
        t.arm();
        assert_eq!(t.time_to_fire(), 1);
    }

    #[test]
    fn armed_tracker_fires_on_next_block() {
        let mut t = TimeoutTracker::new(1_000_000);
        assert!(!t.on_block());
        t.arm();
        assert!(t.on_block());
        assert_eq!(t.fired(), 1);
        // Firing resets the streak as usual.
        assert!(!t.on_block());
    }
}
