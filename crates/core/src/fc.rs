//! The active frame-computation counter and frame-size scaling.
//!
//! The PPU protection module increments `active-fc` at every
//! frame-computation boundary (§4.4); the HI stamps its value into
//! headers and the AM compares incoming headers against it. Frame sizes
//! can be grown application-wide by *down-scaling* the increment
//! frequency "through a saturating counter" (§5.4) — a scale of 4 makes
//! one CommGuard frame out of four steady-state iterations.
//!
//! Both counters are soft state the paper assumes lives in reliable
//! hardware; here they are stored in [`Hardened`] triplicate and voted at
//! every mutation so a single-bit strike cannot silently shift the frame
//! id stream (see [`crate::harden`]).

use cg_queue::FrameId;

use crate::harden::Hardened;
use crate::subop::SubopCounters;

/// The reliable `active-fc` counter of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveFc {
    value: Hardened<FrameId>,
    /// Frame id at which the thread's computation ends, when known.
    limit: Option<FrameId>,
}

impl ActiveFc {
    /// A counter starting at frame 0 with an optional end limit.
    pub fn new(limit: Option<FrameId>) -> Self {
        ActiveFc {
            value: Hardened::new(0),
            limit,
        }
    }

    /// Current frame id (unchecked fast-path read).
    pub fn value(&self) -> FrameId {
        self.value.peek()
    }

    /// The configured end-of-computation frame, if any.
    pub fn limit(&self) -> Option<FrameId> {
        self.limit
    }

    /// Advances to the next frame, voting/healing the replicas first.
    /// Returns the new frame id.
    pub fn increment(&mut self, sub: &mut SubopCounters) -> FrameId {
        let next = self.value.scrub(sub).wrapping_add(1);
        self.value.set(next);
        next
    }

    /// Majority-votes and heals the counter replicas.
    pub fn heal(&mut self, sub: &mut SubopCounters) {
        self.value.scrub(sub);
    }

    /// Fault-injection hook: corrupts one replica of the counter.
    pub fn corrupt_replica(&mut self, idx: usize, v: FrameId) {
        self.value.corrupt_replica(idx, v);
    }

    /// `true` once the counter has reached its limit (the thread's
    /// computation is over and the end header should be emitted).
    pub fn at_limit(&self) -> bool {
        matches!(self.limit, Some(l) if self.value.peek() >= l)
    }
}

/// Saturating down-scaler for frame-computation frequency (§5.4).
///
/// With `factor` N, only every Nth scope boundary is promoted to a
/// CommGuard frame-computation boundary, multiplying every frame size in
/// the application by N.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameScale {
    factor: u32,
    count: Hardened<u32>,
}

impl FrameScale {
    /// A scaler promoting every `factor`-th boundary.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(factor: u32) -> Self {
        assert!(factor > 0, "frame scale factor must be positive");
        FrameScale {
            factor,
            count: Hardened::new(0),
        }
    }

    /// The configured factor.
    pub fn factor(&self) -> u32 {
        self.factor
    }

    /// Registers a scope boundary; returns `true` when it should count as
    /// a frame-computation boundary. Votes/heals the saturating counter.
    pub fn on_boundary(&mut self, sub: &mut SubopCounters) -> bool {
        let next = self.count.scrub(sub) + 1;
        if next >= self.factor {
            self.count.set(0);
            true
        } else {
            self.count.set(next);
            false
        }
    }
}

impl Default for FrameScale {
    /// The StreamIt-default frame size (every boundary counts).
    fn default() -> Self {
        FrameScale::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_fc_counts_and_limits() {
        let mut sub = SubopCounters::default();
        let mut fc = ActiveFc::new(Some(3));
        assert_eq!(fc.value(), 0);
        assert!(!fc.at_limit());
        fc.increment(&mut sub);
        fc.increment(&mut sub);
        assert!(!fc.at_limit());
        assert_eq!(fc.increment(&mut sub), 3);
        assert!(fc.at_limit());
        assert_eq!(fc.limit(), Some(3));
    }

    #[test]
    fn unlimited_counter_never_ends() {
        let mut sub = SubopCounters::default();
        let mut fc = ActiveFc::new(None);
        for _ in 0..100 {
            fc.increment(&mut sub);
        }
        assert!(!fc.at_limit());
    }

    #[test]
    fn corrupted_replica_is_outvoted_on_increment() {
        let mut sub = SubopCounters::default();
        let mut fc = ActiveFc::new(None);
        for _ in 0..5 {
            fc.increment(&mut sub);
        }
        fc.corrupt_replica(1, 1000);
        assert_eq!(fc.increment(&mut sub), 6, "vote heals before increment");
        assert_eq!(sub.guard_state_detected, 1);
        assert_eq!(sub.guard_state_corrected, 1);
    }

    #[test]
    fn scale_one_promotes_every_boundary() {
        let mut sub = SubopCounters::default();
        let mut s = FrameScale::default();
        for _ in 0..5 {
            assert!(s.on_boundary(&mut sub));
        }
    }

    #[test]
    fn scale_four_promotes_every_fourth() {
        let mut sub = SubopCounters::default();
        let mut s = FrameScale::new(4);
        let promoted: Vec<bool> = (0..8).map(|_| s.on_boundary(&mut sub)).collect();
        assert_eq!(
            promoted,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let _ = FrameScale::new(0);
    }
}
