//! The active frame-computation counter and frame-size scaling.
//!
//! The PPU protection module increments `active-fc` at every
//! frame-computation boundary (§4.4); the HI stamps its value into
//! headers and the AM compares incoming headers against it. Frame sizes
//! can be grown application-wide by *down-scaling* the increment
//! frequency "through a saturating counter" (§5.4) — a scale of 4 makes
//! one CommGuard frame out of four steady-state iterations.

use cg_queue::FrameId;

/// The reliable `active-fc` counter of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveFc {
    value: FrameId,
    /// Frame id at which the thread's computation ends, when known.
    limit: Option<FrameId>,
}

impl ActiveFc {
    /// A counter starting at frame 0 with an optional end limit.
    pub fn new(limit: Option<FrameId>) -> Self {
        ActiveFc { value: 0, limit }
    }

    /// Current frame id.
    pub fn value(&self) -> FrameId {
        self.value
    }

    /// The configured end-of-computation frame, if any.
    pub fn limit(&self) -> Option<FrameId> {
        self.limit
    }

    /// Advances to the next frame. Returns the new frame id.
    pub fn increment(&mut self) -> FrameId {
        self.value = self.value.wrapping_add(1);
        self.value
    }

    /// `true` once the counter has reached its limit (the thread's
    /// computation is over and the end header should be emitted).
    pub fn at_limit(&self) -> bool {
        matches!(self.limit, Some(l) if self.value >= l)
    }
}

/// Saturating down-scaler for frame-computation frequency (§5.4).
///
/// With `factor` N, only every Nth scope boundary is promoted to a
/// CommGuard frame-computation boundary, multiplying every frame size in
/// the application by N.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameScale {
    factor: u32,
    count: u32,
}

impl FrameScale {
    /// A scaler promoting every `factor`-th boundary.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(factor: u32) -> Self {
        assert!(factor > 0, "frame scale factor must be positive");
        FrameScale { factor, count: 0 }
    }

    /// The configured factor.
    pub fn factor(&self) -> u32 {
        self.factor
    }

    /// Registers a scope boundary; returns `true` when it should count as
    /// a frame-computation boundary.
    pub fn on_boundary(&mut self) -> bool {
        self.count += 1;
        if self.count >= self.factor {
            self.count = 0;
            true
        } else {
            false
        }
    }
}

impl Default for FrameScale {
    /// The StreamIt-default frame size (every boundary counts).
    fn default() -> Self {
        FrameScale::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_fc_counts_and_limits() {
        let mut fc = ActiveFc::new(Some(3));
        assert_eq!(fc.value(), 0);
        assert!(!fc.at_limit());
        fc.increment();
        fc.increment();
        assert!(!fc.at_limit());
        assert_eq!(fc.increment(), 3);
        assert!(fc.at_limit());
        assert_eq!(fc.limit(), Some(3));
    }

    #[test]
    fn unlimited_counter_never_ends() {
        let mut fc = ActiveFc::new(None);
        for _ in 0..100 {
            fc.increment();
        }
        assert!(!fc.at_limit());
    }

    #[test]
    fn scale_one_promotes_every_boundary() {
        let mut s = FrameScale::default();
        for _ in 0..5 {
            assert!(s.on_boundary());
        }
    }

    #[test]
    fn scale_four_promotes_every_fourth() {
        let mut s = FrameScale::new(4);
        let promoted: Vec<bool> = (0..8).map(|_| s.on_boundary()).collect();
        assert_eq!(
            promoted,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let _ = FrameScale::new(0);
    }
}
