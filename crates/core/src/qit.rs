//! The Queue Information Table and its reliable-storage budget (§5.5).
//!
//! CommGuard's modules need a small amount of *fully reliable* on-core
//! storage: the `active-fc` counter and the frame-scaling saturating
//! counter (plus their limits), and per attached queue a 3-bit AM state, a
//! header word, the queue id, the local buffer pointer and its speculative
//! copy. The paper budgets ≈82 bytes for a core with 4 queues; [`Qit`]
//! reproduces that arithmetic from the actual configuration.

/// Reliable-storage model for one core's CommGuard state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Qit {
    num_queues: usize,
}

/// Word size in bytes (32-bit architecture, as in the paper's simulator).
const WORD_BYTES: u64 = 4;

impl Qit {
    /// A QIT serving `num_queues` attached queues (in + out).
    pub fn new(num_queues: usize) -> Self {
        Qit { num_queues }
    }

    /// Number of attached queues.
    pub fn num_queues(&self) -> usize {
        self.num_queues
    }

    /// Reliable storage in bits.
    ///
    /// Two counters and their limits (`active-fc`, saturating frame-scale
    /// counter) plus, per queue: 3 bits of FSM state and 4 words (header,
    /// queue id, local buffer pointer, speculative pointer copy).
    pub fn reliable_storage_bits(&self) -> u64 {
        let counters = 4 * WORD_BYTES * 8;
        let per_queue = 3 + 4 * WORD_BYTES * 8;
        counters + self.num_queues as u64 * per_queue
    }

    /// Reliable storage in bytes, rounded up.
    pub fn reliable_storage_bytes(&self) -> u64 {
        self.reliable_storage_bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_for_four_queues() {
        // §5.5: "with 4 queues per core the total reliable storage would
        // account to 4×4B + 4×(3bits + 4B + 4B + 4B + 4B) ≈ 82B".
        let qit = Qit::new(4);
        assert_eq!(qit.reliable_storage_bytes(), 82);
        assert_eq!(qit.num_queues(), 4);
    }

    #[test]
    fn scales_with_queue_count() {
        assert!(Qit::new(8).reliable_storage_bytes() > Qit::new(4).reliable_storage_bytes());
        // No queues: just the counters.
        assert_eq!(Qit::new(0).reliable_storage_bytes(), 16);
    }
}
