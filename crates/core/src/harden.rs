//! Checked-duplication hardening for CommGuard's soft state.
//!
//! The paper assumes the per-core guard modules (HI / AM / active-fc) are
//! implemented in "fully reliable" hardware (§4). In this software
//! runtime the guard state lives in ordinary error-prone memory, so the
//! assumption has to be *earned*: every soft FSM field is stored in
//! triple modular redundancy ([`Hardened`]) and majority-voted on use.
//! Single-replica corruption is detected **and** corrected; the scrub
//! that runs at every frame boundary ([`crate::CoreGuard::scope_boundary`])
//! bounds the window during which a second strike could accumulate.
//!
//! Detection/correction totals land in
//! [`SubopCounters::guard_state_detected`] /
//! [`SubopCounters::guard_state_corrected`] so runs can report how often
//! the hardening actually fired. These counters are bookkeeping about the
//! *runtime's own* reliability layer, not paper-modelled hardware
//! suboperations, so they are deliberately excluded from
//! [`SubopCounters::total_subops`].

use crate::subop::SubopCounters;

/// A value stored in triplicate and repaired by majority vote.
///
/// `peek` reads without checking (cheap, used on hot paths between
/// scrubs); `scrub` votes, heals divergent replicas, and bumps the
/// detection/correction counters. A two-of-three vote corrects; a
/// three-way split is detected but uncorrectable, in which case replica 0
/// wins (the guard keeps running — a wrong frame id degrades to an
/// ordinary alignment error the AM already handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hardened<T: Copy + Eq> {
    rep: [T; 3],
}

impl<T: Copy + Eq> Hardened<T> {
    /// Stores `v` in all three replicas.
    pub fn new(v: T) -> Self {
        Hardened { rep: [v; 3] }
    }

    /// Overwrites all three replicas with `v`.
    pub fn set(&mut self, v: T) {
        self.rep = [v; 3];
    }

    /// Unchecked read of replica 0.
    pub fn peek(&self) -> T {
        self.rep[0]
    }

    /// Majority-votes the replicas, heals any divergence, counts what it
    /// found, and returns the voted value.
    pub fn scrub(&mut self, sub: &mut SubopCounters) -> T {
        let [a, b, c] = self.rep;
        if a == b && b == c {
            return a;
        }
        sub.guard_state_detected += 1;
        let voted = if a == b || a == c {
            a
        } else if b == c {
            b
        } else {
            // Three-way split: uncorrectable, keep replica 0.
            return a;
        };
        sub.guard_state_corrected += 1;
        self.rep = [voted; 3];
        voted
    }

    /// Fault-injection hook: overwrites a single replica, leaving the
    /// other two to out-vote it at the next scrub.
    pub fn corrupt_replica(&mut self, idx: usize, v: T) {
        self.rep[idx % 3] = v;
    }
}

impl<T: Copy + Eq + Default> Default for Hardened<T> {
    fn default() -> Self {
        Hardened::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_scrub_counts_nothing() {
        let mut h = Hardened::new(42u32);
        let mut sub = SubopCounters::default();
        assert_eq!(h.scrub(&mut sub), 42);
        assert_eq!(sub.guard_state_detected, 0);
        assert_eq!(sub.guard_state_corrected, 0);
    }

    #[test]
    fn single_replica_corruption_is_corrected() {
        for idx in 0..3 {
            let mut h = Hardened::new(7u32);
            let mut sub = SubopCounters::default();
            h.corrupt_replica(idx, 99);
            assert_eq!(h.scrub(&mut sub), 7, "replica {idx}");
            assert_eq!(sub.guard_state_detected, 1);
            assert_eq!(sub.guard_state_corrected, 1);
            // Healed: a second scrub is clean.
            assert_eq!(h.scrub(&mut sub), 7);
            assert_eq!(sub.guard_state_detected, 1);
        }
    }

    #[test]
    fn three_way_split_detected_but_uncorrected() {
        let mut h = Hardened::new(1u32);
        h.corrupt_replica(1, 2);
        h.corrupt_replica(2, 3);
        let mut sub = SubopCounters::default();
        assert_eq!(h.scrub(&mut sub), 1, "replica 0 wins an unvotable split");
        assert_eq!(sub.guard_state_detected, 1);
        assert_eq!(sub.guard_state_corrected, 0);
    }

    #[test]
    fn set_overwrites_all_replicas() {
        let mut h = Hardened::new(1u32);
        h.corrupt_replica(2, 9);
        h.set(5);
        let mut sub = SubopCounters::default();
        assert_eq!(h.scrub(&mut sub), 5);
        assert_eq!(sub.guard_state_detected, 0);
    }

    #[test]
    fn works_for_option_and_enums() {
        let mut h: Hardened<Option<u32>> = Hardened::default();
        assert_eq!(h.peek(), None);
        h.set(Some(3));
        h.corrupt_replica(0, None);
        let mut sub = SubopCounters::default();
        assert_eq!(h.scrub(&mut sub), Some(3));
        assert_eq!(sub.guard_state_corrected, 1);
    }
}
