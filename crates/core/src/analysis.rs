//! Rely-style frame reliability analysis (paper §9).
//!
//! The paper argues that *without* CommGuard, a quantitative reliability
//! analysis in the style of Rely (Carbin et al., OOPSLA'13) would
//! conclude a streaming application has "virtually zero reliability":
//! alignment errors persist, so the probability that output element `k`
//! is unaffected decays towards zero with total executed instructions.
//! *With* CommGuard, error effects do not propagate across frame
//! boundaries, so the analysis can bound the reliability of **each
//! frame** by the fault exposure of the single steady iteration that
//! produced it — a constant independent of stream position.
//!
//! This module computes both quantities from the graph's schedule, cost
//! models and the configured fault process; the
//! `tests/reliability.rs` integration test validates the guarded bound
//! against measured frame-exactness from simulation.

use cg_fault::{EffectModel, Mtbe};
use cg_graph::{schedule::Schedule, StreamGraph};

/// Analytic reliability bounds for a guarded/unguarded streaming run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reliability {
    /// Expected *visible* (non-masked) faults striking one steady
    /// iteration, summed over all cores.
    pub visible_faults_per_frame: f64,
    /// Probability that a given frame's computation was completely
    /// fault-free under CommGuard (lower bound on frame exactness).
    pub frame_reliability: f64,
}

/// Computes the per-frame reliability bound for `graph` under a
/// per-core fault process with mean `mtbe` and manifestation `model`.
///
/// The fault process is Poisson in instruction time (matching
/// `cg_fault::CoreInjector`), so the probability that a frame's
/// `I` instructions on one core see no visible fault is
/// `exp(-I·(1-p_silent)/mtbe)`, and cores are independent.
pub fn analyze(
    graph: &StreamGraph,
    schedule: &Schedule,
    mtbe: Mtbe,
    model: &EffectModel,
) -> Reliability {
    let visible = 1.0 - model.p_silent;
    let mtbe = mtbe.as_instructions() as f64;
    let mut faults = 0.0f64;
    for (id, node) in graph.nodes() {
        let items: u64 = node
            .inputs()
            .iter()
            .map(|&e| u64::from(graph.edge(e).pop_rate()))
            .chain(
                node.outputs()
                    .iter()
                    .map(|&e| u64::from(graph.edge(e).push_rate())),
            )
            .sum();
        let instr_per_frame =
            schedule.repetitions(id) as f64 * node.cost().firing_cost(items) as f64;
        faults += instr_per_frame * visible / mtbe;
    }
    Reliability {
        visible_faults_per_frame: faults,
        frame_reliability: (-faults).exp(),
    }
}

/// The unguarded counterpart: with persistent misalignment, output
/// element `frame_index` is only reliable if *no* visible fault struck
/// any of the preceding frames either — the exponential decay the paper
/// summarises as "virtually zero reliability".
pub fn unguarded_stream_reliability(per_frame: &Reliability, frame_index: u64) -> f64 {
    (-(per_frame.visible_faults_per_frame * (frame_index + 1) as f64)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_graph::{GraphBuilder, NodeKind};

    fn toy() -> (StreamGraph, Schedule) {
        let mut b = GraphBuilder::new("toy");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.pipeline(&[s, f, k], 4).unwrap();
        let g = b.build().unwrap();
        let sched = g.schedule().unwrap();
        (g, sched)
    }

    #[test]
    fn reliability_improves_with_mtbe() {
        let (g, sched) = toy();
        let model = EffectModel::calibrated();
        let lo = analyze(&g, &sched, Mtbe::instructions(1_000), &model);
        let hi = analyze(&g, &sched, Mtbe::instructions(1_000_000), &model);
        assert!(hi.frame_reliability > lo.frame_reliability);
        assert!(hi.frame_reliability > 0.999);
        assert!((0.0..=1.0).contains(&lo.frame_reliability));
    }

    #[test]
    fn masking_raises_reliability() {
        let (g, sched) = toy();
        let mut mostly_silent = EffectModel::calibrated();
        mostly_silent.p_silent = 0.99;
        mostly_silent.p_data = 0.01;
        mostly_silent.p_control = 0.0;
        mostly_silent.p_addressing = 0.0;
        let harsh = analyze(
            &g,
            &sched,
            Mtbe::instructions(100),
            &EffectModel::data_only(),
        );
        let soft = analyze(&g, &sched, Mtbe::instructions(100), &mostly_silent);
        assert!(soft.frame_reliability > harsh.frame_reliability);
    }

    #[test]
    fn unguarded_reliability_decays_to_zero() {
        let (g, sched) = toy();
        let r = analyze(
            &g,
            &sched,
            Mtbe::instructions(10_000),
            &EffectModel::calibrated(),
        );
        let early = unguarded_stream_reliability(&r, 0);
        let late = unguarded_stream_reliability(&r, 100_000);
        assert!(early > late);
        assert!(late < 1e-6, "paper: virtually zero reliability, got {late}");
        // Guarded reliability is position-independent by construction.
        assert_eq!(r.frame_reliability, unguarded_stream_reliability(&r, 0));
    }
}
