//! CommGuard suboperation accounting (paper Tables 2–3, Figs. 8, 12, 14).
//!
//! Every hardware suboperation CommGuard performs is counted here so the
//! paper's overhead figures can be regenerated from real call counts
//! rather than estimates: FSM checks/updates, active-fc counter
//! operations, header ECC set/checks, header-bit tests, and the realign
//! work (padded/discarded items) behind the data-loss figure.

use std::fmt;
use std::ops::AddAssign;

use cg_queue::FrameId;

/// The kind of a realignment action, for the Fig. 7 annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealignKind {
    /// The AM padded pops with fabricated values (lost data).
    Pad,
    /// The AM discarded queued items/frames (extra data).
    Discard,
}

/// One realignment episode, recorded when the AM leaves its normal states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealignEvent {
    /// The consumer's active frame computation when realignment started.
    pub frame: FrameId,
    /// Pad or discard.
    pub kind: RealignKind,
}

/// Suboperation and realignment counters for one core's CommGuard modules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubopCounters {
    /// FSM state checks/updates (Table 3 row `FSM-check/update`).
    pub fsm_ops: u64,
    /// Active-fc and saturating-counter reads/increments.
    pub counter_ops: u64,
    /// Header ECC set/check operations (Table 3 `check/compute-ECC`).
    pub ecc_ops: u64,
    /// Header-bit set/tests (Table 3 `is-header`).
    pub header_bit_ops: u64,
    /// `prepare-header` operations (one per frame boundary).
    pub prepare_header_ops: u64,
    /// Items delivered to the consumer thread (accepted real data).
    pub accepted_items: u64,
    /// Pops answered with fabricated pad values.
    pub padded_items: u64,
    /// Items discarded from queues during realignment.
    pub discarded_items: u64,
    /// Headers discarded from queues during realignment (frame skips).
    pub discarded_headers: u64,
    /// Distinct pad episodes (entries into the `Pdg` state).
    pub pad_events: u64,
    /// Distinct discard episodes (entries into `Disc`/`DiscFr`).
    pub discard_events: u64,
    /// Guard-state replica divergences detected by the hardening scrub
    /// (see [`crate::harden::Hardened`]). Runtime-reliability bookkeeping,
    /// excluded from [`SubopCounters::total_subops`].
    pub guard_state_detected: u64,
    /// Guard-state divergences repaired by majority vote (subset of
    /// `guard_state_detected`).
    pub guard_state_corrected: u64,
    /// Realignment episode log (bounded; see [`SubopCounters::MAX_EVENTS`]).
    pub events: Vec<RealignEvent>,
}

impl SubopCounters {
    /// Maximum retained realignment episodes (the counters keep counting
    /// past this; only the log is bounded).
    pub const MAX_EVENTS: usize = 4096;

    /// Total CommGuard suboperations, the numerator of Fig. 14's "Total".
    pub fn total_subops(&self) -> u64 {
        self.fsm_ops
            + self.counter_ops
            + self.ecc_ops
            + self.header_bit_ops
            + self.prepare_header_ops
    }

    /// Bytes lost to realignment: padded plus discarded items, 4 bytes
    /// each (the Fig. 8 numerator).
    pub fn lost_bytes(&self) -> u64 {
        (self.padded_items + self.discarded_items) * 4
    }

    /// Bytes of real data delivered (the Fig. 8 denominator).
    pub fn accepted_bytes(&self) -> u64 {
        self.accepted_items * 4
    }

    /// Ratio of lost to accepted data (Fig. 8's y-axis); zero when nothing
    /// was accepted.
    pub fn loss_ratio(&self) -> f64 {
        if self.accepted_items == 0 {
            return 0.0;
        }
        self.lost_bytes() as f64 / self.accepted_bytes() as f64
    }

    /// Records a realignment episode.
    pub fn record_event(&mut self, frame: FrameId, kind: RealignKind) {
        match kind {
            RealignKind::Pad => self.pad_events += 1,
            RealignKind::Discard => self.discard_events += 1,
        }
        if self.events.len() < Self::MAX_EVENTS {
            self.events.push(RealignEvent { frame, kind });
        }
    }
}

impl AddAssign<&SubopCounters> for SubopCounters {
    fn add_assign(&mut self, rhs: &SubopCounters) {
        self.fsm_ops += rhs.fsm_ops;
        self.counter_ops += rhs.counter_ops;
        self.ecc_ops += rhs.ecc_ops;
        self.header_bit_ops += rhs.header_bit_ops;
        self.prepare_header_ops += rhs.prepare_header_ops;
        self.accepted_items += rhs.accepted_items;
        self.padded_items += rhs.padded_items;
        self.discarded_items += rhs.discarded_items;
        self.discarded_headers += rhs.discarded_headers;
        self.pad_events += rhs.pad_events;
        self.discard_events += rhs.discard_events;
        self.guard_state_detected += rhs.guard_state_detected;
        self.guard_state_corrected += rhs.guard_state_corrected;
        let room = Self::MAX_EVENTS.saturating_sub(self.events.len());
        self.events.extend(rhs.events.iter().take(room).copied());
    }
}

impl fmt::Display for SubopCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subops: {} fsm, {} counter, {} ecc, {} hdr-bit | {} accepted, \
             {} padded, {} discarded ({} pad / {} discard events) | \
             guard-state {} detected / {} corrected",
            self.fsm_ops,
            self.counter_ops,
            self.ecc_ops,
            self.header_bit_ops,
            self.accepted_items,
            self.padded_items,
            self.discarded_items,
            self.pad_events,
            self.discard_events,
            self.guard_state_detected,
            self.guard_state_corrected,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratios() {
        let s = SubopCounters {
            fsm_ops: 10,
            counter_ops: 5,
            ecc_ops: 3,
            header_bit_ops: 2,
            prepare_header_ops: 1,
            accepted_items: 100,
            padded_items: 3,
            discarded_items: 2,
            ..Default::default()
        };
        assert_eq!(s.total_subops(), 21);
        assert_eq!(s.lost_bytes(), 20);
        assert_eq!(s.accepted_bytes(), 400);
        assert!((s.loss_ratio() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn loss_ratio_zero_when_nothing_accepted() {
        assert_eq!(SubopCounters::default().loss_ratio(), 0.0);
    }

    #[test]
    fn event_log_is_bounded_but_counts_continue() {
        let mut s = SubopCounters::default();
        for i in 0..(SubopCounters::MAX_EVENTS as u64 + 10) {
            s.record_event(i as u32, RealignKind::Pad);
        }
        assert_eq!(s.events.len(), SubopCounters::MAX_EVENTS);
        assert_eq!(s.pad_events, SubopCounters::MAX_EVENTS as u64 + 10);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = SubopCounters::default();
        a.record_event(1, RealignKind::Discard);
        let mut b = SubopCounters {
            fsm_ops: 7,
            ..Default::default()
        };
        b.record_event(2, RealignKind::Pad);
        a += &b;
        assert_eq!(a.fsm_ops, 7);
        assert_eq!(a.pad_events, 1);
        assert_eq!(a.discard_events, 1);
        assert_eq!(a.events.len(), 2);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SubopCounters::default().to_string().is_empty());
    }
}
