//! Protection configurations — the four systems of the paper's Fig. 3.

use cg_queue::PointerMode;

use crate::align::PadPolicy;

/// Configuration of the CommGuard modules themselves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Frame-size scaling factor (§5.4): 1 = StreamIt-default frames,
    /// N = every frame spans N steady iterations.
    pub frame_scale: u32,
    /// What padded pops return.
    pub pad_policy: PadPolicy,
    /// Whether frame headers are end-to-end ECC protected (the paper's
    /// design; `false` is an ablation showing why §4.1 requires it).
    pub protect_headers: bool,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            frame_scale: 1,
            pad_policy: PadPolicy::Zero,
            protect_headers: true,
        }
    }
}

impl GuardConfig {
    /// Default config with a different frame scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn with_frame_scale(scale: u32) -> Self {
        assert!(scale > 0, "frame scale must be positive");
        GuardConfig {
            frame_scale: scale,
            ..Default::default()
        }
    }
}

/// System-level protection mode, matching the paper's evaluated
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Protection {
    /// Fig. 3a — fault injection disabled entirely.
    ErrorFree,
    /// Fig. 3b — PPU cores, but the queue pointers live in unprotected
    /// storage and there is no CommGuard.
    PpuUnprotectedQueue,
    /// Fig. 3c — PPU cores with a reliable (ECC-pointer) queue, still no
    /// CommGuard: data transmission is safe but alignment is not.
    PpuReliableQueue,
    /// Fig. 3d — PPU cores, reliable queue *and* the CommGuard modules.
    CommGuard(GuardConfig),
}

impl Protection {
    /// The standard CommGuard configuration (default frames, zero pad).
    pub fn commguard() -> Self {
        Protection::CommGuard(GuardConfig::default())
    }

    /// Whether the CommGuard HI/AM modules are active.
    pub fn guards_enabled(&self) -> bool {
        matches!(self, Protection::CommGuard(_))
    }

    /// Whether fault injection is active.
    pub fn errors_enabled(&self) -> bool {
        !matches!(self, Protection::ErrorFree)
    }

    /// The queue pointer protection this mode implies.
    pub fn pointer_mode(&self) -> PointerMode {
        match self {
            Protection::PpuUnprotectedQueue => PointerMode::Raw,
            _ => PointerMode::Ecc,
        }
    }

    /// The guard configuration, when guards are enabled.
    pub fn guard_config(&self) -> Option<GuardConfig> {
        match self {
            Protection::CommGuard(cfg) => Some(*cfg),
            _ => None,
        }
    }

    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Protection::ErrorFree => "error-free",
            Protection::PpuUnprotectedQueue => "ppu+unprotected-queue",
            Protection::PpuReliableQueue => "ppu+reliable-queue",
            Protection::CommGuard(_) => "commguard",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_imply_pointer_protection() {
        assert_eq!(
            Protection::PpuUnprotectedQueue.pointer_mode(),
            PointerMode::Raw
        );
        assert_eq!(
            Protection::PpuReliableQueue.pointer_mode(),
            PointerMode::Ecc
        );
        assert_eq!(Protection::commguard().pointer_mode(), PointerMode::Ecc);
    }

    #[test]
    fn guard_flags() {
        assert!(Protection::commguard().guards_enabled());
        assert!(!Protection::PpuReliableQueue.guards_enabled());
        assert!(!Protection::ErrorFree.errors_enabled());
        assert!(Protection::PpuUnprotectedQueue.errors_enabled());
        assert!(Protection::commguard().guard_config().is_some());
        assert!(Protection::ErrorFree.guard_config().is_none());
    }

    #[test]
    fn labels_distinct() {
        let labels = [
            Protection::ErrorFree.label(),
            Protection::PpuUnprotectedQueue.label(),
            Protection::PpuReliableQueue.label(),
            Protection::commguard().label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn frame_scale_constructor() {
        assert_eq!(GuardConfig::with_frame_scale(4).frame_scale, 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = GuardConfig::with_frame_scale(0);
    }
}
