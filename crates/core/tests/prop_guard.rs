//! Property tests over the full per-core guard bundle (HI + AM +
//! counters) driven as the runtime drives it, including frame scaling.

use commguard::config::GuardConfig;
use commguard::queue::{QueueSpec, SimQueue};
use commguard::{CoreGuard, PadPolicy};
use proptest::prelude::*;

proptest! {
    /// For any frame count, items-per-frame and frame scale, an
    /// error-free producer/consumer pair over one queue delivers every
    /// item bit-exactly with zero realignment, and inserts exactly
    /// ceil(frames/scale) + 1 headers (frames at the promoted rate plus
    /// the end header).
    #[test]
    fn error_free_guarded_channel_is_exact(
        frames in 1u32..40,
        items in 1u32..16,
        scale in 1u32..6,
        pad_policy in prop_oneof![Just(PadPolicy::Zero), Just(PadPolicy::RepeatLast)],
    ) {
        let mut q = SimQueue::new(QueueSpec::with_capacity(65_536));
        let cfg = GuardConfig {
            frame_scale: scale,
            pad_policy,
            protect_headers: true,
        };
        let promoted = frames.div_ceil(scale);
        let mut prod = CoreGuard::new(0, 1, &cfg, Some(promoted));
        let mut cons = CoreGuard::new(1, 0, &cfg, Some(promoted));

        prod.start();
        for f in 0..frames {
            if f > 0 {
                prod.scope_boundary();
            }
            prop_assert!(prod.hi_tick(0, &mut q));
            for i in 0..items {
                prod.push(0, &mut q, f * 1000 + i).unwrap();
            }
        }
        prod.finish();
        prop_assert!(prod.hi_tick(0, &mut q));
        q.flush();

        cons.start();
        let mut got = Vec::new();
        for f in 0..frames {
            if f > 0 {
                cons.scope_boundary();
            }
            for _ in 0..items {
                let v = cons.pop(0, &mut q);
                prop_assert!(v.is_some(), "frame {f} blocked");
                got.push(v.unwrap());
            }
        }
        let want: Vec<u32> = (0..frames)
            .flat_map(|f| (0..items).map(move |i| f * 1000 + i))
            .collect();
        prop_assert_eq!(got, want);
        let sub = cons.subops();
        prop_assert_eq!(sub.padded_items, 0);
        prop_assert_eq!(sub.discarded_items, 0);
        // Header count: initial frame + promoted boundaries + end header.
        prop_assert_eq!(
            q.stats().header_pushes,
            u64::from((frames - 1) / scale) + 2
        );
    }

    /// Whatever single frame the producer garbles (short by k items),
    /// the consumer receives exactly `items` values per frame and pads
    /// exactly k — loss accounting is precise, not approximate.
    #[test]
    fn pad_count_equals_lost_items(
        frames in 2u32..20,
        items in 2u32..12,
        bad_frame in 0u32..20,
        lost in 1u32..12,
    ) {
        let bad_frame = bad_frame % frames;
        let lost = lost.min(items);
        let mut q = SimQueue::new(QueueSpec::with_capacity(65_536));
        let cfg = GuardConfig::default();
        let mut prod = CoreGuard::new(0, 1, &cfg, Some(frames));
        let mut cons = CoreGuard::new(1, 0, &cfg, Some(frames));
        prod.start();
        for f in 0..frames {
            if f > 0 {
                prod.scope_boundary();
            }
            prop_assert!(prod.hi_tick(0, &mut q));
            let n = if f == bad_frame { items - lost } else { items };
            for i in 0..n {
                prod.push(0, &mut q, f * 1000 + i).unwrap();
            }
        }
        prod.finish();
        prop_assert!(prod.hi_tick(0, &mut q));
        q.flush();

        cons.start();
        for f in 0..frames {
            if f > 0 {
                cons.scope_boundary();
            }
            for _ in 0..items {
                prop_assert!(cons.pop(0, &mut q).is_some());
            }
        }
        let sub = cons.subops();
        prop_assert_eq!(sub.padded_items, u64::from(lost));
        prop_assert_eq!(sub.discarded_items, 0);
        prop_assert_eq!(
            sub.accepted_items,
            u64::from(frames * items - lost)
        );
    }
}
