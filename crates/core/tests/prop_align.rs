//! Property tests for the Alignment Manager: self-stabilisation.
//!
//! The paper (§9) frames CommGuard's guarantee in terms of
//! self-stabilisation: error effects on alignment are *ephemeral* — once
//! faults stop, the system returns to a valid state at the next frame
//! boundary. These properties drive the AM with arbitrarily corrupted
//! producer streams and assert exactly that.

use commguard::queue::{QueueSpec, SimQueue, Unit};
use commguard::{AlignmentManager, AmState, PadPolicy, SubopCounters};
use proptest::prelude::*;

/// Per-frame corruption applied to the producer's stream.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Corrupt {
    /// Frame emitted exactly as intended.
    Clean,
    /// The last `1..n` items of the frame are missing.
    LoseItems(u32),
    /// `1..=4` spurious items are appended to the frame.
    ExtraItems(u32),
    /// The whole frame (header + items) is emitted twice.
    DupFrame,
    /// The whole frame is skipped.
    SkipFrame,
    /// The items are emitted but the header is lost.
    SkipHeader,
}

impl Corrupt {
    fn is_clean(self) -> bool {
        matches!(self, Corrupt::Clean)
    }
}

fn corrupt_strategy() -> impl Strategy<Value = Corrupt> {
    prop_oneof![
        6 => Just(Corrupt::Clean),
        1 => (1u32..4).prop_map(Corrupt::LoseItems),
        1 => (1u32..4).prop_map(Corrupt::ExtraItems),
        1 => Just(Corrupt::DupFrame),
        1 => Just(Corrupt::SkipFrame),
        1 => Just(Corrupt::SkipHeader),
    ]
}

/// Emits the (possibly corrupted) stream for one frame. Item values encode
/// `frame * 1000 + index` so delivery can be checked exactly.
fn emit_frame(q: &mut SimQueue, frame: u32, n: u32, c: Corrupt) {
    let push_items = |q: &mut SimQueue, count: u32| {
        for i in 0..count {
            q.try_push(Unit::Item(frame * 1000 + i)).unwrap();
        }
    };
    match c {
        Corrupt::Clean => {
            q.try_push(Unit::header(frame)).unwrap();
            push_items(q, n);
        }
        Corrupt::LoseItems(k) => {
            q.try_push(Unit::header(frame)).unwrap();
            push_items(q, n.saturating_sub(k.min(n)));
        }
        Corrupt::ExtraItems(k) => {
            q.try_push(Unit::header(frame)).unwrap();
            push_items(q, n + k);
        }
        Corrupt::DupFrame => {
            q.try_push(Unit::header(frame)).unwrap();
            push_items(q, n);
            q.try_push(Unit::header(frame)).unwrap();
            push_items(q, n);
        }
        Corrupt::SkipFrame => {}
        Corrupt::SkipHeader => {
            push_items(q, n);
        }
    }
    q.flush();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// (1) The consumer always completes: with the end header present, no
    ///     pop ever blocks, every frame receives its full item count.
    /// (2) Self-stabilisation: every frame after the last corrupted frame
    ///     is delivered bit-exactly.
    /// (3) A fully clean stream is delivered bit-exactly with zero
    ///     realignment activity.
    #[test]
    fn corrupted_streams_realign(
        n in 1u32..8,
        plan in prop::collection::vec(corrupt_strategy(), 3..12),
    ) {
        let frames = plan.len() as u32;
        let mut q = SimQueue::new(QueueSpec::with_capacity(4096));
        for (f, c) in plan.iter().enumerate() {
            emit_frame(&mut q, f as u32, n, *c);
        }
        q.try_push(Unit::end_header()).unwrap();
        q.flush();

        let mut am = AlignmentManager::new(PadPolicy::Zero);
        let mut sub = SubopCounters::default();
        let mut delivered: Vec<Vec<u32>> = Vec::new();
        for f in 0..frames {
            if f > 0 {
                am.new_frame_computation(f, &mut sub);
            }
            let mut got = Vec::new();
            for _ in 0..n {
                let v = am.pop(&mut q, &mut sub);
                prop_assert!(v.is_some(), "pop blocked at frame {f}");
                got.push(v.unwrap());
            }
            delivered.push(got);
        }

        // (2) every frame after the last corruption is exact.
        let last_bad = plan.iter().rposition(|c| !c.is_clean());
        let first_checked = last_bad.map_or(0, |i| i + 1);
        for (f, got) in delivered.iter().enumerate().skip(first_checked) {
            let expect: Vec<u32> = (0..n).map(|i| f as u32 * 1000 + i).collect();
            prop_assert_eq!(
                got, &expect,
                "frame {} not realigned (plan {:?})", f, plan
            );
        }

        // (3) clean streams see no realignment at all.
        if last_bad.is_none() {
            prop_assert_eq!(sub.padded_items, 0);
            prop_assert_eq!(sub.discarded_items, 0);
            prop_assert_eq!(sub.accepted_items as u32, frames * n);
        }
    }

    /// Single-error recovery bound (paper §4.2): after exactly one
    /// injected surplus or deficit, the AM is back in `RcvCmp` and
    /// delivering bit-exact frames within one frame boundary — for every
    /// pad policy.
    #[test]
    fn single_error_realigns_within_one_frame(
        n in 1u32..8,
        frames in 4u32..12,
        // Frame receiving the single injection; at least two clean frames
        // follow so the recovery bound is observable.
        bad in 0u32..9,
        k in 1u32..4,
        surplus in any::<bool>(),
        repeat_last in any::<bool>(),
    ) {
        let bad = bad.min(frames - 3);
        let policy = if repeat_last { PadPolicy::RepeatLast } else { PadPolicy::Zero };
        let mut q = SimQueue::new(QueueSpec::with_capacity(4096));
        for f in 0..frames {
            let c = if f == bad {
                if surplus { Corrupt::ExtraItems(k) } else { Corrupt::LoseItems(k) }
            } else {
                Corrupt::Clean
            };
            emit_frame(&mut q, f, n, c);
        }
        q.try_push(Unit::end_header()).unwrap();
        q.flush();

        let mut am = AlignmentManager::new(policy);
        let mut sub = SubopCounters::default();
        for f in 0..frames {
            if f > 0 {
                am.new_frame_computation(f, &mut sub);
            }
            let mut got = Vec::new();
            for _ in 0..n {
                let v = am.pop(&mut q, &mut sub);
                prop_assert!(v.is_some(), "pop blocked at frame {f}");
                got.push(v.unwrap());
            }
            if f > bad {
                // Within one frame boundary of the injection the AM is
                // realigned: every following frame is bit-exact and the
                // FSM is back in its aligned state.
                let expect: Vec<u32> = (0..n).map(|i| f * 1000 + i).collect();
                prop_assert_eq!(
                    &got, &expect,
                    "frame {} not exact after single error at frame {} \
                     (surplus={}, k={}, policy={:?})",
                    f, bad, surplus, k, policy
                );
                prop_assert_eq!(am.state(), AmState::RcvCmp);
            }
        }

        // The single error produced bounded realignment work: at most one
        // pad episode or one discard episode, never both kinds of loss.
        prop_assert!(sub.pad_events + sub.discard_events <= 2);
        if surplus {
            prop_assert_eq!(sub.padded_items, 0);
            prop_assert_eq!(u32::try_from(sub.discarded_items).unwrap(), k);
        } else {
            prop_assert_eq!(u32::try_from(sub.padded_items).unwrap(), k.min(n));
            prop_assert_eq!(sub.discarded_items, 0);
        }
    }

    /// Loss accounting matches what physically happened: accepted +
    /// padded pops equal the total pops issued.
    #[test]
    fn pop_accounting_balances(
        n in 1u32..6,
        plan in prop::collection::vec(corrupt_strategy(), 2..10),
    ) {
        let frames = plan.len() as u32;
        let mut q = SimQueue::new(QueueSpec::with_capacity(4096));
        for (f, c) in plan.iter().enumerate() {
            emit_frame(&mut q, f as u32, n, *c);
        }
        q.try_push(Unit::end_header()).unwrap();
        q.flush();
        let mut am = AlignmentManager::new(PadPolicy::Zero);
        let mut sub = SubopCounters::default();
        for f in 0..frames {
            if f > 0 {
                am.new_frame_computation(f, &mut sub);
            }
            for _ in 0..n {
                prop_assert!(am.pop(&mut q, &mut sub).is_some());
            }
        }
        prop_assert_eq!(
            sub.accepted_items + sub.padded_items,
            u64::from(frames * n)
        );
    }
}
