//! Property tests for the balance-equation solver.

use cg_graph::{GraphBuilder, NodeKind};
use proptest::prelude::*;

proptest! {
    /// Random rate-converting pipelines always solve, and the solution
    /// satisfies every balance equation with the minimal scale (gcd 1).
    #[test]
    fn random_pipeline_balances(rates in prop::collection::vec((1u32..20, 1u32..20), 1..8)) {
        let mut b = GraphBuilder::new("prop");
        let n = rates.len() + 1;
        let mut ids = vec![b.add_node("s", NodeKind::Source)];
        for i in 1..n - 1 {
            ids.push(b.add_node(format!("f{i}"), NodeKind::Filter));
        }
        if n > 1 {
            ids.push(b.add_node("k", NodeKind::Sink));
        }
        let mut edges = Vec::new();
        for (i, (push, pop)) in rates.iter().enumerate() {
            edges.push(b.connect(ids[i], ids[i + 1], *push, *pop).unwrap());
        }
        let g = b.build().unwrap();
        let sched = g.schedule().unwrap();
        // Every balance equation holds.
        for (eid, e) in g.edges() {
            prop_assert_eq!(
                sched.repetitions(e.src()) * u64::from(e.push_rate()),
                sched.repetitions(e.dst()) * u64::from(e.pop_rate())
            );
            prop_assert_eq!(
                sched.items_per_iteration(eid),
                sched.repetitions(e.src()) * u64::from(e.push_rate())
            );
        }
        // Minimality: gcd of repetitions is 1.
        let g0 = sched.repetition_vector().iter().fold(0u64, |a, &b| {
            let (mut a, mut b) = (a, b);
            while b != 0 { let t = a % b; a = b; b = t; }
            a
        });
        prop_assert_eq!(g0, 1);
        let _ = edges;
    }

    /// Duplicate split-joins with uniform branch rates are always
    /// consistent and give equal repetitions to all branches.
    #[test]
    fn random_splitjoin_balances(width in 1u32..64, branches in 2usize..6) {
        let mut b = GraphBuilder::new("sj");
        let s = b.add_node("s", NodeKind::Source);
        let post = b.add_node("post", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        let branch_ids: Vec<_> = (0..branches)
            .map(|i| b.add_node(format!("b{i}"), NodeKind::Filter))
            .collect();
        b.split_join_duplicate("x", s, &branch_ids, post, width, width).unwrap();
        let total = width * branches as u32;
        b.connect(post, k, total, total).unwrap();
        let g = b.build().unwrap();
        let sched = g.schedule().unwrap();
        let r0 = sched.repetitions(branch_ids[0]);
        for &id in &branch_ids {
            prop_assert_eq!(sched.repetitions(id), r0);
        }
    }
}
