//! Property tests for the seeded random graph generator
//! (`cg_graph::random`): every generated graph must be structurally
//! valid, rate-consistent (schedulable), semantically well-rated for the
//! executor compute bodies, and bounded in size and occupancy.
//!
//! The execution half of this invariant — generated graphs run
//! error-free to frame-exact sinks on the deterministic executor — lives
//! in `crates/campaign/tests/fuzz.rs`, because the executor sits above
//! this crate in the dependency order.

use cg_graph::random::{generate, validate_semantics, GenConfig, HEADER_SLACK};
use proptest::prelude::*;

proptest! {
    /// ≥100 seeds: generation always succeeds and the result passes the
    /// full validity gate (structure + balance equations + executor rate
    /// semantics + occupancy profile).
    #[test]
    fn every_seed_yields_a_valid_schedulable_graph(seed in 0u64..100_000) {
        let cfg = GenConfig::default();
        let spec = generate(seed, &cfg);
        let validated = spec.build_validated();
        prop_assert!(validated.is_ok(), "seed {}: {:?}", seed, validated.err());
        let (graph, prof) = validated.unwrap();
        // Structure holds under the graph's own validator too.
        prop_assert!(graph.validate().is_ok());
        prop_assert!(validate_semantics(&graph).is_ok());
        // Size and occupancy bounds.
        prop_assert!(graph.node_count() <= cfg.max_nodes);
        prop_assert!(prof.max_edge_items <= cfg.max_edge_items);
        prop_assert_eq!(prof.queue_demand, prof.max_edge_items + HEADER_SLACK);
        // Balance equations hold on every edge.
        for (eid, e) in graph.edges() {
            prop_assert_eq!(
                prof.schedule.repetitions(e.src()) * u64::from(e.push_rate()),
                prof.schedule.repetitions(e.dst()) * u64::from(e.pop_rate()),
                "seed {} edge {}", seed, eid
            );
        }
    }

    /// Generation is a pure function of the seed.
    #[test]
    fn generation_is_deterministic(seed in 0u64..100_000) {
        let cfg = GenConfig::default();
        prop_assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
    }

    /// Tighter configs are honored: a pipelines-only generator never
    /// emits splitters or joiners and respects a small node cap.
    #[test]
    fn chain_only_config_yields_pipelines(seed in 0u64..10_000) {
        let cfg = GenConfig { splitjoin_prob: 0.0, max_nodes: 8, ..GenConfig::default() };
        let spec = generate(seed, &cfg);
        prop_assert!(spec.nodes.len() <= 8);
        for n in &spec.nodes {
            prop_assert!(matches!(
                n.kind,
                cg_graph::NodeKind::Source | cg_graph::NodeKind::Filter | cg_graph::NodeKind::Sink
            ));
        }
        let validated = spec.build_validated();
        prop_assert!(validated.is_ok(), "seed {}: {:?}", seed, validated.err());
    }
}

/// Explicit ≥100-seed sweep (not sampled): the satellite requirement is
/// a hard floor, so run seeds 0..=127 unconditionally.
#[test]
fn first_128_seeds_all_validate() {
    let cfg = GenConfig::default();
    for seed in 0..128 {
        let spec = generate(seed, &cfg);
        spec.build_validated()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
