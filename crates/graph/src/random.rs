//! Seeded random stream-graph generation for fuzzing campaigns.
//!
//! [`generate`] derives an arbitrary — but always *valid* — stream DAG
//! from a 64-bit seed: deep pipelines, wide duplicate/round-robin
//! splitjoins (possibly nested, possibly with zero-length branches),
//! skewed and co-prime push/pop ratios. Validity is guaranteed in two
//! layers:
//!
//! 1. **By construction.** The generator composes the graph recursively
//!    while tracking the number of items each dangling output carries per
//!    steady iteration (its *token count*). A consumer always fires a
//!    divisor of its input token count, so the balance equations
//!    `reps[src]·push == reps[dst]·pop` hold on every edge by
//!    construction, and the executor-semantic rate rules (a duplicate
//!    splitter pushes its full input to every branch, a round-robin
//!    splitter's branch pushes sum to its pop, a joiner's push is the sum
//!    of its pops) are satisfied the same way.
//! 2. **By re-validation.** Every candidate is passed through
//!    [`GraphSpec::build_validated`] — structural invariants
//!    ([`StreamGraph::validate`]), balance-equation solve
//!    ([`Schedule::solve`]), the semantic rate rules
//!    ([`validate_semantics`]), and a bounded-occupancy profile
//!    ([`GraphProfile`]) — before it is returned. Join firings must
//!    divide the gcd of all branch token counts; when the random branch
//!    rates admit no such firing the attempt is rejected and the seed is
//!    re-rolled deterministically, falling back to a plain (always-valid)
//!    pipeline after a bounded number of attempts.
//!
//! The same [`GraphSpec`] plain-data form round-trips through the fuzz
//! repro JSON artifacts, so a minimized failing graph replays exactly.

use crate::builder::GraphBuilder;
use crate::graph::{GraphError, NodeKind, StreamGraph};
use crate::ids::NodeId;
use crate::schedule::{gcd, Schedule};

/// In-band header slack added on top of a queue's steady-state data
/// occupancy when computing its capacity demand: boundary headers for
/// the current and next frame plus the end-of-stream marker may coexist
/// with a full frame of data.
pub const HEADER_SLACK: u64 = 4;

/// Tuning knobs for [`generate`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Hard cap on node count (the threaded executor spawns one thread
    /// per node).
    pub max_nodes: usize,
    /// Maximum splitjoin nesting depth (0 = pipelines only).
    pub max_depth: u32,
    /// Maximum branches per splitjoin.
    pub max_branches: usize,
    /// Maximum per-firing pop rate a consumer may be assigned (and the
    /// usual cap on chosen push rates).
    pub max_rate: u64,
    /// Cap on items crossing any edge per steady iteration; bounds both
    /// queue demand and per-frame work.
    pub max_edge_items: u64,
    /// Probability that a chain segment becomes a splitjoin rather than
    /// a filter (when depth and node budget allow).
    pub splitjoin_prob: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_nodes: 16,
            max_depth: 2,
            max_branches: 4,
            max_rate: 12,
            max_edge_items: 96,
            splitjoin_prob: 0.45,
        }
    }
}

/// Plain-data node of a [`GraphSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Unique node name.
    pub name: String,
    /// Structural role.
    pub kind: NodeKind,
}

/// Plain-data edge of a [`GraphSpec`]; indices into [`GraphSpec::nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeSpec {
    /// Producing node index.
    pub src: usize,
    /// Consuming node index.
    pub dst: usize,
    /// Items pushed per producer firing.
    pub push: u32,
    /// Items popped per consumer firing.
    pub pop: u32,
}

/// A serializable stream-graph description: the exchange format between
/// the generator, the fuzz campaign, the shrinker, and replay artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    /// Graph name (carried into reports).
    pub name: String,
    /// Nodes; index order is the id order of the built graph.
    pub nodes: Vec<NodeSpec>,
    /// Edges over node indices.
    pub edges: Vec<EdgeSpec>,
}

/// Steady-state occupancy profile of a validated graph.
#[derive(Debug, Clone)]
pub struct GraphProfile {
    /// The solved repetition vector and per-edge iteration items.
    pub schedule: Schedule,
    /// Items crossing each edge per steady iteration (frame size).
    pub edge_items: Vec<u64>,
    /// Largest per-iteration edge load.
    pub max_edge_items: u64,
    /// Index of the edge carrying `max_edge_items`.
    pub hot_edge: usize,
    /// Minimum queue capacity (items, headers included) at which the
    /// per-frame sequential schedule is admissible on every edge:
    /// `max_edge_items + HEADER_SLACK`.
    pub queue_demand: u64,
}

impl GraphSpec {
    /// Materialises the spec into a validated [`StreamGraph`].
    ///
    /// # Errors
    ///
    /// Propagates builder/structural errors ([`GraphError`]).
    pub fn to_graph(&self) -> Result<StreamGraph, GraphError> {
        let mut b = GraphBuilder::new(self.name.clone());
        let ids: Vec<NodeId> = self
            .nodes
            .iter()
            .map(|n| b.add_node(n.name.clone(), n.kind))
            .collect();
        for e in &self.edges {
            let src = *ids
                .get(e.src)
                .ok_or(GraphError::UnknownNode(NodeId::from_index(
                    e.src.min(u32::MAX as usize),
                )))?;
            let dst = *ids
                .get(e.dst)
                .ok_or(GraphError::UnknownNode(NodeId::from_index(
                    e.dst.min(u32::MAX as usize),
                )))?;
            b.connect(src, dst, e.push, e.pop)?;
        }
        b.build()
    }

    /// Full validity gate: structure, balance equations, executor rate
    /// semantics, and occupancy profile.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated rule.
    pub fn build_validated(&self) -> Result<(StreamGraph, GraphProfile), String> {
        let graph = self.to_graph().map_err(|e| format!("structure: {e}"))?;
        validate_semantics(&graph)?;
        let profile = profile(&graph).map_err(|e| format!("schedule: {e}"))?;
        Ok((graph, profile))
    }
}

/// Checks the executor-semantic rate rules that [`StreamGraph::validate`]
/// does not know about (they are properties of the runtime compute
/// bodies, not of the graph structure):
///
/// * a **duplicate splitter** copies its popped items to every branch, so
///   each outgoing push rate must equal its pop rate;
/// * a **round-robin splitter** distributes its popped items over its
///   branches, so the outgoing push rates must sum to its pop rate;
/// * a **round-robin joiner** concatenates its popped items, so its push
///   rate must equal the sum of its pop rates;
/// * **filters** are single-input single-output (the generic fuzz work
///   function transforms exactly one stream);
/// * a **source** has exactly one output (required by
///   `Program::set_source`).
///
/// # Errors
///
/// Names the offending node and rule.
pub fn validate_semantics(g: &StreamGraph) -> Result<(), String> {
    for (id, node) in g.nodes() {
        let in_pops: Vec<u64> = node
            .inputs()
            .iter()
            .map(|&e| u64::from(g.edge(e).pop_rate()))
            .collect();
        let out_pushes: Vec<u64> = node
            .outputs()
            .iter()
            .map(|&e| u64::from(g.edge(e).push_rate()))
            .collect();
        match node.kind() {
            NodeKind::Source => {
                if out_pushes.len() != 1 {
                    return Err(format!(
                        "source {} ({id}) must have exactly one output, has {}",
                        node.name(),
                        out_pushes.len()
                    ));
                }
            }
            NodeKind::Filter => {
                if in_pops.len() != 1 || out_pushes.len() != 1 {
                    return Err(format!(
                        "filter {} ({id}) must be 1-in-1-out, has {}-in-{}-out",
                        node.name(),
                        in_pops.len(),
                        out_pushes.len()
                    ));
                }
            }
            NodeKind::SplitDuplicate => {
                let pop = in_pops[0];
                if let Some(&bad) = out_pushes.iter().find(|&&p| p != pop) {
                    return Err(format!(
                        "duplicate splitter {} ({id}) pops {pop} but pushes {bad} on a branch",
                        node.name()
                    ));
                }
            }
            NodeKind::SplitRoundRobin => {
                let pop = in_pops[0];
                let sum: u64 = out_pushes.iter().sum();
                if sum != pop {
                    return Err(format!(
                        "round-robin splitter {} ({id}) pops {pop} but branch pushes sum to {sum}",
                        node.name()
                    ));
                }
            }
            NodeKind::JoinRoundRobin => {
                let push = out_pushes[0];
                let sum: u64 = in_pops.iter().sum();
                if sum != push {
                    return Err(format!(
                        "joiner {} ({id}) pushes {push} but input pops sum to {sum}",
                        node.name()
                    ));
                }
            }
            NodeKind::Sink => {}
        }
    }
    Ok(())
}

/// Computes the steady-state occupancy profile of a schedulable graph.
///
/// # Errors
///
/// Propagates [`GraphError::Inconsistent`] from the balance solver.
pub fn profile(g: &StreamGraph) -> Result<GraphProfile, GraphError> {
    let schedule = g.schedule()?;
    let edge_items: Vec<u64> = g
        .edges()
        .map(|(eid, _)| schedule.items_per_iteration(eid))
        .collect();
    let (hot_edge, &max_edge_items) = edge_items
        .iter()
        .enumerate()
        .max_by_key(|&(_, &v)| v)
        .expect("validated graphs have at least one edge");
    Ok(GraphProfile {
        schedule,
        queue_demand: max_edge_items + HEADER_SLACK,
        edge_items,
        max_edge_items,
        hot_edge,
    })
}

/// SplitMix64: tiny deterministic PRNG (no external deps in this crate).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next_u64() % xs.len() as u64) as usize]
    }
}

/// A dangling producer output during construction: `node` will push
/// `push` items per firing on its next edge, `tokens` items per steady
/// iteration.
#[derive(Debug, Clone, Copy)]
struct Flow {
    node: usize,
    push: u32,
    tokens: u64,
}

/// Accumulates the spec under construction.
struct Build {
    nodes: Vec<NodeSpec>,
    edges: Vec<EdgeSpec>,
}

impl Build {
    fn node(&mut self, kind: NodeKind, name: String) -> usize {
        self.nodes.push(NodeSpec { name, kind });
        self.nodes.len() - 1
    }

    fn edge(&mut self, src: usize, dst: usize, push: u64, pop: u64) {
        debug_assert!(push <= u64::from(u32::MAX) && pop <= u64::from(u32::MAX));
        self.edges.push(EdgeSpec {
            src,
            dst,
            push: push as u32,
            pop: pop as u32,
        });
    }
}

/// Divisors `f` of `t` usable as a consumer's firing count: `t/f`
/// (the pop rate) must lie in `min_pop..=max_pop`.
fn firing_candidates(t: u64, min_pop: u64, max_pop: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 1;
    while d * d <= t {
        if t.is_multiple_of(d) {
            for f in [d, t / d] {
                let pop = t / f;
                if pop >= min_pop && pop <= max_pop && !out.contains(&f) {
                    out.push(f);
                }
            }
        }
        d += 1;
    }
    out.sort_unstable();
    out
}

/// Chooses a push rate for a node firing `f` times per iteration,
/// skewed toward the extremes to stress near-empty and amplifying
/// steady states.
fn pick_push(rng: &mut Rng, f: u64, cfg: &GenConfig) -> u64 {
    let upper = cfg.max_rate.min(cfg.max_edge_items / f).max(1);
    match rng.range(0, 3) {
        0 => 1,
        1 => upper,
        _ => rng.range(1, upper),
    }
}

fn gen_filter(b: &mut Build, rng: &mut Rng, cfg: &GenConfig, flow: Flow) -> Option<Flow> {
    let cands = firing_candidates(flow.tokens, 1, cfg.max_rate);
    let f = *rng.pick(&cands);
    let pop = flow.tokens / f;
    let id = b.node(NodeKind::Filter, format!("f{}", b.nodes.len()));
    b.edge(flow.node, id, u64::from(flow.push), pop);
    let push = pick_push(rng, f, cfg);
    Some(Flow {
        node: id,
        push: push as u32,
        tokens: f * push,
    })
}

fn gen_splitjoin(
    b: &mut Build,
    rng: &mut Rng,
    cfg: &GenConfig,
    flow: Flow,
    depth: u32,
    budget: &mut usize,
) -> Option<Flow> {
    *budget = budget.saturating_sub(2); // split + join
    let branches = rng.range(2, cfg.max_branches as u64) as usize;
    let mut dup = rng.chance(0.5);
    // Split firings: pop must divide the incoming token count; a
    // round-robin splitter additionally needs pop >= branches so every
    // branch gets at least one item per firing.
    let min_pop = if dup { 1 } else { branches as u64 };
    let mut cands = firing_candidates(flow.tokens, min_pop, cfg.max_rate);
    if cands.is_empty() {
        // Fall back to duplicate distribution, which always admits f = t.
        dup = true;
        cands = firing_candidates(flow.tokens, 1, cfg.max_rate);
    }
    let f_s = *rng.pick(&cands);
    let pop_s = flow.tokens / f_s;
    let kind = if dup {
        NodeKind::SplitDuplicate
    } else {
        NodeKind::SplitRoundRobin
    };
    let split = b.node(kind, format!("sp{}", b.nodes.len()));
    b.edge(flow.node, split, u64::from(flow.push), pop_s);

    // Per-branch push rates: full copy for duplicate, a random positive
    // partition of pop_s for round-robin (asymmetric fan-out).
    let pushes: Vec<u64> = if dup {
        vec![pop_s; branches]
    } else {
        let mut ws = vec![1u64; branches];
        let mut rest = pop_s - branches as u64;
        while rest > 0 {
            let i = rng.range(0, branches as u64 - 1) as usize;
            let take = rng.range(1, rest);
            ws[i] += take;
            rest -= take;
        }
        ws
    };

    let mut ends: Vec<Flow> = Vec::with_capacity(branches);
    for w in pushes {
        let bflow = Flow {
            node: split,
            push: w as u32,
            tokens: f_s * w,
        };
        // A branch may be empty (a direct split→join edge), giving
        // asymmetric fan-in shapes.
        let end = if *budget >= 1 && rng.chance(0.85) {
            gen_chain(b, rng, cfg, bflow, depth + 1, budget)?
        } else {
            bflow
        };
        ends.push(end);
    }

    // Join firings must divide every branch token count with pop rates
    // within bounds; random branch rates may admit none — reject and let
    // the caller re-roll the attempt.
    let g = ends.iter().fold(0u64, |acc, e| gcd(acc, e.tokens));
    let jc: Vec<u64> = firing_candidates(g, 1, u64::MAX)
        .into_iter()
        .filter(|&f| ends.iter().all(|e| e.tokens / f <= cfg.max_rate))
        .collect();
    if jc.is_empty() {
        return None;
    }
    let f_j = *rng.pick(&jc);
    let join = b.node(NodeKind::JoinRoundRobin, format!("jn{}", b.nodes.len()));
    let mut push_j = 0u64;
    for e in &ends {
        let pop = e.tokens / f_j;
        b.edge(e.node, join, u64::from(e.push), pop);
        push_j += pop;
    }
    let tokens_out = f_j * push_j;
    if tokens_out > cfg.max_edge_items || push_j > u64::from(u32::MAX) {
        return None;
    }
    Some(Flow {
        node: join,
        push: push_j as u32,
        tokens: tokens_out,
    })
}

fn gen_chain(
    b: &mut Build,
    rng: &mut Rng,
    cfg: &GenConfig,
    mut flow: Flow,
    depth: u32,
    budget: &mut usize,
) -> Option<Flow> {
    // Top-level chains run longer (deep pipelines); branch chains stay
    // short so the node budget spreads across branches.
    let (lo, hi) = if depth == 0 { (1, 5) } else { (0, 2) };
    let segments = rng.range(lo, hi);
    for _ in 0..segments {
        if depth < cfg.max_depth && *budget >= 4 && rng.chance(cfg.splitjoin_prob) {
            flow = gen_splitjoin(b, rng, cfg, flow, depth, budget)?;
        } else if *budget >= 1 {
            *budget -= 1;
            flow = gen_filter(b, rng, cfg, flow)?;
        } else {
            break;
        }
    }
    Some(flow)
}

fn try_generate(rng: &mut Rng, cfg: &GenConfig, seed: u64) -> Option<GraphSpec> {
    let mut b = Build {
        nodes: Vec::new(),
        edges: Vec::new(),
    };
    // Source: one output, random firing count and push rate.
    let src = b.node(NodeKind::Source, "src".to_string());
    let f_src = rng.range(1, 6);
    let push = pick_push(rng, f_src, cfg);
    let flow = Flow {
        node: src,
        push: push as u32,
        tokens: f_src * push,
    };
    // Reserve source + sink from the budget.
    let mut budget = cfg.max_nodes.saturating_sub(2);
    let end = gen_chain(&mut b, rng, cfg, flow, 0, &mut budget)?;
    // Sink: fires a divisor of the incoming token count.
    let cands = firing_candidates(end.tokens, 1, cfg.max_rate);
    let f_k = *rng.pick(&cands);
    let sink = b.node(NodeKind::Sink, "snk".to_string());
    b.edge(end.node, sink, u64::from(end.push), end.tokens / f_k);
    Some(GraphSpec {
        name: format!("fuzz-s{seed}"),
        nodes: b.nodes,
        edges: b.edges,
    })
}

/// Generates a valid stream graph from `seed`. Deterministic: the same
/// `(seed, cfg)` always yields the same spec. Internal rejection
/// sampling re-rolls deterministically when a random splitjoin admits no
/// legal join firing; after 64 attempts the splitjoin probability is
/// forced to zero, and a plain pipeline (which cannot be rejected) is
/// produced.
pub fn generate(seed: u64, cfg: &GenConfig) -> GraphSpec {
    for attempt in 0..=64u64 {
        let mut rng = Rng::new(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let eff = if attempt == 64 {
            GenConfig {
                splitjoin_prob: 0.0,
                ..cfg.clone()
            }
        } else {
            cfg.clone()
        };
        if let Some(spec) = try_generate(&mut rng, &eff, seed) {
            if spec.build_validated().is_ok() {
                return spec;
            }
        }
    }
    unreachable!("pipeline fallback always validates");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg), "seed {seed}");
        }
    }

    #[test]
    fn seeds_vary_shapes() {
        let cfg = GenConfig::default();
        let shapes: std::collections::HashSet<(usize, usize)> = (0..40)
            .map(|s| {
                let spec = generate(s, &cfg);
                (spec.nodes.len(), spec.edges.len())
            })
            .collect();
        assert!(shapes.len() > 5, "only {} distinct shapes", shapes.len());
    }

    #[test]
    fn generated_graphs_validate_and_schedule() {
        let cfg = GenConfig::default();
        for seed in 0..120 {
            let spec = generate(seed, &cfg);
            let (graph, prof) = spec
                .build_validated()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(graph.node_count() <= cfg.max_nodes, "seed {seed}");
            assert!(
                prof.max_edge_items <= cfg.max_edge_items,
                "seed {seed}: {} items on hot edge",
                prof.max_edge_items
            );
            assert_eq!(prof.queue_demand, prof.max_edge_items + HEADER_SLACK);
        }
    }

    #[test]
    fn splitjoins_do_appear() {
        let cfg = GenConfig::default();
        let with_split = (0..60)
            .filter(|&s| {
                generate(s, &cfg)
                    .nodes
                    .iter()
                    .any(|n| matches!(n.kind, NodeKind::SplitDuplicate | NodeKind::SplitRoundRobin))
            })
            .count();
        assert!(with_split > 10, "only {with_split}/60 seeds had splitjoins");
    }

    #[test]
    fn semantic_validator_rejects_bad_duplicate() {
        let spec = GraphSpec {
            name: "bad".into(),
            nodes: vec![
                NodeSpec {
                    name: "src".into(),
                    kind: NodeKind::Source,
                },
                NodeSpec {
                    name: "sp".into(),
                    kind: NodeKind::SplitDuplicate,
                },
                NodeSpec {
                    name: "jn".into(),
                    kind: NodeKind::JoinRoundRobin,
                },
                NodeSpec {
                    name: "snk".into(),
                    kind: NodeKind::Sink,
                },
            ],
            edges: vec![
                EdgeSpec {
                    src: 0,
                    dst: 1,
                    push: 4,
                    pop: 4,
                },
                // Duplicate splitter pushing 2 != pop 4: semantically wrong.
                EdgeSpec {
                    src: 1,
                    dst: 2,
                    push: 2,
                    pop: 2,
                },
                EdgeSpec {
                    src: 1,
                    dst: 2,
                    push: 4,
                    pop: 4,
                },
                EdgeSpec {
                    src: 2,
                    dst: 3,
                    push: 6,
                    pop: 6,
                },
            ],
        };
        let err = spec.build_validated().unwrap_err();
        assert!(err.contains("duplicate splitter"), "{err}");
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in [
            NodeKind::Source,
            NodeKind::Sink,
            NodeKind::Filter,
            NodeKind::SplitDuplicate,
            NodeKind::SplitRoundRobin,
            NodeKind::JoinRoundRobin,
        ] {
            assert_eq!(NodeKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(NodeKind::parse("nope"), None);
    }
}
