//! Frame analysis — the item/firing/frame linkage of paper Fig. 2.
//!
//! Given the steady-state schedule, each node's **frame computation** is
//! its block of `reps[n]` consecutive firings, and the items a producer's
//! frame computation pushes onto an edge form one **frame** — exactly the
//! items the consumer's corresponding frame computation pops. This module
//! materialises those linkages so the runtime and CommGuard modules can
//! reason about frames per edge.

use crate::graph::StreamGraph;
use crate::ids::{EdgeId, NodeId};
use crate::schedule::Schedule;

/// Per-edge frame facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeFrame {
    /// Items forming one frame on this edge.
    pub items_per_frame: u64,
    /// Producer firings contributing one frame.
    pub producer_firings: u64,
    /// Consumer firings consuming one frame.
    pub consumer_firings: u64,
}

/// Per-node frame facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFrame {
    /// Firings forming one frame computation of this node.
    pub firings_per_frame: u64,
}

/// The complete frame analysis of a graph under its steady-state schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameAnalysis {
    node_frames: Vec<NodeFrame>,
    edge_frames: Vec<EdgeFrame>,
}

impl FrameAnalysis {
    /// Derives frame structure from a solved schedule.
    pub fn from_schedule(graph: &StreamGraph, schedule: &Schedule) -> Self {
        let node_frames = graph
            .nodes()
            .map(|(id, _)| NodeFrame {
                firings_per_frame: schedule.repetitions(id),
            })
            .collect();
        let edge_frames = graph
            .edges()
            .map(|(eid, e)| EdgeFrame {
                items_per_frame: schedule.items_per_iteration(eid),
                producer_firings: schedule.repetitions(e.src()),
                consumer_firings: schedule.repetitions(e.dst()),
            })
            .collect();
        FrameAnalysis {
            node_frames,
            edge_frames,
        }
    }

    /// Frame facts for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn node(&self, node: NodeId) -> NodeFrame {
        self.node_frames[node.index()]
    }

    /// Frame facts for `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds.
    pub fn edge(&self, edge: EdgeId) -> EdgeFrame {
        self.edge_frames[edge.index()]
    }

    /// The minimum frame/item ratio across edges — the paper notes jpeg
    /// "has the lowest frame/item ratio" (1 frame per ~7k items on
    /// average), which predicts its higher data loss under realignment
    /// (Fig. 8 discussion).
    pub fn min_frame_item_ratio(&self) -> f64 {
        self.edge_frames
            .iter()
            .map(|e| 1.0 / e.items_per_frame as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// Average items per frame across all edges.
    pub fn mean_items_per_frame(&self) -> f64 {
        if self.edge_frames.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.edge_frames.iter().map(|e| e.items_per_frame).sum();
        sum as f64 / self.edge_frames.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::NodeKind;
    use crate::GraphBuilder;

    #[test]
    fn figure2_linkage() {
        let mut b = GraphBuilder::new("fig2");
        let f6 = b.add_node("F6", NodeKind::Source);
        let f7 = b.add_node("F7", NodeKind::Sink);
        let e = b.connect(f6, f7, 192, 15360).unwrap();
        let g = b.build().unwrap();
        let fa = g.frame_analysis().unwrap();
        let ef = fa.edge(e);
        // "80 firings form a frame computation" / "1 firing forms a frame
        // computation" / "15360 items form a frame".
        assert_eq!(ef.producer_firings, 80);
        assert_eq!(ef.consumer_firings, 1);
        assert_eq!(ef.items_per_frame, 15360);
        assert_eq!(fa.node(f6).firings_per_frame, 80);
        assert_eq!(fa.node(f7).firings_per_frame, 1);
    }

    #[test]
    fn ratios_and_means() {
        let mut b = GraphBuilder::new("r");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.connect(s, f, 2, 2).unwrap();
        b.connect(f, k, 6, 6).unwrap();
        let g = b.build().unwrap();
        let fa = g.frame_analysis().unwrap();
        assert!((fa.mean_items_per_frame() - 4.0).abs() < 1e-12);
        assert!((fa.min_frame_item_ratio() - 1.0 / 6.0).abs() < 1e-12);
    }
}
