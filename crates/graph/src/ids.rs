//! Typed identifiers for graph entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) usize);

        impl $name {
            /// Creates an id from a raw index.
            pub fn from_index(idx: usize) -> Self {
                $name(idx)
            }

            /// The raw index, suitable for dense indexing.
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a node (filter/splitter/joiner) within a [`crate::StreamGraph`].
    NodeId,
    "n"
);
id_type!(
    /// Identifies an edge (producer→consumer queue) within a [`crate::StreamGraph`].
    ///
    /// Edge ids double as the paper's queue identifiers (QIDs) handed to
    /// push/pop operations.
    EdgeId,
    "e"
);
id_type!(
    /// Identifies a simulated processor core.
    CoreId,
    "core"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        let n = NodeId::from_index(3);
        assert_eq!(n.index(), 3);
        assert_eq!(n.to_string(), "n3");
        assert_eq!(EdgeId::from_index(1).to_string(), "e1");
        assert_eq!(CoreId::from_index(9).to_string(), "core9");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }
}
