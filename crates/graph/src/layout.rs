//! Node-to-core layout.
//!
//! The paper's StreamIt cluster backend runs each node as a separate
//! thread pinned to a processor (§2.2); its evaluation uses 10 cores for
//! 10-node graphs. [`Layout`] captures that assignment and supports
//! round-robin folding when a graph has more nodes than cores.

use crate::graph::StreamGraph;
use crate::ids::{CoreId, NodeId};

/// An assignment of every node to a simulated core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    assignment: Vec<CoreId>,
    num_cores: usize,
}

impl Layout {
    /// One node per core (the paper's configuration).
    pub fn one_to_one(graph: &StreamGraph) -> Self {
        Layout {
            assignment: (0..graph.node_count()).map(CoreId::from_index).collect(),
            num_cores: graph.node_count(),
        }
    }

    /// Folds nodes onto `num_cores` cores round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores == 0`.
    pub fn round_robin(graph: &StreamGraph, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        Layout {
            assignment: (0..graph.node_count())
                .map(|i| CoreId::from_index(i % num_cores))
                .collect(),
            num_cores: num_cores.min(graph.node_count()),
        }
    }

    /// An explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` length differs from the graph's node count.
    pub fn explicit(graph: &StreamGraph, assignment: Vec<CoreId>) -> Self {
        assert_eq!(
            assignment.len(),
            graph.node_count(),
            "assignment must cover every node"
        );
        let num_cores = assignment.iter().map(|c| c.index() + 1).max().unwrap_or(1);
        Layout {
            assignment,
            num_cores,
        }
    }

    /// The core executing `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn core_of(&self, node: NodeId) -> CoreId {
        self.assignment[node.index()]
    }

    /// Number of cores in use.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Nodes assigned to `core`, in id order.
    pub fn nodes_on(&self, core: CoreId) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == core)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;
    use crate::GraphBuilder;

    fn chain(n: usize) -> StreamGraph {
        let mut b = GraphBuilder::new("chain");
        let mut ids = vec![b.add_node("s", NodeKind::Source)];
        for i in 1..n - 1 {
            ids.push(b.add_node(format!("f{i}"), NodeKind::Filter));
        }
        ids.push(b.add_node("k", NodeKind::Sink));
        b.pipeline(&ids, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn one_to_one_assigns_distinct_cores() {
        let g = chain(5);
        let l = Layout::one_to_one(&g);
        assert_eq!(l.num_cores(), 5);
        for (id, _) in g.nodes() {
            assert_eq!(l.core_of(id).index(), id.index());
            assert_eq!(l.nodes_on(l.core_of(id)), vec![id]);
        }
    }

    #[test]
    fn round_robin_folds() {
        let g = chain(5);
        let l = Layout::round_robin(&g, 2);
        assert_eq!(l.num_cores(), 2);
        assert_eq!(l.nodes_on(CoreId::from_index(0)).len(), 3);
        assert_eq!(l.nodes_on(CoreId::from_index(1)).len(), 2);
    }

    #[test]
    fn explicit_layout() {
        let g = chain(3);
        let l = Layout::explicit(
            &g,
            vec![
                CoreId::from_index(1),
                CoreId::from_index(0),
                CoreId::from_index(1),
            ],
        );
        assert_eq!(l.num_cores(), 2);
        assert_eq!(l.nodes_on(CoreId::from_index(1)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn explicit_wrong_len_panics() {
        let g = chain(3);
        let _ = Layout::explicit(&g, vec![CoreId::from_index(0)]);
    }
}
