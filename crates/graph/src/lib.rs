//! # cg-graph — synchronous-dataflow stream graphs
//!
//! A StreamIt-like intermediate representation for streaming programs:
//! nodes (filters, splitters, joiners, sources, sinks) connected by
//! producer/consumer edges with **static rates** — each firing of a node
//! pushes/pops a fixed number of word-sized items on each of its edges.
//! This is the classic synchronous-dataflow (SDF) model, and it carries
//! exactly the application-level facts CommGuard exploits (paper §2.2):
//! explicit producer/consumer connections and static per-firing item
//! counts.
//!
//! The crate provides:
//!
//! * a validated graph builder ([`GraphBuilder`]) with pipeline and
//!   split-join conveniences,
//! * the balance-equation solver computing the steady-state **repetition
//!   vector** ([`schedule::Schedule`]),
//! * the **frame analysis** of the paper's Fig. 2 ([`frames`]): linking
//!   groups of producer firings to groups of items to groups of consumer
//!   firings,
//! * core layout ([`layout::Layout`]) mapping one node per core as the
//!   paper's cluster backend does.
//!
//! ```
//! use cg_graph::{GraphBuilder, NodeKind};
//!
//! # fn main() -> Result<(), cg_graph::GraphError> {
//! let mut b = GraphBuilder::new("double-pipeline");
//! let src = b.add_node("src", NodeKind::Source);
//! let f = b.add_node("scale", NodeKind::Filter);
//! let snk = b.add_node("snk", NodeKind::Sink);
//! b.connect(src, f, 1, 1)?;
//! b.connect(f, snk, 1, 1)?;
//! let graph = b.build()?;
//! let sched = graph.schedule()?;
//! assert_eq!(sched.repetitions(src), 1);
//! # Ok(())
//! # }
//! ```

mod builder;
mod cost;
pub mod frames;
mod graph;
mod ids;
pub mod layout;
pub mod random;
pub mod schedule;

pub use builder::GraphBuilder;
pub use cost::CostModel;
pub use graph::{Edge, GraphError, Node, NodeKind, StreamGraph};
pub use ids::{CoreId, EdgeId, NodeId};
