//! Steady-state scheduling: the SDF balance-equation solver.
//!
//! For every edge `src → dst` with rates `(push, pop)`, a steady-state
//! schedule requires `reps[src] * push == reps[dst] * pop`. The smallest
//! positive integer solution is the **repetition vector**; one *steady
//! iteration* fires every node `reps[n]` times and returns every queue to
//! its initial fill level.
//!
//! CommGuard's default frame definition equals one steady iteration: a
//! *frame computation* of node `n` is `reps[n]` consecutive firings, and
//! the items they exchange on an edge form one *frame* (paper Fig. 2).

use crate::graph::{GraphError, StreamGraph};
use crate::ids::{EdgeId, NodeId};

/// Reduced positive fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frac {
    num: u64,
    den: u64,
}

impl Frac {
    fn new(num: u64, den: u64) -> Self {
        debug_assert!(num > 0 && den > 0);
        let g = gcd(num, den);
        Frac {
            num: num / g,
            den: den / g,
        }
    }

    fn mul(self, num: u64, den: u64) -> Self {
        // Reduce cross-factors first to avoid overflow.
        let g1 = gcd(self.num, den);
        let g2 = gcd(num, self.den);
        Frac::new((self.num / g1) * (num / g2), (self.den / g2) * (den / g1))
    }
}

/// Greatest common divisor (Euclid).
pub(crate) fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple.
pub(crate) fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// The steady-state repetition vector of a [`StreamGraph`], plus derived
/// per-iteration quantities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    reps: Vec<u64>,
    /// Items crossing each edge per steady iteration.
    edge_items: Vec<u64>,
}

impl Schedule {
    /// Solves the balance equations for `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Inconsistent`] when the rates admit no
    /// steady state.
    pub fn solve(graph: &StreamGraph) -> Result<Self, GraphError> {
        let n = graph.node_count();
        let mut frac: Vec<Option<Frac>> = vec![None; n];
        frac[0] = Some(Frac::new(1, 1));
        // BFS over undirected adjacency; the graph is connected.
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(i) = queue.pop_front() {
            let fi = frac[i].expect("visited nodes have fractions");
            let node_edges: Vec<EdgeId> = graph
                .node(NodeId::from_index(i))
                .inputs()
                .iter()
                .chain(graph.node(NodeId::from_index(i)).outputs())
                .copied()
                .collect();
            for eid in node_edges {
                let e = graph.edge(eid);
                // Balance: r[src] * push = r[dst] * pop.
                let (other, expected) = if e.src().index() == i {
                    (
                        e.dst().index(),
                        fi.mul(u64::from(e.push_rate()), u64::from(e.pop_rate())),
                    )
                } else {
                    (
                        e.src().index(),
                        fi.mul(u64::from(e.pop_rate()), u64::from(e.push_rate())),
                    )
                };
                match frac[other] {
                    None => {
                        frac[other] = Some(expected);
                        queue.push_back(other);
                    }
                    Some(existing) => {
                        if existing != expected {
                            return Err(GraphError::Inconsistent { edge: eid });
                        }
                    }
                }
            }
        }
        // Scale to smallest integers: multiply by lcm of denominators,
        // divide by gcd of numerators.
        let mut den_lcm = 1u64;
        for f in frac.iter().flatten() {
            den_lcm = lcm(den_lcm, f.den);
        }
        let ints: Vec<u64> = frac
            .iter()
            .map(|f| {
                let f = f.expect("connected graph visits all nodes");
                f.num * (den_lcm / f.den)
            })
            .collect();
        let mut num_gcd = 0u64;
        for &v in &ints {
            num_gcd = gcd(num_gcd, v);
        }
        let reps: Vec<u64> = ints.iter().map(|&v| v / num_gcd).collect();
        let edge_items = graph
            .edges()
            .map(|(_, e)| reps[e.src().index()] * u64::from(e.push_rate()))
            .collect();
        Ok(Schedule { reps, edge_items })
    }

    /// Firings of `node` per steady iteration.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn repetitions(&self, node: NodeId) -> u64 {
        self.reps[node.index()]
    }

    /// Items crossing `edge` per steady iteration (the default frame size
    /// for that edge).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds.
    pub fn items_per_iteration(&self, edge: EdgeId) -> u64 {
        self.edge_items[edge.index()]
    }

    /// The full repetition vector.
    pub fn repetition_vector(&self) -> &[u64] {
        &self.reps
    }

    /// Total instructions one steady iteration costs, under each node's
    /// cost model.
    pub fn iteration_instructions(&self, graph: &StreamGraph) -> u64 {
        graph
            .nodes()
            .map(|(id, node)| {
                let items: u64 = node
                    .inputs()
                    .iter()
                    .map(|&e| u64::from(graph.edge(e).pop_rate()))
                    .chain(
                        node.outputs()
                            .iter()
                            .map(|&e| u64::from(graph.edge(e).push_rate())),
                    )
                    .sum();
                self.repetitions(id) * node.cost().firing_cost(items)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;
    use crate::GraphBuilder;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(192, 15360), 15360);
    }

    #[test]
    fn uniform_pipeline_has_unit_repetitions() {
        let mut b = GraphBuilder::new("p");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.pipeline(&[s, f, k], 8).unwrap();
        let g = b.build().unwrap();
        let sched = g.schedule().unwrap();
        assert_eq!(sched.repetition_vector(), &[1, 1, 1]);
        for (eid, _) in g.edges() {
            assert_eq!(sched.items_per_iteration(eid), 8);
        }
    }

    #[test]
    fn jpeg_f6_f7_rates_from_figure_2() {
        // F6 pushes 192 per firing; F7 pops 15360 per firing.
        // The paper: 80 firings of F6 per 1 firing of F7.
        let mut b = GraphBuilder::new("fig2");
        let f6 = b.add_node("F6", NodeKind::Source);
        let f7 = b.add_node("F7", NodeKind::Sink);
        b.connect(f6, f7, 192, 15360).unwrap();
        let g = b.build().unwrap();
        let sched = g.schedule().unwrap();
        assert_eq!(sched.repetitions(f6), 80);
        assert_eq!(sched.repetitions(f7), 1);
        assert_eq!(sched.items_per_iteration(EdgeId::from_index(0)), 15360);
    }

    #[test]
    fn rate_converting_pipeline() {
        // s --2/3--> f --5/4--> k : reps solve 2a=3b, 5b=4c.
        let mut b = GraphBuilder::new("rc");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.connect(s, f, 2, 3).unwrap();
        b.connect(f, k, 5, 4).unwrap();
        let g = b.build().unwrap();
        let sched = g.schedule().unwrap();
        // a/b = 3/2, b/c = 4/5 -> (a,b,c) = (6,4,5).
        assert_eq!(sched.repetition_vector(), &[6, 4, 5]);
    }

    #[test]
    fn splitjoin_balances_branches() {
        let mut b = GraphBuilder::new("sj");
        let s = b.add_node("s", NodeKind::Source);
        let r = b.add_node("r", NodeKind::Filter);
        let gg = b.add_node("g", NodeKind::Filter);
        let bb = b.add_node("b", NodeKind::Filter);
        let post = b.add_node("post", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.split_join_duplicate("rgb", s, &[r, gg, bb], post, 192, 64)
            .unwrap();
        b.connect(post, k, 192, 192).unwrap();
        let g = b.build().unwrap();
        let sched = g.schedule().unwrap();
        // Everything fires once per iteration in this balanced setup.
        for (id, _) in g.nodes() {
            assert_eq!(sched.repetitions(id), 1, "node {id}");
        }
    }

    #[test]
    fn inconsistent_graph_rejected() {
        // Diamond with mismatched rates: s->a->k and s->b->k where the two
        // paths demand different repetition ratios for k.
        let mut b = GraphBuilder::new("bad");
        let s = b.add_node("s", NodeKind::Source);
        let split = b.add_node("sp", NodeKind::SplitDuplicate);
        let a = b.add_node("a", NodeKind::Filter);
        let c = b.add_node("c", NodeKind::Filter);
        let j = b.add_node("j", NodeKind::JoinRoundRobin);
        let k = b.add_node("k", NodeKind::Sink);
        b.connect(s, split, 2, 2).unwrap();
        b.connect(split, a, 2, 2).unwrap();
        b.connect(split, c, 2, 2).unwrap();
        b.connect(a, j, 2, 2).unwrap();
        b.connect(c, j, 2, 3).unwrap(); // inconsistent branch
        b.connect(j, k, 5, 5).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(g.schedule(), Err(GraphError::Inconsistent { .. })));
    }

    #[test]
    fn iteration_instructions_accumulate() {
        let mut b = GraphBuilder::new("cost");
        let s = b.add_node_with_cost("s", NodeKind::Source, crate::CostModel::new(10, 1));
        let k = b.add_node_with_cost("k", NodeKind::Sink, crate::CostModel::new(20, 2));
        b.connect(s, k, 4, 4).unwrap();
        let g = b.build().unwrap();
        let sched = g.schedule().unwrap();
        // s: 10 + 1*4 = 14; k: 20 + 2*4 = 28.
        assert_eq!(sched.iteration_instructions(&g), 42);
    }
}
