//! Stream graph representation and validation.

use std::fmt;

use crate::cost::CostModel;
use crate::frames::FrameAnalysis;
use crate::ids::{EdgeId, NodeId};
use crate::schedule::Schedule;

/// The structural role of a node, mirroring StreamIt's constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Produces the input stream (no incoming edges).
    Source,
    /// Consumes the output stream (no outgoing edges).
    Sink,
    /// Ordinary compute filter (at least one incoming and outgoing edge).
    Filter,
    /// Duplicating splitter: each firing copies its popped items to every
    /// outgoing edge.
    SplitDuplicate,
    /// Round-robin splitter: each firing distributes popped items across
    /// outgoing edges according to the edge push rates.
    SplitRoundRobin,
    /// Round-robin joiner: each firing gathers items from incoming edges
    /// according to the edge pop rates.
    JoinRoundRobin,
}

impl NodeKind {
    /// Whether nodes of this kind may have incoming edges.
    pub fn takes_input(self) -> bool {
        !matches!(self, NodeKind::Source)
    }

    /// Whether nodes of this kind may have outgoing edges.
    pub fn gives_output(self) -> bool {
        !matches!(self, NodeKind::Sink)
    }

    /// Stable text label, used by serialized graph specs (fuzz repros).
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Source => "source",
            NodeKind::Sink => "sink",
            NodeKind::Filter => "filter",
            NodeKind::SplitDuplicate => "split-dup",
            NodeKind::SplitRoundRobin => "split-rr",
            NodeKind::JoinRoundRobin => "join-rr",
        }
    }

    /// Inverse of [`NodeKind::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "source" => NodeKind::Source,
            "sink" => NodeKind::Sink,
            "filter" => NodeKind::Filter,
            "split-dup" => NodeKind::SplitDuplicate,
            "split-rr" => NodeKind::SplitRoundRobin,
            "join-rr" => NodeKind::JoinRoundRobin,
            _ => return None,
        })
    }
}

/// A node of the stream graph.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    pub(crate) cost: CostModel,
    pub(crate) inputs: Vec<EdgeId>,
    pub(crate) outputs: Vec<EdgeId>,
}

impl Node {
    /// Human-readable node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's structural role.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The per-firing instruction cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Incoming edges, in connection order.
    pub fn inputs(&self) -> &[EdgeId] {
        &self.inputs
    }

    /// Outgoing edges, in connection order.
    pub fn outputs(&self) -> &[EdgeId] {
        &self.outputs
    }
}

/// A producer→consumer edge with static rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    /// Items the producer pushes on this edge per firing.
    pub(crate) push: u32,
    /// Items the consumer pops from this edge per firing.
    pub(crate) pop: u32,
}

impl Edge {
    /// Producing node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Consuming node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Items pushed per producer firing.
    pub fn push_rate(&self) -> u32 {
        self.push
    }

    /// Items popped per consumer firing.
    pub fn pop_rate(&self) -> u32 {
        self.pop
    }
}

/// Errors raised while building, validating or scheduling a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A rate of zero was supplied for an edge.
    ZeroRate {
        /// Producing node of the offending edge.
        src: NodeId,
        /// Consuming node of the offending edge.
        dst: NodeId,
    },
    /// An edge references a node id not present in the graph.
    UnknownNode(NodeId),
    /// A node's kind forbids the attached edge direction.
    IllegalConnection {
        /// The offending node.
        node: NodeId,
        /// Human-readable explanation.
        reason: &'static str,
    },
    /// The graph has no nodes.
    Empty,
    /// The graph is not weakly connected.
    Disconnected {
        /// A node unreachable from node 0 in the undirected sense.
        node: NodeId,
    },
    /// The graph contains a directed cycle (feedback is unsupported).
    Cyclic,
    /// Balance equations are inconsistent (no steady-state schedule).
    Inconsistent {
        /// Edge at which the inconsistency was detected.
        edge: EdgeId,
    },
    /// A node is missing a required input or output.
    MissingEndpoint {
        /// The offending node.
        node: NodeId,
        /// Human-readable explanation.
        reason: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::ZeroRate { src, dst } => {
                write!(f, "edge {src}->{dst} has a zero rate")
            }
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::IllegalConnection { node, reason } => {
                write!(f, "illegal connection at {node}: {reason}")
            }
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::Disconnected { node } => {
                write!(f, "graph is disconnected at {node}")
            }
            GraphError::Cyclic => write!(f, "graph contains a directed cycle"),
            GraphError::Inconsistent { edge } => {
                write!(f, "balance equations inconsistent at {edge}")
            }
            GraphError::MissingEndpoint { node, reason } => {
                write!(f, "node {node} is malformed: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated streaming computation graph.
///
/// Construct via [`crate::GraphBuilder`]; a value of this type is always
/// structurally valid (connected, acyclic, legal endpoints, non-zero
/// rates). Scheduling may still fail if balance equations are
/// inconsistent.
#[derive(Debug, Clone)]
pub struct StreamGraph {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
}

impl StreamGraph {
    /// Graph name (application name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over `(NodeId, &Node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Iterates over `(EdgeId, &Edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::from_index(i), e))
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId::from_index)
    }

    /// Computes the steady-state repetition vector (balance-equation
    /// solution).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Inconsistent`] if no steady state exists.
    pub fn schedule(&self) -> Result<Schedule, GraphError> {
        Schedule::solve(self)
    }

    /// Runs the paper's Fig. 2 frame analysis on top of the steady-state
    /// schedule.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors.
    pub fn frame_analysis(&self) -> Result<FrameAnalysis, GraphError> {
        Ok(FrameAnalysis::from_schedule(self, &self.schedule()?))
    }

    /// Nodes in a topological order (sources first). The graph is
    /// guaranteed acyclic by construction.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.dst.index()] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        // Reverse so that pop() yields lowest index first: deterministic.
        stack.sort_unstable_by(|a, b| b.cmp(a));
        let mut order = Vec::with_capacity(n);
        while let Some(i) = stack.pop() {
            order.push(NodeId::from_index(i));
            let mut newly = Vec::new();
            for &eid in &self.nodes[i].outputs {
                let d = self.edges[eid.index()].dst.index();
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    newly.push(d);
                }
            }
            newly.sort_unstable_by(|a, b| b.cmp(a));
            stack.extend(newly);
        }
        debug_assert_eq!(order.len(), n, "validated graphs are acyclic");
        order
    }

    /// Renders a one-line-per-node textual summary (used by the
    /// `graphs` experiment binary to reproduce Fig. 1).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "graph {} ({} nodes, {} edges)",
            self.name,
            self.nodes.len(),
            self.edges.len()
        );
        for (id, node) in self.nodes() {
            let ins: Vec<String> = node
                .inputs
                .iter()
                .map(|&e| {
                    let edge = self.edge(e);
                    format!("{}[pop {}]", self.node(edge.src).name, edge.pop)
                })
                .collect();
            let outs: Vec<String> = node
                .outputs
                .iter()
                .map(|&e| {
                    let edge = self.edge(e);
                    format!("{}[push {}]", self.node(edge.dst).name, edge.push)
                })
                .collect();
            let _ = writeln!(
                s,
                "  {id} {:>18} <{:?}>  in: {}  out: {}",
                node.name,
                node.kind,
                if ins.is_empty() {
                    "-".to_string()
                } else {
                    ins.join(", ")
                },
                if outs.is_empty() {
                    "-".to_string()
                } else {
                    outs.join(", ")
                },
            );
        }
        s
    }

    /// Renders the graph in Graphviz DOT syntax (edges labelled with
    /// their push/pop rates), for visualising benchmark topologies like
    /// the paper's Fig. 1.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=LR; node [shape=box];");
        for (id, node) in self.nodes() {
            let shape = match node.kind() {
                NodeKind::Source | NodeKind::Sink => "ellipse",
                NodeKind::SplitDuplicate | NodeKind::SplitRoundRobin | NodeKind::JoinRoundRobin => {
                    "diamond"
                }
                NodeKind::Filter => "box",
            };
            let _ = writeln!(
                s,
                "  {} [label=\"{}\", shape={shape}];",
                id.index(),
                node.name()
            );
        }
        for (_, e) in self.edges() {
            let _ = writeln!(
                s,
                "  {} -> {} [label=\"{}/{}\"];",
                e.src().index(),
                e.dst().index(),
                e.push_rate(),
                e.pop_rate()
            );
        }
        s.push_str("}\n");
        s
    }

    /// Validates structural invariants. Called by the builder; exposed for
    /// defensive re-checks after programmatic surgery in tests.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        for e in &self.edges {
            if e.push == 0 || e.pop == 0 {
                return Err(GraphError::ZeroRate {
                    src: e.src,
                    dst: e.dst,
                });
            }
        }
        for (id, node) in self.nodes() {
            match node.kind {
                NodeKind::Source => {
                    if !node.inputs.is_empty() {
                        return Err(GraphError::IllegalConnection {
                            node: id,
                            reason: "source cannot have inputs",
                        });
                    }
                    if node.outputs.is_empty() {
                        return Err(GraphError::MissingEndpoint {
                            node: id,
                            reason: "source needs at least one output",
                        });
                    }
                }
                NodeKind::Sink => {
                    if !node.outputs.is_empty() {
                        return Err(GraphError::IllegalConnection {
                            node: id,
                            reason: "sink cannot have outputs",
                        });
                    }
                    if node.inputs.is_empty() {
                        return Err(GraphError::MissingEndpoint {
                            node: id,
                            reason: "sink needs at least one input",
                        });
                    }
                }
                NodeKind::Filter => {
                    if node.inputs.is_empty() || node.outputs.is_empty() {
                        return Err(GraphError::MissingEndpoint {
                            node: id,
                            reason: "filter needs input and output",
                        });
                    }
                }
                NodeKind::SplitDuplicate | NodeKind::SplitRoundRobin => {
                    if node.inputs.len() != 1 {
                        return Err(GraphError::MissingEndpoint {
                            node: id,
                            reason: "splitter needs exactly one input",
                        });
                    }
                    if node.outputs.len() < 2 {
                        return Err(GraphError::MissingEndpoint {
                            node: id,
                            reason: "splitter needs at least two outputs",
                        });
                    }
                }
                NodeKind::JoinRoundRobin => {
                    if node.outputs.len() != 1 {
                        return Err(GraphError::MissingEndpoint {
                            node: id,
                            reason: "joiner needs exactly one output",
                        });
                    }
                    if node.inputs.len() < 2 {
                        return Err(GraphError::MissingEndpoint {
                            node: id,
                            reason: "joiner needs at least two inputs",
                        });
                    }
                }
            }
        }
        self.check_connected()?;
        self.check_acyclic()?;
        Ok(())
    }

    fn check_connected(&self) -> Result<(), GraphError> {
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for &eid in self.nodes[i].inputs.iter().chain(&self.nodes[i].outputs) {
                let e = &self.edges[eid.index()];
                for j in [e.src.index(), e.dst.index()] {
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        match seen.iter().position(|&s| !s) {
            None => Ok(()),
            Some(i) => Err(GraphError::Disconnected {
                node: NodeId::from_index(i),
            }),
        }
    }

    fn check_acyclic(&self) -> Result<(), GraphError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.dst.index()] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(i) = stack.pop() {
            visited += 1;
            for &eid in &self.nodes[i].outputs {
                let d = self.edges[eid.index()].dst.index();
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    stack.push(d);
                }
            }
        }
        if visited == n {
            Ok(())
        } else {
            Err(GraphError::Cyclic)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn tiny() -> StreamGraph {
        let mut b = GraphBuilder::new("tiny");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.connect(s, f, 2, 2).unwrap();
        b.connect(f, k, 3, 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn accessors_work() {
        let g = tiny();
        assert_eq!(g.name(), "tiny");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let f = g.node_by_name("f").unwrap();
        assert_eq!(g.node(f).kind(), NodeKind::Filter);
        assert_eq!(g.node(f).inputs().len(), 1);
        assert_eq!(g.node(f).outputs().len(), 1);
        let e = g.edge(g.node(f).outputs()[0]);
        assert_eq!(e.push_rate(), 3);
        assert_eq!(e.pop_rate(), 3);
        assert_eq!(e.src(), f);
        assert!(g.node_by_name("nope").is_none());
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = tiny();
        let order = g.topo_order();
        assert_eq!(order.len(), 3);
        let pos = |name: &str| {
            let id = g.node_by_name(name).unwrap();
            order.iter().position(|&n| n == id).unwrap()
        };
        assert!(pos("s") < pos("f"));
        assert!(pos("f") < pos("k"));
    }

    #[test]
    fn describe_mentions_every_node() {
        let g = tiny();
        let d = g.describe();
        for name in ["s", "f", "k"] {
            assert!(d.contains(name), "{d}");
        }
    }

    #[test]
    fn dot_export_mentions_everything() {
        let g = tiny();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        for name in ["s", "f", "k"] {
            assert!(dot.contains(&format!("label=\"{name}\"")), "{dot}");
        }
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("label=\"3/3\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn kind_predicates() {
        assert!(!NodeKind::Source.takes_input());
        assert!(NodeKind::Source.gives_output());
        assert!(NodeKind::Sink.takes_input());
        assert!(!NodeKind::Sink.gives_output());
        assert!(NodeKind::Filter.takes_input() && NodeKind::Filter.gives_output());
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            GraphError::Empty,
            GraphError::Cyclic,
            GraphError::UnknownNode(NodeId::from_index(1)),
            GraphError::ZeroRate {
                src: NodeId::from_index(0),
                dst: NodeId::from_index(1),
            },
            GraphError::Disconnected {
                node: NodeId::from_index(2),
            },
            GraphError::Inconsistent {
                edge: EdgeId::from_index(0),
            },
            GraphError::IllegalConnection {
                node: NodeId::from_index(0),
                reason: "x",
            },
            GraphError::MissingEndpoint {
                node: NodeId::from_index(0),
                reason: "y",
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
