//! Per-firing instruction cost models.
//!
//! The paper's MTBE axis is measured in *committed instructions*, so the
//! functional simulator must charge a realistic instruction count to every
//! firing. A [`CostModel`] is an affine estimate
//! `base + per_item × (items popped + pushed)` — filters in the StreamIt
//! benchmarks range from tens of instructions per frame computation
//! (audiobeamformer: 72, complex-fir: 33; §5.3) to thousands (jpeg IDCT),
//! which applications encode by picking `base`/`per_item` accordingly.

/// Affine per-firing instruction cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Fixed instructions per firing (loop control, setup).
    pub base: u64,
    /// Instructions per item moved (compute on popped + pushed items).
    pub per_item: u64,
}

impl CostModel {
    /// Creates a cost model.
    pub fn new(base: u64, per_item: u64) -> Self {
        CostModel { base, per_item }
    }

    /// Instructions charged to a firing that moves `items` items.
    pub fn firing_cost(&self, items: u64) -> u64 {
        self.base + self.per_item * items
    }
}

impl Default for CostModel {
    /// A generic lightweight filter: 10 instructions of loop control plus
    /// 5 instructions per item, consistent with the paper's observation
    /// that "a communication event occurs as often as every 7 compute
    /// instructions on average" (§2.3).
    fn default() -> Self {
        CostModel::new(10, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firing_cost_is_affine() {
        let c = CostModel::new(100, 3);
        assert_eq!(c.firing_cost(0), 100);
        assert_eq!(c.firing_cost(10), 130);
    }

    #[test]
    fn default_is_lightweight() {
        let c = CostModel::default();
        assert_eq!(c.firing_cost(1), 15);
    }
}
