//! Incremental, validated construction of [`StreamGraph`]s.

use crate::cost::CostModel;
use crate::graph::{Edge, GraphError, Node, NodeKind, StreamGraph};
use crate::ids::{EdgeId, NodeId};

/// Builder for [`StreamGraph`] values.
///
/// Collects nodes and edges, then validates the whole structure in
/// [`GraphBuilder::build`]. Convenience methods construct the StreamIt
/// composite patterns (pipelines and split-joins).
///
/// ```
/// use cg_graph::{GraphBuilder, NodeKind};
///
/// # fn main() -> Result<(), cg_graph::GraphError> {
/// let mut b = GraphBuilder::new("splitjoin");
/// let src = b.add_node("src", NodeKind::Source);
/// let split = b.add_node("split", NodeKind::SplitDuplicate);
/// let a = b.add_node("a", NodeKind::Filter);
/// let c = b.add_node("c", NodeKind::Filter);
/// let join = b.add_node("join", NodeKind::JoinRoundRobin);
/// let snk = b.add_node("snk", NodeKind::Sink);
/// b.connect(src, split, 4, 4)?;
/// b.connect(split, a, 4, 4)?;
/// b.connect(split, c, 4, 4)?;
/// b.connect(a, join, 4, 4)?;
/// b.connect(c, join, 4, 4)?;
/// b.connect(join, snk, 8, 8)?;
/// let g = b.build()?;
/// assert_eq!(g.node_count(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Starts an empty graph named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a node with the default cost model; returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        self.add_node_with_cost(name, kind, CostModel::default())
    }

    /// Adds a node with an explicit per-firing instruction [`CostModel`].
    pub fn add_node_with_cost(
        &mut self,
        name: impl Into<String>,
        kind: NodeKind,
        cost: CostModel,
    ) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            kind,
            cost,
            inputs: Vec::new(),
            outputs: Vec::new(),
        });
        id
    }

    /// Connects `src` to `dst` with the given per-firing rates:
    /// `src` pushes `push` items per firing, `dst` pops `pop` per firing.
    ///
    /// # Errors
    ///
    /// Rejects zero rates, unknown node ids, and connections that a node's
    /// kind forbids (e.g. an input into a source).
    pub fn connect(
        &mut self,
        src: NodeId,
        dst: NodeId,
        push: u32,
        pop: u32,
    ) -> Result<EdgeId, GraphError> {
        if push == 0 || pop == 0 {
            return Err(GraphError::ZeroRate { src, dst });
        }
        for id in [src, dst] {
            if id.index() >= self.nodes.len() {
                return Err(GraphError::UnknownNode(id));
            }
        }
        if !self.nodes[src.index()].kind.gives_output() {
            return Err(GraphError::IllegalConnection {
                node: src,
                reason: "node kind has no outputs",
            });
        }
        if !self.nodes[dst.index()].kind.takes_input() {
            return Err(GraphError::IllegalConnection {
                node: dst,
                reason: "node kind has no inputs",
            });
        }
        let eid = EdgeId::from_index(self.edges.len());
        self.edges.push(Edge {
            src,
            dst,
            push,
            pop,
        });
        self.nodes[src.index()].outputs.push(eid);
        self.nodes[dst.index()].inputs.push(eid);
        Ok(eid)
    }

    /// Connects a chain of already-added filter nodes with uniform rate
    /// `rate` on every hop (`push == pop == rate`).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphBuilder::connect`] errors.
    pub fn pipeline(&mut self, chain: &[NodeId], rate: u32) -> Result<Vec<EdgeId>, GraphError> {
        chain
            .windows(2)
            .map(|w| self.connect(w[0], w[1], rate, rate))
            .collect()
    }

    /// Builds a duplicate split-join: `input → split → (each branch) →
    /// join → output` where every branch sees the full stream of `width`
    /// items per firing and contributes `branch_out` items to the joiner.
    ///
    /// Returns the `(split, join)` node ids.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphBuilder::connect`] errors.
    pub fn split_join_duplicate(
        &mut self,
        name: &str,
        input: NodeId,
        branches: &[NodeId],
        output: NodeId,
        width: u32,
        branch_out: u32,
    ) -> Result<(NodeId, NodeId), GraphError> {
        let split = self.add_node(format!("{name}_split"), NodeKind::SplitDuplicate);
        let join = self.add_node(format!("{name}_join"), NodeKind::JoinRoundRobin);
        self.connect(input, split, width, width)?;
        for &branch in branches {
            self.connect(split, branch, width, width)?;
            self.connect(branch, join, branch_out, branch_out)?;
        }
        let total = branch_out * branches.len() as u32;
        self.connect(join, output, total, total)?;
        Ok((split, join))
    }

    /// Validates and finalises the graph.
    ///
    /// # Errors
    ///
    /// Returns the first structural invariant violated (see
    /// [`StreamGraph::validate`]).
    pub fn build(self) -> Result<StreamGraph, GraphError> {
        let g = StreamGraph {
            name: self.name,
            nodes: self.nodes,
            edges: self.edges,
        };
        g.validate()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_rate() {
        let mut b = GraphBuilder::new("t");
        let s = b.add_node("s", NodeKind::Source);
        let k = b.add_node("k", NodeKind::Sink);
        assert!(matches!(
            b.connect(s, k, 0, 1),
            Err(GraphError::ZeroRate { .. })
        ));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = GraphBuilder::new("t");
        let s = b.add_node("s", NodeKind::Source);
        let ghost = NodeId::from_index(99);
        assert_eq!(
            b.connect(s, ghost, 1, 1),
            Err(GraphError::UnknownNode(ghost))
        );
    }

    #[test]
    fn rejects_input_into_source() {
        let mut b = GraphBuilder::new("t");
        let s1 = b.add_node("s1", NodeKind::Source);
        let s2 = b.add_node("s2", NodeKind::Source);
        assert!(matches!(
            b.connect(s1, s2, 1, 1),
            Err(GraphError::IllegalConnection { .. })
        ));
    }

    #[test]
    fn rejects_output_from_sink() {
        let mut b = GraphBuilder::new("t");
        let k = b.add_node("k", NodeKind::Sink);
        let f = b.add_node("f", NodeKind::Filter);
        assert!(matches!(
            b.connect(k, f, 1, 1),
            Err(GraphError::IllegalConnection { .. })
        ));
    }

    #[test]
    fn build_rejects_empty() {
        assert_eq!(
            GraphBuilder::new("t").build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn build_rejects_disconnected() {
        let mut b = GraphBuilder::new("t");
        let s = b.add_node("s", NodeKind::Source);
        let k = b.add_node("k", NodeKind::Sink);
        b.connect(s, k, 1, 1).unwrap();
        let s2 = b.add_node("s2", NodeKind::Source);
        let k2 = b.add_node("k2", NodeKind::Sink);
        b.connect(s2, k2, 1, 1).unwrap();
        assert!(matches!(b.build(), Err(GraphError::Disconnected { .. })));
    }

    #[test]
    fn build_rejects_cycle() {
        let mut b = GraphBuilder::new("t");
        let s = b.add_node("s", NodeKind::Source);
        let f1 = b.add_node("f1", NodeKind::Filter);
        let f2 = b.add_node("f2", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.connect(s, f1, 1, 1).unwrap();
        b.connect(f1, f2, 1, 1).unwrap();
        b.connect(f2, f1, 1, 1).unwrap();
        b.connect(f2, k, 1, 1).unwrap();
        assert_eq!(b.build().unwrap_err(), GraphError::Cyclic);
    }

    #[test]
    fn build_rejects_filter_without_output() {
        let mut b = GraphBuilder::new("t");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        b.connect(s, f, 1, 1).unwrap();
        assert!(matches!(b.build(), Err(GraphError::MissingEndpoint { .. })));
    }

    #[test]
    fn pipeline_builds_chain() {
        let mut b = GraphBuilder::new("t");
        let s = b.add_node("s", NodeKind::Source);
        let f1 = b.add_node("f1", NodeKind::Filter);
        let f2 = b.add_node("f2", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        let edges = b.pipeline(&[s, f1, f2, k], 4).unwrap();
        assert_eq!(edges.len(), 3);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge(edges[1]).push_rate(), 4);
    }

    #[test]
    fn split_join_helper_shapes_graph() {
        let mut b = GraphBuilder::new("t");
        let s = b.add_node("s", NodeKind::Source);
        let r = b.add_node("r", NodeKind::Filter);
        let gch = b.add_node("g", NodeKind::Filter);
        let bl = b.add_node("b", NodeKind::Filter);
        let post = b.add_node("post", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        let (split, join) = b
            .split_join_duplicate("rgb", s, &[r, gch, bl], post, 192, 64)
            .unwrap();
        b.connect(post, k, 192, 192).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.node(split).kind(), NodeKind::SplitDuplicate);
        assert_eq!(g.node(join).kind(), NodeKind::JoinRoundRobin);
        assert_eq!(g.node(join).inputs().len(), 3);
        assert_eq!(g.edge(g.node(join).outputs()[0]).push_rate(), 192);
    }
}
