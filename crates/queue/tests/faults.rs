//! Fault-surface tests for the queue: pointer corruption under both
//! protection modes, header-payload corruption (the unprotected-header
//! ablation hook), and the invariant-validation recovery path.

use cg_queue::{PointerMode, QueueSpec, SimQueue, Unit, Which};

fn spec(mode: PointerMode) -> QueueSpec {
    QueueSpec {
        capacity: 64,
        workset_size: 8,
        pointer_mode: mode,
    }
}

/// ECC pointers: any two corruptions between loads are either corrected
/// or recovered conservatively — the apparent occupancy can never exceed
/// the capacity (the QM invariant), so no phantom-item floods exist.
#[test]
fn ecc_pointer_corruption_never_floods() {
    for bits in [[3u32, 3], [3, 17], [31, 30], [0, 38]] {
        let mut q = SimQueue::new(spec(PointerMode::Ecc));
        for i in 0..16u32 {
            q.try_push(Unit::Item(i)).unwrap();
        }
        q.flush();
        q.corrupt_shared_pointer(Which::Tail, bits[0]);
        q.corrupt_shared_pointer(Which::Tail, bits[1]);
        // Drain: at most the 16 real items come out; after that the
        // queue must report empty (no garbage supply).
        let mut popped = 0;
        while q.try_pop().is_some() {
            popped += 1;
            assert!(popped <= 16, "phantom items after corruption {bits:?}");
        }
        assert!(popped <= 16);
    }
}

/// Raw pointers: a high-bit tail corruption *does* flood (that is the
/// paper's Fig. 3b failure), supplying garbage indefinitely.
#[test]
fn raw_pointer_corruption_floods() {
    let mut q = SimQueue::new(spec(PointerMode::Raw));
    q.try_push(Unit::Item(1)).unwrap();
    q.flush();
    let _ = q.try_pop();
    q.corrupt_shared_pointer(Which::Tail, 20);
    let mut garbage = 0;
    for _ in 0..1000 {
        if q.try_pop().is_some() {
            garbage += 1;
        }
    }
    assert_eq!(
        garbage, 1000,
        "unprotected queues keep transmitting garbage"
    );
}

/// Header payload corruption flips the decoded frame id silently (no
/// ECC signal) — the §4.1 ablation surface.
#[test]
fn header_payload_corruption_is_silent() {
    let mut q = SimQueue::new(spec(PointerMode::Ecc));
    q.try_push(Unit::header(5)).unwrap();
    q.try_push(Unit::Item(1)).unwrap();
    q.flush();
    assert!(q.corrupt_random_header_payload(0, 1));
    let h = q.try_pop().unwrap();
    assert!(h.is_header());
    assert_eq!(
        h.header_id(),
        Some(7),
        "bit 1 of id 5 flipped: 5 ^ 2 = 7, no detection"
    );
}

/// With no header in flight the corruption hook reports a miss.
#[test]
fn header_corruption_misses_when_no_headers() {
    let mut q = SimQueue::new(spec(PointerMode::Ecc));
    q.try_push(Unit::Item(1)).unwrap();
    q.flush();
    assert!(!q.corrupt_random_header_payload(7, 3));
}

/// Buffer-slot corruption perturbs exactly the stored unit.
#[test]
fn buffer_corruption_localised() {
    let mut q = SimQueue::new(spec(PointerMode::Ecc));
    for i in 0..8u32 {
        q.try_push(Unit::Item(i)).unwrap();
    }
    q.corrupt_buffer_slot(3, 0);
    q.flush();
    let drained: Vec<u32> = std::iter::from_fn(|| q.try_pop())
        .filter_map(|u| u.item_value())
        .collect();
    assert_eq!(drained, vec![0, 1, 2, 2, 4, 5, 6, 7]); // 3 ^ 1 = 2
}
