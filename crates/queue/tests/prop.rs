//! Property tests: the queue is a faithful FIFO under arbitrary
//! interleavings of operations, as long as no faults are injected.

use cg_queue::{PointerMode, QueueSpec, SimQueue, Unit};
use proptest::prelude::*;

/// An abstract queue operation.
#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u32>().prop_map(Op::Push),
        3 => Just(Op::Pop),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    /// Against a `VecDeque` model: every popped unit matches FIFO order;
    /// pops may lag (working-set visibility) but never reorder, duplicate,
    /// or invent data.
    #[test]
    fn fifo_against_model(
        ops in prop::collection::vec(op_strategy(), 1..200),
        cap_pow in 3u32..7,
        mode_ecc in any::<bool>(),
    ) {
        let capacity = 1usize << cap_pow;
        let spec = QueueSpec {
            capacity,
            workset_size: capacity / 8,
            pointer_mode: if mode_ecc { PointerMode::Ecc } else { PointerMode::Raw },
        };
        let mut q = SimQueue::new(spec);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut in_queue = 0usize;
        for op in ops {
            match op {
                Op::Push(v) => {
                    if q.try_push(Unit::Item(v)).is_ok() {
                        model.push_back(v);
                        in_queue += 1;
                    } else {
                        // A rejected push means the queue is full up to
                        // working-set visibility lag: the consumer may have
                        // up to workset_size-1 unpublished pops.
                        prop_assert!(
                            in_queue > capacity - spec.workset_size,
                            "spurious full at occupancy {in_queue}/{capacity}"
                        );
                    }
                }
                Op::Pop => {
                    if let Some(u) = q.try_pop() {
                        let expect = model.pop_front().expect("model empty but queue popped");
                        prop_assert_eq!(u, Unit::Item(expect));
                        in_queue -= 1;
                    }
                }
                Op::Flush => q.flush(),
            }
        }
        // After a flush, everything still buffered is poppable in order.
        q.flush();
        while let Some(u) = q.try_pop() {
            let expect = model.pop_front().expect("model drained first");
            prop_assert_eq!(u, Unit::Item(expect));
        }
        prop_assert!(model.is_empty(), "queue lost {} items", model.len());
    }

    /// Stats invariants: pops never exceed pushes; loads/stores are
    /// consistent with the op counts.
    #[test]
    fn stats_are_consistent(pushes in 0usize..100, pops in 0usize..150) {
        let mut q = SimQueue::new(QueueSpec::with_capacity(128));
        let mut ok_push = 0u64;
        for i in 0..pushes {
            if q.try_push(Unit::Item(i as u32)).is_ok() {
                ok_push += 1;
            }
        }
        q.flush();
        let mut ok_pop = 0u64;
        for _ in 0..pops {
            if q.try_pop().is_some() {
                ok_pop += 1;
            }
        }
        let s = *q.stats();
        prop_assert_eq!(s.stores(), ok_push);
        prop_assert_eq!(s.loads(), ok_pop);
        prop_assert!(ok_pop <= ok_push);
    }
}
