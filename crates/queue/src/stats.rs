//! Queue traffic statistics — the raw material for the paper's Fig. 12
//! (header memory events vs. all memory events) and §7.2 overheads.

use std::fmt;
use std::ops::AddAssign;

use cg_ecc::EccStats;

/// Counters accumulated by a [`crate::SimQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Successful item pushes (each is one data store).
    pub item_pushes: u64,
    /// Successful header pushes (each is one extra header store).
    pub header_pushes: u64,
    /// Successful item pops (each is one data load).
    pub item_pops: u64,
    /// Successful header pops (each is one extra header load).
    pub header_pops: u64,
    /// Push attempts rejected because the queue appeared full.
    pub blocked_pushes: u64,
    /// Pop attempts rejected because the queue appeared empty.
    pub blocked_pops: u64,
    /// Forced pushes after a queue-manager timeout.
    pub timeout_pushes: u64,
    /// Forced pops after a queue-manager timeout.
    pub timeout_pops: u64,
    /// Shared-pointer loads (refreshes after apparent-full/empty).
    pub shared_ptr_reads: u64,
    /// Shared-pointer stores (working-set publishes).
    pub shared_ptr_writes: u64,
    /// Working sets published by the producer side.
    pub workset_publishes: u64,
    /// Fault-injection events targeting shared pointers.
    pub pointer_corruptions: u64,
    /// Fault-injection events targeting in-flight header codewords.
    pub header_corruptions: u64,
    /// Highest occupancy observed after any push (exact local pointers).
    pub max_occupancy: u64,
    /// ECC activity on the shared pointers.
    pub ecc: EccStats,
}

impl QueueStats {
    /// All data loads performed through the queue (item + header pops).
    pub fn loads(&self) -> u64 {
        self.item_pops + self.header_pops
    }

    /// All data stores performed through the queue (item + header pushes).
    pub fn stores(&self) -> u64 {
        self.item_pushes + self.header_pushes
    }

    /// Records a successful push.
    pub(crate) fn record_push(&mut self, header: bool) {
        if header {
            self.header_pushes += 1;
        } else {
            self.item_pushes += 1;
        }
    }

    /// Tracks the high-water occupancy mark.
    pub(crate) fn note_occupancy(&mut self, depth: u32) {
        self.max_occupancy = self.max_occupancy.max(depth as u64);
    }

    /// Records a successful pop.
    pub(crate) fn record_pop(&mut self, header: bool) {
        if header {
            self.header_pops += 1;
        } else {
            self.item_pops += 1;
        }
    }

    /// Records a run of successful pushes in one step — the aggregated
    /// form of calling [`Self::record_push`] once per unit.
    pub(crate) fn record_pushes(&mut self, items: u64, headers: u64) {
        self.item_pushes += items;
        self.header_pushes += headers;
    }

    /// Records a run of successful pops in one step — the aggregated form
    /// of calling [`Self::record_pop`] once per unit.
    pub(crate) fn record_pops(&mut self, items: u64, headers: u64) {
        self.item_pops += items;
        self.header_pops += headers;
    }
}

impl AddAssign for QueueStats {
    fn add_assign(&mut self, rhs: Self) {
        self.item_pushes += rhs.item_pushes;
        self.header_pushes += rhs.header_pushes;
        self.item_pops += rhs.item_pops;
        self.header_pops += rhs.header_pops;
        self.blocked_pushes += rhs.blocked_pushes;
        self.blocked_pops += rhs.blocked_pops;
        self.timeout_pushes += rhs.timeout_pushes;
        self.timeout_pops += rhs.timeout_pops;
        self.shared_ptr_reads += rhs.shared_ptr_reads;
        self.shared_ptr_writes += rhs.shared_ptr_writes;
        self.workset_publishes += rhs.workset_publishes;
        self.pointer_corruptions += rhs.pointer_corruptions;
        self.header_corruptions += rhs.header_corruptions;
        // A high-water mark merges by max, not by sum.
        self.max_occupancy = self.max_occupancy.max(rhs.max_occupancy);
        self.ecc += rhs.ecc;
    }
}

impl fmt::Display for QueueStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue: {} item pushes, {} item pops, {} hdr pushes, {} hdr pops, \
             {} blocked, {} timeouts",
            self.item_pushes,
            self.item_pops,
            self.header_pushes,
            self.header_pops,
            self.blocked_pushes + self.blocked_pops,
            self.timeout_pushes + self.timeout_pops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_stores_aggregate() {
        let s = QueueStats {
            item_pushes: 10,
            header_pushes: 2,
            item_pops: 8,
            header_pops: 1,
            ..Default::default()
        };
        assert_eq!(s.stores(), 12);
        assert_eq!(s.loads(), 9);
    }

    #[test]
    fn add_assign_merges_everything() {
        let mut a = QueueStats {
            item_pushes: 1,
            blocked_pops: 2,
            ..Default::default()
        };
        let b = QueueStats {
            item_pushes: 3,
            blocked_pops: 4,
            timeout_pops: 5,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.item_pushes, 4);
        assert_eq!(a.blocked_pops, 6);
        assert_eq!(a.timeout_pops, 5);
    }

    #[test]
    fn max_occupancy_merges_by_max_not_sum() {
        let mut a = QueueStats {
            max_occupancy: 7,
            ..Default::default()
        };
        let b = QueueStats {
            max_occupancy: 5,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.max_occupancy, 7);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!QueueStats::default().to_string().is_empty());
    }
}
