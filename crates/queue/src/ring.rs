//! The bounded FIFO implementing one stream-graph edge.

use std::fmt;
use std::sync::Arc;

use cg_trace::{Event, PtrTag, Tracer};

use crate::ptr::{PointerMode, PtrCell, Which};
use crate::spsc::{AtomicPtrCell, CachePadded, SharedSlots};
use crate::stats::QueueStats;
use crate::unit::Unit;

/// Configuration of a [`SimQueue`].
///
/// Defaults mirror the paper's §5.1 queue: a memory region split into 8
/// working-set sub-regions so that shared head/tail pointers are touched
/// once per working set rather than once per item, with ECC-protected
/// shared pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSpec {
    /// Total buffer capacity in units.
    pub capacity: usize,
    /// Units per working set (shared-pointer publish granularity).
    pub workset_size: usize,
    /// Protection of the shared head/tail pointers.
    pub pointer_mode: PointerMode,
}

impl QueueSpec {
    /// A spec with the given capacity, 8 working sets, ECC pointers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 8`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 8, "capacity must be at least 8");
        QueueSpec {
            capacity,
            workset_size: capacity / 8,
            pointer_mode: PointerMode::Ecc,
        }
    }

    /// Returns the spec with a different pointer mode.
    #[must_use]
    pub fn pointer_mode(mut self, mode: PointerMode) -> Self {
        self.pointer_mode = mode;
        self
    }
}

impl Default for QueueSpec {
    fn default() -> Self {
        QueueSpec::with_capacity(4096)
    }
}

/// Error returned by [`SimQueue::try_push`] when the queue appears full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError(pub Unit);

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue full")
    }
}

impl std::error::Error for PushError {}

/// Slot storage: a plain vector when one owner holds the whole queue (the
/// deterministic executor, or a mutex-guarded [`crate::SharedQueue`]), or
/// an atomic array shared by a lock-free producer/consumer view pair.
#[derive(Clone)]
enum Slots {
    Local(Vec<Unit>),
    Shared(Arc<SharedSlots>),
}

impl Slots {
    fn get(&self, idx: usize) -> Unit {
        match self {
            Slots::Local(v) => v[idx],
            Slots::Shared(s) => s.get(idx),
        }
    }

    fn set(&mut self, idx: usize, unit: Unit) {
        match self {
            Slots::Local(v) => v[idx] = unit,
            Slots::Shared(s) => s.set(idx, unit),
        }
    }

    fn is_shared(&self) -> bool {
        matches!(self, Slots::Shared(_))
    }

    fn capacity(&self) -> usize {
        match self {
            Slots::Local(v) => v.len(),
            Slots::Shared(s) => s.len(),
        }
    }

    /// Writes `units` into consecutive ring slots starting at ring index
    /// `idx`, split into two windows when the run crosses the wrap point.
    /// Local storage takes a `copy_from_slice` per window; shared storage
    /// a tight run of `Relaxed` stores (ordered, as ever, by the release
    /// publish of the shared tail pointer).
    fn write_run(&mut self, idx: usize, units: &[Unit]) {
        let first = units.len().min(self.capacity() - idx);
        match self {
            Slots::Local(v) => {
                v[idx..idx + first].copy_from_slice(&units[..first]);
                v[..units.len() - first].copy_from_slice(&units[first..]);
            }
            Slots::Shared(s) => {
                s.write_run(idx, &units[..first]);
                s.write_run(0, &units[first..]);
            }
        }
    }

    /// Reads `n` consecutive ring slots starting at ring index `idx` into
    /// `out` (two windows across the wrap point; see [`Self::write_run`]).
    fn read_run(&self, idx: usize, n: usize, out: &mut Vec<Unit>) {
        let first = n.min(self.capacity() - idx);
        match self {
            Slots::Local(v) => {
                out.extend_from_slice(&v[idx..idx + first]);
                out.extend_from_slice(&v[..n - first]);
            }
            Slots::Shared(s) => {
                s.read_run(idx, first, out);
                s.read_run(0, n - first, out);
            }
        }
    }
}

impl fmt::Debug for Slots {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slots::Local(v) => write!(f, "Slots::Local(len={})", v.len()),
            Slots::Shared(s) => write!(f, "Slots::Shared(len={})", s.len()),
        }
    }
}

/// A shared head/tail pointer: in-place cell for single-owner queues, or
/// a cache-line-padded atomic cell shared by a lock-free view pair.
#[derive(Clone)]
enum PtrSlot {
    Local(PtrCell),
    Shared(Arc<CachePadded<AtomicPtrCell>>),
}

impl PtrSlot {
    fn load(&mut self, stats: &mut cg_ecc::EccStats) -> Option<u32> {
        match self {
            PtrSlot::Local(c) => c.load(stats),
            PtrSlot::Shared(c) => c.0.load_scrub(stats),
        }
    }

    fn store(&mut self, value: u32, stats: &mut cg_ecc::EccStats) {
        match self {
            PtrSlot::Local(c) => c.store(value, stats),
            PtrSlot::Shared(c) => c.0.store(value, stats),
        }
    }

    fn inject_flip(&mut self, bit: u32) {
        match self {
            PtrSlot::Local(c) => c.inject_flip(bit),
            PtrSlot::Shared(c) => c.0.inject_flip(bit),
        }
    }
}

impl fmt::Debug for PtrSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtrSlot::Local(c) => write!(f, "PtrSlot::Local({c:?})"),
            PtrSlot::Shared(c) => write!(f, "PtrSlot::Shared({:?})", c.0),
        }
    }
}

/// Which cursors this [`SimQueue`] value is allowed to publish. A
/// single-owner queue publishes both; a lock-free view publishes only its
/// own side's cursor, so a misdirected `flush()` (or a cross-view call)
/// can never rewind the peer's published progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Both,
    Producer,
    Consumer,
}

/// A simulated inter-core queue.
///
/// Functionally a bounded FIFO of [`Unit`]s, but structured like the
/// paper's hardware queue: the producer and consumer keep exact *local*
/// pointers in reliable on-core storage (the QIT) and synchronise through
/// *shared* pointers in memory, published once per working set. The shared
/// pointers are the fault surface: in [`PointerMode::Raw`] a
/// [`SimQueue::corrupt_shared_pointer`] call silently and permanently
/// skews all subsequent transfers, reproducing the paper's QME failures.
#[derive(Debug, Clone)]
pub struct SimQueue {
    spec: QueueSpec,
    slots: Slots,
    /// Consumer-exact read counter (reliable, on-core).
    head: u32,
    /// Producer-exact write counter (reliable, on-core).
    tail: u32,
    /// Shared pointers (in-memory, corruptible per mode).
    shared_head: PtrSlot,
    shared_tail: PtrSlot,
    /// Producer's last-seen shared head / consumer's last-seen shared tail.
    seen_head: u32,
    seen_tail: u32,
    /// Publish permissions for this value (see [`Role`]).
    role: Role,
    stats: QueueStats,
    /// Trace stream (disabled by default) and the edge id stamped onto
    /// emitted queue events.
    tracer: Tracer,
    edge: u32,
}

impl SimQueue {
    /// Creates an empty queue.
    pub fn new(spec: QueueSpec) -> Self {
        SimQueue {
            spec,
            slots: Slots::Local(vec![Unit::Item(0); spec.capacity]),
            head: 0,
            tail: 0,
            shared_head: PtrSlot::Local(PtrCell::new(spec.pointer_mode, 0)),
            shared_tail: PtrSlot::Local(PtrCell::new(spec.pointer_mode, 0)),
            seen_head: 0,
            seen_tail: 0,
            role: Role::Both,
            stats: QueueStats::default(),
            tracer: Tracer::disabled(),
            edge: 0,
        }
    }

    /// Creates the two views of a lock-free SPSC pair: one queue's slot
    /// storage and shared pointers in atomic storage, seen through a
    /// producer-role view and a consumer-role view. Each view keeps its
    /// own exact cursor, cached peer cursor, statistics, and tracer —
    /// exactly the paper's per-core queue state — so every `SimQueue`
    /// method runs unchanged on a view; the atomics only change *where*
    /// the shared pointers and slots live.
    pub(crate) fn spsc_views(spec: QueueSpec) -> (SimQueue, SimQueue) {
        let slots = Arc::new(SharedSlots::new(spec.capacity));
        let head = Arc::new(CachePadded(AtomicPtrCell::new(spec.pointer_mode, 0)));
        let tail = Arc::new(CachePadded(AtomicPtrCell::new(spec.pointer_mode, 0)));
        let view = |role: Role| SimQueue {
            spec,
            slots: Slots::Shared(Arc::clone(&slots)),
            head: 0,
            tail: 0,
            shared_head: PtrSlot::Shared(Arc::clone(&head)),
            shared_tail: PtrSlot::Shared(Arc::clone(&tail)),
            seen_head: 0,
            seen_tail: 0,
            role,
            stats: QueueStats::default(),
            tracer: Tracer::disabled(),
            edge: 0,
        };
        (view(Role::Producer), view(Role::Consumer))
    }

    /// Connects this queue to a trace stream, stamping its events with
    /// `edge` (the stream-graph edge index).
    pub fn attach_tracer(&mut self, tracer: Tracer, edge: u32) {
        self.tracer = tracer;
        self.edge = edge;
    }

    /// The queue's configuration.
    pub fn spec(&self) -> &QueueSpec {
        &self.spec
    }

    /// Exact current occupancy, clamped to `[0, capacity]`: timeout pops
    /// can run the head past the tail, which would otherwise wrap the
    /// unsigned difference to a huge value.
    pub fn occupancy(&self) -> u32 {
        let d = self.tail.wrapping_sub(self.head);
        if d > self.spec.capacity as u32 {
            0
        } else {
            d
        }
    }

    /// Units currently buffered according to the exact local pointers.
    /// (The *visible* count at the consumer may be smaller until the
    /// producer publishes its working set.)
    pub fn len(&self) -> usize {
        self.tail.wrapping_sub(self.head) as usize
    }

    /// `true` when no units are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Mutable statistics access (used by wrappers layering their own
    /// accounting onto the queue's).
    pub fn stats_mut(&mut self) -> &mut QueueStats {
        &mut self.stats
    }

    /// Attempts to push `unit`.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] when the queue appears full (per the possibly
    /// corrupted shared head pointer).
    pub fn try_push(&mut self, unit: Unit) -> Result<(), PushError> {
        if self.apparent_used() >= self.spec.capacity as u32 {
            self.refresh_seen_head();
            if self.apparent_used() >= self.spec.capacity as u32 {
                self.stats.blocked_pushes += 1;
                return Err(PushError(unit));
            }
        }
        self.push_unchecked(unit);
        Ok(())
    }

    /// Pushes units from `slice` until the queue appears full, returning
    /// how many were accepted. The free ring segment is reserved once per
    /// refresh of the cached head cursor and filled with no further
    /// cursor synchronisation; per-unit statistics, ECC pointer handling,
    /// header accounting, and workset publication are identical to
    /// pushing one at a time.
    pub fn push_slice(&mut self, slice: &[Unit]) -> usize {
        let cap = self.spec.capacity as u32;
        let mut written = 0;
        while written < slice.len() {
            if self.apparent_used() >= cap {
                self.refresh_seen_head();
                if self.apparent_used() >= cap {
                    self.stats.blocked_pushes += 1;
                    return written;
                }
            }
            // Reserve the apparent free segment in one step.
            let free = (cap - self.apparent_used()) as usize;
            let n = free.min(slice.len() - written);
            if self.tracer.is_enabled() {
                // Traced runs keep the per-unit loop so the emitted event
                // stream is byte-identical to one-at-a-time pushing.
                for &unit in &slice[written..written + n] {
                    self.push_unchecked(unit);
                }
            } else {
                self.fill_run(&slice[written..written + n]);
            }
            written += n;
        }
        written
    }

    /// Bulk-appends a reserved run: zero-copy slot writes into the ring
    /// segment, chunked at workset boundaries (and the u32 cursor wrap) so
    /// every boundary publish — and its shared-pointer/ECC/stat activity —
    /// happens exactly where the per-unit path would perform it.
    fn fill_run(&mut self, units: &[Unit]) {
        let cap = self.spec.capacity;
        let ws = self.spec.workset_size as u32;
        let mut done = 0;
        while done < units.len() {
            let to_boundary = (ws - self.tail % ws) as usize;
            let to_wrap = (u32::MAX - self.tail) as usize + 1;
            let c = (units.len() - done).min(to_boundary).min(to_wrap);
            let chunk = &units[done..done + c];
            self.slots.write_run(self.tail as usize % cap, chunk);
            self.tail = self.tail.wrapping_add(c as u32);
            let headers = chunk.iter().filter(|u| u.is_header()).count() as u64;
            self.stats.record_pushes(c as u64 - headers, headers);
            // Occupancy grows monotonically over the run, so noting the
            // post-chunk depth reproduces the per-unit high-water mark.
            self.stats.note_occupancy(self.occupancy());
            if self.tail.is_multiple_of(ws) {
                self.publish_tail();
            }
            done += c;
        }
    }

    /// Pops up to `max` units into `out`, stopping early when the queue
    /// appears empty, and returns how many were delivered. The available
    /// segment is reserved once per refresh of the cached tail cursor
    /// (see [`Self::push_slice`]); per-unit semantics match
    /// [`Self::try_pop`] exactly.
    pub fn pop_slice(&mut self, out: &mut Vec<Unit>, max: usize) -> usize {
        let mut popped = 0;
        while popped < max {
            if self.apparent_available() == 0 {
                self.refresh_seen_tail();
                if self.apparent_available() == 0 {
                    self.stats.blocked_pops += 1;
                    return popped;
                }
            }
            let avail = self.apparent_available() as usize;
            let n = avail.min(max - popped);
            if self.tracer.is_enabled() {
                // Traced runs keep the per-unit loop (see `push_slice`).
                for _ in 0..n {
                    let unit = self.pop_unchecked();
                    out.push(unit);
                }
            } else {
                self.drain_run(out, n);
            }
            popped += n;
        }
        popped
    }

    /// Bulk-removes an available run: zero-copy slot reads out of the ring
    /// segment, head advanced per chunk with the same boundary publishes
    /// as per-unit popping (see [`Self::fill_run`] for the chunking
    /// contract).
    fn drain_run(&mut self, out: &mut Vec<Unit>, n: usize) {
        let cap = self.spec.capacity;
        let ws = self.spec.workset_size as u32;
        let mut done = 0;
        while done < n {
            let to_boundary = (ws - self.head % ws) as usize;
            let to_wrap = (u32::MAX - self.head) as usize + 1;
            let c = (n - done).min(to_boundary).min(to_wrap);
            let start = out.len();
            self.slots.read_run(self.head as usize % cap, c, out);
            let headers = out[start..].iter().filter(|u| u.is_header()).count() as u64;
            self.head = self.head.wrapping_add(c as u32);
            self.stats.record_pops(c as u64 - headers, headers);
            if self.head.is_multiple_of(ws) {
                self.publish_head();
            }
            done += c;
        }
    }

    /// Pushes plain item payloads without the caller materialising
    /// [`Unit`]s — the bulk entry point for executors staging raw `u32`
    /// frames. Blocking, statistics, and workset publication are identical
    /// to [`Self::push_slice`] over `Unit::Item`s.
    pub fn push_items(&mut self, items: &[u32]) -> usize {
        let mut buf = [Unit::Item(0); 64];
        let mut written = 0;
        while written < items.len() {
            let n = (items.len() - written).min(buf.len());
            for (slot, &v) in buf.iter_mut().zip(&items[written..written + n]) {
                *slot = Unit::Item(v);
            }
            let accepted = self.push_slice(&buf[..n]);
            written += accepted;
            if accepted < n {
                break;
            }
        }
        written
    }

    /// Pops up to `max` *item* payloads into `out`, stopping early at the
    /// visible end of the queue or just before the first in-flight header;
    /// the header is left queued so the alignment machinery can pop it
    /// through its FSM. Returns the delivered count and whether a header
    /// was hit. Statistics match popping each delivered item with
    /// [`Self::try_pop`]; stopping at a header costs nothing extra.
    pub fn pop_items(&mut self, out: &mut Vec<u32>, max: usize) -> (usize, bool) {
        let cap = self.spec.capacity;
        let mut popped = 0;
        while popped < max {
            if self.apparent_available() == 0 {
                self.refresh_seen_tail();
                if self.apparent_available() == 0 {
                    self.stats.blocked_pops += 1;
                    return (popped, false);
                }
            }
            let avail = (self.apparent_available() as usize).min(max - popped);
            // Peek the run and take only its item prefix; commit the head
            // afterwards so a header is never consumed here.
            let start = out.len();
            let mut hit_header = false;
            for i in 0..avail {
                match self.slots.get((self.head as usize + i) % cap) {
                    Unit::Item(v) => out.push(v),
                    Unit::Header(_) => {
                        hit_header = true;
                        break;
                    }
                }
            }
            let taken = out.len() - start;
            if self.tracer.is_enabled() {
                // Re-walk the prefix per-unit for a byte-identical event
                // stream (the peek above already decided where to stop).
                out.truncate(start);
                for _ in 0..taken {
                    match self.pop_unchecked() {
                        Unit::Item(v) => out.push(v),
                        Unit::Header(_) => unreachable!("peek found an item here"),
                    }
                }
            } else {
                self.commit_pops(taken);
            }
            popped += taken;
            if hit_header {
                return (popped, true);
            }
        }
        (popped, false)
    }

    /// Advances the head past `n` already-read item slots, with the same
    /// boundary publishes and pop accounting as per-unit popping.
    fn commit_pops(&mut self, n: usize) {
        let ws = self.spec.workset_size as u32;
        let mut done = 0;
        while done < n {
            let to_boundary = (ws - self.head % ws) as usize;
            let to_wrap = (u32::MAX - self.head) as usize + 1;
            let c = (n - done).min(to_boundary).min(to_wrap);
            self.head = self.head.wrapping_add(c as u32);
            self.stats.record_pops(c as u64, 0);
            if self.head.is_multiple_of(ws) {
                self.publish_head();
            }
            done += c;
        }
    }

    /// Forces a push past a full condition, overwriting (dropping) the
    /// oldest unconsumed unit. Models the queue-manager timeout of §5.1
    /// ("a timeout may cause incorrect data to be transmitted"): the
    /// consumer silently loses the overwritten unit.
    ///
    /// On a lock-free producer view the head cursor is consumer-owned and
    /// cannot be advanced from here; a genuinely full ring instead takes
    /// the overwrite in place at the oldest in-flight slot, without moving
    /// either cursor — the same drop-oldest data loss, expressed as a slot
    /// overwrite the racing consumer may or may not observe. Both shapes
    /// count one timeout push and one recorded push.
    pub fn timeout_push(&mut self, unit: Unit) {
        if self.slots.is_shared() {
            if self.apparent_used() >= self.spec.capacity as u32 {
                self.refresh_seen_head();
            }
            if self.apparent_used() >= self.spec.capacity as u32 {
                // Truly full: overwrite the oldest in-flight unit in place.
                let idx = self.seen_head as usize % self.spec.capacity;
                self.slots.set(idx, unit);
                self.stats.timeout_pushes += 1;
                self.stats.record_push(unit.is_header());
                self.tracer.emit(Event::TimeoutPush {
                    edge: self.edge,
                    header: unit.is_header(),
                    depth: self.occupancy(),
                });
                self.publish_tail();
                return;
            }
        } else if self.len() >= self.spec.capacity {
            // Ring overwrite: the oldest unit is gone.
            self.head = self.head.wrapping_add(1);
            self.publish_head();
        }
        let idx = self.tail as usize % self.spec.capacity;
        self.slots.set(idx, unit);
        self.tail = self.tail.wrapping_add(1);
        self.stats.timeout_pushes += 1;
        self.stats.record_push(unit.is_header());
        let depth = self.occupancy();
        self.stats.note_occupancy(depth);
        self.tracer.emit(Event::TimeoutPush {
            edge: self.edge,
            header: unit.is_header(),
            depth,
        });
        self.publish_tail();
    }

    /// Attempts to pop the next unit, returning `None` when the queue
    /// appears empty (per the possibly corrupted shared tail pointer).
    pub fn try_pop(&mut self) -> Option<Unit> {
        if self.apparent_available() == 0 {
            self.refresh_seen_tail();
            if self.apparent_available() == 0 {
                self.stats.blocked_pops += 1;
                return None;
            }
        }
        Some(self.pop_unchecked())
    }

    /// Forces a pop past an empty condition, returning whatever stale unit
    /// occupies the head slot (queue-manager timeout behaviour).
    pub fn timeout_pop(&mut self) -> Unit {
        let idx = self.head as usize % self.spec.capacity;
        let unit = self.slots.get(idx);
        self.head = self.head.wrapping_add(1);
        self.stats.timeout_pops += 1;
        self.stats.record_pop(unit.is_header());
        self.tracer.emit(Event::TimeoutPop {
            edge: self.edge,
            depth: self.occupancy(),
        });
        self.publish_head();
        unit
    }

    /// Publishes any partially filled producer working set so the consumer
    /// can see it. Called by the runtime at frame-computation boundaries
    /// and at end of stream.
    pub fn flush(&mut self) {
        self.publish_tail();
    }

    /// Fault hook: flips `bit` of a shared pointer.
    pub fn corrupt_shared_pointer(&mut self, which: Which, bit: u32) {
        match which {
            Which::Head => self.shared_head.inject_flip(bit),
            Which::Tail => self.shared_tail.inject_flip(bit),
        }
        self.stats.pointer_corruptions += 1;
        self.tracer.emit(Event::PointerCorrupt {
            edge: self.edge,
            which: match which {
                Which::Head => PtrTag::Head,
                Which::Tail => PtrTag::Tail,
            },
            bit,
        });
    }

    /// Fault hook: flips `bit` within the buffered unit at buffer slot
    /// `slot` (item payloads take the flip modulo 32; header codewords
    /// modulo the codeword width, where ECC will handle it).
    pub fn corrupt_buffer_slot(&mut self, slot: usize, bit: u32) {
        let idx = slot % self.spec.capacity;
        let corrupted = match self.slots.get(idx) {
            Unit::Item(v) => Unit::Item(v ^ (1 << (bit % 32))),
            Unit::Header(cw) => Unit::Header(cw.with_flipped_bit(bit % cg_ecc::CODEWORD_BITS)),
        };
        self.slots.set(idx, corrupted);
    }

    /// Fault hook for the *unprotected-header* ablation: picks one
    /// in-flight header (using `slot_seed` to select among them), flips
    /// `bit` of its frame id, and re-encodes — modelling a header whose
    /// payload is not end-to-end ECC protected, so the corruption is
    /// silent. Returns `false` when no header is in flight.
    pub fn corrupt_random_header_payload(&mut self, slot_seed: u32, bit: u32) -> bool {
        let cap = self.spec.capacity;
        // Bounded scan: corruption strikes the in-flight region near the
        // head (scanning the whole region per fault would be O(capacity)
        // per event for no modelling benefit).
        let len = self.len().min(cap).min(1024);
        let headers: Vec<usize> = (0..len)
            .map(|i| (self.head as usize + i) % cap)
            .filter(|&s| self.slots.get(s).is_header())
            .collect();
        if headers.is_empty() {
            return false;
        }
        let slot = headers[slot_seed as usize % headers.len()];
        if let Some(id) = self.slots.get(slot).header_id() {
            self.slots.set(slot, Unit::header(id ^ (1 << (bit % 32))));
        }
        true
    }

    /// Fault hook for the *header-corruption* fault class: picks one
    /// in-flight header (using `slot_seed` to select among them) and flips
    /// `bits` distinct bits of its stored **codeword**, exercising the
    /// HI/AM ECC path — one flipped bit is corrected, two are detected
    /// (SECDED) and the AM recovers conservatively. Returns `false` when
    /// no header is in flight.
    pub fn corrupt_random_header_codeword(&mut self, slot_seed: u32, bits: u32) -> bool {
        let cap = self.spec.capacity;
        // Same bounded scan as `corrupt_random_header_payload`: faults
        // strike the in-flight region near the head.
        let len = self.len().min(cap).min(1024);
        let headers: Vec<usize> = (0..len)
            .map(|i| (self.head as usize + i) % cap)
            .filter(|&s| self.slots.get(s).is_header())
            .collect();
        if headers.is_empty() {
            return false;
        }
        let slot = headers[slot_seed as usize % headers.len()];
        if let Unit::Header(mut cw) = self.slots.get(slot) {
            // Derive distinct bit positions from the seed: a stride
            // coprime to the width walks every position.
            let width = cg_ecc::CODEWORD_BITS;
            let start = slot_seed % width;
            for k in 0..bits.min(width) {
                cw = cw.with_flipped_bit((start + k * 7) % width);
            }
            self.slots.set(slot, Unit::Header(cw));
        }
        self.stats.header_corruptions += 1;
        self.tracer.emit(Event::HeaderCorrupt {
            edge: self.edge,
            bits,
        });
        true
    }

    /// Units the producer believes are in flight (tail − last-seen head).
    fn apparent_used(&self) -> u32 {
        self.tail.wrapping_sub(self.seen_head)
    }

    /// Units the consumer believes are available (last-seen tail − head).
    /// Timeout pops can run the exact head past every published tail; the
    /// reliable QM applies the same occupancy invariant as
    /// [`Self::refresh_seen_tail`] and reads such a view as empty rather
    /// than as a near-`2^32` flood of stale slots. Unprotected pointers
    /// keep the raw wrapped difference — a corrupted tail flooding the
    /// consumer with garbage is part of the modeled failure.
    fn apparent_available(&self) -> u32 {
        let d = self.seen_tail.wrapping_sub(self.head);
        if self.spec.pointer_mode == PointerMode::Ecc && d > self.spec.capacity as u32 {
            0
        } else {
            d
        }
    }

    /// Refreshes the cached head cursor from the shared pointer — the
    /// producer's only synchronisation with the consumer, taken on
    /// apparent-full. An uncorrectable corruption (ECC detection)
    /// recovers with the conservative assumption that nothing was
    /// consumed (full); the reliable QM also rejects values violating the
    /// queue invariant (a valid head is never ahead of the tail nor more
    /// than a capacity behind it), which catches the rare SECDED
    /// miscorrection of multi-bit corruption.
    fn refresh_seen_head(&mut self) {
        let fallback = self.tail.wrapping_sub(self.spec.capacity as u32);
        let loaded = self.shared_head.load(&mut self.stats.ecc);
        self.seen_head = match (self.spec.pointer_mode, loaded) {
            (PointerMode::Ecc, Some(h))
                if self.tail.wrapping_sub(h) > self.spec.capacity as u32 =>
            {
                fallback
            }
            (_, Some(h)) => h,
            (_, None) => fallback,
        };
        if self.slots.is_shared() {
            // A producer view has no exact head of its own; mirror the
            // freshest published value so occupancy/tracing stay sane.
            self.head = self.seen_head;
        }
        self.stats.shared_ptr_reads += 1;
    }

    /// Refreshes the cached tail cursor from the shared pointer — the
    /// consumer's only synchronisation with the producer, taken on
    /// apparent-empty. Uncorrectable corruption recovers with the
    /// conservative assumption that nothing new arrived (empty); the
    /// reliable QM also rejects tails violating the occupancy invariant
    /// (at most `capacity` ahead of the exact local head).
    fn refresh_seen_tail(&mut self) {
        let loaded = self.shared_tail.load(&mut self.stats.ecc);
        self.seen_tail = match (self.spec.pointer_mode, loaded) {
            (PointerMode::Ecc, Some(t))
                if t.wrapping_sub(self.head) > self.spec.capacity as u32 =>
            {
                self.head
            }
            (_, Some(t)) => t,
            (_, None) => self.head,
        };
        if self.slots.is_shared() {
            // Mirror for the consumer view (see `refresh_seen_head`).
            self.tail = self.seen_tail;
        }
        self.stats.shared_ptr_reads += 1;
    }

    /// Appends `unit` at the tail; the caller has already established
    /// space. Carries all per-unit accounting and the workset-boundary
    /// publish.
    fn push_unchecked(&mut self, unit: Unit) {
        let idx = self.tail as usize % self.spec.capacity;
        self.slots.set(idx, unit);
        self.tail = self.tail.wrapping_add(1);
        self.stats.record_push(unit.is_header());
        let depth = self.occupancy();
        self.stats.note_occupancy(depth);
        self.tracer.emit(Event::Push {
            edge: self.edge,
            header: unit.is_header(),
            depth,
        });
        if self.tail.is_multiple_of(self.spec.workset_size as u32) {
            self.publish_tail();
        }
    }

    /// Removes the unit at the head; the caller has already established
    /// availability. Carries all per-unit accounting and the
    /// workset-boundary publish.
    fn pop_unchecked(&mut self) -> Unit {
        let idx = self.head as usize % self.spec.capacity;
        let unit = self.slots.get(idx);
        self.head = self.head.wrapping_add(1);
        self.stats.record_pop(unit.is_header());
        self.tracer.emit(Event::Pop {
            edge: self.edge,
            header: unit.is_header(),
            depth: self.occupancy(),
        });
        if self.head.is_multiple_of(self.spec.workset_size as u32) {
            self.publish_head();
        }
        unit
    }

    fn publish_tail(&mut self) {
        if self.role == Role::Consumer {
            // A consumer view's tail is a stale mirror; publishing it
            // would rewind the producer's progress.
            return;
        }
        self.shared_tail.store(self.tail, &mut self.stats.ecc);
        self.stats.shared_ptr_writes += 1;
        self.stats.workset_publishes += 1;
    }

    fn publish_head(&mut self) {
        if self.role == Role::Producer {
            // Mirror of the consumer-view guard in `publish_tail`.
            return;
        }
        self.shared_head.store(self.head, &mut self.stats.ecc);
        self.stats.shared_ptr_writes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SimQueue {
        SimQueue::new(QueueSpec {
            capacity: 8,
            workset_size: 2,
            pointer_mode: PointerMode::Ecc,
        })
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = small();
        for i in 0..6u32 {
            q.try_push(Unit::Item(i)).unwrap();
        }
        for i in 0..6u32 {
            assert_eq!(q.try_pop(), Some(Unit::Item(i)));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn visibility_is_workset_granular() {
        let mut q = small();
        // One item: below the workset boundary, not yet published.
        q.try_push(Unit::Item(1)).unwrap();
        assert_eq!(q.try_pop(), None, "unpublished item must be invisible");
        // Second item crosses the 2-unit workset boundary.
        q.try_push(Unit::Item(2)).unwrap();
        assert_eq!(q.try_pop(), Some(Unit::Item(1)));
    }

    #[test]
    fn flush_publishes_partial_workset() {
        let mut q = small();
        q.try_push(Unit::Item(9)).unwrap();
        q.flush();
        assert_eq!(q.try_pop(), Some(Unit::Item(9)));
    }

    #[test]
    fn push_blocks_when_full_and_resumes_after_pops() {
        let mut q = small();
        for i in 0..8u32 {
            q.try_push(Unit::Item(i)).unwrap();
        }
        assert!(q.try_push(Unit::Item(99)).is_err());
        assert_eq!(q.stats().blocked_pushes, 1);
        // Drain two items (one full workset) so the head is published.
        assert_eq!(q.try_pop(), Some(Unit::Item(0)));
        assert_eq!(q.try_pop(), Some(Unit::Item(1)));
        q.try_push(Unit::Item(99)).unwrap();
    }

    #[test]
    fn headers_counted_separately() {
        let mut q = small();
        q.try_push(Unit::header(5)).unwrap();
        q.try_push(Unit::Item(1)).unwrap();
        let _ = q.try_pop();
        let _ = q.try_pop();
        assert_eq!(q.stats().header_pushes, 1);
        assert_eq!(q.stats().item_pushes, 1);
        assert_eq!(q.stats().header_pops, 1);
        assert_eq!(q.stats().item_pops, 1);
    }

    #[test]
    fn push_slice_stops_at_full_and_keeps_per_unit_stats() {
        let mut q = small();
        let units: Vec<Unit> = (0..10u32).map(Unit::Item).collect();
        assert_eq!(q.push_slice(&units), 8, "capacity 8 accepts 8");
        assert_eq!(q.stats().item_pushes, 8);
        assert_eq!(q.stats().blocked_pushes, 1, "the ninth unit blocked");
        // Identical counters to the one-at-a-time path.
        let mut per_item = small();
        for &u in &units {
            if per_item.try_push(u).is_err() {
                break;
            }
        }
        assert_eq!(q.stats(), per_item.stats());
    }

    #[test]
    fn pop_slice_stops_at_visible_empty() {
        let mut q = small();
        for i in 0..5u32 {
            q.try_push(Unit::Item(i)).unwrap();
        }
        q.flush();
        let mut out = Vec::new();
        assert_eq!(q.pop_slice(&mut out, 3), 3);
        assert_eq!(q.pop_slice(&mut out, 10), 2, "only 5 were visible");
        assert_eq!(out, (0..5u32).map(Unit::Item).collect::<Vec<_>>());
        assert_eq!(q.stats().blocked_pops, 1);
    }

    #[test]
    fn slice_ops_respect_workset_visibility() {
        let mut q = small();
        // Three units: one full 2-unit workset published, one unit pending.
        assert_eq!(
            q.push_slice(&[Unit::Item(1), Unit::Item(2), Unit::Item(3)]),
            3
        );
        let mut out = Vec::new();
        assert_eq!(q.pop_slice(&mut out, 8), 2, "unpublished tail invisible");
    }

    /// The zero-copy bulk fill/drain must be stat-identical to per-unit
    /// push/pop across many ring wraps, including header traffic.
    #[test]
    fn bulk_slice_ops_match_per_unit_stats_across_wrap() {
        let mut bulk = small();
        let mut per_unit = small();
        for round in 0..50u32 {
            let mut units: Vec<Unit> = (0..5).map(|i| Unit::Item(round * 8 + i)).collect();
            units.push(Unit::header(round));
            assert_eq!(bulk.push_slice(&units), 6);
            for &u in &units {
                per_unit.try_push(u).unwrap();
            }
            per_unit.flush();
            bulk.flush();
            let mut got = Vec::new();
            assert_eq!(bulk.pop_slice(&mut got, 6), 6);
            let want: Vec<Unit> = (0..6).map(|_| per_unit.try_pop().unwrap()).collect();
            assert_eq!(got, want, "round {round}");
        }
        assert_eq!(bulk.stats(), per_unit.stats());
    }

    #[test]
    fn push_items_and_pop_items_roundtrip_with_per_unit_stats() {
        let mut q = small();
        let mut reference = small();
        let items: Vec<u32> = (0..7).collect();
        assert_eq!(q.push_items(&items), 7);
        for &v in &items {
            reference.try_push(Unit::Item(v)).unwrap();
        }
        q.flush();
        reference.flush();
        let mut out = Vec::new();
        assert_eq!(q.pop_items(&mut out, 16), (7, false));
        assert_eq!(out, items);
        let mut want = Vec::new();
        while let Some(u) = reference.try_pop() {
            want.push(u.item_value().unwrap());
        }
        assert_eq!(out, want);
        assert_eq!(q.stats(), reference.stats());
        assert_eq!(q.stats().blocked_pops, 1, "the visible-empty stop");
    }

    #[test]
    fn pop_items_stops_before_a_header_and_leaves_it_queued() {
        let mut q = small();
        q.push_slice(&[Unit::Item(1), Unit::Item(2), Unit::header(9), Unit::Item(3)]);
        q.flush();
        let mut out = Vec::new();
        assert_eq!(q.pop_items(&mut out, 8), (2, true));
        assert_eq!(out, [1, 2]);
        assert_eq!(q.stats().header_pops, 0, "header not consumed");
        assert_eq!(q.try_pop().unwrap().header_id(), Some(9));
        out.clear();
        assert_eq!(q.pop_items(&mut out, 8), (1, false));
        assert_eq!(out, [3]);
    }

    #[test]
    fn spsc_views_bulk_slices_roundtrip() {
        let (mut p, mut c) = small_views();
        let units: Vec<Unit> = (0..6u32).map(Unit::Item).collect();
        for round in 0..40u32 {
            assert_eq!(p.push_slice(&units), 6, "round {round}");
            p.flush();
            let mut got = Vec::new();
            assert_eq!(c.pop_slice(&mut got, 6), 6, "round {round}");
            assert_eq!(got, units);
        }
        assert_eq!(p.stats().item_pushes, 240);
        assert_eq!(c.stats().item_pops, 240);
    }

    /// Traced bulk calls fall back to the per-unit loop, so the event
    /// stream is byte-identical to one-at-a-time operation.
    #[test]
    fn traced_slice_ops_emit_per_unit_events() {
        use cg_trace::{EventKind, TraceConfig};
        let t = TraceConfig::ring().tracer();
        let mut q = small();
        q.attach_tracer(t.clone(), 3);
        q.push_slice(&[Unit::Item(1), Unit::Item(2), Unit::header(4)]);
        q.flush();
        let mut out = Vec::new();
        q.pop_slice(&mut out, 2);
        let mut items = Vec::new();
        assert_eq!(q.pop_items(&mut items, 4), (0, true), "header hit first");
        let data = t.finish().expect("enabled");
        assert_eq!(data.counts.count(EventKind::Push), 3);
        assert_eq!(data.counts.count(EventKind::Pop), 2, "header never popped");
        assert_eq!(items, Vec::<u32>::new());
    }

    #[test]
    fn corrupted_raw_tail_pointer_garbles_stream() {
        let mut q = SimQueue::new(QueueSpec {
            capacity: 8,
            workset_size: 2,
            pointer_mode: PointerMode::Raw,
        });
        q.try_push(Unit::Item(1)).unwrap();
        q.try_push(Unit::Item(2)).unwrap();
        // Corrupt the shared tail high bit: consumer now sees a huge
        // available count and will read stale slots indefinitely.
        q.corrupt_shared_pointer(Which::Tail, 31);
        let mut popped = 0;
        for _ in 0..100 {
            if q.try_pop().is_some() {
                popped += 1;
            }
        }
        assert_eq!(popped, 100, "corrupted tail makes garbage available");
    }

    #[test]
    fn corrupted_ecc_tail_pointer_is_corrected() {
        let mut q = small();
        q.try_push(Unit::Item(1)).unwrap();
        q.try_push(Unit::Item(2)).unwrap();
        q.corrupt_shared_pointer(Which::Tail, 31);
        assert_eq!(q.try_pop(), Some(Unit::Item(1)));
        assert_eq!(q.try_pop(), Some(Unit::Item(2)));
        assert_eq!(q.try_pop(), None);
        assert!(q.stats().ecc.corrections >= 1);
    }

    #[test]
    fn timeout_pop_returns_stale_data() {
        let mut q = small();
        let u = q.timeout_pop();
        assert_eq!(u, Unit::Item(0), "stale initial slot");
        assert_eq!(q.stats().timeout_pops, 1);
    }

    #[test]
    fn timeout_push_overwrites() {
        let mut q = small();
        for i in 0..8u32 {
            q.try_push(Unit::Item(i)).unwrap();
        }
        q.timeout_push(Unit::Item(100));
        assert_eq!(q.stats().timeout_pushes, 1);
        // The oldest unit (item 0) was dropped; the rest arrive in order
        // with the forced unit at the end.
        for i in 1..8u32 {
            assert_eq!(q.try_pop(), Some(Unit::Item(i)));
        }
        assert_eq!(q.try_pop(), Some(Unit::Item(100)));
    }

    #[test]
    fn buffer_slot_corruption_flips_item_bit() {
        let mut q = small();
        q.try_push(Unit::Item(0)).unwrap();
        q.try_push(Unit::Item(0)).unwrap();
        q.corrupt_buffer_slot(0, 4);
        assert_eq!(q.try_pop(), Some(Unit::Item(16)));
    }

    #[test]
    fn buffer_slot_corruption_on_header_is_corrected() {
        let mut q = small();
        q.try_push(Unit::header(7)).unwrap();
        q.try_push(Unit::Item(0)).unwrap();
        q.corrupt_buffer_slot(0, 11);
        let h = q.try_pop().unwrap();
        assert_eq!(h.header_id(), Some(7));
    }

    #[test]
    fn single_bit_codeword_corruption_is_corrected() {
        let mut q = small();
        q.try_push(Unit::header(5)).unwrap();
        q.try_push(Unit::Item(1)).unwrap();
        assert!(q.corrupt_random_header_codeword(3, 1));
        assert_eq!(q.stats().header_corruptions, 1);
        assert_eq!(q.try_pop().unwrap().header_id(), Some(5));
    }

    #[test]
    fn double_bit_codeword_corruption_is_detected_not_miscorrected() {
        let mut q = small();
        q.try_push(Unit::header(5)).unwrap();
        q.try_push(Unit::Item(1)).unwrap();
        assert!(q.corrupt_random_header_codeword(3, 2));
        let h = q.try_pop().unwrap();
        assert!(h.is_header());
        assert_eq!(h.header_id(), None, "SECDED detects, id withheld");
    }

    #[test]
    fn codeword_corruption_without_headers_reports_false() {
        let mut q = small();
        q.try_push(Unit::Item(1)).unwrap();
        q.try_push(Unit::Item(2)).unwrap();
        assert!(!q.corrupt_random_header_codeword(0, 1));
        assert_eq!(q.stats().header_corruptions, 0);
    }

    #[test]
    fn len_tracks_exact_occupancy() {
        let mut q = small();
        assert!(q.is_empty());
        q.try_push(Unit::Item(1)).unwrap();
        assert_eq!(q.len(), 1);
        q.flush();
        let _ = q.try_pop();
        assert!(q.is_empty());
    }

    #[test]
    fn wraparound_many_times() {
        let mut q = small();
        for round in 0..100u32 {
            for i in 0..4 {
                q.try_push(Unit::Item(round * 4 + i)).unwrap();
            }
            for i in 0..4 {
                assert_eq!(q.try_pop(), Some(Unit::Item(round * 4 + i)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn tiny_capacity_panics() {
        let _ = QueueSpec::with_capacity(4);
    }

    #[test]
    fn max_occupancy_is_a_high_water_mark() {
        let mut q = small();
        for i in 0..5u32 {
            q.try_push(Unit::Item(i)).unwrap();
        }
        q.flush();
        for _ in 0..4 {
            let _ = q.try_pop();
        }
        q.try_push(Unit::Item(9)).unwrap();
        assert_eq!(q.stats().max_occupancy, 5, "peak, not current, occupancy");
        assert_eq!(q.occupancy(), 2);
    }

    #[test]
    fn occupancy_clamps_when_head_passes_tail() {
        let mut q = small();
        let _ = q.timeout_pop();
        assert_eq!(q.occupancy(), 0, "overdrained queue reads as empty");
    }

    #[test]
    fn overdrained_ecc_queue_blocks_instead_of_flooding() {
        let mut q = small();
        let _ = q.timeout_pop();
        // Head is now one past every published tail; with protected
        // pointers the availability invariant must read this as empty,
        // not as a wrapped ~2^32 flood of stale slots.
        assert_eq!(q.try_pop(), None, "overdrained view must block");
        // Production catching back up past the head restores delivery.
        for i in 0..3u32 {
            q.try_push(Unit::Item(i)).unwrap();
        }
        q.flush();
        // The unit landing in the slot the head already skipped is lost
        // (timeout data loss); the ones past the head come through.
        assert_eq!(q.try_pop(), Some(Unit::Item(1)));
        assert_eq!(q.try_pop(), Some(Unit::Item(2)));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn overdrained_raw_queue_keeps_the_modeled_flood() {
        let mut q = SimQueue::new(QueueSpec {
            capacity: 8,
            workset_size: 2,
            pointer_mode: PointerMode::Raw,
        });
        let _ = q.timeout_pop();
        // Unprotected pointers take the raw wrapped difference: stale
        // garbage stays visible, which is the paper's Fig. 3b failure.
        assert!(q.try_pop().is_some(), "raw mode keeps the stale flood");
    }

    fn small_views() -> (SimQueue, SimQueue) {
        SimQueue::spsc_views(QueueSpec {
            capacity: 8,
            workset_size: 2,
            pointer_mode: PointerMode::Ecc,
        })
    }

    #[test]
    fn spsc_views_roundtrip_with_workset_visibility() {
        let (mut p, mut c) = small_views();
        p.try_push(Unit::Item(1)).unwrap();
        assert_eq!(c.try_pop(), None, "unpublished item must be invisible");
        p.try_push(Unit::Item(2)).unwrap();
        assert_eq!(c.try_pop(), Some(Unit::Item(1)));
        assert_eq!(c.try_pop(), Some(Unit::Item(2)));
        assert_eq!(c.try_pop(), None);
    }

    #[test]
    fn spsc_views_survive_u32_cursor_wraparound() {
        // Park all four cursors just below u32::MAX (capacity divides
        // 2^32, so ring indices stay contiguous across the wrap) and
        // stream enough units through to wrap every cursor.
        let (mut p, mut c) = small_views();
        let start = u32::MAX - 5;
        for q in [&mut p, &mut c] {
            q.head = start;
            q.tail = start;
            q.seen_head = start;
            q.seen_tail = start;
        }
        p.publish_tail();
        c.publish_head();
        for i in 0..32u32 {
            p.try_push(Unit::Item(i)).unwrap();
            p.flush();
            assert_eq!(c.try_pop(), Some(Unit::Item(i)), "unit {i} across wrap");
        }
        assert_eq!(c.try_pop(), None);
        assert!(p.tail < start, "producer cursor must have wrapped");
    }

    #[test]
    fn consumer_view_flush_cannot_rewind_producer_progress() {
        let (mut p, mut c) = small_views();
        p.try_push(Unit::Item(1)).unwrap();
        p.try_push(Unit::Item(2)).unwrap(); // published at the boundary
        c.flush(); // consumer-side flush must not clobber the shared tail
        assert_eq!(c.try_pop(), Some(Unit::Item(1)));
        assert_eq!(c.try_pop(), Some(Unit::Item(2)));
    }

    #[test]
    fn spsc_timeout_push_with_space_appends_and_publishes() {
        let (mut p, mut c) = small_views();
        p.try_push(Unit::Item(1)).unwrap();
        p.timeout_push(Unit::Item(9));
        assert_eq!(p.stats().timeout_pushes, 1);
        assert_eq!(c.try_pop(), Some(Unit::Item(1)));
        assert_eq!(c.try_pop(), Some(Unit::Item(9)));
    }

    #[test]
    fn spsc_timeout_push_on_full_drops_oldest_without_cursor_motion() {
        let (mut p, mut c) = small_views();
        for i in 0..8u32 {
            p.try_push(Unit::Item(i)).unwrap();
        }
        p.timeout_push(Unit::Item(100));
        assert_eq!(p.stats().timeout_pushes, 1);
        // The forced unit replaced the oldest in-flight slot in place:
        // the consumer still sees exactly `capacity` units, with unit 0
        // dropped (overwritten) — the same data loss as the single-owner
        // drop-oldest shape, without touching the consumer-owned head.
        assert_eq!(c.try_pop(), Some(Unit::Item(100)));
        for i in 1..8u32 {
            assert_eq!(c.try_pop(), Some(Unit::Item(i)));
        }
        assert_eq!(c.try_pop(), None);
    }

    #[test]
    fn tracer_records_queue_events_with_edge_id() {
        use cg_trace::{EventKind, TraceConfig};
        let t = TraceConfig::ring().tracer();
        let mut q = small();
        q.attach_tracer(t.clone(), 7);
        q.try_push(Unit::header(1)).unwrap();
        q.try_push(Unit::Item(2)).unwrap();
        let _ = q.try_pop();
        let _ = q.timeout_pop();
        q.corrupt_shared_pointer(Which::Tail, 3);
        let data = t.finish().expect("enabled");
        assert_eq!(data.counts.count(EventKind::Push), 2);
        assert_eq!(data.counts.count(EventKind::Pop), 1);
        assert_eq!(data.counts.count(EventKind::TimeoutPop), 1);
        assert_eq!(data.counts.count(EventKind::PointerCorrupt), 1);
        assert_eq!(
            data.records[0].event,
            Event::Push {
                edge: 7,
                header: true,
                depth: 1
            }
        );
        assert_eq!(data.counts.max_queue_depth, 2);
    }
}
