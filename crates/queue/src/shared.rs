//! Blocking SPSC handoff for [`SimQueue`]s shared between two threads.
//!
//! The threaded executor used to guard every queue behind a bare mutex and
//! busy-spin with `yield_now` whenever an operation could not make
//! progress. [`SharedQueue`] replaces that with condvar parking: a blocked
//! producer sleeps until the consumer makes space (and vice versa), each
//! side can *close* its endpoint so a dead or finished peer turns a
//! would-be hang into an error, and a stall timeout bounds every wait as a
//! backstop against bugs that would otherwise deadlock silently.
//!
//! The wrapper is deliberately transport-only: all queue semantics
//! (working-set visibility, ECC pointers, per-unit statistics) stay inside
//! [`SimQueue`]; `SharedQueue` adds blocking, wakeup, and peer liveness.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::ring::SimQueue;

/// Which endpoint of the SPSC queue a thread owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The pushing endpoint.
    Producer,
    /// The popping endpoint.
    Consumer,
}

/// Why a blocking operation gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The opposite endpoint was closed (peer finished or died) while this
    /// side could not make progress.
    PeerClosed,
    /// No progress within the stall timeout, with the peer still open —
    /// the backstop against silent deadlock.
    TimedOut,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::PeerClosed => write!(f, "peer endpoint closed"),
            WaitError::TimedOut => write!(f, "stalled past the timeout"),
        }
    }
}

impl std::error::Error for WaitError {}

struct State {
    q: SimQueue,
    producer_open: bool,
    consumer_open: bool,
}

/// A [`SimQueue`] shared between one producer thread and one consumer
/// thread, with condvar-based blocking instead of spin-yield.
///
/// Operations take a closure over the inner queue that returns
/// `Some(result)` on progress and `None` when it would block; the wrapper
/// handles parking, wakeup, peer-death detection, and the stall timeout.
/// Closures run under the lock, so a closure that moves a whole batch
/// costs one lock acquisition for the entire batch.
pub struct SharedQueue {
    state: Mutex<State>,
    /// Signalled when the consumer frees space (or closes).
    can_push: Condvar,
    /// Signalled when the producer makes units visible (or closes).
    can_pop: Condvar,
    stall_timeout: Duration,
}

impl SharedQueue {
    /// Default bound on any single blocking wait.
    pub const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(10);

    /// Wraps `q` with the default stall timeout.
    pub fn new(q: SimQueue) -> Self {
        Self::with_stall_timeout(q, Self::DEFAULT_STALL_TIMEOUT)
    }

    /// Wraps `q`, bounding every blocking wait by `stall_timeout`.
    pub fn with_stall_timeout(q: SimQueue, stall_timeout: Duration) -> Self {
        SharedQueue {
            state: Mutex::new(State {
                q,
                producer_open: true,
                consumer_open: true,
            }),
            can_push: Condvar::new(),
            can_pop: Condvar::new(),
            stall_timeout,
        }
    }

    /// Runs `f` on the producer side: retries until `f` reports progress,
    /// parking on the condvar between attempts.
    ///
    /// # Errors
    ///
    /// [`WaitError::PeerClosed`] if the consumer endpoint is closed while
    /// no progress is possible; [`WaitError::TimedOut`] if the stall
    /// timeout elapses first.
    pub fn produce<R>(&self, f: impl FnMut(&mut SimQueue) -> Option<R>) -> Result<R, WaitError> {
        self.blocking_op(Side::Producer, f)
    }

    /// Runs `f` on the consumer side; the mirror of [`Self::produce`].
    ///
    /// # Errors
    ///
    /// [`WaitError::PeerClosed`] if the producer endpoint is closed while
    /// no progress is possible; [`WaitError::TimedOut`] on stall.
    pub fn consume<R>(&self, f: impl FnMut(&mut SimQueue) -> Option<R>) -> Result<R, WaitError> {
        self.blocking_op(Side::Consumer, f)
    }

    /// Runs `f` once under the lock (no blocking) and wakes both sides —
    /// for operations like `flush` that change visibility either way, and
    /// for reading statistics.
    pub fn with<R>(&self, f: impl FnOnce(&mut SimQueue) -> R) -> R {
        let r = f(&mut self.lock().q);
        self.can_push.notify_all();
        self.can_pop.notify_all();
        r
    }

    /// Closes one endpoint and wakes both sides so any parked peer
    /// re-checks liveness. Closing is idempotent and is how a finished
    /// (or unwinding) thread converts a neighbour's would-be hang into
    /// [`WaitError::PeerClosed`].
    pub fn close(&self, side: Side) {
        {
            let mut st = self.lock();
            match side {
                Side::Producer => st.producer_open = false,
                Side::Consumer => st.consumer_open = false,
            }
        }
        self.can_push.notify_all();
        self.can_pop.notify_all();
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // A peer that panicked mid-operation poisons the mutex; the queue
        // state is still internally consistent (SimQueue mutations are
        // single-assignment per unit), and close() during unwind reports
        // the death, so recover the guard rather than propagate the panic.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter that must advance for `side`'s progress to become
    /// visible to a parked peer: the consumer can only see units once the
    /// tail is published (a workset publish or a flush), and the producer
    /// can only see freed space once the head is published. Progress that
    /// stays below a workset boundary is invisible, so waking the peer for
    /// it guarantees a futile wake/re-park cycle — on shallow pipelines
    /// with large worksets that wake storm is what dragged the batched
    /// transport below the deterministic baseline.
    fn visible_progress(q: &SimQueue, side: Side) -> u64 {
        match side {
            // Tail publishes are exactly `workset_publishes`.
            Side::Producer => q.stats().workset_publishes,
            // Head publishes count only in `shared_ptr_writes`; consumer
            // ops never publish the tail, so the aggregate is monotone in
            // head publishes alone here.
            Side::Consumer => q.stats().shared_ptr_writes,
        }
    }

    fn blocking_op<R>(
        &self,
        side: Side,
        mut f: impl FnMut(&mut SimQueue) -> Option<R>,
    ) -> Result<R, WaitError> {
        let mut st = self.lock();
        let mut deadline: Option<Instant> = None;
        loop {
            let before = Self::visible_progress(&st.q, side);
            if let Some(r) = f(&mut st.q) {
                let published = Self::visible_progress(&st.q, side) != before;
                drop(st);
                // SPSC: at most one thread parks on the opposite condvar,
                // and it can only proceed once this side's published
                // cursor moves — so notify exactly when that happened.
                // (`with`/`close` still notify_all unconditionally, which
                // covers flushes and shutdown.)
                if published {
                    match side {
                        Side::Producer => self.can_pop.notify_one(),
                        Side::Consumer => self.can_push.notify_one(),
                    }
                }
                return Ok(r);
            }
            // Check liveness only after a no-progress attempt: a peer that
            // finished normally but left data behind must stay drainable.
            let peer_open = match side {
                Side::Producer => st.consumer_open,
                Side::Consumer => st.producer_open,
            };
            if !peer_open {
                return Err(WaitError::PeerClosed);
            }
            let dl = *deadline.get_or_insert_with(|| Instant::now() + self.stall_timeout);
            let now = Instant::now();
            if now >= dl {
                return Err(WaitError::TimedOut);
            }
            let cv = match side {
                Side::Producer => &self.can_push,
                Side::Consumer => &self.can_pop,
            };
            st = match cv.wait_timeout(st, dl - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::QueueSpec;
    use crate::unit::Unit;
    use crate::PointerMode;

    fn shared(capacity: usize) -> SharedQueue {
        SharedQueue::new(SimQueue::new(QueueSpec {
            capacity,
            workset_size: (capacity / 8).max(1),
            pointer_mode: PointerMode::Ecc,
        }))
    }

    #[test]
    fn blocking_roundtrip_preserves_order() {
        const N: u32 = 10_000;
        let sq = shared(64);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..N {
                    sq.produce(|q| q.try_push(Unit::Item(i)).ok()).unwrap();
                }
                sq.with(|q| q.flush());
                sq.close(Side::Producer);
            });
            for i in 0..N {
                assert_eq!(sq.consume(|q| q.try_pop()), Ok(Unit::Item(i)));
            }
        });
    }

    #[test]
    fn batched_roundtrip_preserves_order() {
        const N: usize = 4096;
        const BATCH: usize = 17; // deliberately coprime to the workset size
        let sq = shared(64);
        let items: Vec<Unit> = (0..N as u32).map(Unit::Item).collect();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut pos = 0;
                while pos < N {
                    let end = (pos + BATCH).min(N);
                    let n = sq
                        .produce(|q| {
                            let n = q.push_slice(&items[pos..end]);
                            (n > 0).then_some(n)
                        })
                        .unwrap();
                    pos += n;
                }
                sq.with(|q| q.flush());
                sq.close(Side::Producer);
            });
            let mut got: Vec<Unit> = Vec::new();
            while got.len() < N {
                let max = N - got.len();
                sq.consume(|q| {
                    let n = q.pop_slice(&mut got, max);
                    (n > 0).then_some(n)
                })
                .unwrap();
            }
            assert_eq!(got, items);
        });
    }

    #[test]
    fn dead_producer_is_an_error_not_a_hang() {
        let sq = shared(8);
        sq.close(Side::Producer);
        assert_eq!(sq.consume(|q| q.try_pop()), Err(WaitError::PeerClosed));
    }

    #[test]
    fn dead_consumer_on_full_queue_is_an_error_not_a_hang() {
        let sq = shared(8);
        sq.with(|q| {
            for i in 0..8u32 {
                q.try_push(Unit::Item(i)).unwrap();
            }
        });
        sq.close(Side::Consumer);
        assert_eq!(
            sq.produce(|q| q.try_push(Unit::Item(9)).ok()),
            Err(WaitError::PeerClosed)
        );
    }

    #[test]
    fn finished_producer_leaves_queue_drainable() {
        let sq = shared(8);
        sq.with(|q| {
            q.try_push(Unit::Item(7)).unwrap();
            q.flush();
        });
        sq.close(Side::Producer);
        // Data first, then PeerClosed once truly dry.
        assert_eq!(sq.consume(|q| q.try_pop()), Ok(Unit::Item(7)));
        assert_eq!(sq.consume(|q| q.try_pop()), Err(WaitError::PeerClosed));
    }

    #[test]
    fn stall_timeout_bounds_the_wait() {
        let sq = SharedQueue::with_stall_timeout(
            SimQueue::new(QueueSpec::with_capacity(8)),
            Duration::from_millis(40),
        );
        let start = Instant::now();
        assert_eq!(sq.consume(|q| q.try_pop()), Err(WaitError::TimedOut));
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn close_wakes_a_parked_peer() {
        let sq = shared(8);
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                sq.close(Side::Producer);
            });
            // Parks on empty, then the close wakes it into PeerClosed well
            // before the 10 s stall timeout.
            let start = Instant::now();
            assert_eq!(sq.consume(|q| q.try_pop()), Err(WaitError::PeerClosed));
            assert!(start.elapsed() < Duration::from_secs(5));
        });
    }

    /// Seeded interleaving stress: random batch sizes on both sides, a
    /// tiny queue to force constant blocking, and occasional forced
    /// reschedules. The stream must arrive intact for every seed.
    #[test]
    fn seeded_interleaving_stress() {
        const N: usize = 20_000;
        for seed in [1u64, 7, 42, 1234] {
            let sq = shared(16);
            let items: Vec<Unit> = (0..N as u32).map(Unit::Item).collect();
            let mut prng = seed;
            let mut next = move |m: usize| {
                // xorshift64*; plenty for schedule jitter.
                prng ^= prng << 13;
                prng ^= prng >> 7;
                prng ^= prng << 17;
                (prng as usize) % m
            };
            let mut cons_rng = next(1 << 30) as u64 + 1;
            std::thread::scope(|s| {
                s.spawn(|| {
                    let mut pos = 0;
                    while pos < N {
                        let end = (pos + 1 + next(31)).min(N);
                        let n = sq
                            .produce(|q| {
                                let n = q.push_slice(&items[pos..end]);
                                (n > 0).then_some(n)
                            })
                            .unwrap();
                        pos += n;
                        if next(8) == 0 {
                            sq.with(|q| q.flush());
                            std::thread::yield_now();
                        }
                    }
                    sq.with(|q| q.flush());
                    sq.close(Side::Producer);
                });
                let mut got: Vec<Unit> = Vec::new();
                while got.len() < N {
                    cons_rng ^= cons_rng << 13;
                    cons_rng ^= cons_rng >> 7;
                    cons_rng ^= cons_rng << 17;
                    let max = (1 + (cons_rng as usize) % 31).min(N - got.len());
                    sq.consume(|q| {
                        let n = q.pop_slice(&mut got, max);
                        (n > 0).then_some(n)
                    })
                    .unwrap();
                    if cons_rng.is_multiple_of(16) {
                        std::thread::yield_now();
                    }
                }
                assert_eq!(got, items, "seed {seed} reordered or lost units");
            });
        }
    }

    /// The wake gate must never strand a parked peer: a producer that
    /// fills a tiny queue (constant boundary publishes) and a consumer
    /// that drains in sub-workset nibbles still hand off the full stream.
    #[test]
    fn publish_gated_wakeups_do_not_strand_either_side() {
        const N: u32 = 8_192;
        // Capacity 16 → workset 2: publishes are frequent but most pops
        // stay below the boundary, exercising the "no publish, no wake"
        // path on both sides.
        let sq = shared(16);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..N {
                    sq.produce(|q| q.try_push(Unit::Item(i)).ok()).unwrap();
                }
                sq.with(|q| q.flush());
                sq.close(Side::Producer);
            });
            let mut got = Vec::new();
            while got.len() < N as usize {
                sq.consume(|q| {
                    let n = q.pop_slice(&mut got, 3);
                    (n > 0).then_some(n)
                })
                .unwrap();
            }
            assert_eq!(got.len(), N as usize);
            assert!(got
                .iter()
                .enumerate()
                .all(|(i, u)| *u == Unit::Item(i as u32)));
        });
    }

    #[test]
    fn poisoned_lock_recovers_and_reports_peer_death() {
        let sq = shared(8);
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                // Panic while holding the lock; a drop-guard in real
                // workers calls close() during unwind — emulate that here.
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    sq.with(|_| panic!("worker died"))
                }));
                assert!(r.is_err());
                sq.close(Side::Producer);
            });
            h.join().unwrap();
        });
        assert_eq!(sq.consume(|q| q.try_pop()), Err(WaitError::PeerClosed));
    }
}
