//! Lock-free SPSC transport for [`SimQueue`]s shared between two threads.
//!
//! [`SharedQueue`](crate::SharedQueue) serialises every transfer through a
//! `Mutex` + two `Condvar`s; this module removes that serialisation. The
//! ring slots and the shared head/tail pointers move into atomic storage
//! shared by **two independent [`SimQueue`] views** — one owned by the
//! producer endpoint, one by the consumer — so the steady-state push/pop
//! path is exactly the paper's §5.1 protocol with no lock anywhere:
//!
//! * each side keeps its *exact* cursor in ordinary (reliable, on-core)
//!   fields of its own view;
//! * progress is published through the shared pointers once per working
//!   set (`Release` store) and re-read only on apparent-full/empty
//!   (`Acquire` load) — the cached-cursor discipline that keeps shared
//!   traffic off the hot path;
//! * ring slots are `AtomicU64` cells written/read with `Relaxed` ordering;
//!   the `Release`/`Acquire` pointer handoff provides the happens-before
//!   edge that makes a published working set's slot writes visible.
//!
//! Because the views run the same `SimQueue` code as the deterministic
//! executor, per-unit ECC, header, and statistics accounting are identical
//! by construction — the guarded behaviour is bit-for-bit the same.
//!
//! Blocking is spin-then-park: a bounded burst of `spin_loop` hints and
//! `yield_now` calls, then `thread::park_timeout` in short slices with
//! explicit unpark tokens. The [`SharedQueue`](crate::SharedQueue)
//! semantics the rest of the stack depends on are preserved: endpoints
//! close on drop (a dead peer is an error, not a hang), a finished
//! producer leaves the queue drainable, and a stall timeout bounds every
//! wait. The park/unpark slow path is the *only* place a `Mutex` appears
//! (a registry of thread handles that is touched strictly after spinning
//! has failed); see `DESIGN.md` for the memory-ordering and lost-wakeup
//! argument.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

use cg_ecc::{decode, encode, Codeword, Decoded, EccStats};
use cg_trace::Tracer;

use crate::ptr::PointerMode;
use crate::ring::{QueueSpec, SimQueue};
use crate::shared::WaitError;
use crate::stats::QueueStats;
use crate::unit::Unit;

/// Pads and aligns a value to a cache line so the producer's and
/// consumer's hot atomics never false-share.
///
/// 128 bytes covers the adjacent-line prefetcher pairs on modern x86 as
/// well as 128-byte-line ARM parts.
#[derive(Debug, Default)]
#[repr(align(128))]
pub(crate) struct CachePadded<T>(pub(crate) T);

const PRODUCER: usize = 0;
const CONSUMER: usize = 1;

/// Tag bit distinguishing header codewords from item payloads in a slot.
/// Items are 32-bit and codewords 39-bit, so bit 63 is always free.
const HEADER_TAG: u64 = 1 << 63;

fn encode_unit(unit: Unit) -> u64 {
    match unit {
        Unit::Item(v) => u64::from(v),
        Unit::Header(cw) => HEADER_TAG | cw.raw(),
    }
}

fn decode_unit(bits: u64) -> Unit {
    if bits & HEADER_TAG != 0 {
        Unit::Header(Codeword::from_raw(bits & !HEADER_TAG))
    } else {
        Unit::Item(bits as u32)
    }
}

/// The ring's slot storage when shared between two views: one `AtomicU64`
/// per unit. Slot accesses are `Relaxed` — the release/acquire handoff on
/// the shared pointers orders them — so they compile to plain moves.
pub(crate) struct SharedSlots {
    slots: Box<[AtomicU64]>,
}

impl SharedSlots {
    pub(crate) fn new(capacity: usize) -> Self {
        SharedSlots {
            slots: (0..capacity)
                .map(|_| AtomicU64::new(encode_unit(Unit::Item(0))))
                .collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn get(&self, idx: usize) -> Unit {
        decode_unit(self.slots[idx].load(Ordering::Relaxed))
    }

    pub(crate) fn set(&self, idx: usize, unit: Unit) {
        self.slots[idx].store(encode_unit(unit), Ordering::Relaxed);
    }

    /// Writes a contiguous run of units starting at `idx` (no wrap): the
    /// bulk form of [`Self::set`], a tight loop of `Relaxed` stores that
    /// the release-publish of the shared tail pointer orders for the
    /// consumer exactly as it does single-slot stores.
    pub(crate) fn write_run(&self, idx: usize, units: &[Unit]) {
        for (slot, &unit) in self.slots[idx..idx + units.len()].iter().zip(units) {
            slot.store(encode_unit(unit), Ordering::Relaxed);
        }
    }

    /// Reads a contiguous run of `n` units starting at `idx` (no wrap)
    /// into `out`: the bulk form of [`Self::get`].
    pub(crate) fn read_run(&self, idx: usize, n: usize, out: &mut Vec<Unit>) {
        for slot in &self.slots[idx..idx + n] {
            out.push(decode_unit(slot.load(Ordering::Relaxed)));
        }
    }
}

/// A shared head/tail pointer cell in atomic storage, with the same
/// selectable protection as [`PtrCell`](crate::PtrCell): `Raw` cells hold
/// the bare 32-bit cursor, `Ecc` cells hold the SECDED codeword.
///
/// Stores are `Release` and loads `Acquire`: a pointer publish carries
/// visibility of every slot write before it. The ECC scrub uses a
/// `compare_exchange` so a loader repairing a single-bit flip can never
/// clobber a concurrent store by the owning side.
pub(crate) struct AtomicPtrCell {
    mode: PointerMode,
    bits: AtomicU64,
}

impl AtomicPtrCell {
    pub(crate) fn new(mode: PointerMode, value: u32) -> Self {
        let bits = match mode {
            PointerMode::Raw => u64::from(value),
            PointerMode::Ecc => encode(value).raw(),
        };
        AtomicPtrCell {
            mode,
            bits: AtomicU64::new(bits),
        }
    }

    /// Stores the cursor (one `compute-ECC` in `Ecc` mode), `Release`.
    pub(crate) fn store(&self, value: u32, stats: &mut EccStats) {
        let bits = match self.mode {
            PointerMode::Raw => u64::from(value),
            PointerMode::Ecc => {
                stats.computes += 1;
                encode(value).raw()
            }
        };
        self.bits.store(bits, Ordering::Release);
    }

    /// Loads the cursor (`Acquire`), scrubbing single-bit corruption in
    /// `Ecc` mode; uncorrectable corruption returns `None` (counted as a
    /// detection) exactly like [`EccCell::load_scrub`](cg_ecc::EccCell).
    pub(crate) fn load_scrub(&self, stats: &mut EccStats) -> Option<u32> {
        let raw = self.bits.load(Ordering::Acquire);
        match self.mode {
            PointerMode::Raw => Some(raw as u32),
            PointerMode::Ecc => {
                stats.checks += 1;
                match decode(Codeword::from_raw(raw)) {
                    Decoded::Clean(v) => Some(v),
                    Decoded::Corrected(v) => {
                        stats.corrections += 1;
                        stats.computes += 1;
                        // Scrub: write back the repaired codeword, but only
                        // if the cell still holds the corrupted value — the
                        // owning side may have stored a newer cursor since.
                        let _ = self.bits.compare_exchange(
                            raw,
                            encode(v).raw(),
                            Ordering::Release,
                            Ordering::Relaxed,
                        );
                        Some(v)
                    }
                    Decoded::Detected => {
                        stats.detections += 1;
                        None
                    }
                }
            }
        }
    }

    /// Fault-injection hook: flips a stored bit (payload bits for `Raw`
    /// cells, anywhere in the codeword for `Ecc`).
    pub(crate) fn inject_flip(&self, bit: u32) {
        let bit = match self.mode {
            PointerMode::Raw => bit % 32,
            PointerMode::Ecc => bit % cg_ecc::CODEWORD_BITS,
        };
        self.bits.fetch_xor(1 << bit, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for AtomicPtrCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AtomicPtrCell({:?}, {:#x})",
            self.mode,
            self.bits.load(Ordering::Relaxed)
        )
    }
}

/// Endpoint liveness and parking state shared by one producer/consumer
/// pair. Only the `parked` flags and the peer-liveness `open` flags are
/// touched on the fast path; the thread-handle registry and the final
/// stats accumulator sit behind `Mutex`es that are reached exclusively
/// from the park slow path and endpoint drop.
struct Ctrl {
    /// `open[side]`: the endpoint is alive. Cleared on close/drop.
    open: [AtomicBool; 2],
    /// `parked[side]`: the side has announced it is about to park (or is
    /// parked). A waker swaps it to `false` and delivers an unpark token.
    parked: [CachePadded<AtomicBool>; 2],
    /// Park-slow-path registry of each side's thread handle.
    threads: [Mutex<Option<Thread>>; 2],
    /// Per-view [`QueueStats`], merged in on endpoint drop so traffic
    /// accounting survives the worker threads that owned the endpoints.
    final_stats: Mutex<QueueStats>,
}

impl Ctrl {
    fn new() -> Self {
        Ctrl {
            open: [AtomicBool::new(true), AtomicBool::new(true)],
            parked: [
                CachePadded(AtomicBool::new(false)),
                CachePadded(AtomicBool::new(false)),
            ],
            threads: [Mutex::new(None), Mutex::new(None)],
            final_stats: Mutex::new(QueueStats::default()),
        }
    }

    /// Wakes `side` if it announced a park: consume its announcement and
    /// deliver an unpark token (which also makes a *not-yet-parked* peer's
    /// next `park_timeout` return immediately).
    ///
    /// The `SeqCst` swap orders this side's preceding slot/pointer stores
    /// against the parker's announcement in a single total order — the
    /// store-buffering (Dekker) pairing with [`Ctrl::announce_park`] that
    /// rules out the lost-wakeup interleaving.
    fn wake(&self, side: usize) {
        if self.parked[side].0.swap(false, Ordering::SeqCst) {
            let handle = self.threads[side]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            if let Some(t) = handle {
                t.unpark();
            }
        }
    }

    /// Registers the calling thread and announces the intent to park.
    /// The caller **must** re-check for progress (and peer liveness)
    /// after this call and before `park_timeout`: the announcement plus
    /// the `SeqCst` fence guarantee that either the re-check sees the
    /// peer's progress, or the peer's [`Ctrl::wake`] sees the
    /// announcement and delivers an unpark token.
    fn announce_park(&self, side: usize) {
        {
            let mut slot = self.threads[side].lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(thread::current());
            }
        }
        self.parked[side].0.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
    }

    /// Withdraws a park announcement (after waking, or when the re-check
    /// made progress).
    fn retract_park(&self, side: usize) {
        self.parked[side].0.store(false, Ordering::SeqCst);
    }

    fn close(&self, side: usize) {
        self.open[side].store(false, Ordering::SeqCst);
        // Wake both: the peer must observe the death, and a concurrent
        // closer of the other side must not race the tokens.
        self.wake(PRODUCER);
        self.wake(CONSUMER);
    }
}

/// Bounded spin before parking: first pure pipeline hints, then scheduler
/// yields. Small on purpose — the threaded executor moves whole batches,
/// so a blocked side is usually blocked for a while.
const SPIN_HINTS: u32 = 32;
const SPIN_YIELDS: u32 = 4;
/// Parked waits happen in short slices: an unpark token ends one early,
/// and the bounded slice is the liveness backstop that makes even a
/// (theoretically) lost wakeup cost one slice, not a hang. This is the
/// default; paced runs pass a tighter slice via [`spsc_pair_with`] so a
/// parked worker wakes often enough to observe sub-millisecond deadlines.
pub const DEFAULT_PARK_SLICE: Duration = Duration::from_millis(1);

/// Retries `f` on `q` until it reports progress, spinning then parking
/// between attempts; the lock-free analogue of
/// [`SharedQueue::produce`](crate::SharedQueue::produce)/`consume` with
/// identical error semantics.
fn blocking_op<R>(
    q: &mut SimQueue,
    ctrl: &Ctrl,
    me: usize,
    stall: Duration,
    park_slice: Duration,
    mut f: impl FnMut(&mut SimQueue) -> Option<R>,
) -> Result<R, WaitError> {
    let peer = 1 - me;
    let mut deadline: Option<Instant> = None;
    let mut spins = 0u32;
    loop {
        if let Some(r) = f(q) {
            ctrl.wake(peer);
            return Ok(r);
        }
        // Check liveness only after a no-progress attempt, so a finished
        // producer leaves the queue drainable; then try once more, because
        // a flush published between our attempt and the close observation
        // is sequenced before the close and must not be stranded.
        if !ctrl.open[peer].load(Ordering::SeqCst) {
            return match f(q) {
                Some(r) => Ok(r),
                None => Err(WaitError::PeerClosed),
            };
        }
        let dl = *deadline.get_or_insert_with(|| Instant::now() + stall);
        if spins < SPIN_HINTS {
            spins += 1;
            std::hint::spin_loop();
            continue;
        }
        if spins < SPIN_HINTS + SPIN_YIELDS {
            spins += 1;
            thread::yield_now();
            continue;
        }
        let now = Instant::now();
        if now >= dl {
            return Err(WaitError::TimedOut);
        }
        // Park slow path: announce, re-check (progress and liveness),
        // then sleep at most one slice.
        ctrl.announce_park(me);
        if let Some(r) = f(q) {
            ctrl.retract_park(me);
            ctrl.wake(peer);
            return Ok(r);
        }
        if !ctrl.open[peer].load(Ordering::SeqCst) {
            ctrl.retract_park(me);
            return match f(q) {
                Some(r) => Ok(r),
                None => Err(WaitError::PeerClosed),
            };
        }
        thread::park_timeout(park_slice.min(dl - now));
        ctrl.retract_park(me);
    }
}

/// Creates a lock-free SPSC pair over one logical [`SimQueue`]: the
/// producing endpoint, the consuming endpoint, and a stats handle that
/// stays valid after both endpoints (typically moved into worker threads)
/// are gone.
///
/// Every blocking wait on either endpoint is bounded by `stall_timeout`;
/// parked waits use the [`DEFAULT_PARK_SLICE`].
pub fn spsc_pair(
    spec: QueueSpec,
    stall_timeout: Duration,
) -> (SpscProducer, SpscConsumer, SpscStats) {
    spsc_pair_with(spec, stall_timeout, DEFAULT_PARK_SLICE)
}

/// [`spsc_pair`] with an explicit park slice: the maximum time a blocked
/// endpoint sleeps between deadline re-checks. Paced real-time runs pass
/// a slice derived from the frame period (a parked worker must wake often
/// enough to notice a deadline that is a fraction of the period); the
/// batch executors keep [`DEFAULT_PARK_SLICE`].
///
/// A zero slice is clamped to 1 µs so the park loop cannot become a
/// pure spin.
pub fn spsc_pair_with(
    spec: QueueSpec,
    stall_timeout: Duration,
    park_slice: Duration,
) -> (SpscProducer, SpscConsumer, SpscStats) {
    let park_slice = park_slice.max(Duration::from_micros(1));
    let (pq, cq) = SimQueue::spsc_views(spec);
    let ctrl = Arc::new(Ctrl::new());
    (
        SpscProducer {
            q: pq,
            ctrl: Arc::clone(&ctrl),
            stall: stall_timeout,
            park_slice,
        },
        SpscConsumer {
            q: cq,
            ctrl: Arc::clone(&ctrl),
            stall: stall_timeout,
            park_slice,
        },
        SpscStats { ctrl },
    )
}

/// The pushing endpoint of a lock-free SPSC pair. Dropping it closes the
/// endpoint: a consumer blocked on empty drains whatever was published and
/// then sees [`WaitError::PeerClosed`] instead of hanging.
pub struct SpscProducer {
    q: SimQueue,
    ctrl: Arc<Ctrl>,
    stall: Duration,
    park_slice: Duration,
}

impl SpscProducer {
    /// Runs `f` until it reports progress, spinning then parking between
    /// attempts.
    ///
    /// # Errors
    ///
    /// [`WaitError::PeerClosed`] if the consumer endpoint closed while no
    /// progress was possible; [`WaitError::TimedOut`] if the stall
    /// timeout elapsed first.
    pub fn produce<R>(
        &mut self,
        f: impl FnMut(&mut SimQueue) -> Option<R>,
    ) -> Result<R, WaitError> {
        blocking_op(
            &mut self.q,
            &self.ctrl,
            PRODUCER,
            self.stall,
            self.park_slice,
            f,
        )
    }

    /// Runs `f` once (no blocking) and wakes the consumer — for flushes
    /// and forced operations that change visibility.
    pub fn with<R>(&mut self, f: impl FnOnce(&mut SimQueue) -> R) -> R {
        let r = f(&mut self.q);
        self.ctrl.wake(CONSUMER);
        r
    }

    /// Closes this endpoint (idempotent; also performed on drop).
    pub fn close(&self) {
        self.ctrl.close(PRODUCER);
    }

    /// Connects this endpoint's view to a trace stream (see
    /// [`SimQueue::attach_tracer`]).
    pub fn attach_tracer(&mut self, tracer: Tracer, edge: u32) {
        self.q.attach_tracer(tracer, edge);
    }
}

impl Drop for SpscProducer {
    fn drop(&mut self) {
        self.ctrl.close(PRODUCER);
        let mut st = self
            .ctrl
            .final_stats
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *st += *self.q.stats();
    }
}

/// The popping endpoint of a lock-free SPSC pair. Dropping it closes the
/// endpoint: a producer blocked on full sees [`WaitError::PeerClosed`]
/// instead of hanging.
pub struct SpscConsumer {
    q: SimQueue,
    ctrl: Arc<Ctrl>,
    stall: Duration,
    park_slice: Duration,
}

impl SpscConsumer {
    /// Runs `f` until it reports progress; the mirror of
    /// [`SpscProducer::produce`].
    ///
    /// # Errors
    ///
    /// [`WaitError::PeerClosed`] if the producer endpoint closed while no
    /// progress was possible; [`WaitError::TimedOut`] on stall.
    pub fn consume<R>(
        &mut self,
        f: impl FnMut(&mut SimQueue) -> Option<R>,
    ) -> Result<R, WaitError> {
        blocking_op(
            &mut self.q,
            &self.ctrl,
            CONSUMER,
            self.stall,
            self.park_slice,
            f,
        )
    }

    /// Runs `f` once (no blocking) and wakes the producer.
    pub fn with<R>(&mut self, f: impl FnOnce(&mut SimQueue) -> R) -> R {
        let r = f(&mut self.q);
        self.ctrl.wake(PRODUCER);
        r
    }

    /// Closes this endpoint (idempotent; also performed on drop).
    pub fn close(&self) {
        self.ctrl.close(CONSUMER);
    }

    /// Connects this endpoint's view to a trace stream (see
    /// [`SimQueue::attach_tracer`]).
    pub fn attach_tracer(&mut self, tracer: Tracer, edge: u32) {
        self.q.attach_tracer(tracer, edge);
    }
}

impl Drop for SpscConsumer {
    fn drop(&mut self) {
        self.ctrl.close(CONSUMER);
        let mut st = self
            .ctrl
            .final_stats
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *st += *self.q.stats();
    }
}

/// Handle to a pair's merged traffic statistics: each endpoint folds its
/// view's [`QueueStats`] in when dropped, so reading after both endpoints
/// are gone yields the pair's complete per-edge accounting.
pub struct SpscStats {
    ctrl: Arc<Ctrl>,
}

impl SpscStats {
    /// The statistics merged so far (complete once both endpoints have
    /// been dropped).
    pub fn read(&self) -> QueueStats {
        *self
            .ctrl
            .final_stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test sizes shrink under miri: the interpreter runs the same
    /// interleavings, just slowly.
    const N_ROUNDTRIP: u32 = if cfg!(miri) { 200 } else { 10_000 };
    const N_BATCHED: usize = if cfg!(miri) { 256 } else { 4_096 };
    const N_STRESS: usize = if cfg!(miri) { 300 } else { 20_000 };

    fn pair(capacity: usize) -> (SpscProducer, SpscConsumer, SpscStats) {
        spsc_pair(
            QueueSpec {
                capacity,
                workset_size: (capacity / 8).max(1),
                pointer_mode: PointerMode::Ecc,
            },
            Duration::from_secs(10),
        )
    }

    #[test]
    fn unit_encoding_roundtrips() {
        for unit in [
            Unit::Item(0),
            Unit::Item(u32::MAX),
            Unit::Item(0xdead_beef),
            Unit::header(0),
            Unit::header(1234),
            Unit::end_header(),
        ] {
            assert_eq!(decode_unit(encode_unit(unit)), unit);
        }
        // A corrupted codeword (not a valid encoding of anything) must
        // survive the slot roundtrip bit-exactly for SECDED to see it.
        if let Unit::Header(cw) = Unit::header(42) {
            let bad = Unit::Header(cw.with_flipped_bit(3).with_flipped_bit(17));
            assert_eq!(decode_unit(encode_unit(bad)), bad);
        }
    }

    #[test]
    fn atomic_ptr_cell_matches_ptr_cell_semantics() {
        let mut stats = EccStats::default();
        let raw = AtomicPtrCell::new(PointerMode::Raw, 100);
        raw.inject_flip(3);
        assert_eq!(raw.load_scrub(&mut stats), Some(108));
        assert_eq!(stats.checks, 0, "raw cells perform no ECC work");

        let ecc = AtomicPtrCell::new(PointerMode::Ecc, 100);
        ecc.inject_flip(3);
        assert_eq!(ecc.load_scrub(&mut stats), Some(100));
        assert_eq!(stats.corrections, 1);
        // The scrub wrote the repaired codeword back.
        assert_eq!(ecc.load_scrub(&mut stats), Some(100));
        assert_eq!(stats.corrections, 1, "second load needs no correction");

        let ecc2 = AtomicPtrCell::new(PointerMode::Ecc, 100);
        ecc2.inject_flip(3);
        ecc2.inject_flip(17);
        assert_eq!(ecc2.load_scrub(&mut stats), None);
        assert_eq!(stats.detections, 1);
    }

    #[test]
    fn blocking_roundtrip_preserves_order() {
        let (mut tx, mut rx, _) = pair(64);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N_ROUNDTRIP {
                    tx.produce(|q| q.try_push(Unit::Item(i)).ok()).unwrap();
                }
                tx.with(|q| q.flush());
            });
            for i in 0..N_ROUNDTRIP {
                assert_eq!(rx.consume(|q| q.try_pop()), Ok(Unit::Item(i)));
            }
        });
    }

    #[test]
    fn batched_roundtrip_preserves_order() {
        const BATCH: usize = 17; // deliberately coprime to the workset size
        let (mut tx, mut rx, _) = pair(64);
        let items: Vec<Unit> = (0..N_BATCHED as u32).map(Unit::Item).collect();
        let sent = items.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut pos = 0;
                while pos < N_BATCHED {
                    let end = (pos + BATCH).min(N_BATCHED);
                    let n = tx
                        .produce(|q| {
                            let n = q.push_slice(&sent[pos..end]);
                            (n > 0).then_some(n)
                        })
                        .unwrap();
                    pos += n;
                }
                tx.with(|q| q.flush());
            });
            let mut got: Vec<Unit> = Vec::new();
            while got.len() < N_BATCHED {
                let max = N_BATCHED - got.len();
                rx.consume(|q| {
                    let n = q.pop_slice(&mut got, max);
                    (n > 0).then_some(n)
                })
                .unwrap();
            }
            assert_eq!(got, items);
        });
    }

    #[test]
    fn dead_producer_is_an_error_not_a_hang() {
        let (tx, mut rx, _) = pair(8);
        drop(tx);
        assert_eq!(rx.consume(|q| q.try_pop()), Err(WaitError::PeerClosed));
    }

    #[test]
    fn dead_consumer_on_full_queue_is_an_error_not_a_hang() {
        let (mut tx, rx, _) = pair(8);
        tx.with(|q| {
            for i in 0..8u32 {
                q.try_push(Unit::Item(i)).unwrap();
            }
        });
        drop(rx);
        assert_eq!(
            tx.produce(|q| q.try_push(Unit::Item(9)).ok()),
            Err(WaitError::PeerClosed)
        );
    }

    #[test]
    fn finished_producer_leaves_queue_drainable() {
        let (mut tx, mut rx, _) = pair(8);
        tx.with(|q| {
            q.try_push(Unit::Item(7)).unwrap();
            q.flush();
        });
        drop(tx);
        // Data first, then PeerClosed once truly dry.
        assert_eq!(rx.consume(|q| q.try_pop()), Ok(Unit::Item(7)));
        assert_eq!(rx.consume(|q| q.try_pop()), Err(WaitError::PeerClosed));
    }

    #[test]
    fn flush_racing_close_is_never_stranded() {
        // The close-observation protocol: data published immediately
        // before a close must be drained, not reported as PeerClosed.
        let rounds = if cfg!(miri) { 20 } else { 500 };
        for _ in 0..rounds {
            let (mut tx, mut rx, _) = pair(8);
            std::thread::scope(|s| {
                s.spawn(move || {
                    tx.with(|q| {
                        q.try_push(Unit::Item(1)).unwrap();
                        q.flush();
                    });
                    // Drop (= close) races the consumer's first attempt.
                });
                assert_eq!(
                    rx.consume(|q| q.try_pop()),
                    Ok(Unit::Item(1)),
                    "published unit lost to a racing close"
                );
            });
        }
    }

    #[test]
    fn stall_timeout_bounds_the_wait() {
        let (_tx, mut rx, _) = spsc_pair(QueueSpec::with_capacity(8), Duration::from_millis(40));
        let start = Instant::now();
        assert_eq!(rx.consume(|q| q.try_pop()), Err(WaitError::TimedOut));
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn custom_park_slice_keeps_blocking_semantics() {
        // A paced-style sub-millisecond slice: same timeout semantics…
        let (_tx, mut rx, _) = spsc_pair_with(
            QueueSpec::with_capacity(8),
            Duration::from_millis(30),
            Duration::from_micros(100),
        );
        let start = Instant::now();
        assert_eq!(rx.consume(|q| q.try_pop()), Err(WaitError::TimedOut));
        assert!(start.elapsed() >= Duration::from_millis(30));

        // …and a zero slice is clamped rather than becoming a pure spin.
        let (mut tx, mut rx, _) = spsc_pair_with(
            QueueSpec::with_capacity(8),
            Duration::from_secs(10),
            Duration::ZERO,
        );
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                tx.with(|q| {
                    q.try_push(Unit::Item(3)).unwrap();
                    q.flush();
                });
                drop(tx);
            });
            assert_eq!(rx.consume(|q| q.try_pop()), Ok(Unit::Item(3)));
        });
    }

    #[test]
    fn close_wakes_a_parked_consumer() {
        let (tx, mut rx, _) = pair(8);
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                drop(tx);
            });
            // Parks on empty, then the close wakes it into PeerClosed well
            // before the 10 s stall timeout.
            let start = Instant::now();
            assert_eq!(rx.consume(|q| q.try_pop()), Err(WaitError::PeerClosed));
            assert!(start.elapsed() < Duration::from_secs(5));
        });
    }

    #[test]
    fn close_wakes_a_parked_producer() {
        let (mut tx, rx, _) = pair(8);
        tx.with(|q| {
            for i in 0..8u32 {
                q.try_push(Unit::Item(i)).unwrap();
            }
        });
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                drop(rx);
            });
            let start = Instant::now();
            assert_eq!(
                tx.produce(|q| q.try_push(Unit::Item(99)).ok()),
                Err(WaitError::PeerClosed)
            );
            assert!(start.elapsed() < Duration::from_secs(5));
        });
    }

    /// Ping-pong with batches exactly at capacity: every push cycle races
    /// the full boundary and every pop cycle the empty boundary.
    #[test]
    fn full_empty_boundary_races() {
        const CAP: usize = 16;
        let rounds = if cfg!(miri) { 30 } else { 2_000 };
        let (mut tx, mut rx, _) = pair(CAP);
        std::thread::scope(|s| {
            s.spawn(move || {
                let batch: Vec<Unit> = (0..CAP as u32).map(Unit::Item).collect();
                for _ in 0..rounds {
                    let mut pos = 0;
                    while pos < CAP {
                        pos += tx
                            .produce(|q| {
                                let n = q.push_slice(&batch[pos..]);
                                (n > 0).then_some(n)
                            })
                            .unwrap();
                    }
                    tx.with(|q| q.flush());
                }
            });
            let mut got = Vec::new();
            for round in 0..rounds {
                got.clear();
                while got.len() < CAP {
                    let max = CAP - got.len();
                    rx.consume(|q| {
                        let n = q.pop_slice(&mut got, max);
                        (n > 0).then_some(n)
                    })
                    .unwrap();
                }
                let want: Vec<Unit> = (0..CAP as u32).map(Unit::Item).collect();
                assert_eq!(got, want, "round {round}");
            }
        });
    }

    /// Seeded interleaving stress, mirroring the `SharedQueue` idiom:
    /// random batch sizes on both sides, a tiny queue to force constant
    /// blocking, occasional flushes and forced reschedules.
    #[test]
    fn seeded_interleaving_stress() {
        let seeds: &[u64] = if cfg!(miri) {
            &[1, 42]
        } else {
            &[1, 7, 42, 1234]
        };
        for &seed in seeds {
            let (mut tx, mut rx, _) = pair(16);
            let items: Vec<Unit> = (0..N_STRESS as u32).map(Unit::Item).collect();
            let sent = items.clone();
            let mut prng = seed;
            let mut next = move |m: usize| {
                // xorshift64*; plenty for schedule jitter.
                prng ^= prng << 13;
                prng ^= prng >> 7;
                prng ^= prng << 17;
                (prng as usize) % m
            };
            let mut cons_rng = next(1 << 30) as u64 + 1;
            std::thread::scope(|s| {
                s.spawn(move || {
                    let mut pos = 0;
                    while pos < N_STRESS {
                        let end = (pos + 1 + next(31)).min(N_STRESS);
                        let n = tx
                            .produce(|q| {
                                let n = q.push_slice(&sent[pos..end]);
                                (n > 0).then_some(n)
                            })
                            .unwrap();
                        pos += n;
                        if next(8) == 0 {
                            tx.with(|q| q.flush());
                            thread::yield_now();
                        }
                    }
                    tx.with(|q| q.flush());
                });
                let mut got: Vec<Unit> = Vec::new();
                while got.len() < N_STRESS {
                    cons_rng ^= cons_rng << 13;
                    cons_rng ^= cons_rng >> 7;
                    cons_rng ^= cons_rng << 17;
                    let max = (1 + (cons_rng as usize) % 31).min(N_STRESS - got.len());
                    rx.consume(|q| {
                        let n = q.pop_slice(&mut got, max);
                        (n > 0).then_some(n)
                    })
                    .unwrap();
                    if cons_rng.is_multiple_of(16) {
                        thread::yield_now();
                    }
                }
                assert_eq!(got, items, "seed {seed} reordered or lost units");
            });
        }
    }

    #[test]
    fn stats_handle_merges_both_endpoints() {
        let (mut tx, mut rx, stats) = pair(8);
        tx.with(|q| {
            q.try_push(Unit::header(1)).unwrap();
            q.try_push(Unit::Item(2)).unwrap();
            q.flush();
        });
        rx.with(|q| {
            assert!(q.try_pop().is_some());
            assert!(q.try_pop().is_some());
        });
        drop(tx);
        drop(rx);
        let merged = stats.read();
        assert_eq!(merged.header_pushes, 1);
        assert_eq!(merged.item_pushes, 1);
        assert_eq!(merged.header_pops, 1);
        assert_eq!(merged.item_pops, 1);
        assert!(merged.shared_ptr_writes >= 1);
    }

    #[test]
    fn ecc_pointer_corruption_is_corrected_across_the_pair() {
        let (mut tx, mut rx, _) = pair(8);
        tx.with(|q| {
            q.try_push(Unit::Item(1)).unwrap();
            q.try_push(Unit::Item(2)).unwrap();
            q.flush();
        });
        // Strike the shared tail as the consumer would experience it.
        rx.with(|q| q.corrupt_shared_pointer(crate::Which::Tail, 31));
        assert_eq!(rx.consume(|q| q.try_pop()), Ok(Unit::Item(1)));
        assert_eq!(rx.consume(|q| q.try_pop()), Ok(Unit::Item(2)));
        rx.with(|q| assert!(q.stats().ecc.corrections >= 1));
    }
}
