//! Shared queue pointers with selectable protection.

use cg_ecc::{EccCell, EccStats, RawCell};

/// Protection level of a queue's shared head/tail pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointerMode {
    /// Pointers live in ordinary unreliable storage; fault injection can
    /// silently corrupt them (paper Fig. 3b configuration).
    Raw,
    /// Pointers are single-word-ECC protected and scrubbed on every load
    /// (the paper's reliable queue manager, §4.3/§5.1).
    Ecc,
}

/// Selects which shared pointer a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Which {
    /// The consumer-side (head/read) pointer.
    Head,
    /// The producer-side (tail/write) pointer.
    Tail,
}

/// A shared pointer cell in either protection mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrCell {
    /// Unprotected storage.
    Raw(RawCell),
    /// ECC-protected storage.
    Ecc(EccCell),
}

impl PtrCell {
    /// Creates a pointer cell holding `value` under `mode`.
    pub fn new(mode: PointerMode, value: u32) -> Self {
        match mode {
            PointerMode::Raw => PtrCell::Raw(RawCell::new(value)),
            PointerMode::Ecc => PtrCell::Ecc(EccCell::new(value)),
        }
    }

    /// Loads the pointer. ECC cells scrub single-bit corruption;
    /// uncorrectable corruption returns `None` (counted as a detection)
    /// and the queue recovers with a conservative local value — never a
    /// wild count.
    pub fn load(&mut self, stats: &mut EccStats) -> Option<u32> {
        match self {
            PtrCell::Raw(c) => Some(c.load()),
            PtrCell::Ecc(c) => c.load_scrub(stats),
        }
    }

    /// Stores the pointer.
    pub fn store(&mut self, value: u32, stats: &mut EccStats) {
        match self {
            PtrCell::Raw(c) => c.store(value),
            PtrCell::Ecc(c) => c.store(value, stats),
        }
    }

    /// Fault-injection hook: flips a stored bit. For raw cells the flip
    /// lands in the 32 payload bits; for ECC cells it lands anywhere in
    /// the codeword (and will be corrected on next load).
    pub fn inject_flip(&mut self, bit: u32) {
        match self {
            PtrCell::Raw(c) => c.inject_flip(bit % 32),
            PtrCell::Ecc(c) => c.inject_flip(bit % cg_ecc::CODEWORD_BITS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_pointer_corruption_sticks() {
        let mut stats = EccStats::default();
        let mut p = PtrCell::new(PointerMode::Raw, 100);
        p.inject_flip(3);
        assert_eq!(p.load(&mut stats), Some(108));
        assert_eq!(stats.checks, 0, "raw cells perform no ECC work");
    }

    #[test]
    fn ecc_pointer_corruption_corrected() {
        let mut stats = EccStats::default();
        let mut p = PtrCell::new(PointerMode::Ecc, 100);
        p.inject_flip(3);
        assert_eq!(p.load(&mut stats), Some(100));
        assert_eq!(stats.corrections, 1);
    }

    #[test]
    fn ecc_pointer_double_corruption_detected() {
        let mut stats = EccStats::default();
        let mut p = PtrCell::new(PointerMode::Ecc, 100);
        p.inject_flip(3);
        p.inject_flip(17);
        assert_eq!(p.load(&mut stats), None);
        assert_eq!(stats.detections, 1);
    }

    #[test]
    fn store_then_load() {
        let mut stats = EccStats::default();
        for mode in [PointerMode::Raw, PointerMode::Ecc] {
            let mut p = PtrCell::new(mode, 0);
            p.store(41, &mut stats);
            assert_eq!(p.load(&mut stats), Some(41));
        }
    }
}
