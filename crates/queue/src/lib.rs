//! # cg-queue — StreamIt-style inter-core communication queues
//!
//! Models the paper's communication substrate (§5.1, Fig. 6): each edge of
//! the stream graph is implemented by a bounded FIFO living in a memory
//! region, accessed through **head/tail pointers** that are shared between
//! the producer and consumer cores. The pointers are the queue's Achilles
//! heel: if they live in unprotected storage, a single bit flip corrupts
//! every subsequent transfer (the paper's *queue-management errors*, QME,
//! and the collapse shown in Fig. 3b). The paper's reliable queue manager
//! instead protects them with single-word ECC and amortises shared-pointer
//! traffic through 8 *working-set* sub-regions.
//!
//! This crate provides:
//!
//! * [`Unit`] — the word-sized data units flowing through queues: regular
//!   items, or ECC-protected frame headers tagged by a header bit;
//! * [`SimQueue`] — a bounded FIFO with selectable pointer protection
//!   ([`PointerMode::Raw`] vs [`PointerMode::Ecc`]), working-set
//!   accounting, and fault-injection hooks for pointer corruption;
//! * [`QueueStats`] — the load/store/header/workset counters behind the
//!   paper's Fig. 12 memory-event overheads;
//! * [`SharedQueue`] — a mutex/condvar blocking SPSC wrapper (retained as
//!   the threaded executor's baseline transport): condvar parking on
//!   empty/full, closable endpoints so a dead peer is an error instead of
//!   a hang, and a stall-timeout backstop;
//! * [`spsc_pair`] / [`SpscProducer`] / [`SpscConsumer`] — the lock-free
//!   SPSC transport: the same queue protocol over atomic slot storage and
//!   cache-line-padded atomic shared pointers, with spin-then-park
//!   blocking and the same close/stall semantics, but no lock anywhere on
//!   the steady-state push/pop path.
//!
//! ```
//! use cg_queue::{QueueSpec, SimQueue, Unit};
//!
//! let mut q = SimQueue::new(QueueSpec::default());
//! q.try_push(Unit::Item(7)).unwrap();
//! q.flush(); // publish the partial working set to the consumer
//! assert_eq!(q.try_pop(), Some(Unit::Item(7)));
//! assert_eq!(q.try_pop(), None);
//! ```

mod ptr;
mod ring;
mod shared;
mod spsc;
mod stats;
mod unit;

pub use ptr::{PointerMode, PtrCell, Which};
pub use ring::{PushError, QueueSpec, SimQueue};
pub use shared::{SharedQueue, Side, WaitError};
pub use spsc::{
    spsc_pair, spsc_pair_with, SpscConsumer, SpscProducer, SpscStats, DEFAULT_PARK_SLICE,
};
pub use stats::QueueStats;
pub use unit::{FrameId, Unit, END_FRAME_ID};
