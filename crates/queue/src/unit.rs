//! Queue data units: items and frame headers.

use cg_ecc::{decode, encode, Codeword, Decoded};

/// Identifies a frame within a stream (the value of the producer's
/// `active-fc` counter when the frame began).
///
/// "Header values in the order of thousands are enough to identify frames
/// across a streaming graph" (§6) — a `u32` is ample.
pub type FrameId = u32;

/// Reserved frame id signalling end of computation (§4.1: "a special frame
/// ID indicating the end of computation is inserted to every outgoing
/// queue").
pub const END_FRAME_ID: FrameId = u32::MAX;

/// A word-sized data unit travelling through a queue.
///
/// The header/item distinction is carried by a tag (the paper's
/// *header bit*); header payloads are ECC-protected end to end, item
/// payloads are raw and corruptible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// A regular data item (raw, error-prone).
    Item(u32),
    /// A frame header carrying an ECC-encoded [`FrameId`].
    Header(Codeword),
}

impl Unit {
    /// Builds a header unit for `frame` (performs one `compute-ECC`).
    pub fn header(frame: FrameId) -> Self {
        Unit::Header(encode(frame))
    }

    /// The end-of-computation header.
    pub fn end_header() -> Self {
        Unit::header(END_FRAME_ID)
    }

    /// `true` for header units (the paper's `is-header` suboperation).
    #[inline]
    pub fn is_header(&self) -> bool {
        matches!(self, Unit::Header(_))
    }

    /// Decodes a header unit's frame id (performs one `check-ECC`).
    ///
    /// Returns `None` for item units or for headers whose ECC detects
    /// uncorrectable corruption.
    pub fn header_id(&self) -> Option<FrameId> {
        match self {
            Unit::Item(_) => None,
            Unit::Header(cw) => match decode(*cw) {
                Decoded::Clean(id) | Decoded::Corrected(id) => Some(id),
                Decoded::Detected => None,
            },
        }
    }

    /// The raw item payload, if this is an item.
    pub fn item_value(&self) -> Option<u32> {
        match self {
            Unit::Item(v) => Some(*v),
            Unit::Header(_) => None,
        }
    }
}

impl From<u32> for Unit {
    fn from(v: u32) -> Self {
        Unit::Item(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Unit::header(1234);
        assert!(h.is_header());
        assert_eq!(h.header_id(), Some(1234));
        assert_eq!(h.item_value(), None);
    }

    #[test]
    fn item_accessors() {
        let i: Unit = 77u32.into();
        assert!(!i.is_header());
        assert_eq!(i.item_value(), Some(77));
        assert_eq!(i.header_id(), None);
    }

    #[test]
    fn end_header_is_reserved_id() {
        assert_eq!(Unit::end_header().header_id(), Some(END_FRAME_ID));
    }

    #[test]
    fn corrupted_header_single_bit_survives() {
        if let Unit::Header(cw) = Unit::header(42) {
            let h = Unit::Header(cw.with_flipped_bit(9));
            assert_eq!(h.header_id(), Some(42));
        } else {
            unreachable!();
        }
    }

    #[test]
    fn corrupted_header_double_bit_detected() {
        if let Unit::Header(cw) = Unit::header(42) {
            let h = Unit::Header(cw.with_flipped_bit(9).with_flipped_bit(20));
            assert_eq!(h.header_id(), None);
        } else {
            unreachable!();
        }
    }
}
