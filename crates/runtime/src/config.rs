//! Simulation configuration.

use std::time::Duration;

use cg_fault::{EffectModel, FaultClass, Mtbe};
use cg_telemetry::TelemetryConfig;
use cg_trace::TraceConfig;
use commguard::Protection;

use crate::watchdog::WatchdogConfig;

/// How the threaded executor treats fault-enabled configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParFaults {
    /// Inject faults in worker threads and recover at frame granularity:
    /// each frame's outputs are staged and committed at the boundary; on
    /// an invariant violation or a stalled transfer the frame is rolled
    /// back and re-executed up to [`SimConfig::par_retry_budget`] times,
    /// then degraded (outputs padded, frame advanced) so the run never
    /// hangs and never aborts.
    #[default]
    Recover,
    /// Strict legacy behaviour: reject fault-enabled configurations with
    /// a [`crate::RunError`], keeping the threaded path provably
    /// error-free.
    Deny,
}

/// Real-time pacing of a run's sources.
///
/// Ticks are in the executor's *clock unit*: microseconds of wall time on
/// the threaded executor, scheduler rounds on the deterministic executor
/// (whose virtual clock keeps paced runs byte-reproducible). A frame `f`
/// (0-based) is released at `f × period` and must be committed at every
/// sink by `f × period + deadline`; `slo` is the p99 end-to-end latency
/// target judged in [`crate::report::PacingReport::slo_met`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pacing {
    /// Batch mode (the default): frames run back to back, no deadlines,
    /// and the executors behave bit-identically to pre-pacing builds.
    #[default]
    Off,
    /// Paced live-source mode with per-frame deadlines.
    Paced {
        /// Release period between consecutive frames, in clock ticks.
        period: u64,
        /// Per-frame latency budget from release to sink commit, in
        /// clock ticks. Usually ≥ `period`; smaller values leave no
        /// pipelining slack at all.
        deadline: u64,
        /// p99 end-to-end latency objective, in clock ticks.
        slo: u64,
    },
}

impl Pacing {
    /// Whether pacing is on.
    pub fn is_paced(&self) -> bool {
        matches!(self, Pacing::Paced { .. })
    }

    /// The release period in clock ticks (`None` when off).
    pub fn period(&self) -> Option<u64> {
        match self {
            Pacing::Off => None,
            Pacing::Paced { period, .. } => Some(*period),
        }
    }

    /// Release tick of 0-based frame `f` (`0` when off).
    pub fn release(&self, frame: u64) -> u64 {
        match self {
            Pacing::Off => 0,
            Pacing::Paced { period, .. } => frame.saturating_mul(*period),
        }
    }

    /// Absolute deadline tick of 0-based frame `f` (`u64::MAX` when off).
    pub fn deadline_for(&self, frame: u64) -> u64 {
        match self {
            Pacing::Off => u64::MAX,
            Pacing::Paced {
                period, deadline, ..
            } => frame.saturating_mul(*period).saturating_add(*deadline),
        }
    }
}

/// Memory-event model: the fraction of committed instructions that are
/// data loads/stores, used to estimate *all* processor memory events when
/// relating header traffic to total traffic (paper Fig. 12). Values are
/// typical x86 integer/FP mix ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemModel {
    /// Loads per committed instruction.
    pub loads_per_instr: f64,
    /// Stores per committed instruction.
    pub stores_per_instr: f64,
}

impl Default for MemModel {
    fn default() -> Self {
        MemModel {
            loads_per_instr: 0.25,
            stores_per_instr: 0.12,
        }
    }
}

/// Pipeline model for the frame-boundary serialisation overhead of §5.3 /
/// Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Effective cycles lost per frame-boundary serialisation (the
    /// `lfence`-style drain; small because frame boundaries rarely have
    /// many instructions in flight).
    pub serialize_cycles: f64,
    /// Instruction-equivalents per header push or pop.
    pub header_op_cost: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            serialize_cycles: 3.0,
            header_op_cost: 2.0,
        }
    }
}

/// Full configuration of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Protection mode (Fig. 3 configurations).
    pub protection: Protection,
    /// Master fault-injection switch: `false` runs the selected
    /// protection hardware error-free (used to measure pure overheads).
    pub inject: bool,
    /// Mean time between errors per core; ignored when the protection
    /// mode is [`Protection::ErrorFree`].
    pub mtbe: Mtbe,
    /// How faults manifest (defaults to the VM-calibrated rates).
    pub effect_model: EffectModel,
    /// Structured fault mode applied by the runtime (campaign sweeps).
    pub fault_class: FaultClass,
    /// Run seed; per-core RNGs derive from it.
    pub seed: u64,
    /// Steady-state iterations (frames at default scale) to execute.
    pub frames: u64,
    /// Capacity of every queue, in units.
    pub queue_capacity: usize,
    /// Consecutive blocked scheduler visits before a QM timeout fires.
    pub timeout_rounds: u64,
    /// Hard cap on scheduler rounds (safety net; reported as
    /// `completed = false` when hit).
    pub max_rounds: u64,
    /// Memory-event estimation model.
    pub mem_model: MemModel,
    /// Pipeline serialisation model.
    pub overhead_model: OverheadModel,
    /// Cross-core stall watchdog.
    pub watchdog: WatchdogConfig,
    /// Threaded executor: inject-and-recover (default) or strict
    /// error-free-only. Ignored by the deterministic executor.
    pub par_faults: ParFaults,
    /// Threaded executor: how many times a failing frame is re-executed
    /// before its outputs are degraded (padded) and the run advances.
    pub par_retry_budget: u32,
    /// Threaded executor: wall-clock bound on any single blocking queue
    /// wait. The backstop that turns a dead peer into an error (or a
    /// recovery) instead of a hang; scale it down in tests so failures
    /// surface in seconds.
    pub stall_timeout: Duration,
    /// Threaded executor: how long a blocked SPSC ring port parks per
    /// slice before re-checking its deadline. `None` (the default) uses
    /// the built-in 1 ms slice, or a slice derived from the pacing period
    /// when paced mode is on ([`Self::effective_park_slice`]).
    pub park_slice: Option<Duration>,
    /// Real-time pacing: `Off` (the default, batch semantics) or
    /// `Paced { period, deadline, slo }` in clock ticks (µs threaded,
    /// rounds deterministic).
    pub pacing: Pacing,
    /// Event tracing. `Off` (the default) takes the untraced fast path:
    /// no tracer is constructed and every emit site is one `None` check.
    pub trace: TraceConfig,
    /// Metrics plane. `Off` (the default) constructs no probes and every
    /// record site is one `None` check; enabled runs emit per-frame and
    /// per-interval snapshots into `RunReport.telemetry`.
    pub telemetry: TelemetryConfig,
}

impl SimConfig {
    /// An error-free run of `frames` steady iterations.
    ///
    /// `inject` is off, so overriding `protection` via struct update
    /// still yields a genuinely error-free run; use [`Self::with_errors`]
    /// (or set `inject: true`) when faults are wanted.
    pub fn error_free(frames: u64) -> Self {
        SimConfig {
            protection: Protection::ErrorFree,
            inject: false,
            mtbe: Mtbe::kilo_instructions(1024),
            effect_model: EffectModel::calibrated(),
            fault_class: FaultClass::Baseline,
            seed: 1,
            frames,
            queue_capacity: 65_536,
            timeout_rounds: 256,
            max_rounds: u64::MAX,
            mem_model: MemModel::default(),
            overhead_model: OverheadModel::default(),
            watchdog: WatchdogConfig::default(),
            par_faults: ParFaults::default(),
            par_retry_budget: 3,
            stall_timeout: Duration::from_secs(10),
            park_slice: None,
            pacing: Pacing::Off,
            trace: TraceConfig::Off,
            telemetry: TelemetryConfig::Off,
        }
    }

    /// A run under `protection` with errors at `mtbe`.
    pub fn with_errors(frames: u64, protection: Protection, mtbe: Mtbe, seed: u64) -> Self {
        SimConfig {
            protection,
            inject: true,
            mtbe,
            seed,
            ..SimConfig::error_free(frames)
        }
    }

    /// Whether fault injectors will actually fire.
    pub fn faults_enabled(&self) -> bool {
        self.inject && self.protection.errors_enabled()
    }

    /// Sets the frame count (builder style).
    #[must_use]
    pub fn frames(mut self, frames: u64) -> Self {
        self.frames = frames;
        self
    }

    /// Sets the seed (builder style).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trace mode (builder style).
    #[must_use]
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the telemetry mode (builder style).
    #[must_use]
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the threaded-executor fault policy (builder style).
    #[must_use]
    pub fn par_faults(mut self, par_faults: ParFaults) -> Self {
        self.par_faults = par_faults;
        self
    }

    /// Sets the threaded-executor frame retry budget (builder style).
    #[must_use]
    pub fn par_retry_budget(mut self, budget: u32) -> Self {
        self.par_retry_budget = budget;
        self
    }

    /// Sets the blocking-wait stall timeout (builder style).
    #[must_use]
    pub fn stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = timeout;
        self
    }

    /// Sets the SPSC park slice override (builder style).
    #[must_use]
    pub fn park_slice(mut self, slice: Duration) -> Self {
        self.park_slice = Some(slice);
        self
    }

    /// Sets the per-port QM timeout threshold, in fruitless visits
    /// (builder style).
    #[must_use]
    pub fn timeout_rounds(mut self, rounds: u64) -> Self {
        self.timeout_rounds = rounds;
        self
    }

    /// Enables pacing (builder style) and derives paced-appropriate
    /// blocking backstops when the caller left them at their batch
    /// defaults:
    ///
    /// * `stall_timeout` drops from the 10 s batch backstop to
    ///   `4 × period` (floored at 50 ms) — under pacing a blocked port
    ///   should turn into a recovery well inside a handful of frame
    ///   periods, not after ten wall seconds.
    /// * the SPSC park slice ([`Self::effective_park_slice`]) shrinks to
    ///   `period / 20` clamped to [50 µs, 1 ms], so a parked worker
    ///   wakes often enough to observe a deadline that is a fraction of
    ///   the period.
    /// * `timeout_rounds` is raised to at least `4 × period` (the
    ///   deterministic analogue): a paced consumer legitimately idles up
    ///   to a full period between released frames, and a QM timeout
    ///   shorter than that would force stale transfers on an error-free
    ///   paced run.
    ///
    /// Explicitly-set values are respected (the derivation only replaces
    /// untouched defaults). Periods are interpreted as µs on the threaded
    /// executor and as scheduler rounds on the deterministic one.
    #[must_use]
    pub fn pacing(mut self, pacing: Pacing) -> Self {
        self.pacing = pacing;
        if let Pacing::Paced { period, .. } = pacing {
            if self.stall_timeout == Duration::from_secs(10) {
                self.stall_timeout =
                    Duration::from_micros(period.saturating_mul(4)).max(Duration::from_millis(50));
            }
            if self.timeout_rounds == 256 {
                self.timeout_rounds = self.timeout_rounds.max(period.saturating_mul(4));
            }
        }
        self
    }

    /// The SPSC park slice actually used by the threaded executor: the
    /// explicit override if set, else a slice derived from the pacing
    /// period (`period / 20` µs clamped to [50 µs, 1 ms]), else the
    /// historical 1 ms.
    pub fn effective_park_slice(&self) -> Duration {
        if let Some(slice) = self.park_slice {
            return slice;
        }
        match self.pacing {
            Pacing::Paced { period, .. } => Duration::from_micros((period / 20).clamp(50, 1000)),
            Pacing::Off => Duration::from_millis(1),
        }
    }

    /// Sizes the occupancy-sensitive knobs for a graph whose hottest
    /// edge carries `demand` items per steady iteration (frame data plus
    /// in-band header slack — see
    /// `cg_graph::random::GraphProfile::queue_demand`). Used by the fuzz
    /// campaign so that legal-but-extreme generated graphs cannot
    /// false-positive a watchdog; the audit behind each bound:
    ///
    /// * `queue_capacity` is raised to at least `demand`, the sufficient
    ///   condition for the frame schedule to be admissible on fan-in/
    ///   fan-out graphs ([`crate::check_queue_capacity`]).
    /// * `timeout_rounds` is raised to at least `4 × demand`: under the
    ///   deterministic round-robin scheduler a consumer may legally stay
    ///   blocked while the producer side moves a full frame one firing
    ///   per visit, so a QM timeout shorter than the frame turns legal
    ///   skew into forced (incorrect) transfers on an error-free run.
    /// * `stall_timeout` gains `2 ms` of budget per demanded item on top
    ///   of a 100 ms floor: the worst legal blocking wait in the
    ///   threaded executor is a peer producing or consuming one full
    ///   frame, which is linear in `demand`.
    /// * `par_retry_budget` is deliberately **not** scaled: frame
    ///   retries are charged per frame, not per item, so worst-case
    ///   occupancy does not change how many retries a run may legally
    ///   need (the bound stays `par_retry_budget × frames × nodes`).
    #[must_use]
    pub fn for_queue_demand(mut self, demand: u64) -> Self {
        // Rings need at least 8 units (one per working set).
        self.queue_capacity = self.queue_capacity.max(demand as usize).max(8);
        self.timeout_rounds = self.timeout_rounds.max(4 * demand);
        self.stall_timeout = self
            .stall_timeout
            .max(Duration::from_millis(100 + 2 * demand));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = SimConfig::error_free(10);
        assert_eq!(c.frames, 10);
        assert!(!c.protection.errors_enabled());
        let e = SimConfig::with_errors(5, Protection::commguard(), Mtbe::kilo_instructions(512), 7);
        assert_eq!(e.seed, 7);
        assert_eq!(e.frames, 5);
        assert!(e.protection.guards_enabled());
        let f = c.frames(3).seed(9);
        assert_eq!((f.frames, f.seed), (3, 9));
    }

    #[test]
    fn threaded_fault_policy_defaults() {
        let c = SimConfig::error_free(1);
        assert_eq!(c.par_faults, ParFaults::Recover);
        assert_eq!(c.par_retry_budget, 3);
        assert_eq!(c.stall_timeout, Duration::from_secs(10));
        let c = c
            .par_faults(ParFaults::Deny)
            .par_retry_budget(5)
            .stall_timeout(Duration::from_millis(50));
        assert_eq!(c.par_faults, ParFaults::Deny);
        assert_eq!(c.par_retry_budget, 5);
        assert_eq!(c.stall_timeout, Duration::from_millis(50));
    }

    #[test]
    fn queue_demand_sizing_floors() {
        // Tight settings are raised to the audited floors…
        let tight = SimConfig {
            queue_capacity: 8,
            timeout_rounds: 16,
            stall_timeout: Duration::from_millis(10),
            ..SimConfig::error_free(2)
        }
        .for_queue_demand(100);
        assert_eq!(tight.queue_capacity, 100);
        assert_eq!(tight.timeout_rounds, 400);
        assert_eq!(tight.stall_timeout, Duration::from_millis(300));
        // …generous settings are left alone…
        let generous = SimConfig::error_free(2).for_queue_demand(10);
        assert_eq!(generous.queue_capacity, 65_536);
        assert_eq!(generous.timeout_rounds, 256);
        assert_eq!(generous.stall_timeout, Duration::from_secs(10));
        // …and the ring's minimum capacity is always respected.
        let tiny = SimConfig {
            queue_capacity: 8,
            ..SimConfig::error_free(2)
        }
        .for_queue_demand(3);
        assert_eq!(tiny.queue_capacity, 8);
    }

    #[test]
    fn pacing_defaults_off_and_schedule_math() {
        let c = SimConfig::error_free(4);
        assert_eq!(c.pacing, Pacing::Off);
        assert!(!c.pacing.is_paced());
        assert_eq!(c.pacing.release(3), 0);
        assert_eq!(c.pacing.deadline_for(3), u64::MAX);
        assert_eq!(c.effective_park_slice(), Duration::from_millis(1));

        let p = Pacing::Paced {
            period: 1000,
            deadline: 2500,
            slo: 2000,
        };
        assert!(p.is_paced());
        assert_eq!(p.period(), Some(1000));
        assert_eq!(p.release(3), 3000);
        assert_eq!(p.deadline_for(3), 5500);
    }

    #[test]
    fn pacing_builder_derives_backstops() {
        let p = Pacing::Paced {
            period: 20_000,
            deadline: 40_000,
            slo: 40_000,
        };
        // Untouched defaults are re-derived from the period…
        let c = SimConfig::error_free(4).pacing(p);
        assert_eq!(c.stall_timeout, Duration::from_millis(80));
        assert_eq!(c.effective_park_slice(), Duration::from_micros(1000));
        assert_eq!(c.timeout_rounds, 80_000, "QM timeout covers the idle gap");
        // …explicit settings win over the derivation…
        let c = SimConfig::error_free(4)
            .stall_timeout(Duration::from_millis(250))
            .park_slice(Duration::from_micros(200))
            .timeout_rounds(512)
            .pacing(p);
        assert_eq!(c.stall_timeout, Duration::from_millis(250));
        assert_eq!(c.effective_park_slice(), Duration::from_micros(200));
        assert_eq!(c.timeout_rounds, 512);
        // …short periods floor the stall timeout and clamp the slice.
        let tight = SimConfig::error_free(4).pacing(Pacing::Paced {
            period: 100,
            deadline: 300,
            slo: 300,
        });
        assert_eq!(tight.stall_timeout, Duration::from_millis(50));
        assert_eq!(tight.effective_park_slice(), Duration::from_micros(50));
    }

    #[test]
    fn tracing_defaults_off() {
        let c = SimConfig::error_free(1);
        assert_eq!(c.trace, TraceConfig::Off);
        let t = c.trace(TraceConfig::ring());
        assert!(t.trace.is_enabled());
    }

    #[test]
    fn telemetry_defaults_off() {
        let c = SimConfig::error_free(1);
        assert_eq!(c.telemetry, TelemetryConfig::Off);
        let t = c.telemetry(TelemetryConfig::enabled());
        assert!(t.telemetry.is_enabled());
    }
}
