//! Runtime watchdog: cross-core stall detection with a bounded
//! escalation ladder.
//!
//! The per-port [`commguard::qm::TimeoutTracker`]s guarantee that a
//! *blocked queue operation* cannot stall a core forever — but only while
//! their thresholds are finite, and only for stalls that manifest as
//! blocked pushes/pops. The watchdog sits above them and watches the
//! whole machine: if **no core makes any progress** for a configurable
//! number of scheduler rounds, it escalates through four rungs, each
//! strictly stronger than the last:
//!
//! 1. **ArmTimeouts** — force every port's QM timeout to fire on its next
//!    blocked attempt, regardless of threshold (the QM rung).
//! 2. **ForceProgress** — directly complete the stalled phase of every
//!    live core with timeout semantics (forced transfers of stale data).
//! 3. **AbortFrame** — abandon the current frame computation of every
//!    live core: staged state is dropped and the core skips to its next
//!    frame boundary, where the HI/AM machinery realigns.
//! 4. **DegradeFrame** — the terminal rung: every live core's remaining
//!    obligations for the current frame are *discharged* rather than
//!    dropped — staged outputs are flushed and the balance of the frame's
//!    output rate is padded with zeros via forced pushes, so downstream
//!    consumers see a complete (if degraded) frame and the machine is
//!    guaranteed unwedged even when aborting alone could not restart it.
//!
//! The threaded executor reaches the same rung-4 semantics through its
//! frame retry/degrade path (see `crate::parallel`); its per-frame retry
//! and degradation counts are merged into [`WatchdogStats`] as
//! `frame_retries` / `frame_degrades`.
//!
//! Every escalation is counted in [`WatchdogStats`] and surfaced in the
//! run [`crate::RunReport`].

/// Watchdog configuration (part of [`crate::SimConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Master switch.
    pub enabled: bool,
    /// Scheduler rounds without any cross-core progress before the first
    /// rung fires.
    pub stall_rounds: u64,
    /// Additional no-progress rounds between successive rungs.
    pub escalation_rounds: u64,
}

impl WatchdogConfig {
    /// A watchdog that never intervenes.
    pub fn disabled() -> Self {
        WatchdogConfig {
            enabled: false,
            ..Default::default()
        }
    }
}

impl Default for WatchdogConfig {
    /// Enabled, with thresholds far beyond the default QM timeout
    /// (`SimConfig::timeout_rounds = 256`): in any ordinary run the QM
    /// restores progress long before the watchdog notices, so the ladder
    /// only fires when the QM layer itself is disabled or defeated.
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            stall_rounds: 4096,
            escalation_rounds: 1024,
        }
    }
}

/// The action the executor must take this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogAction {
    /// Nothing to do.
    None,
    /// Rung 1: arm every QM timeout tracker.
    ArmTimeouts,
    /// Rung 2: force the stalled phase of every live core to complete.
    ForceProgress,
    /// Rung 3: abort the current frame of every live core.
    AbortFrame,
    /// Rung 4: discharge the current frame of every live core — flush
    /// staged outputs, pad the rest of the frame's output rate with
    /// forced zero pushes, and advance to the next boundary.
    DegradeFrame,
}

/// Escalation counters, reported per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogStats {
    /// Distinct stall episodes detected (rung 1 entries).
    pub stall_events: u64,
    /// Rung-1 firings: QM timeouts armed machine-wide.
    pub timeout_escalations: u64,
    /// Rung-2 firings: phases forcibly completed.
    pub forced_progress: u64,
    /// Rung-3 firings: frames aborted.
    pub frame_aborts: u64,
    /// Rung-4 firings (deterministic executor) plus frames degraded after
    /// retry-budget exhaustion (threaded executor).
    pub frame_degrades: u64,
    /// Frames re-executed from their boundary snapshot (threaded
    /// executor's recovery rung; always 0 on the deterministic path).
    pub frame_retries: u64,
    /// Longest observed no-progress streak, in rounds.
    pub max_stall_rounds: u64,
}

impl WatchdogStats {
    /// Total escalations across all rungs.
    pub fn total_escalations(&self) -> u64 {
        self.timeout_escalations + self.forced_progress + self.frame_aborts + self.frame_degrades
    }
}

impl std::ops::AddAssign for WatchdogStats {
    fn add_assign(&mut self, rhs: Self) {
        self.stall_events += rhs.stall_events;
        self.timeout_escalations += rhs.timeout_escalations;
        self.forced_progress += rhs.forced_progress;
        self.frame_aborts += rhs.frame_aborts;
        self.frame_degrades += rhs.frame_degrades;
        self.frame_retries += rhs.frame_retries;
        self.max_stall_rounds = self.max_stall_rounds.max(rhs.max_stall_rounds);
    }
}

/// The stall detector itself. Owned by the executor loop; fed one
/// observation per scheduler round.
#[derive(Debug, Clone)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    /// Consecutive rounds without progress.
    stalled_for: u64,
    /// Rungs already fired in the current stall episode (0–4).
    rung: u32,
    stats: WatchdogStats,
}

impl Watchdog {
    /// Creates a watchdog with the given configuration.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            stalled_for: 0,
            rung: 0,
            stats: WatchdogStats::default(),
        }
    }

    /// Records one scheduler round and returns the action to take.
    /// `progressed` is whether any core advanced observable state.
    pub fn on_round(&mut self, progressed: bool) -> WatchdogAction {
        if !self.cfg.enabled {
            return WatchdogAction::None;
        }
        if progressed {
            self.stalled_for = 0;
            self.rung = 0;
            return WatchdogAction::None;
        }
        self.stalled_for += 1;
        self.stats.max_stall_rounds = self.stats.max_stall_rounds.max(self.stalled_for);
        let due = self.cfg.stall_rounds + u64::from(self.rung) * self.cfg.escalation_rounds;
        if self.stalled_for < due || self.rung >= 4 {
            return WatchdogAction::None;
        }
        self.rung += 1;
        match self.rung {
            1 => {
                self.stats.stall_events += 1;
                self.stats.timeout_escalations += 1;
                WatchdogAction::ArmTimeouts
            }
            2 => {
                self.stats.forced_progress += 1;
                WatchdogAction::ForceProgress
            }
            3 => {
                self.stats.frame_aborts += 1;
                WatchdogAction::AbortFrame
            }
            _ => {
                self.stats.frame_degrades += 1;
                WatchdogAction::DegradeFrame
            }
        }
    }

    /// Records frame retries performed outside the round-driven ladder
    /// (the threaded executor's recovery path).
    pub fn note_frame_retries(&mut self, n: u64) {
        self.stats.frame_retries += n;
    }

    /// Records frame degradations performed outside the round-driven
    /// ladder (the threaded executor's budget-exhaustion path).
    pub fn note_frame_degrades(&mut self, n: u64) {
        self.stats.frame_degrades += n;
    }

    /// Notes that something *outside* the ladder just degraded a frame
    /// (the deadline ladder's forced `DegradeFrame`), which IS progress:
    /// the stalled frame was discharged and the machine is on a fresh
    /// frame. Resets the stall episode so a concurrently-armed ladder
    /// cannot go on to fire `AbortFrame`/`DegradeFrame` against the *new*
    /// frame — the terminal rung stays idempotent per frame.
    pub fn note_external_degrade(&mut self) {
        self.stalled_for = 0;
        self.rung = 0;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> WatchdogStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Watchdog {
        Watchdog::new(WatchdogConfig {
            enabled: true,
            stall_rounds: 3,
            escalation_rounds: 2,
        })
    }

    #[test]
    fn quiet_while_progressing() {
        let mut w = tiny();
        for _ in 0..100 {
            assert_eq!(w.on_round(true), WatchdogAction::None);
        }
        assert_eq!(w.stats().total_escalations(), 0);
    }

    #[test]
    fn ladder_escalates_in_order() {
        let mut w = tiny();
        let mut actions = Vec::new();
        for _ in 0..12 {
            actions.push(w.on_round(false));
        }
        use WatchdogAction::*;
        assert_eq!(
            actions,
            vec![
                None,
                None,
                ArmTimeouts, // round 3 = stall_rounds
                None,
                ForceProgress, // +2 = escalation_rounds
                None,
                AbortFrame, // +2 more
                None,
                DegradeFrame, // +2 more: the terminal rung
                None,
                None,
                None, // ladder exhausted: no repeats within the episode
            ]
        );
        let s = w.stats();
        assert_eq!(s.stall_events, 1);
        assert_eq!(s.timeout_escalations, 1);
        assert_eq!(s.forced_progress, 1);
        assert_eq!(s.frame_aborts, 1);
        assert_eq!(s.frame_degrades, 1);
        assert_eq!(s.total_escalations(), 4);
        assert_eq!(s.max_stall_rounds, 12);
    }

    #[test]
    fn progress_resets_the_episode() {
        let mut w = tiny();
        for _ in 0..3 {
            w.on_round(false);
        }
        assert_eq!(w.stats().stall_events, 1);
        assert_eq!(w.on_round(true), WatchdogAction::None);
        // A second full episode runs the ladder again from rung 1.
        let mut seen_arm = false;
        for _ in 0..3 {
            seen_arm |= w.on_round(false) == WatchdogAction::ArmTimeouts;
        }
        assert!(seen_arm);
        assert_eq!(w.stats().stall_events, 2);
    }

    #[test]
    fn external_degrade_resets_a_racing_ladder() {
        let mut w = tiny();
        // Ladder runs to AbortFrame: rounds 3, 5, 7 fire rungs 1–3.
        for _ in 0..7 {
            w.on_round(false);
        }
        assert_eq!(w.stats().frame_aborts, 1);
        // A deadline degrade discharges the frame outside the ladder…
        w.note_external_degrade();
        // …so a continued stall must start a NEW episode from rung 1
        // rather than firing the terminal DegradeFrame on the next frame.
        let mut next_fire = WatchdogAction::None;
        for _ in 0..3 {
            let a = w.on_round(false);
            if a != WatchdogAction::None {
                next_fire = a;
            }
        }
        assert_eq!(next_fire, WatchdogAction::ArmTimeouts);
        assert_eq!(w.stats().stall_events, 2);
        assert_eq!(w.stats().frame_degrades, 0, "terminal rung not re-fired");
    }

    #[test]
    fn disabled_watchdog_never_acts() {
        let mut w = Watchdog::new(WatchdogConfig::disabled());
        for _ in 0..10_000 {
            assert_eq!(w.on_round(false), WatchdogAction::None);
        }
        assert_eq!(w.stats().total_escalations(), 0);
    }

    #[test]
    fn stats_merge() {
        let mut a = WatchdogStats {
            stall_events: 1,
            timeout_escalations: 1,
            max_stall_rounds: 5,
            ..Default::default()
        };
        a += WatchdogStats {
            stall_events: 2,
            frame_aborts: 1,
            frame_degrades: 2,
            frame_retries: 4,
            max_stall_rounds: 3,
            ..Default::default()
        };
        assert_eq!(a.stall_events, 3);
        assert_eq!(a.total_escalations(), 4);
        assert_eq!(a.frame_retries, 4);
        assert_eq!(a.max_stall_rounds, 5);
    }
}
