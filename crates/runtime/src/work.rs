//! Work functions — the compute bodies of stream-graph nodes.

/// The work function of a filter node.
///
/// On each firing the runtime stages `pop_rate` items from every incoming
/// edge into `inputs` (one `Vec` per in-port, in the node's port order)
/// and expects the implementation to append exactly `push_rate` items to
/// every `outputs` buffer (one per out-port). Item counts are *not*
/// enforced here — producing the wrong count is precisely the control-flow
/// failure mode the fault injector exercises — but well-behaved filters
/// must match their declared rates or the error-free run itself will
/// misalign.
///
/// Items are raw `u32` words; floating-point filters move `f32` values via
/// `to_bits`/`from_bits` so that injected bit flips hit real operand bits.
pub trait WorkFn: Send {
    /// Computes one firing.
    fn fire(&mut self, inputs: &[Vec<u32>], outputs: &mut [Vec<u32>]);
}

impl<F> WorkFn for F
where
    F: FnMut(&[Vec<u32>], &mut [Vec<u32>]) + Send,
{
    fn fire(&mut self, inputs: &[Vec<u32>], outputs: &mut [Vec<u32>]) {
        self(inputs, outputs)
    }
}

/// Helpers for moving `f32` samples through word streams.
pub mod f32s {
    /// Encodes an `f32` slice into words.
    pub fn to_words(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    /// Decodes words into `f32`s.
    pub fn from_words(ws: &[u32]) -> Vec<f32> {
        ws.iter().map(|&w| f32::from_bits(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_work_fns() {
        let mut doubler = |inp: &[Vec<u32>], out: &mut [Vec<u32>]| {
            for &v in &inp[0] {
                out[0].push(v * 2);
            }
        };
        let inputs = vec![vec![1, 2, 3]];
        let mut outputs = vec![Vec::new()];
        doubler.fire(&inputs, &mut outputs);
        assert_eq!(outputs[0], vec![2, 4, 6]);
    }

    #[test]
    fn f32_roundtrip() {
        let xs = [1.5f32, -0.25, 1e-9];
        let back = f32s::from_words(&f32s::to_words(&xs));
        assert_eq!(back, xs);
    }
}
