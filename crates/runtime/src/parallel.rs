//! A threaded executor: one OS thread per node, edges carried by
//! blocking [`SharedQueue`]s with a batched transport.
//!
//! The deterministic executor ([`crate::run`]) is the measurement
//! instrument — bit-reproducible, with fault injection. This executor
//! exists to show the same guarded programs running with *real*
//! parallelism (and to give the overhead benches a host-concurrency data
//! point). It supports the guard modules but not fault injection:
//! fault timing relative to queue state is scheduling-dependent on real
//! threads, which would silently break reproducibility, so
//! [`run_parallel`] rejects error-enabled configurations instead.
//!
//! ## Transport
//!
//! Workers never spin: a blocked push or pop parks on a condvar inside
//! [`SharedQueue`] and is woken when the peer makes progress. Each worker
//! closes its queue endpoints on exit — including panic unwinds — so a
//! dead neighbour surfaces as [`RunError::Parallel`] naming the stuck
//! edge instead of hanging the run; a stall timeout backstops everything
//! else. The default [`ParTransport::Batched`] mode moves a whole
//! firing's worth of units per lock acquisition through
//! [`CoreGuard::pop_batch`]/[`CoreGuard::push_batch`], which keep AM/HI
//! transitions unit-accurate; [`ParTransport::PerItem`] (one unit per
//! acquisition) is kept as the benchmark baseline.

use std::time::Duration;

use cg_graph::{EdgeId, NodeId, NodeKind};
use cg_queue::{QueueSpec, SharedQueue, Side, SimQueue, WaitError};
use commguard::CoreGuard;

use crate::config::SimConfig;
use crate::program::Program;
use crate::report::{NodeReport, RunReport};
use crate::RunError;

/// How the threaded executor moves units between worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParTransport {
    /// One queue-lock acquisition per unit — the historical transport,
    /// kept as the benchmark baseline.
    PerItem,
    /// One lock acquisition per firing per port, moving whole batches.
    Batched,
}

/// Bound on any single blocking wait; generous so loaded CI machines do
/// not trip it, since peer-death detection (not the timeout) is the fast
/// path for every real failure.
const STALL_TIMEOUT: Duration = Duration::from_secs(10);

/// Closes a worker's queue endpoints when it exits — on success, on a
/// transport error, and on panic unwind alike — so blocked neighbours
/// observe a dead peer instead of waiting out the stall timeout.
struct PortCloser<'a> {
    queues: &'a [SharedQueue],
    in_edges: &'a [EdgeId],
    out_edges: &'a [EdgeId],
}

impl Drop for PortCloser<'_> {
    fn drop(&mut self) {
        for &e in self.in_edges {
            self.queues[e.index()].close(Side::Consumer);
        }
        for &e in self.out_edges {
            self.queues[e.index()].close(Side::Producer);
        }
    }
}

fn stall_error(node: &str, action: &str, edge: &str, err: WaitError) -> RunError {
    RunError::Parallel(format!("node '{node}' {action} on edge {edge}: {err}"))
}

/// Runs `program` with one thread per node and the batched transport.
/// Error-free only.
///
/// # Errors
///
/// Returns [`RunError`] for unbound nodes or inconsistent schedules,
/// [`RunError::BadEffectModel`] if the configuration enables errors
/// (use the deterministic executor for fault experiments), and
/// [`RunError::Parallel`] when a worker dies or stalls past the
/// transport timeout.
pub fn run_parallel(program: Program, config: &SimConfig) -> Result<RunReport, RunError> {
    run_parallel_with(program, config, ParTransport::Batched)
}

/// [`run_parallel`] with an explicit transport choice (the benchmark
/// harness compares [`ParTransport::PerItem`] against
/// [`ParTransport::Batched`]).
///
/// # Errors
///
/// As for [`run_parallel`].
pub fn run_parallel_with(
    program: Program,
    config: &SimConfig,
    transport: ParTransport,
) -> Result<RunReport, RunError> {
    if config.faults_enabled() {
        return Err(RunError::BadEffectModel(
            "the threaded executor is error-free only; use cg_runtime::run".into(),
        ));
    }
    program.validate_bound().map_err(RunError::UnboundNode)?;
    let (graph, mut works) = program.into_parts();
    let schedule = graph
        .schedule()
        .map_err(|e| RunError::Schedule(e.to_string()))?;
    let guard_cfg = config.protection.guard_config();

    let queues: Vec<SharedQueue> = graph
        .edges()
        .map(|_| {
            SharedQueue::with_stall_timeout(
                SimQueue::new(
                    QueueSpec::with_capacity(config.queue_capacity)
                        .pointer_mode(config.protection.pointer_mode()),
                ),
                STALL_TIMEOUT,
            )
        })
        .collect();
    // Human-readable edge labels for stuck-edge errors.
    let edge_labels: Vec<String> = graph
        .edges()
        .map(|(id, e)| {
            format!(
                "e{} ({}\u{2192}{})",
                id.index(),
                graph.node(e.src()).name(),
                graph.node(e.dst()).name()
            )
        })
        .collect();
    // A batch never needs to exceed one firing's rate; `PerItem` degrades
    // every batch to a single unit.
    let chunk_limit: usize = match transport {
        ParTransport::PerItem => 1,
        ParTransport::Batched => usize::MAX,
    };

    struct ThreadResult {
        node: NodeId,
        in_edges: Vec<EdgeId>,
        report: NodeReport,
        sink: Option<Vec<u32>>,
    }

    let mut results: Vec<ThreadResult> = Vec::with_capacity(graph.node_count());
    let mut errors: Vec<RunError> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (id, node) in graph.nodes() {
            let work = works[id.index()].take();
            let in_edges: Vec<_> = node.inputs().to_vec();
            let out_edges: Vec<_> = node.outputs().to_vec();
            let pop_rates: Vec<u32> = in_edges.iter().map(|&e| graph.edge(e).pop_rate()).collect();
            let push_rates: Vec<u32> = out_edges
                .iter()
                .map(|&e| graph.edge(e).push_rate())
                .collect();
            let kind = node.kind();
            let name = node.name().to_string();
            let cost = *node.cost();
            let reps = schedule.repetitions(id);
            let frames = config.frames;
            let queues = &queues;
            let edge_labels = &edge_labels;
            let worker = move || -> Result<ThreadResult, RunError> {
                let _closer = PortCloser {
                    queues,
                    in_edges: &in_edges,
                    out_edges: &out_edges,
                };
                let mut guard = match &guard_cfg {
                    Some(cfg) => CoreGuard::new(
                        in_edges.len(),
                        out_edges.len(),
                        cfg,
                        u32::try_from(frames.div_ceil(u64::from(cfg.frame_scale))).ok(),
                    ),
                    None => CoreGuard::disabled(in_edges.len(), out_edges.len()),
                };
                let mut work = work;
                let mut staged_in: Vec<Vec<u32>> = vec![Vec::new(); in_edges.len()];
                let mut staged_out: Vec<Vec<u32>> = vec![Vec::new(); out_edges.len()];
                let mut sink_buf: Vec<u32> = Vec::new();
                let mut instructions = 0u64;
                guard.start();
                for firing in 0..reps * frames {
                    if firing > 0 && firing % reps == 0 {
                        for &e in &out_edges {
                            queues[e.index()].with(SimQueue::flush);
                        }
                        guard.scope_boundary();
                    }
                    // Drain pending headers (block on full queues).
                    for (port, &e) in out_edges.iter().enumerate() {
                        queues[e.index()]
                            .produce(|q| guard.hi_tick(port, q).then_some(()))
                            .map_err(|w| {
                                stall_error(&name, "draining headers", &edge_labels[e.index()], w)
                            })?;
                    }
                    // Pop inputs (block on empty queues), one lock
                    // acquisition per wakeup rather than per unit.
                    for (port, &e) in in_edges.iter().enumerate() {
                        let need = pop_rates[port] as usize;
                        while staged_in[port].len() < need {
                            let buf = &mut staged_in[port];
                            let max = (need - buf.len()).min(chunk_limit);
                            queues[e.index()]
                                .consume(|q| {
                                    let n = guard.pop_batch(port, q, buf, max);
                                    (n > 0).then_some(())
                                })
                                .map_err(|w| {
                                    stall_error(&name, "popping items", &edge_labels[e.index()], w)
                                })?;
                        }
                    }
                    // Fire.
                    let items: u64 = staged_in.iter().map(|b| b.len() as u64).sum::<u64>();
                    match kind {
                        NodeKind::Source | NodeKind::Filter => {
                            work.as_mut()
                                .expect("bound")
                                .fire(&staged_in, &mut staged_out);
                        }
                        NodeKind::SplitDuplicate => {
                            for out in &mut staged_out {
                                out.extend_from_slice(&staged_in[0]);
                            }
                        }
                        NodeKind::SplitRoundRobin => {
                            let mut off = 0usize;
                            for (port, out) in staged_out.iter_mut().enumerate() {
                                let take = push_rates[port] as usize;
                                out.extend_from_slice(&staged_in[0][off..off + take]);
                                off += take;
                            }
                        }
                        NodeKind::JoinRoundRobin => {
                            for inp in &staged_in {
                                staged_out[0].extend_from_slice(inp);
                            }
                        }
                        NodeKind::Sink => {
                            for inp in &staged_in {
                                sink_buf.extend_from_slice(inp);
                            }
                        }
                    }
                    let pushed: u64 = staged_out.iter().map(|b| b.len() as u64).sum::<u64>();
                    instructions += cost.firing_cost(items + pushed);
                    // Push outputs (block on full queues), whole remaining
                    // batch per lock acquisition.
                    for (port, &e) in out_edges.iter().enumerate() {
                        let buf = &staged_out[port];
                        let mut pos = 0;
                        while pos < buf.len() {
                            let end = buf.len().min(pos.saturating_add(chunk_limit));
                            let n = queues[e.index()]
                                .produce(|q| {
                                    let n = guard.push_batch(port, q, &buf[pos..end]);
                                    (n > 0).then_some(n)
                                })
                                .map_err(|w| {
                                    stall_error(&name, "pushing items", &edge_labels[e.index()], w)
                                })?;
                            pos += n;
                        }
                        staged_out[port].clear();
                    }
                    for b in &mut staged_in {
                        b.clear();
                    }
                }
                guard.finish();
                // Drain the end-of-computation header. With the consumer
                // gone and the queue full this used to spin forever; the
                // condvar wait is bounded and a dead peer is an error
                // naming the stuck edge.
                for (port, &e) in out_edges.iter().enumerate() {
                    queues[e.index()]
                        .produce(|q| guard.hi_tick(port, q).then_some(()))
                        .map_err(|w| {
                            stall_error(
                                &name,
                                "draining the end header",
                                &edge_labels[e.index()],
                                w,
                            )
                        })?;
                    queues[e.index()].with(SimQueue::flush);
                }
                let frames_done = frames;
                Ok(ThreadResult {
                    node: id,
                    in_edges: in_edges.clone(),
                    report: NodeReport {
                        name,
                        instructions,
                        firings: reps * frames,
                        frames: frames_done,
                        instructions_per_frame: if frames_done > 0 {
                            instructions as f64 / frames_done as f64
                        } else {
                            0.0
                        },
                        subops: guard.into_subops(),
                        faults: Default::default(),
                        timeouts: 0,
                        max_queue_occupancy: 0,
                    },
                    sink: if kind == NodeKind::Sink {
                        Some(sink_buf)
                    } else {
                        None
                    },
                })
            };
            handles.push((node.name().to_string(), scope.spawn(worker)));
        }
        for (name, h) in handles {
            match h.join() {
                Ok(Ok(r)) => results.push(r),
                Ok(Err(e)) => errors.push(e),
                Err(_) => errors.push(RunError::Parallel(format!(
                    "worker thread for node '{name}' panicked"
                ))),
            }
        }
    });
    if let Some(e) = errors.into_iter().next() {
        return Err(e);
    }

    results.sort_by_key(|r| r.node.index());
    let mut report = RunReport {
        app: graph.name().to_string(),
        // No scheduler rounds exist on real threads; the closest
        // equivalent unit of progress is the steady-state frame.
        rounds: config.frames,
        completed: true,
        ..Default::default()
    };
    for q in &queues {
        report.queues += q.with(|q| *q.stats());
    }
    for mut r in results {
        // Consumer-side attribution, matching the deterministic executor.
        r.report.max_queue_occupancy = r
            .in_edges
            .iter()
            .map(|&e| queues[e.index()].with(|q| q.stats().max_occupancy))
            .max()
            .unwrap_or(0);
        report.realignment_episodes += r.report.subops.pad_events + r.report.subops.discard_events;
        if let Some(buf) = r.sink {
            report.sinks.insert(r.node.index(), buf);
        }
        report.nodes.push(r.report);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run;
    use cg_graph::GraphBuilder;
    use commguard::Protection;

    fn program() -> (Program, NodeId) {
        let mut b = GraphBuilder::new("par");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        let g2 = b.add_node("g", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.pipeline(&[s, f, g2, k], 8).unwrap();
        let graph = b.build().unwrap();
        let mut p = Program::new(graph);
        let mut next = 0u32;
        p.set_source(s, move |out| {
            for _ in 0..8 {
                out.push(next);
                next += 1;
            }
        });
        p.set_filter(f, |inp, out| {
            out[0].extend(inp[0].iter().map(|&v| v.wrapping_mul(7)));
        });
        p.set_filter(g2, |inp, out| {
            out[0].extend(inp[0].iter().map(|&v| v ^ 0xFF));
        });
        (p, k)
    }

    #[test]
    fn parallel_matches_deterministic_output() {
        let (p, sink) = program();
        let want = run(p, &SimConfig::error_free(200)).unwrap();
        let (p, _) = program();
        let got = run_parallel(p, &SimConfig::error_free(200)).unwrap();
        assert_eq!(got.sink_output(sink), want.sink_output(sink));
        assert!(got.completed);
        assert_eq!(got.rounds, 200, "rounds reports the frame count");
    }

    #[test]
    fn parallel_guarded_matches_too() {
        let cfg = SimConfig {
            protection: Protection::commguard(),
            inject: false,
            ..SimConfig::error_free(100)
        };
        let (p, sink) = program();
        let want = run(p, &cfg).unwrap();
        let (p, _) = program();
        let got = run_parallel(p, &cfg).unwrap();
        assert_eq!(got.sink_output(sink), want.sink_output(sink));
        assert_eq!(
            got.queues.header_pushes, want.queues.header_pushes,
            "same header traffic either way"
        );
        assert_eq!(got.queues.header_pops, want.queues.header_pops);
    }

    #[test]
    fn per_item_transport_matches_batched() {
        let cfg = SimConfig {
            protection: Protection::commguard(),
            inject: false,
            ..SimConfig::error_free(50)
        };
        let (p, sink) = program();
        let batched = run_parallel_with(p, &cfg, ParTransport::Batched).unwrap();
        let (p, _) = program();
        let per_item = run_parallel_with(p, &cfg, ParTransport::PerItem).unwrap();
        assert_eq!(batched.sink_output(sink), per_item.sink_output(sink));
        assert_eq!(batched.queues.item_pushes, per_item.queues.item_pushes);
        assert_eq!(batched.queues.header_pushes, per_item.queues.header_pushes);
    }

    #[test]
    fn parallel_rejects_error_injection() {
        let (p, _) = program();
        let cfg = SimConfig {
            protection: Protection::PpuReliableQueue,
            inject: true,
            ..SimConfig::error_free(10)
        };
        assert!(run_parallel(p, &cfg).is_err());
    }

    /// A worker that dies mid-stream (panicking filter) must surface as a
    /// `RunError` on some thread — never a hang. The dying worker's drop
    /// guard closes its endpoints, so neighbours fail fast with
    /// peer-closed rather than waiting out the stall timeout.
    #[test]
    fn killed_worker_is_an_error_not_a_hang() {
        let mut b = GraphBuilder::new("killed");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.pipeline(&[s, f, k], 8).unwrap();
        let mut p = Program::new(b.build().unwrap());
        p.set_source(s, |out| out.extend(0..8u32));
        let mut firings = 0u32;
        p.set_filter(f, move |inp, out| {
            firings += 1;
            assert!(firings < 5, "injected worker death");
            out[0].extend_from_slice(&inp[0]);
        });
        let _ = k;
        let start = std::time::Instant::now();
        let err = run_parallel(p, &SimConfig::error_free(1000)).unwrap_err();
        assert!(
            start.elapsed() < STALL_TIMEOUT,
            "peer-closed must beat the stall timeout"
        );
        assert!(matches!(err, RunError::Parallel(_)), "got: {err}");
    }
}
