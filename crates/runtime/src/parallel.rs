//! A threaded executor: one OS thread per node, queues shared behind
//! `parking_lot` mutexes.
//!
//! The deterministic executor ([`crate::run`]) is the measurement
//! instrument — bit-reproducible, with fault injection. This executor
//! exists to show the same guarded programs running with *real*
//! parallelism (and to give the overhead benches a host-concurrency data
//! point). It supports the guard modules but not fault injection:
//! fault timing relative to queue state is scheduling-dependent on real
//! threads, which would silently break reproducibility, so
//! [`run_parallel`] rejects error-enabled configurations instead.

use std::sync::Arc;

use cg_graph::{NodeId, NodeKind};
use cg_queue::{QueueSpec, SimQueue};
use commguard::CoreGuard;
use parking_lot::Mutex;

use crate::config::SimConfig;
use crate::program::Program;
use crate::report::{NodeReport, RunReport};
use crate::RunError;

/// Runs `program` with one thread per node. Error-free only.
///
/// # Errors
///
/// Returns [`RunError`] for unbound nodes or inconsistent schedules, and
/// [`RunError::BadEffectModel`] if the configuration enables errors
/// (use the deterministic executor for fault experiments).
pub fn run_parallel(program: Program, config: &SimConfig) -> Result<RunReport, RunError> {
    if config.faults_enabled() {
        return Err(RunError::BadEffectModel(
            "the threaded executor is error-free only; use cg_runtime::run".into(),
        ));
    }
    program.validate_bound().map_err(RunError::UnboundNode)?;
    let (graph, mut works) = program.into_parts();
    let schedule = graph
        .schedule()
        .map_err(|e| RunError::Schedule(e.to_string()))?;
    let guard_cfg = config.protection.guard_config();

    let queues: Vec<Arc<Mutex<SimQueue>>> = graph
        .edges()
        .map(|_| {
            Arc::new(Mutex::new(SimQueue::new(
                QueueSpec::with_capacity(config.queue_capacity)
                    .pointer_mode(config.protection.pointer_mode()),
            )))
        })
        .collect();

    struct ThreadResult {
        node: NodeId,
        in_edges: Vec<cg_graph::EdgeId>,
        report: NodeReport,
        sink: Option<Vec<u32>>,
    }

    let mut results: Vec<ThreadResult> = Vec::with_capacity(graph.node_count());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (id, node) in graph.nodes() {
            let work = works[id.index()].take();
            let in_edges: Vec<_> = node.inputs().to_vec();
            let out_edges: Vec<_> = node.outputs().to_vec();
            let pop_rates: Vec<u32> = in_edges.iter().map(|&e| graph.edge(e).pop_rate()).collect();
            let push_rates: Vec<u32> = out_edges
                .iter()
                .map(|&e| graph.edge(e).push_rate())
                .collect();
            let kind = node.kind();
            let name = node.name().to_string();
            let cost = *node.cost();
            let reps = schedule.repetitions(id);
            let frames = config.frames;
            let queues = &queues;
            handles.push(scope.spawn(move || {
                let mut guard = match &guard_cfg {
                    Some(cfg) => CoreGuard::new(
                        in_edges.len(),
                        out_edges.len(),
                        cfg,
                        u32::try_from(frames.div_ceil(u64::from(cfg.frame_scale))).ok(),
                    ),
                    None => CoreGuard::disabled(in_edges.len(), out_edges.len()),
                };
                let mut work = work;
                let mut staged_in: Vec<Vec<u32>> = vec![Vec::new(); in_edges.len()];
                let mut staged_out: Vec<Vec<u32>> = vec![Vec::new(); out_edges.len()];
                let mut sink_buf: Vec<u32> = Vec::new();
                let mut instructions = 0u64;
                guard.start();
                for firing in 0..reps * frames {
                    if firing > 0 && firing % reps == 0 {
                        for &e in &out_edges {
                            queues[e.index()].lock().flush();
                        }
                        guard.scope_boundary();
                    }
                    // Drain pending headers (spin on full queues).
                    for (port, &e) in out_edges.iter().enumerate() {
                        while !guard.hi_tick(port, &mut queues[e.index()].lock()) {
                            std::thread::yield_now();
                        }
                    }
                    // Pop inputs (spin on empty queues).
                    for (port, &e) in in_edges.iter().enumerate() {
                        while staged_in[port].len() < pop_rates[port] as usize {
                            let popped = guard.pop(port, &mut queues[e.index()].lock());
                            match popped {
                                Some(v) => staged_in[port].push(v),
                                None => std::thread::yield_now(),
                            }
                        }
                    }
                    // Fire.
                    let items: u64 = staged_in.iter().map(|b| b.len() as u64).sum::<u64>();
                    match kind {
                        NodeKind::Source | NodeKind::Filter => {
                            work.as_mut()
                                .expect("bound")
                                .fire(&staged_in, &mut staged_out);
                        }
                        NodeKind::SplitDuplicate => {
                            for out in &mut staged_out {
                                out.extend_from_slice(&staged_in[0]);
                            }
                        }
                        NodeKind::SplitRoundRobin => {
                            let mut off = 0usize;
                            for (port, out) in staged_out.iter_mut().enumerate() {
                                let take = push_rates[port] as usize;
                                out.extend_from_slice(&staged_in[0][off..off + take]);
                                off += take;
                            }
                        }
                        NodeKind::JoinRoundRobin => {
                            for inp in &staged_in {
                                staged_out[0].extend_from_slice(inp);
                            }
                        }
                        NodeKind::Sink => {
                            for inp in &staged_in {
                                sink_buf.extend_from_slice(inp);
                            }
                        }
                    }
                    let pushed: u64 = staged_out.iter().map(|b| b.len() as u64).sum::<u64>();
                    instructions += cost.firing_cost(items + pushed);
                    // Push outputs (spin on full queues).
                    for (port, &e) in out_edges.iter().enumerate() {
                        for &v in staged_out[port].iter() {
                            while guard.push(port, &mut queues[e.index()].lock(), v).is_err() {
                                std::thread::yield_now();
                            }
                        }
                        staged_out[port].clear();
                    }
                    for b in &mut staged_in {
                        b.clear();
                    }
                }
                guard.finish();
                for (port, &e) in out_edges.iter().enumerate() {
                    while !guard.hi_tick(port, &mut queues[e.index()].lock()) {
                        std::thread::yield_now();
                    }
                    queues[e.index()].lock().flush();
                }
                let frames_done = frames;
                ThreadResult {
                    node: id,
                    in_edges: in_edges.clone(),
                    report: NodeReport {
                        name,
                        instructions,
                        firings: reps * frames,
                        frames: frames_done,
                        instructions_per_frame: if frames_done > 0 {
                            instructions as f64 / frames_done as f64
                        } else {
                            0.0
                        },
                        subops: guard.into_subops(),
                        faults: Default::default(),
                        timeouts: 0,
                        max_queue_occupancy: 0,
                    },
                    sink: if kind == NodeKind::Sink {
                        Some(sink_buf)
                    } else {
                        None
                    },
                }
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker thread must not panic"));
        }
    });

    results.sort_by_key(|r| r.node.index());
    let mut report = RunReport {
        app: graph.name().to_string(),
        rounds: 0,
        completed: true,
        ..Default::default()
    };
    for q in &queues {
        report.queues += *q.lock().stats();
    }
    for mut r in results {
        // Consumer-side attribution, matching the deterministic executor.
        r.report.max_queue_occupancy = r
            .in_edges
            .iter()
            .map(|&e| queues[e.index()].lock().stats().max_occupancy)
            .max()
            .unwrap_or(0);
        report.realignment_episodes += r.report.subops.pad_events + r.report.subops.discard_events;
        if let Some(buf) = r.sink {
            report.sinks.insert(r.node.index(), buf);
        }
        report.nodes.push(r.report);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run;
    use cg_graph::GraphBuilder;
    use commguard::Protection;

    fn program() -> (Program, NodeId) {
        let mut b = GraphBuilder::new("par");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        let g2 = b.add_node("g", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.pipeline(&[s, f, g2, k], 8).unwrap();
        let graph = b.build().unwrap();
        let mut p = Program::new(graph);
        let mut next = 0u32;
        p.set_source(s, move |out| {
            for _ in 0..8 {
                out.push(next);
                next += 1;
            }
        });
        p.set_filter(f, |inp, out| {
            out[0].extend(inp[0].iter().map(|&v| v.wrapping_mul(7)));
        });
        p.set_filter(g2, |inp, out| {
            out[0].extend(inp[0].iter().map(|&v| v ^ 0xFF));
        });
        (p, k)
    }

    #[test]
    fn parallel_matches_deterministic_output() {
        let (p, sink) = program();
        let want = run(p, &SimConfig::error_free(200)).unwrap();
        let (p, _) = program();
        let got = run_parallel(p, &SimConfig::error_free(200)).unwrap();
        assert_eq!(got.sink_output(sink), want.sink_output(sink));
        assert!(got.completed);
    }

    #[test]
    fn parallel_guarded_matches_too() {
        let cfg = SimConfig {
            protection: Protection::commguard(),
            inject: false,
            ..SimConfig::error_free(100)
        };
        let (p, sink) = program();
        let want = run(p, &cfg).unwrap();
        let (p, _) = program();
        let got = run_parallel(p, &cfg).unwrap();
        assert_eq!(got.sink_output(sink), want.sink_output(sink));
        assert_eq!(
            got.queues.header_pushes, want.queues.header_pushes,
            "same header traffic either way"
        );
    }

    #[test]
    fn parallel_rejects_error_injection() {
        let (p, _) = program();
        let cfg = SimConfig {
            protection: Protection::PpuReliableQueue,
            inject: true,
            ..SimConfig::error_free(10)
        };
        assert!(run_parallel(p, &cfg).is_err());
    }
}
