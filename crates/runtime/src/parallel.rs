//! A threaded executor: one OS thread per node, edges carried by
//! blocking [`SharedQueue`]s with a batched transport, and a frame-level
//! checkpoint/re-execute recovery ladder for error-prone runs.
//!
//! The deterministic executor ([`crate::run`]) is the measurement
//! instrument — bit-reproducible, with scheduler-round-accurate fault
//! timing. This executor shows the same guarded programs running with
//! *real* parallelism, and it is fault-tolerant in its own right: each
//! worker owns a per-core deterministic fault injector (streams seeded
//! from the run seed and the core id, so a seed reproduces the same
//! per-core fault *sequence* even though thread interleaving varies) and
//! a recovery path that guarantees the run completes — degraded, maybe,
//! but never hung and never aborted.
//!
//! ## Recovery ladder
//!
//! Error-free configurations keep strict semantics: any stall or dead
//! peer is a [`RunError::Parallel`]. With faults enabled (and
//! [`ParFaults::Recover`], the default), workers instead recover:
//!
//! 1. **Blocked queue operations** are bounded by
//!    [`SimConfig::stall_timeout`]; a stalled header drain or output push
//!    is *forced* with timeout semantics (stale-data transfer — the PPU
//!    guarantee) rather than erroring.
//! 2. **Frame re-execution**: at every frame boundary the worker
//!    checkpoints its core-local state (sink high-water mark, per-port
//!    commit counts, an input replay log). If an attempt fails — an
//!    input-starved pop times out, or a firing's output violates its
//!    static rate (a control perturbation caught by the guard) — the
//!    frame rolls back and re-executes, replaying already-popped inputs
//!    from the log so queue and AM state stay consistent, up to
//!    [`SimConfig::par_retry_budget`] attempts.
//! 3. **Degradation**: when the budget is exhausted (or a peer died),
//!    the frame is discharged instead: the balance of its output rate is
//!    force-pushed as zeros, sinks pad their collected output, and the
//!    worker advances to the next boundary. Downstream consumers see a
//!    complete (if degraded) frame; alignment recovers via the HI/AM
//!    machinery at the next header.
//!
//! Guard soft state (AM/HI/frame counters) is *never* rolled back — it
//! is hardened by checked triplication (see `commguard::harden`) and
//! always reflects the units actually moved through the queues.
//! Retries and degradations are reported through
//! [`crate::WatchdogStats`] as `frame_retries` / `frame_degrades`, and
//! traced as `frame-retry` / `frame-degraded` events.
//!
//! ## Transport
//!
//! The default [`ParTransport::LockFree`] carries every edge over a
//! lock-free SPSC ring ([`cg_queue::spsc_pair`]): the producer and
//! consumer each own an independent queue view, synchronise only through
//! cache-line-padded atomic shared pointers (published once per working
//! set, re-read on apparent-full/empty), and block with a spin-then-park
//! slow path. No mutex or condvar is touched on the steady-state push/pop
//! path. The mutex/condvar [`SharedQueue`] transports are retained as
//! baselines: [`ParTransport::Batched`] moves a whole firing's worth of
//! units per lock acquisition through
//! [`CoreGuard::pop_batch`]/[`CoreGuard::push_batch`],
//! [`ParTransport::PerItem`] one unit per acquisition. All three drive
//! the same guard code over the same [`SimQueue`] protocol, so guarded
//! behaviour is bit-identical across transports. Each worker closes its
//! queue endpoints on exit — including panic unwinds — so a dead
//! neighbour surfaces promptly instead of hanging the run; the stall
//! timeout backstops everything else.

use cg_fault::{CoreInjector, StuckAtState};
use cg_graph::{EdgeId, NodeId, NodeKind};
use cg_queue::{
    spsc_pair_with, QueueSpec, QueueStats, SharedQueue, Side, SimQueue, SpscConsumer, SpscProducer,
    SpscStats, WaitError, Which,
};
use cg_telemetry::{Clock, ClockMode, CoreProbe};
use cg_trace::{Event, MACHINE_CORE};
use commguard::CoreGuard;
use rand::Rng;

use crate::config::{ParFaults, SimConfig};
use crate::faults::{
    apply_perturbation, burst_flip_random_item, flip_random_item, garble_random_item,
    partition_events,
};
use crate::pacing::{PacedSource, PacingReport};
use crate::program::Program;
use crate::report::{NodeReport, RunReport};
use crate::watchdog::WatchdogStats;
use crate::RunError;

/// How the threaded executor moves units between worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParTransport {
    /// One queue-lock acquisition per unit — the historical transport,
    /// kept as the benchmark baseline.
    PerItem,
    /// One lock acquisition per firing per port, moving whole batches.
    Batched,
    /// Lock-free SPSC rings: batched transfers with no lock anywhere on
    /// the steady-state push/pop path (the default).
    #[default]
    LockFree,
}

impl ParTransport {
    /// Parses a transport name as used by the campaign CLI and bench
    /// reports.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "per-item" | "peritem" => Some(ParTransport::PerItem),
            "batched" => Some(ParTransport::Batched),
            "lock-free" | "lockfree" => Some(ParTransport::LockFree),
            _ => None,
        }
    }

    /// Stable label, the inverse of [`Self::parse`].
    pub fn label(self) -> &'static str {
        match self {
            ParTransport::PerItem => "per-item",
            ParTransport::Batched => "batched",
            ParTransport::LockFree => "lock-free",
        }
    }
}

/// A worker's producing endpoint on one out-edge: a borrowed
/// mutex-guarded queue, or an owned lock-free endpoint. Dropping the port
/// (normal exit and panic unwind alike) closes the endpoint so blocked
/// neighbours observe a dead peer instead of waiting out the stall
/// timeout.
///
/// The variants are deliberately unboxed: the `LockFree` endpoint embeds
/// the producer's whole `SimQueue` view, and boxing it would put a heap
/// indirection on every steady-state push. Ports live in one small
/// per-worker `Vec` built once per run, so the size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
enum PushPort<'a> {
    Locked(&'a SharedQueue),
    LockFree(SpscProducer),
}

impl PushPort<'_> {
    fn produce<R>(&mut self, f: impl FnMut(&mut SimQueue) -> Option<R>) -> Result<R, WaitError> {
        match self {
            PushPort::Locked(q) => q.produce(f),
            PushPort::LockFree(p) => p.produce(f),
        }
    }

    fn with<R>(&mut self, f: impl FnOnce(&mut SimQueue) -> R) -> R {
        match self {
            PushPort::Locked(q) => q.with(f),
            PushPort::LockFree(p) => p.with(f),
        }
    }
}

impl Drop for PushPort<'_> {
    fn drop(&mut self) {
        match self {
            PushPort::Locked(q) => q.close(Side::Producer),
            // The owned endpoint closes itself when dropped.
            PushPort::LockFree(_) => {}
        }
    }
}

/// A worker's consuming endpoint on one in-edge; see [`PushPort`]
/// (including why the large variant is not boxed).
#[allow(clippy::large_enum_variant)]
enum PopPort<'a> {
    Locked(&'a SharedQueue),
    LockFree(SpscConsumer),
}

impl PopPort<'_> {
    fn consume<R>(&mut self, f: impl FnMut(&mut SimQueue) -> Option<R>) -> Result<R, WaitError> {
        match self {
            PopPort::Locked(q) => q.consume(f),
            PopPort::LockFree(c) => c.consume(f),
        }
    }

    fn with<R>(&mut self, f: impl FnOnce(&mut SimQueue) -> R) -> R {
        match self {
            PopPort::Locked(q) => q.with(f),
            PopPort::LockFree(c) => c.with(f),
        }
    }
}

impl Drop for PopPort<'_> {
    fn drop(&mut self) {
        match self {
            PopPort::Locked(q) => q.close(Side::Consumer),
            PopPort::LockFree(_) => {}
        }
    }
}

/// Runs `f` on the queue behind attached-port index `idx`, where the
/// fault machinery numbers a node's ports in-edges first, then out-edges
/// (matching the historical `attached` edge list, so per-seed fault
/// targeting is unchanged).
fn with_attached_queue<R>(
    in_ports: &mut [PopPort<'_>],
    out_ports: &mut [PushPort<'_>],
    idx: usize,
    f: impl FnOnce(&mut SimQueue) -> R,
) -> R {
    if idx < in_ports.len() {
        in_ports[idx].with(f)
    } else {
        out_ports[idx - in_ports.len()].with(f)
    }
}

/// Why a frame attempt could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameFail {
    /// Transient (pop stall, rate violation): worth re-executing.
    Retryable,
    /// The peer is gone; retrying cannot help — degrade immediately.
    Terminal,
}

fn stall_error(node: &str, action: &str, edge: &str, err: WaitError) -> RunError {
    RunError::Parallel(format!("node '{node}' {action} on edge {edge}: {err}"))
}

/// Threaded mirror of the deterministic executor's addressing fault:
/// corrupts a shared queue pointer of a random attached queue or garbles
/// a staged item, optionally strikes an in-flight header payload when
/// the unprotected-header ablation is active, and — threaded-only — can
/// land in the guard's own soft state, where checked triplication heals
/// it at the next scrub point.
fn par_addressing_fault(
    in_ports: &mut [PopPort<'_>],
    out_ports: &mut [PushPort<'_>],
    staged_in: &mut [Vec<u32>],
    staged_out: &mut [Vec<u32>],
    injector: &mut CoreInjector,
    guard: &mut CoreGuard,
    headers_unprotected: bool,
) {
    let attached = in_ports.len() + out_ports.len();
    let rng = injector.rng_mut();
    let hit_queue = attached > 0 && rng.gen::<bool>();
    if hit_queue {
        let idx = rng.gen_range(0..attached);
        let which = if rng.gen::<bool>() {
            Which::Head
        } else {
            Which::Tail
        };
        let bit = rng.gen_range(0..20u32); // pointers are small counters
        with_attached_queue(in_ports, out_ports, idx, |q| {
            q.corrupt_shared_pointer(which, bit);
        });
    } else {
        let mut bufs: Vec<&mut Vec<u32>> =
            staged_in.iter_mut().chain(staged_out.iter_mut()).collect();
        garble_random_item(&mut bufs, rng);
    }
    if headers_unprotected && attached > 0 {
        let rng = injector.rng_mut();
        let idx = rng.gen_range(0..attached);
        let slot_seed = rng.gen::<u32>();
        let bit = rng.gen_range(0..8u32); // low id bits: nearby frames
        with_attached_queue(in_ports, out_ports, idx, |q| {
            q.corrupt_random_header_payload(slot_seed, bit);
        });
    }
    let sel = u64::from(injector.rng_mut().gen::<u32>());
    guard.corrupt_guard_state(sel);
}

/// Threaded mirror of the concentrated `PointerCorruption` class.
fn par_pointer_fault(
    in_ports: &mut [PopPort<'_>],
    out_ports: &mut [PushPort<'_>],
    staged_in: &mut [Vec<u32>],
    staged_out: &mut [Vec<u32>],
    injector: &mut CoreInjector,
) {
    let attached = in_ports.len() + out_ports.len();
    let rng = injector.rng_mut();
    if attached == 0 {
        let mut bufs: Vec<&mut Vec<u32>> =
            staged_in.iter_mut().chain(staged_out.iter_mut()).collect();
        garble_random_item(&mut bufs, rng);
        return;
    }
    let idx = rng.gen_range(0..attached);
    let which = if rng.gen::<bool>() {
        Which::Head
    } else {
        Which::Tail
    };
    let bit = rng.gen_range(0..20u32);
    with_attached_queue(in_ports, out_ports, idx, |q| {
        q.corrupt_shared_pointer(which, bit);
    });
}

/// Threaded mirror of the concentrated `HeaderCorruption` class.
fn par_header_fault(
    in_ports: &mut [PopPort<'_>],
    out_ports: &mut [PushPort<'_>],
    staged_in: &mut [Vec<u32>],
    staged_out: &mut [Vec<u32>],
    injector: &mut CoreInjector,
) {
    let attached = in_ports.len() + out_ports.len();
    let rng = injector.rng_mut();
    let mut struck = false;
    if attached > 0 {
        let idx = rng.gen_range(0..attached);
        let slot_seed = rng.gen::<u32>();
        // Mostly single-bit (ECC corrects); occasionally double-bit
        // (SECDED detects, AM recovers conservatively).
        let bits = if rng.gen::<f64>() < 0.25 { 2 } else { 1 };
        struck = with_attached_queue(in_ports, out_ports, idx, |q| {
            q.corrupt_random_header_codeword(slot_seed, bits)
        });
    }
    if !struck {
        let rng = injector.rng_mut();
        let mut bufs: Vec<&mut Vec<u32>> =
            staged_in.iter_mut().chain(staged_out.iter_mut()).collect();
        flip_random_item(&mut bufs, rng);
    }
}

/// Runs `program` with one thread per node and the lock-free transport.
///
/// # Errors
///
/// Returns [`RunError`] for unbound nodes or inconsistent schedules,
/// [`RunError::BadEffectModel`] when errors are enabled but
/// [`SimConfig::par_faults`] is [`ParFaults::Deny`], and
/// [`RunError::Parallel`] when an *error-free* run stalls past the
/// transport timeout or a worker dies. Error-prone runs with
/// [`ParFaults::Recover`] never error from faults: they retry and then
/// degrade (worker panics remain fatal).
pub fn run_parallel(program: Program, config: &SimConfig) -> Result<RunReport, RunError> {
    run_parallel_with(program, config, ParTransport::LockFree)
}

/// [`run_parallel`] with an explicit transport choice (the benchmark
/// harness compares [`ParTransport::PerItem`] and
/// [`ParTransport::Batched`] against the default
/// [`ParTransport::LockFree`]).
///
/// # Errors
///
/// As for [`run_parallel`].
pub fn run_parallel_with(
    program: Program,
    config: &SimConfig,
    transport: ParTransport,
) -> Result<RunReport, RunError> {
    let errors_on = config.faults_enabled();
    if errors_on && config.par_faults == ParFaults::Deny {
        return Err(RunError::BadEffectModel(
            "error injection denied for the threaded executor \
             (SimConfig::par_faults is ParFaults::Deny); use cg_runtime::run \
             or allow ParFaults::Recover"
                .into(),
        ));
    }
    program.validate_bound().map_err(RunError::UnboundNode)?;
    if errors_on {
        config
            .effect_model
            .validate()
            .map_err(RunError::BadEffectModel)?;
    }
    let (graph, mut works) = program.into_parts();
    let schedule = graph
        .schedule()
        .map_err(|e| RunError::Schedule(e.to_string()))?;
    crate::exec::check_queue_capacity(&graph, &schedule, config.queue_capacity)?;
    let guard_cfg = config.protection.guard_config();
    // Unprotected-header ablation (addressing faults strike header words).
    let headers_unprotected = guard_cfg.as_ref().is_some_and(|c| !c.protect_headers);
    // Recovery replaces hard errors only for fault-injected runs; the
    // error-free executor keeps strict stall/peer-death semantics.
    let recovery = errors_on;
    let retry_budget = config.par_retry_budget;
    let tracer = config.trace.tracer();
    // Wall clock: threaded frame latency is real microseconds. (The
    // determinism contract only covers the deterministic executor.)
    let telem = config.telemetry.telemetry(ClockMode::Wall);
    // Pacing drives its own wall clock, shared by every worker: clones
    // of a wall [`Clock`] keep the same origin instant, so all cores
    // agree on "now", frame release ticks, and deadlines (all in µs).
    let paced_on = config.pacing.is_paced();
    let pace = PacedSource::new(config.pacing, Clock::new(ClockMode::Wall));

    let lock_free = transport == ParTransport::LockFree;
    let spec = || {
        QueueSpec::with_capacity(config.queue_capacity)
            .pointer_mode(config.protection.pointer_mode())
    };
    // Locked transports share one mutex-guarded queue per edge; the
    // lock-free transport instead hands each endpoint thread its own
    // owned view (taken out of these slots in the spawn loop below) plus
    // a stats handle that stays behind for post-join collection.
    let queues: Vec<SharedQueue> = if lock_free {
        Vec::new()
    } else {
        graph
            .edges()
            .map(|_| SharedQueue::with_stall_timeout(SimQueue::new(spec()), config.stall_timeout))
            .collect()
    };
    let mut lf_producers: Vec<Option<SpscProducer>> = Vec::new();
    let mut lf_consumers: Vec<Option<SpscConsumer>> = Vec::new();
    let mut lf_stats: Vec<SpscStats> = Vec::new();
    if lock_free {
        for _ in graph.edges() {
            let (p, c, s) =
                spsc_pair_with(spec(), config.stall_timeout, config.effective_park_slice());
            lf_producers.push(Some(p));
            lf_consumers.push(Some(c));
            lf_stats.push(s);
        }
    }
    // Human-readable edge labels for stuck-edge errors.
    let edge_labels: Vec<String> = graph
        .edges()
        .map(|(id, e)| {
            format!(
                "e{} ({}\u{2192}{})",
                id.index(),
                graph.node(e.src()).name(),
                graph.node(e.dst()).name()
            )
        })
        .collect();
    // A batch never needs to exceed one firing's rate; `PerItem` degrades
    // every batch to a single unit.
    let chunk_limit: usize = match transport {
        ParTransport::PerItem => 1,
        ParTransport::Batched | ParTransport::LockFree => usize::MAX,
    };

    struct ThreadResult {
        node: NodeId,
        in_edges: Vec<EdgeId>,
        report: NodeReport,
        sink: Option<Vec<u32>>,
        retries: u64,
        degrades: u64,
        probe: CoreProbe,
        pace: Option<PacingReport>,
    }

    let mut results: Vec<ThreadResult> = Vec::with_capacity(graph.node_count());
    let mut errors: Vec<RunError> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (id, node) in graph.nodes() {
            let work = works[id.index()].take();
            let in_edges: Vec<_> = node.inputs().to_vec();
            let out_edges: Vec<_> = node.outputs().to_vec();
            let pop_rates: Vec<u32> = in_edges.iter().map(|&e| graph.edge(e).pop_rate()).collect();
            let push_rates: Vec<u32> = out_edges
                .iter()
                .map(|&e| graph.edge(e).push_rate())
                .collect();
            let kind = node.kind();
            let name = node.name().to_string();
            let cost = *node.cost();
            let reps = schedule.repetitions(id);
            let frames = config.frames;
            let edge_labels = &edge_labels;
            let wtracer = tracer.clone();
            let pace = pace.clone();
            let core_id = id.index() as u32;
            // The worker owns its probe outright (lock-free by
            // ownership); it travels back in the ThreadResult.
            let mut probe = telem.probe(core_id, node.name());
            // Build this worker's ports up front (lock-free endpoints are
            // moved out of their slots exactly once). The ports travel
            // into the worker closure, so a panic unwind drops — and
            // therefore closes — them.
            let in_ports: Vec<PopPort<'_>> = in_edges
                .iter()
                .map(|&e| {
                    if lock_free {
                        PopPort::LockFree(
                            lf_consumers[e.index()]
                                .take()
                                .expect("each edge has exactly one consumer"),
                        )
                    } else {
                        PopPort::Locked(&queues[e.index()])
                    }
                })
                .collect();
            let out_ports: Vec<PushPort<'_>> = out_edges
                .iter()
                .map(|&e| {
                    if lock_free {
                        PushPort::LockFree(
                            lf_producers[e.index()]
                                .take()
                                .expect("each edge has exactly one producer"),
                        )
                    } else {
                        PushPort::Locked(&queues[e.index()])
                    }
                })
                .collect();
            let worker = move || -> Result<ThreadResult, RunError> {
                let mut in_ports = in_ports;
                let mut out_ports = out_ports;
                let mut guard = match &guard_cfg {
                    Some(cfg) => CoreGuard::new(
                        in_edges.len(),
                        out_edges.len(),
                        cfg,
                        u32::try_from(frames.div_ceil(u64::from(cfg.frame_scale))).ok(),
                    ),
                    None => CoreGuard::disabled(in_edges.len(), out_edges.len()),
                };
                let mut injector = if errors_on {
                    CoreInjector::new(
                        config.mtbe,
                        config.effect_model,
                        config.seed,
                        u64::from(core_id),
                    )
                } else {
                    CoreInjector::disabled(config.seed, u64::from(core_id))
                };
                let mut stuck: Option<StuckAtState> = None;
                let mut work = work;
                let mut staged_in: Vec<Vec<u32>> = vec![Vec::new(); in_edges.len()];
                let mut staged_out: Vec<Vec<u32>> = vec![Vec::new(); out_edges.len()];
                // Frame-local recovery state: post-AM values popped this
                // frame (for replay), the replay cursor, and how much of
                // each port's frame output is already on the wire.
                let mut input_log: Vec<Vec<u32>> = vec![Vec::new(); in_edges.len()];
                let mut replayed: Vec<usize> = vec![0; in_edges.len()];
                let mut committed: Vec<usize> = vec![0; out_edges.len()];
                let mut sink_buf: Vec<u32> = Vec::new();
                let mut instructions = 0u64;
                let mut timeouts = 0u64;
                let mut retries = 0u64;
                let mut degrades = 0u64;
                let mut deadline_degrades = 0u64;
                let mut pace_acc = PacingReport::for_pacing(config.pacing, "us");
                let items_moved: u64 = pop_rates.iter().map(|&r| u64::from(r)).sum::<u64>()
                    + push_rates.iter().map(|&r| u64::from(r)).sum::<u64>();
                guard.start();
                for frame in 0..frames {
                    // Paced sources release frames on the period schedule
                    // (sleeping *before* the telemetry frame opens, so
                    // pacing idle never counts as frame latency); every
                    // other node paces naturally on data arrival.
                    if kind == NodeKind::Source {
                        pace.wait_release(frame);
                    }
                    // Open the telemetry frame before the boundary flush so
                    // no wall time goes unattributed.
                    probe.frame_start();
                    let frame_retries0 = retries;
                    let frame_degrades0 = degrades;
                    if frame > 0 {
                        for p in &mut out_ports {
                            p.with(SimQueue::flush);
                        }
                        guard.scope_boundary();
                    }
                    // Drain pending headers (block on full queues).
                    for (port, &e) in out_edges.iter().enumerate() {
                        let w0 = probe.wait_begin();
                        let drained =
                            out_ports[port].produce(|q| guard.hi_tick(port, q).then_some(()));
                        probe.wait_end(w0);
                        if let Err(w) = drained {
                            if !recovery {
                                return Err(stall_error(
                                    &name,
                                    "draining headers",
                                    &edge_labels[e.index()],
                                    w,
                                ));
                            }
                            if matches!(w, WaitError::TimedOut) {
                                timeouts += 1;
                            }
                            // Force the header out so the next boundary
                            // finds the port clear.
                            out_ports[port].with(|q| {
                                if !guard.hi_tick(port, q) {
                                    guard.hi_force(port, q);
                                }
                            });
                        }
                    }
                    // Frame checkpoint: everything a retry must restore.
                    let sink_mark = sink_buf.len();
                    for log in &mut input_log {
                        log.clear();
                    }
                    committed.fill(0);
                    let mut attempt: u32 = 0;
                    let mut deadline_cut = false;
                    'attempts: loop {
                        let attempt_start = if paced_on { pace.now() } else { 0 };
                        sink_buf.truncate(sink_mark);
                        replayed.fill(0);
                        for b in &mut staged_in {
                            b.clear();
                        }
                        for b in &mut staged_out {
                            b.clear();
                        }
                        let mut produced: Vec<usize> = vec![0; out_edges.len()];
                        let mut fail: Option<FrameFail> = None;
                        // Overload shedding: a frame already past its
                        // deadline cannot land on time no matter what —
                        // discharge it through the degrade rung below
                        // without executing (or blocking on) anything,
                        // so the source is never back-pressured into
                        // stalling.
                        if recovery && pace.hopeless(frame) {
                            deadline_cut = true;
                            fail = Some(FrameFail::Terminal);
                        }
                        'firings: for _ in 0..reps {
                            if fail.is_some() {
                                break 'firings;
                            }
                            // Pop inputs: replay the frame log first, then
                            // live pops (one lock acquisition per wakeup).
                            for (port, &e) in in_edges.iter().enumerate() {
                                if fail.is_some() {
                                    break;
                                }
                                let need = pop_rates[port] as usize;
                                if recovery {
                                    let avail = input_log[port].len() - replayed[port];
                                    if avail > 0 {
                                        let take = avail.min(need);
                                        let from = replayed[port];
                                        staged_in[port]
                                            .extend_from_slice(&input_log[port][from..from + take]);
                                        replayed[port] += take;
                                    }
                                }
                                let live_from = staged_in[port].len();
                                while staged_in[port].len() < need {
                                    let buf = &mut staged_in[port];
                                    let max = (need - buf.len()).min(chunk_limit);
                                    let w0 = probe.wait_begin();
                                    let popped = in_ports[port].consume(|q| {
                                        let got = guard.pop_batch(port, q, buf, max);
                                        (got > 0).then_some(())
                                    });
                                    probe.wait_end(w0);
                                    if let Err(w) = popped {
                                        if !recovery {
                                            return Err(stall_error(
                                                &name,
                                                "popping items",
                                                &edge_labels[e.index()],
                                                w,
                                            ));
                                        }
                                        fail = Some(match w {
                                            WaitError::TimedOut => {
                                                timeouts += 1;
                                                FrameFail::Retryable
                                            }
                                            WaitError::PeerClosed => FrameFail::Terminal,
                                        });
                                        break;
                                    }
                                }
                                if recovery {
                                    // Log live pops so a retry replays them
                                    // without touching the queue (or AM).
                                    let (stage, log) = (&staged_in[port], &mut input_log[port]);
                                    log.extend_from_slice(&stage[live_from..]);
                                    replayed[port] = log.len();
                                }
                            }
                            if fail.is_some() {
                                break 'firings;
                            }
                            // Charge instructions and collect fault events
                            // (same pacing as the deterministic executor).
                            let instr = cost.firing_cost(items_moved);
                            instructions += instr;
                            let firing_faults = if errors_on {
                                let events = injector.advance(instr);
                                Some(partition_events(
                                    config.fault_class,
                                    &events,
                                    &mut injector,
                                    &mut stuck,
                                ))
                            } else {
                                None
                            };
                            if let Some(f) = &firing_faults {
                                for _ in 0..f.pre_flips {
                                    let mut bufs: Vec<&mut Vec<u32>> =
                                        staged_in.iter_mut().collect();
                                    flip_random_item(&mut bufs, injector.rng_mut());
                                }
                            }
                            let sink_fire_mark = sink_buf.len();
                            // The compute body.
                            match kind {
                                NodeKind::Source | NodeKind::Filter => {
                                    work.as_mut()
                                        .expect("bound")
                                        .fire(&staged_in, &mut staged_out);
                                }
                                NodeKind::SplitDuplicate => {
                                    for out in &mut staged_out {
                                        out.extend_from_slice(&staged_in[0]);
                                    }
                                }
                                NodeKind::SplitRoundRobin => {
                                    let mut off = 0usize;
                                    for (port, out) in staged_out.iter_mut().enumerate() {
                                        let take = push_rates[port] as usize;
                                        let end = (off + take).min(staged_in[0].len());
                                        out.extend_from_slice(&staged_in[0][off..end]);
                                        // Short input (an upstream error
                                        // effect): keep rates structural.
                                        out.resize(out.len() + take - (end - off), 0);
                                        off = end;
                                    }
                                }
                                NodeKind::JoinRoundRobin => {
                                    for inp in &staged_in {
                                        staged_out[0].extend_from_slice(inp);
                                    }
                                }
                                NodeKind::Sink => {
                                    for inp in &staged_in {
                                        sink_buf.extend_from_slice(inp);
                                    }
                                }
                            }
                            if let Some(f) = firing_faults {
                                for _ in 0..f.post_flips {
                                    let mut bufs: Vec<&mut Vec<u32>> =
                                        staged_out.iter_mut().collect();
                                    if !flip_random_item(&mut bufs, injector.rng_mut())
                                        && kind == NodeKind::Sink
                                    {
                                        let mut bufs = [&mut sink_buf];
                                        flip_random_item(&mut bufs, injector.rng_mut());
                                    }
                                }
                                for _ in 0..f.bursts {
                                    let mut bufs: Vec<&mut Vec<u32>> =
                                        staged_out.iter_mut().collect();
                                    if !burst_flip_random_item(&mut bufs, injector.rng_mut())
                                        && kind == NodeKind::Sink
                                    {
                                        let mut bufs = [&mut sink_buf];
                                        burst_flip_random_item(&mut bufs, injector.rng_mut());
                                    }
                                }
                                if let Some(st) = stuck {
                                    for out in &mut staged_out {
                                        for v in out.iter_mut() {
                                            *v = st.apply(*v);
                                        }
                                    }
                                    for v in sink_buf[sink_fire_mark..].iter_mut() {
                                        *v = st.apply(*v);
                                    }
                                }
                                for pert in f.perturbations {
                                    apply_perturbation(&mut staged_out, pert, injector.rng_mut());
                                }
                                for _ in 0..f.addressing {
                                    par_addressing_fault(
                                        &mut in_ports,
                                        &mut out_ports,
                                        &mut staged_in,
                                        &mut staged_out,
                                        &mut injector,
                                        &mut guard,
                                        headers_unprotected,
                                    );
                                }
                                for _ in 0..f.pointer_hits {
                                    par_pointer_fault(
                                        &mut in_ports,
                                        &mut out_ports,
                                        &mut staged_in,
                                        &mut staged_out,
                                        &mut injector,
                                    );
                                }
                                for _ in 0..f.header_hits {
                                    par_header_fault(
                                        &mut in_ports,
                                        &mut out_ports,
                                        &mut staged_in,
                                        &mut staged_out,
                                        &mut injector,
                                    );
                                }
                            }
                            // Guarded runs enforce the static rate before
                            // anything reaches the wire; a violated firing
                            // (control perturbation) re-executes the frame.
                            if errors_on && guard.is_enabled() {
                                let rate_ok = staged_out
                                    .iter()
                                    .zip(&push_rates)
                                    .all(|(b, &r)| b.len() == r as usize);
                                if !rate_ok {
                                    fail = Some(FrameFail::Retryable);
                                    break 'firings;
                                }
                            }
                            // Push outputs, skipping whatever an earlier
                            // attempt of this frame already committed.
                            for (port, &e) in out_edges.iter().enumerate() {
                                let buf = &staged_out[port];
                                let before = produced[port];
                                produced[port] += buf.len();
                                let mut pos = committed[port].saturating_sub(before).min(buf.len());
                                while pos < buf.len() {
                                    let end = buf.len().min(pos.saturating_add(chunk_limit));
                                    let w0 = probe.wait_begin();
                                    let pushed = out_ports[port].produce(|q| {
                                        let got = guard.push_batch(port, q, &buf[pos..end]);
                                        (got > 0).then_some(got)
                                    });
                                    probe.wait_end(w0);
                                    match pushed {
                                        Ok(got) => {
                                            pos += got;
                                            committed[port] += got;
                                        }
                                        Err(w) => {
                                            if !recovery {
                                                return Err(stall_error(
                                                    &name,
                                                    "pushing items",
                                                    &edge_labels[e.index()],
                                                    w,
                                                ));
                                            }
                                            if matches!(w, WaitError::TimedOut) {
                                                timeouts += 1;
                                            }
                                            // Never hang: force the rest of
                                            // this firing's output out.
                                            out_ports[port].with(|q| {
                                                for &v in &buf[pos..] {
                                                    guard.timeout_push(port, q, v);
                                                }
                                            });
                                            committed[port] += buf.len() - pos;
                                            pos = buf.len();
                                        }
                                    }
                                }
                            }
                            for b in &mut staged_out {
                                b.clear();
                            }
                            for b in &mut staged_in {
                                b.clear();
                            }
                        }
                        let Some(why) = fail else {
                            break 'attempts; // frame committed
                        };
                        // Deadline-aware re-budgeting: a retry is only
                        // worth its time when the frame's remaining slack
                        // can still cover a re-execution, estimated by the
                        // cost of the attempt that just failed. Pacing off
                        // means infinite slack, reducing this to the pure
                        // attempt budget.
                        let retry_fits = !paced_on || {
                            let attempt_cost = pace.now().saturating_sub(attempt_start).max(1);
                            pace.slack(frame) > attempt_cost
                        };
                        if why == FrameFail::Retryable && attempt < retry_budget {
                            if retry_fits {
                                attempt += 1;
                                retries += 1;
                                if wtracer.is_enabled() {
                                    wtracer.set_context(core_id, frame, guard.active_fc());
                                    wtracer.emit(Event::FrameRetry {
                                        frame: guard.active_fc(),
                                        attempt,
                                    });
                                }
                                continue 'attempts;
                            }
                            // Slack can no longer cover a re-execution:
                            // skip the rest of the retry budget and take
                            // the degrade rung now, making the deadline
                            // instead of blowing it on doomed retries.
                            deadline_cut = true;
                        }
                        // Budget exhausted (or the peer is gone, or the
                        // deadline ladder cut in): discharge the frame's
                        // remaining obligations and advance.
                        degrades += 1;
                        if deadline_cut {
                            deadline_degrades += 1;
                        }
                        if wtracer.is_enabled() {
                            wtracer.set_context(core_id, frame, guard.active_fc());
                            wtracer.emit(Event::FrameDegraded {
                                frame: guard.active_fc(),
                            });
                        }
                        for port in 0..out_edges.len() {
                            let owed = (reps as usize * push_rates[port] as usize)
                                .saturating_sub(committed[port]);
                            if owed > 0 {
                                out_ports[port].with(|q| {
                                    for _ in 0..owed {
                                        guard.timeout_push(port, q, 0);
                                    }
                                });
                                committed[port] += owed;
                            }
                        }
                        if kind == NodeKind::Sink {
                            let per_frame: usize =
                                pop_rates.iter().map(|&r| r as usize).sum::<usize>()
                                    * reps as usize;
                            sink_buf.truncate(sink_mark);
                            sink_buf.resize(sink_mark + per_frame, 0);
                        }
                        for b in &mut staged_in {
                            b.clear();
                        }
                        for b in &mut staged_out {
                            b.clear();
                        }
                        break 'attempts;
                    }
                    // Deadline accounting happens where the frame becomes
                    // externally visible: the sink's commit. Degraded
                    // frames count too — a pad that lands on time is an
                    // on-time (if lossy) frame, which is the entire point
                    // of the degrade-don't-stall ladder.
                    if kind == NodeKind::Sink {
                        if let Some(acc) = pace_acc.as_mut() {
                            acc.record_commit(
                                config.pacing.release(frame),
                                config.pacing.deadline_for(frame),
                                pace.now(),
                            );
                        }
                    }
                    if probe.is_enabled() {
                        // Consumer-side sample: occupancy high-water and
                        // cumulative ECC activity over this node's in-edges.
                        let mut occ = 0u64;
                        let (mut det, mut corr) = (0u64, 0u64);
                        for p in &mut in_ports {
                            p.with(|q| {
                                occ = occ.max(u64::from(q.occupancy()));
                                let e = q.stats().ecc;
                                det += e.detections;
                                corr += e.corrections;
                            });
                        }
                        probe.ecc_sample(det, corr);
                        probe.frame_commit(
                            occ,
                            retries - frame_retries0,
                            degrades - frame_degrades0,
                        );
                    }
                }
                guard.finish();
                // Drain the end-of-computation header. With the consumer
                // gone and the queue full this used to spin forever; the
                // condvar wait is bounded, a dead peer is an error naming
                // the stuck edge, and under recovery the header is forced.
                for (port, &e) in out_edges.iter().enumerate() {
                    let w0 = probe.wait_begin();
                    let drained = out_ports[port].produce(|q| guard.hi_tick(port, q).then_some(()));
                    probe.wait_end(w0);
                    if let Err(w) = drained {
                        if !recovery {
                            return Err(stall_error(
                                &name,
                                "draining the end header",
                                &edge_labels[e.index()],
                                w,
                            ));
                        }
                        if matches!(w, WaitError::TimedOut) {
                            timeouts += 1;
                        }
                        out_ports[port].with(|q| {
                            if !guard.hi_tick(port, q) {
                                guard.hi_force(port, q);
                            }
                        });
                    }
                    out_ports[port].with(SimQueue::flush);
                }
                let frames_done = frames;
                Ok(ThreadResult {
                    node: id,
                    in_edges: in_edges.clone(),
                    report: NodeReport {
                        name,
                        instructions,
                        firings: reps * frames,
                        frames: frames_done,
                        instructions_per_frame: if frames_done > 0 {
                            instructions as f64 / frames_done as f64
                        } else {
                            0.0
                        },
                        subops: guard.into_subops(),
                        faults: *injector.stats(),
                        timeouts,
                        max_queue_occupancy: 0,
                    },
                    sink: if kind == NodeKind::Sink {
                        Some(sink_buf)
                    } else {
                        None
                    },
                    retries,
                    degrades,
                    probe,
                    pace: pace_acc.map(|mut acc| {
                        acc.degraded_for_deadline = deadline_degrades;
                        acc
                    }),
                })
            };
            handles.push((node.name().to_string(), scope.spawn(worker)));
        }
        for (name, h) in handles {
            match h.join() {
                Ok(Ok(r)) => results.push(r),
                Ok(Err(e)) => errors.push(e),
                Err(_) => errors.push(RunError::Parallel(format!(
                    "worker thread for node '{name}' panicked"
                ))),
            }
        }
    });
    if let Some(e) = errors.into_iter().next() {
        return Err(e);
    }

    tracer.set_context(MACHINE_CORE, config.frames, 0);
    tracer.emit(Event::RunEnd { completed: true });

    results.sort_by_key(|r| r.node.index());
    let mut report = RunReport {
        app: graph.name().to_string(),
        // No scheduler rounds exist on real threads; the closest
        // equivalent unit of progress is the steady-state frame.
        rounds: config.frames,
        completed: true,
        trace: tracer.finish(),
        ..Default::default()
    };
    let mut wd = WatchdogStats::default();
    // All workers have joined, so lock-free endpoint drops have merged
    // their view stats into the per-edge handles.
    let edge_stats: Vec<QueueStats> = if lock_free {
        lf_stats.iter().map(SpscStats::read).collect()
    } else {
        queues.iter().map(|q| q.with(|q| *q.stats())).collect()
    };
    for s in &edge_stats {
        report.queues += *s;
    }
    let mut probes = Vec::with_capacity(results.len());
    let mut pacing_report = PacingReport::for_pacing(config.pacing, "us");
    for mut r in results {
        if let (Some(acc), Some(p)) = (pacing_report.as_mut(), r.pace.as_ref()) {
            acc.merge(p);
        }
        // Consumer-side attribution, matching the deterministic executor.
        r.report.max_queue_occupancy = r
            .in_edges
            .iter()
            .map(|&e| edge_stats[e.index()].max_occupancy)
            .max()
            .unwrap_or(0);
        report.realignment_episodes += r.report.subops.pad_events + r.report.subops.discard_events;
        wd.frame_retries += r.retries;
        wd.frame_degrades += r.degrades;
        if let Some(buf) = r.sink {
            report.sinks.insert(r.node.index(), buf);
        }
        report.nodes.push(r.report);
        probes.push(r.probe);
    }
    report.watchdog = wd;
    report.telemetry = telem.finish(probes, crate::exec::run_counters(config.frames, &report));
    report.pacing = pacing_report;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run;
    use cg_fault::{FaultClass, Mtbe};
    use cg_graph::GraphBuilder;
    use commguard::Protection;
    use std::time::Duration;

    fn program() -> (Program, NodeId) {
        let mut b = GraphBuilder::new("par");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        let g2 = b.add_node("g", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.pipeline(&[s, f, g2, k], 8).unwrap();
        let graph = b.build().unwrap();
        let mut p = Program::new(graph);
        let mut next = 0u32;
        p.set_source(s, move |out| {
            for _ in 0..8 {
                out.push(next);
                next += 1;
            }
        });
        p.set_filter(f, |inp, out| {
            out[0].extend(inp[0].iter().map(|&v| v.wrapping_mul(7)));
        });
        p.set_filter(g2, |inp, out| {
            out[0].extend(inp[0].iter().map(|&v| v ^ 0xFF));
        });
        (p, k)
    }

    #[test]
    fn parallel_matches_deterministic_output() {
        let (p, sink) = program();
        let want = run(p, &SimConfig::error_free(200)).unwrap();
        let (p, _) = program();
        let got = run_parallel(p, &SimConfig::error_free(200)).unwrap();
        assert_eq!(got.sink_output(sink), want.sink_output(sink));
        assert!(got.completed);
        assert_eq!(got.rounds, 200, "rounds reports the frame count");
    }

    #[test]
    fn parallel_guarded_matches_too() {
        let cfg = SimConfig {
            protection: Protection::commguard(),
            inject: false,
            ..SimConfig::error_free(100)
        };
        let (p, sink) = program();
        let want = run(p, &cfg).unwrap();
        let (p, _) = program();
        let got = run_parallel(p, &cfg).unwrap();
        assert_eq!(got.sink_output(sink), want.sink_output(sink));
        assert_eq!(
            got.queues.header_pushes, want.queues.header_pushes,
            "same header traffic either way"
        );
        assert_eq!(got.queues.header_pops, want.queues.header_pops);
    }

    #[test]
    fn paced_run_matches_batch_output_and_reports_deadlines() {
        use crate::config::Pacing;
        let (p, sink) = program();
        let want = run(p, &SimConfig::error_free(40)).unwrap();
        let (p, _) = program();
        // 300 µs period, roomy deadline: every frame lands on time and
        // the data is identical to the unpaced run.
        let cfg = SimConfig::error_free(40).pacing(Pacing::Paced {
            period: 300,
            deadline: 200_000,
            slo: 200_000,
        });
        let got = run_parallel(p, &cfg).unwrap();
        assert_eq!(got.sink_output(sink), want.sink_output(sink));
        let pr = got.pacing.expect("paced run reports pacing");
        assert_eq!(pr.unit, "us");
        assert_eq!(pr.frames_observed(), 40, "one observation per sink frame");
        assert_eq!(pr.deadline_misses, 0);
        assert_eq!(pr.degraded_for_deadline, 0);
        assert!(pr.slo_met());
        assert_eq!(pr.latency.count(), 40);
        // Batch runs must not grow a pacing report.
        let (p, _) = program();
        let unpaced = run_parallel(p, &SimConfig::error_free(10)).unwrap();
        assert!(unpaced.pacing.is_none());
    }

    #[test]
    fn paced_faulty_run_degrades_rather_than_stalls() {
        use crate::config::Pacing;
        const FRAMES: u64 = 30;
        // Tight budget under burst faults: the run must finish with
        // frame-exact sink length (pads allowed), never hang, and report
        // deadline accounting for every frame.
        let cfg = SimConfig {
            fault_class: FaultClass::Burst,
            ..SimConfig::with_errors(FRAMES, Protection::commguard(), Mtbe::instructions(256), 11)
        }
        .pacing(Pacing::Paced {
            period: 200,
            deadline: 2_000,
            slo: 2_000,
        });
        let (p, sink) = program();
        let got = run_parallel(p, &cfg).unwrap();
        assert!(got.completed);
        assert_eq!(
            got.sink_output(sink).len(),
            (FRAMES * 8) as usize,
            "degraded frames still land frame-exact"
        );
        let pr = got.pacing.expect("paced run reports pacing");
        assert_eq!(pr.frames_observed(), FRAMES);
        assert_eq!(pr.latency.count(), FRAMES);
    }

    #[test]
    fn per_item_transport_matches_batched() {
        let cfg = SimConfig {
            protection: Protection::commguard(),
            inject: false,
            ..SimConfig::error_free(50)
        };
        let (p, sink) = program();
        let batched = run_parallel_with(p, &cfg, ParTransport::Batched).unwrap();
        let (p, _) = program();
        let per_item = run_parallel_with(p, &cfg, ParTransport::PerItem).unwrap();
        assert_eq!(batched.sink_output(sink), per_item.sink_output(sink));
        assert_eq!(batched.queues.item_pushes, per_item.queues.item_pushes);
        assert_eq!(batched.queues.header_pushes, per_item.queues.header_pushes);
    }

    #[test]
    fn lock_free_transport_matches_batched() {
        let cfg = SimConfig {
            protection: Protection::commguard(),
            inject: false,
            ..SimConfig::error_free(50)
        };
        let (p, sink) = program();
        let batched = run_parallel_with(p, &cfg, ParTransport::Batched).unwrap();
        let (p, _) = program();
        let lock_free = run_parallel_with(p, &cfg, ParTransport::LockFree).unwrap();
        assert_eq!(batched.sink_output(sink), lock_free.sink_output(sink));
        assert_eq!(batched.queues.item_pushes, lock_free.queues.item_pushes);
        assert_eq!(batched.queues.header_pushes, lock_free.queues.header_pushes);
        assert_eq!(batched.queues.header_pops, lock_free.queues.header_pops);
    }

    /// Ten-seed bit-parity sweep for the zero-copy bulk paths: seeded
    /// pseudo-random data streams over per-seed queue geometries (firing
    /// rate, frame count, ring capacity — hence workset size and wrap
    /// cadence) must produce byte-identical sinks and conserved
    /// item/header traffic on the batched and lock-free executors against
    /// the deterministic golden run.
    #[test]
    fn lock_free_bit_parity_across_seeds() {
        for seed in 1..=10u64 {
            let rate = 4 + (seed as u32 % 5) * 7; // 4..=32 units/firing
            let frames = 30 + (seed % 4) * 10;
            let capacity = 2 * rate as usize; // small rings: wrap + block
            let build = || {
                let mut b = GraphBuilder::new("parity");
                let s = b.add_node("s", NodeKind::Source);
                let f = b.add_node("f", NodeKind::Filter);
                let k = b.add_node("k", NodeKind::Sink);
                b.pipeline(&[s, f, k], rate).unwrap();
                let mut p = Program::new(b.build().unwrap());
                let mut z = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                p.set_source(s, move |out| {
                    for _ in 0..rate {
                        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                        let mut x = z;
                        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                        out.push((x ^ (x >> 27)) as u32);
                    }
                });
                p.set_filter(f, |inp, out| {
                    out[0].extend(inp[0].iter().map(|&v| v.rotate_left(5)));
                });
                (p, k)
            };
            let cfg = SimConfig {
                protection: Protection::commguard(),
                inject: false,
                queue_capacity: capacity,
                ..SimConfig::error_free(frames)
            };
            let (p, sink) = build();
            let det = run(p, &cfg).unwrap();
            for transport in [ParTransport::Batched, ParTransport::LockFree] {
                let (p, _) = build();
                let got = run_parallel_with(p, &cfg, transport).unwrap();
                let label = transport.label();
                assert_eq!(
                    got.sink_output(sink),
                    det.sink_output(sink),
                    "seed {seed}: {label} sink diverged from deterministic"
                );
                assert_eq!(
                    got.queues.item_pushes, det.queues.item_pushes,
                    "seed {seed}: {label} item traffic"
                );
                assert_eq!(
                    got.queues.header_pushes, det.queues.header_pushes,
                    "seed {seed}: {label} header pushes"
                );
                assert_eq!(
                    got.queues.header_pops, det.queues.header_pops,
                    "seed {seed}: {label} header pops"
                );
            }
        }
    }

    #[test]
    fn transport_labels_roundtrip_through_parse() {
        for t in [
            ParTransport::PerItem,
            ParTransport::Batched,
            ParTransport::LockFree,
        ] {
            assert_eq!(ParTransport::parse(t.label()), Some(t));
        }
        assert_eq!(ParTransport::parse("carrier-pigeon"), None);
        assert_eq!(ParTransport::default(), ParTransport::LockFree);
    }

    /// The headline capability: faults injected inside worker threads, the
    /// run completing with a frame-exact sink rather than an error.
    #[test]
    fn parallel_injects_and_recovers() {
        let (p, sink) = program();
        let cfg = SimConfig {
            fault_class: FaultClass::Burst,
            stall_timeout: Duration::from_millis(250),
            par_retry_budget: 3,
            ..SimConfig::with_errors(60, Protection::commguard(), Mtbe::instructions(256), 7)
        };
        let report = run_parallel(p, &cfg).unwrap();
        assert!(report.completed);
        let total_faults: u64 = report.nodes.iter().map(|n| n.faults.total()).sum();
        assert!(total_faults > 0, "injectors must actually fire");
        assert_eq!(
            report.sink_output(sink).len(),
            60 * 8,
            "recovery keeps the sink frame-exact"
        );
        // Every retry respects the per-frame budget on each of the 4 cores.
        assert!(report.watchdog.frame_retries <= u64::from(cfg.par_retry_budget) * cfg.frames * 4);
    }

    /// The opt-out: `ParFaults::Deny` restores the old hard rejection.
    #[test]
    fn deny_policy_rejects_error_injection() {
        let (p, _) = program();
        let cfg = SimConfig {
            par_faults: ParFaults::Deny,
            ..SimConfig::with_errors(
                10,
                Protection::PpuReliableQueue,
                Mtbe::instructions(1000),
                1,
            )
        };
        let err = run_parallel(p, &cfg).unwrap_err();
        assert!(matches!(err, RunError::BadEffectModel(_)), "got: {err}");
    }

    /// A worker that dies mid-stream (panicking filter) must surface as a
    /// `RunError` on some thread — never a hang. The dying worker's drop
    /// guard closes its endpoints, so neighbours fail fast with
    /// peer-closed rather than waiting out the stall timeout.
    #[test]
    fn killed_worker_is_an_error_not_a_hang() {
        let mut b = GraphBuilder::new("killed");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.pipeline(&[s, f, k], 8).unwrap();
        let mut p = Program::new(b.build().unwrap());
        p.set_source(s, |out| out.extend(0..8u32));
        let mut firings = 0u32;
        p.set_filter(f, move |inp, out| {
            firings += 1;
            assert!(firings < 5, "injected worker death");
            out[0].extend_from_slice(&inp[0]);
        });
        let _ = k;
        let cfg = SimConfig::error_free(1000);
        let start = std::time::Instant::now();
        let err = run_parallel(p, &cfg).unwrap_err();
        assert!(
            start.elapsed() < cfg.stall_timeout,
            "peer-closed must beat the stall timeout"
        );
        assert!(matches!(err, RunError::Parallel(_)), "got: {err}");
    }
}
