//! Applying fault effects to a firing's live data.
//!
//! The effect-level injector (see `cg-fault`) decides *what class* of
//! error a register flip manifests as; this module applies the class
//! mechanically to the firing that was executing when the fault struck.

use cg_fault::{ControlPerturbation, DetRng};
use rand::Rng;

/// Flips one random bit of one random item across the given buffers.
/// Returns `false` when every buffer is empty (the flip was absorbed by
/// dead state — effectively masked).
pub(crate) fn flip_random_item(bufs: &mut [&mut Vec<u32>], rng: &mut DetRng) -> bool {
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    if total == 0 {
        return false;
    }
    let mut idx = rng.gen_range(0..total);
    for buf in bufs {
        if idx < buf.len() {
            let bit = rng.gen_range(0..32u32);
            buf[idx] ^= 1 << bit;
            return true;
        }
        idx -= buf.len();
    }
    unreachable!("index within total length")
}

/// Replaces one random item with an arbitrary word (a load/store that went
/// to the wrong local address). Returns `false` when buffers are empty.
pub(crate) fn garble_random_item(bufs: &mut [&mut Vec<u32>], rng: &mut DetRng) -> bool {
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    if total == 0 {
        return false;
    }
    let mut idx = rng.gen_range(0..total);
    for buf in bufs {
        if idx < buf.len() {
            buf[idx] = rng.gen();
            return true;
        }
        idx -= buf.len();
    }
    unreachable!("index within total length")
}

/// Applies a control-flow perturbation to the firing's staged outputs:
/// the firing pushes extra garbage items, loses trailing items, skips its
/// body, or runs twice. Bounded by construction — the PPU guarantee that
/// control errors cannot escape the firing.
pub(crate) fn apply_perturbation(
    outputs: &mut [Vec<u32>],
    pert: ControlPerturbation,
    rng: &mut DetRng,
) {
    if outputs.is_empty() {
        return;
    }
    match pert {
        ControlPerturbation::ExtraItems(k) => {
            let port = rng.gen_range(0..outputs.len());
            for _ in 0..k {
                outputs[port].push(rng.gen());
            }
        }
        ControlPerturbation::LostItems(k) => {
            let port = rng.gen_range(0..outputs.len());
            let keep = outputs[port].len().saturating_sub(k as usize);
            outputs[port].truncate(keep);
        }
        ControlPerturbation::SkipFiring => {
            for out in outputs.iter_mut() {
                out.clear();
            }
        }
        ControlPerturbation::ExtraFiring => {
            for out in outputs.iter_mut() {
                let copy = out.clone();
                out.extend(copy);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_fault::core_rng;

    #[test]
    fn flip_changes_one_bit() {
        let mut rng = core_rng(1, 0);
        let mut a = vec![0u32; 4];
        let mut b = vec![0u32; 4];
        {
            let mut bufs = [&mut a, &mut b];
            assert!(flip_random_item(&mut bufs, &mut rng));
        }
        let ones: u32 = a.iter().chain(&b).map(|v| v.count_ones()).sum();
        assert_eq!(ones, 1);
    }

    #[test]
    fn flip_on_empty_is_masked() {
        let mut rng = core_rng(1, 0);
        let mut a: Vec<u32> = Vec::new();
        let mut bufs = [&mut a];
        assert!(!flip_random_item(&mut bufs, &mut rng));
    }

    #[test]
    fn garble_replaces_one_item() {
        let mut rng = core_rng(2, 0);
        let mut a = vec![7u32; 8];
        {
            let mut bufs = [&mut a];
            assert!(garble_random_item(&mut bufs, &mut rng));
        }
        let changed = a.iter().filter(|&&v| v != 7).count();
        assert_eq!(changed, 1);
    }

    #[test]
    fn perturbations_change_counts() {
        let mut rng = core_rng(3, 0);
        let mut out = vec![vec![1, 2, 3], vec![4, 5]];
        apply_perturbation(&mut out, ControlPerturbation::ExtraItems(2), &mut rng);
        assert_eq!(out[0].len() + out[1].len(), 7);
        apply_perturbation(&mut out, ControlPerturbation::LostItems(1), &mut rng);
        assert_eq!(out[0].len() + out[1].len(), 6);
        apply_perturbation(&mut out, ControlPerturbation::ExtraFiring, &mut rng);
        assert_eq!(out[0].len() + out[1].len(), 12);
        apply_perturbation(&mut out, ControlPerturbation::SkipFiring, &mut rng);
        assert_eq!(out[0].len() + out[1].len(), 0);
    }

    #[test]
    fn lost_items_saturates() {
        let mut rng = core_rng(4, 0);
        let mut out = vec![vec![1u32]];
        apply_perturbation(&mut out, ControlPerturbation::LostItems(10), &mut rng);
        assert!(out[0].is_empty());
    }
}
