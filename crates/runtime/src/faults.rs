//! Applying fault effects to a firing's live data.
//!
//! The effect-level injector (see `cg-fault`) decides *what class* of
//! error a register flip manifests as; this module applies the class
//! mechanically to the firing that was executing when the fault struck.

use cg_fault::{
    sample_burst_len, ControlPerturbation, CoreInjector, DetRng, EffectKind, FaultClass,
    FaultEvent, StuckAtState,
};
use rand::Rng;

/// A firing's fault events, partitioned into the mechanical effects the
/// executor applies around the compute body. Shared by both executors so
/// the deterministic and threaded paths interpret a fault class
/// identically (and draw from the per-core RNG in the same order).
#[derive(Debug, Default)]
pub(crate) struct FiringFaults {
    /// Data flips applied to staged inputs before compute.
    pub pre_flips: u32,
    /// Data flips applied to staged outputs after compute.
    pub post_flips: u32,
    /// Correlated multi-bit bursts applied after compute.
    pub bursts: u32,
    /// Shared-queue pointer strikes (the concentrated QME class).
    pub pointer_hits: u32,
    /// In-flight header-codeword strikes.
    pub header_hits: u32,
    /// Control-flow perturbations applied to the firing's outputs.
    pub perturbations: Vec<ControlPerturbation>,
    /// Addressing errors (queue pointer or local-buffer garble).
    pub addressing: u32,
}

/// Partitions the firing's fault events per the configured fault class.
/// The baseline follows the effect model (data flips before/after
/// compute, control perturbations after, addressing immediately); the
/// structured classes concentrate every non-masked event into their
/// mode. A `StuckAt` event latches the defect into `stuck` permanently.
pub(crate) fn partition_events(
    class: FaultClass,
    events: &[FaultEvent],
    injector: &mut CoreInjector,
    stuck: &mut Option<StuckAtState>,
) -> FiringFaults {
    let mut f = FiringFaults::default();
    for ev in events {
        match (class, ev.kind) {
            (_, EffectKind::Silent) => {}
            (FaultClass::PointerCorruption, _) => f.pointer_hits += 1,
            (FaultClass::HeaderCorruption, _) => f.header_hits += 1,
            (FaultClass::StuckAt, _) => {
                // The first event latches the defect permanently; later
                // events land on an already-stuck datapath.
                if stuck.is_none() {
                    *stuck = Some(StuckAtState::sample(injector.rng_mut()));
                }
            }
            (FaultClass::Burst, EffectKind::DataValue) => f.bursts += 1,
            (FaultClass::Baseline, EffectKind::DataValue) => {
                if injector.rng_mut().gen::<bool>() {
                    f.pre_flips += 1;
                } else {
                    f.post_flips += 1;
                }
            }
            (FaultClass::Baseline | FaultClass::Burst, EffectKind::ControlFlow) => {
                let model = *injector.model();
                f.perturbations
                    .push(model.sample_perturbation(injector.rng_mut()));
            }
            (FaultClass::Baseline | FaultClass::Burst, EffectKind::Addressing) => {
                f.addressing += 1;
            }
        }
    }
    f
}

/// Flips one random bit of one random item across the given buffers.
/// Returns `false` when every buffer is empty (the flip was absorbed by
/// dead state — effectively masked).
pub(crate) fn flip_random_item(bufs: &mut [&mut Vec<u32>], rng: &mut DetRng) -> bool {
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    if total == 0 {
        return false;
    }
    let mut idx = rng.gen_range(0..total);
    for buf in bufs {
        if idx < buf.len() {
            let bit = rng.gen_range(0..32u32);
            buf[idx] ^= 1 << bit;
            return true;
        }
        idx -= buf.len();
    }
    unreachable!("index within total length")
}

/// Applies a correlated burst to one random item: a run of adjacent bits
/// flips together, and with probability ½ the burst spills into the next
/// item at the same bit positions (a strike across adjacent cells).
/// Returns `false` when every buffer is empty.
pub(crate) fn burst_flip_random_item(bufs: &mut [&mut Vec<u32>], rng: &mut DetRng) -> bool {
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    if total == 0 {
        return false;
    }
    let len = sample_burst_len(rng);
    let start = rng.gen_range(0..32u32.saturating_sub(len - 1).max(1));
    let mask = (((1u64 << len) - 1) as u32) << start;
    let spill = rng.gen::<bool>();
    let mut idx = rng.gen_range(0..total);
    for buf in bufs {
        if idx < buf.len() {
            buf[idx] ^= mask;
            if spill && idx + 1 < buf.len() {
                buf[idx + 1] ^= mask;
            }
            return true;
        }
        idx -= buf.len();
    }
    unreachable!("index within total length")
}

/// Replaces one random item with an arbitrary word (a load/store that went
/// to the wrong local address). Returns `false` when buffers are empty.
pub(crate) fn garble_random_item(bufs: &mut [&mut Vec<u32>], rng: &mut DetRng) -> bool {
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    if total == 0 {
        return false;
    }
    let mut idx = rng.gen_range(0..total);
    for buf in bufs {
        if idx < buf.len() {
            buf[idx] = rng.gen();
            return true;
        }
        idx -= buf.len();
    }
    unreachable!("index within total length")
}

/// Applies a control-flow perturbation to the firing's staged outputs:
/// the firing pushes extra garbage items, loses trailing items, skips its
/// body, or runs twice. Bounded by construction — the PPU guarantee that
/// control errors cannot escape the firing.
pub(crate) fn apply_perturbation(
    outputs: &mut [Vec<u32>],
    pert: ControlPerturbation,
    rng: &mut DetRng,
) {
    if outputs.is_empty() {
        return;
    }
    match pert {
        ControlPerturbation::ExtraItems(k) => {
            let port = rng.gen_range(0..outputs.len());
            for _ in 0..k {
                outputs[port].push(rng.gen());
            }
        }
        ControlPerturbation::LostItems(k) => {
            let port = rng.gen_range(0..outputs.len());
            let keep = outputs[port].len().saturating_sub(k as usize);
            outputs[port].truncate(keep);
        }
        ControlPerturbation::SkipFiring => {
            for out in outputs.iter_mut() {
                out.clear();
            }
        }
        ControlPerturbation::ExtraFiring => {
            for out in outputs.iter_mut() {
                let copy = out.clone();
                out.extend(copy);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_fault::core_rng;

    #[test]
    fn flip_changes_one_bit() {
        let mut rng = core_rng(1, 0);
        let mut a = vec![0u32; 4];
        let mut b = vec![0u32; 4];
        {
            let mut bufs = [&mut a, &mut b];
            assert!(flip_random_item(&mut bufs, &mut rng));
        }
        let ones: u32 = a.iter().chain(&b).map(|v| v.count_ones()).sum();
        assert_eq!(ones, 1);
    }

    #[test]
    fn flip_on_empty_is_masked() {
        let mut rng = core_rng(1, 0);
        let mut a: Vec<u32> = Vec::new();
        let mut bufs = [&mut a];
        assert!(!flip_random_item(&mut bufs, &mut rng));
    }

    #[test]
    fn burst_flips_adjacent_bits() {
        let mut rng = core_rng(8, 0);
        for _ in 0..200 {
            let mut a = vec![0u32; 6];
            {
                let mut bufs = [&mut a];
                assert!(burst_flip_random_item(&mut bufs, &mut rng));
            }
            let hit: Vec<u32> = a.iter().copied().filter(|&v| v != 0).collect();
            // One item (or two adjacent with identical masks on spill).
            assert!((1..=2).contains(&hit.len()));
            for &v in &hit {
                let ones = v.count_ones();
                assert!((2..=8).contains(&ones), "burst width {ones}");
                // Contiguous run: v is a shifted block of ones.
                assert_eq!(v >> v.trailing_zeros(), (1 << ones) - 1);
            }
            if hit.len() == 2 {
                assert_eq!(hit[0], hit[1], "spill reuses the mask");
            }
        }
    }

    #[test]
    fn burst_on_empty_is_masked() {
        let mut rng = core_rng(8, 0);
        let mut a: Vec<u32> = Vec::new();
        let mut bufs = [&mut a];
        assert!(!burst_flip_random_item(&mut bufs, &mut rng));
    }

    #[test]
    fn garble_replaces_one_item() {
        let mut rng = core_rng(2, 0);
        let mut a = vec![7u32; 8];
        {
            let mut bufs = [&mut a];
            assert!(garble_random_item(&mut bufs, &mut rng));
        }
        let changed = a.iter().filter(|&&v| v != 7).count();
        assert_eq!(changed, 1);
    }

    #[test]
    fn perturbations_change_counts() {
        let mut rng = core_rng(3, 0);
        let mut out = vec![vec![1, 2, 3], vec![4, 5]];
        apply_perturbation(&mut out, ControlPerturbation::ExtraItems(2), &mut rng);
        assert_eq!(out[0].len() + out[1].len(), 7);
        apply_perturbation(&mut out, ControlPerturbation::LostItems(1), &mut rng);
        assert_eq!(out[0].len() + out[1].len(), 6);
        apply_perturbation(&mut out, ControlPerturbation::ExtraFiring, &mut rng);
        assert_eq!(out[0].len() + out[1].len(), 12);
        apply_perturbation(&mut out, ControlPerturbation::SkipFiring, &mut rng);
        assert_eq!(out[0].len() + out[1].len(), 0);
    }

    #[test]
    fn lost_items_saturates() {
        let mut rng = core_rng(4, 0);
        let mut out = vec![vec![1u32]];
        apply_perturbation(&mut out, ControlPerturbation::LostItems(10), &mut rng);
        assert!(out[0].is_empty());
    }
}
