//! A stream graph bound to its work functions.

use cg_graph::{NodeId, NodeKind, StreamGraph};

use crate::work::WorkFn;

/// A runnable streaming program: a validated [`StreamGraph`] plus one work
/// function per source/filter node. Splitters, joiners and sinks are
/// executed by the runtime itself (duplication, round-robin distribution
/// and collection are structural, not computational).
pub struct Program {
    graph: StreamGraph,
    works: Vec<Option<Box<dyn WorkFn>>>,
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("graph", &self.graph.name())
            .field("bound", &self.works.iter().filter(|w| w.is_some()).count())
            .finish()
    }
}

impl Program {
    /// Starts a program over `graph` with no work functions bound yet.
    pub fn new(graph: StreamGraph) -> Self {
        let n = graph.node_count();
        Program {
            graph,
            works: (0..n).map(|_| None).collect(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &StreamGraph {
        &self.graph
    }

    /// Binds a general work function to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is a splitter, joiner, or sink (the runtime owns
    /// those), or if a work function is already bound.
    pub fn set_work(&mut self, node: NodeId, work: impl WorkFn + 'static) {
        let kind = self.graph.node(node).kind();
        assert!(
            matches!(kind, NodeKind::Source | NodeKind::Filter),
            "node {node} has kind {kind:?}, which the runtime executes itself"
        );
        assert!(
            self.works[node.index()].is_none(),
            "node {node} already has a work function"
        );
        self.works[node.index()] = Some(Box::new(work));
    }

    /// Binds a source generator: called once per firing with the output
    /// buffer of the source's single out-port.
    ///
    /// # Panics
    ///
    /// As [`Program::set_work`]; additionally if the source has more than
    /// one output edge (use [`Program::set_work`] for multi-output
    /// sources).
    pub fn set_source(
        &mut self,
        node: NodeId,
        mut gen: impl FnMut(&mut Vec<u32>) + Send + 'static,
    ) {
        assert_eq!(
            self.graph.node(node).outputs().len(),
            1,
            "set_source requires a single-output source"
        );
        self.set_work(node, move |_inp: &[Vec<u32>], out: &mut [Vec<u32>]| {
            gen(&mut out[0]);
        });
    }

    /// Binds a single-in single-out filter body.
    ///
    /// # Panics
    ///
    /// As [`Program::set_work`].
    pub fn set_filter(
        &mut self,
        node: NodeId,
        work: impl FnMut(&[Vec<u32>], &mut [Vec<u32>]) + Send + 'static,
    ) {
        self.set_work(node, work);
    }

    /// Checks every source/filter node has a work function.
    ///
    /// # Errors
    ///
    /// Returns the name of the first unbound node.
    pub fn validate_bound(&self) -> Result<(), String> {
        for (id, node) in self.graph.nodes() {
            let needs = matches!(node.kind(), NodeKind::Source | NodeKind::Filter);
            if needs && self.works[id.index()].is_none() {
                return Err(format!("node {} ({id}) has no work function", node.name()));
            }
        }
        Ok(())
    }

    /// Decomposes into graph and work table (runtime internal).
    pub(crate) fn into_parts(self) -> (StreamGraph, Vec<Option<Box<dyn WorkFn>>>) {
        (self.graph, self.works)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_graph::GraphBuilder;

    fn graph() -> (StreamGraph, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new("t");
        let s = b.add_node("s", NodeKind::Source);
        let f = b.add_node("f", NodeKind::Filter);
        let k = b.add_node("k", NodeKind::Sink);
        b.pipeline(&[s, f, k], 2).unwrap();
        (b.build().unwrap(), s, f, k)
    }

    #[test]
    fn binding_and_validation() {
        let (g, s, f, _k) = graph();
        let mut p = Program::new(g);
        assert!(p.validate_bound().is_err());
        p.set_source(s, |out| out.extend([1, 2]));
        assert!(p.validate_bound().is_err());
        p.set_filter(f, |inp, out| out[0].extend(inp[0].iter().copied()));
        assert!(p.validate_bound().is_ok());
        assert!(format!("{p:?}").contains("bound"));
    }

    #[test]
    #[should_panic(expected = "runtime executes itself")]
    fn binding_sink_panics() {
        let (g, _s, _f, k) = graph();
        let mut p = Program::new(g);
        p.set_work(k, |_: &[Vec<u32>], _: &mut [Vec<u32>]| {});
    }

    #[test]
    #[should_panic(expected = "already has a work function")]
    fn double_binding_panics() {
        let (g, s, _f, _k) = graph();
        let mut p = Program::new(g);
        p.set_source(s, |_| {});
        p.set_source(s, |_| {});
    }
}
