//! Run reports: everything the experiment harnesses need to regenerate
//! the paper's tables and figures.

use std::collections::BTreeMap;

use cg_fault::FaultStats;
use cg_graph::NodeId;
use cg_queue::QueueStats;
use cg_telemetry::TelemetryReport;
use cg_trace::TraceData;
use commguard::SubopCounters;

use crate::config::MemModel;
use crate::pacing::PacingReport;
use crate::watchdog::WatchdogStats;

/// Per-node (= per-core) results.
#[derive(Debug, Clone, Default)]
pub struct NodeReport {
    /// Node name from the graph.
    pub name: String,
    /// Committed instructions charged to this core.
    pub instructions: u64,
    /// Firings executed.
    pub firings: u64,
    /// Frame computations completed.
    pub frames: u64,
    /// Instructions per frame computation (for the §5.3 discussion).
    pub instructions_per_frame: f64,
    /// CommGuard suboperation counters for this core.
    pub subops: SubopCounters,
    /// Faults injected on this core, by class. Both executors fill this:
    /// the deterministic executor from its scheduler-round injectors, the
    /// threaded executor ([`crate::run_parallel`]) from the per-core
    /// injector stream owned by this node's worker thread.
    pub faults: FaultStats,
    /// Forced-transfer episodes on this core's ports. The deterministic
    /// executor counts QM timeout firings; the threaded executor counts
    /// stall-timeout expiries of its blocking transport (each followed by
    /// a forced transfer, a frame retry, or a degradation).
    pub timeouts: u64,
    /// High-water occupancy (in units) over the queues this core
    /// consumes. Queues are attributed to their consumer side, so source
    /// nodes report 0.
    pub max_queue_occupancy: u64,
}

/// The complete result of one simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Per-node reports, indexed by node.
    pub nodes: Vec<NodeReport>,
    /// Aggregated queue statistics over all edges.
    ///
    /// Under the threaded executor, `blocked_pushes`/`blocked_pops` count
    /// real blocking episodes of the condvar transport (one failed
    /// attempt per wait), not spin iterations.
    pub queues: QueueStats,
    /// Collected sink streams, keyed by node index.
    pub sinks: BTreeMap<usize, Vec<u32>>,
    /// Scheduler rounds used. The deterministic executor counts
    /// round-robin scheduler rounds; the threaded executor has no
    /// scheduler and reports the steady-state frame count instead.
    pub rounds: u64,
    /// Whether every node ran to completion (false = hit `max_rounds`).
    pub completed: bool,
    /// Cross-core stall watchdog escalations. The deterministic executor
    /// fills the full four-rung ladder; the threaded executor reports its
    /// recovery path here as `frame_retries` (frames re-executed from
    /// their boundary checkpoint) and `frame_degrades` (frames discharged
    /// with padded output after retry-budget exhaustion).
    ///
    /// **False-positive bound for generated graphs.** A legal (error-free,
    /// schedulable) graph triggers none of these counters provided the
    /// occupancy-sensitive knobs respect the worst-case steady-state
    /// demand `D` of its hottest edge (frame items + header slack, see
    /// `cg_graph::random::GraphProfile::queue_demand`): `queue_capacity ≥
    /// D` (admissible frame schedule, [`crate::check_queue_capacity`]),
    /// `timeout_rounds ≥ 4·D` (a consumer may legally sit blocked for a
    /// full frame of one-firing-per-visit producer progress), and
    /// `stall_timeout ≥ 100 ms + 2 ms·D` (a threaded peer may legally
    /// take a full frame to produce/consume before unblocking). Faulty
    /// runs stay bounded by `frame_retries ≤ par_retry_budget × frames ×
    /// nodes` independent of occupancy. `SimConfig::for_queue_demand`
    /// applies exactly these floors; the fuzz campaign relies on them.
    pub watchdog: WatchdogStats,
    /// AM realignment episodes (pad + discard entries) across all cores.
    pub realignment_episodes: u64,
    /// The drained event trace, when the run was configured with one.
    pub trace: Option<TraceData>,
    /// The metrics-plane report (latency histograms, snapshot series,
    /// time attribution), when the run was configured with telemetry.
    pub telemetry: Option<TelemetryReport>,
    /// Deadline accounting and the SLO verdict, when the run was paced
    /// ([`crate::Pacing::Paced`]); `None` for batch runs.
    pub pacing: Option<PacingReport>,
}

impl RunReport {
    /// The output stream collected at `sink` (empty if none).
    pub fn sink_output(&self, sink: NodeId) -> &[u32] {
        self.sinks
            .get(&sink.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total committed instructions across all cores.
    pub fn total_instructions(&self) -> u64 {
        self.nodes.iter().map(|n| n.instructions).sum()
    }

    /// Summed CommGuard suboperation counters.
    pub fn total_subops(&self) -> SubopCounters {
        let mut acc = SubopCounters::default();
        for n in &self.nodes {
            acc += &n.subops;
        }
        acc
    }

    /// Summed fault statistics.
    pub fn total_faults(&self) -> FaultStats {
        let mut acc = FaultStats::default();
        for n in &self.nodes {
            acc += n.faults;
        }
        acc
    }

    /// Fig. 8 metric: (padded + discarded bytes) / accepted bytes.
    pub fn loss_ratio(&self) -> f64 {
        self.total_subops().loss_ratio()
    }

    /// Fig. 14 metric: CommGuard suboperations per committed instruction.
    pub fn subop_ratio(&self) -> f64 {
        let instr = self.total_instructions();
        if instr == 0 {
            return 0.0;
        }
        self.total_subops().total_subops() as f64 / instr as f64
    }

    /// Fig. 12 metrics: header loads and stores as a fraction of *all*
    /// estimated processor loads/stores (queue traffic + compute memory
    /// events per the [`MemModel`]).
    pub fn header_memory_ratios(&self, mem: &MemModel) -> (f64, f64) {
        let instr = self.total_instructions() as f64;
        let total_loads = self.queues.loads() as f64 + instr * mem.loads_per_instr;
        let total_stores = self.queues.stores() as f64 + instr * mem.stores_per_instr;
        let lr = if total_loads > 0.0 {
            self.queues.header_pops as f64 / total_loads
        } else {
            0.0
        };
        let sr = if total_stores > 0.0 {
            self.queues.header_pushes as f64 / total_stores
        } else {
            0.0
        };
        (lr, sr)
    }

    /// Median instructions-per-frame across nodes (§5.3: "the number of
    /// instructions per frame computation in the median threads").
    pub fn median_instructions_per_frame(&self) -> f64 {
        let mut v: Vec<f64> = self
            .nodes
            .iter()
            .filter(|n| n.frames > 0)
            .map(|n| n.instructions_per_frame)
            .collect();
        if v.is_empty() {
            return 0.0;
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v[v.len() / 2]
    }

    /// Total QM timeouts across cores.
    pub fn total_timeouts(&self) -> u64 {
        self.nodes.iter().map(|n| n.timeouts).sum()
    }

    /// Guard-state corruptions detected by the hardened (triplicated)
    /// AM/QM/HI soft state, summed over cores.
    pub fn guard_state_detected(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.subops.guard_state_detected)
            .sum()
    }

    /// Guard-state corruptions repaired by majority vote, summed over
    /// cores. `detected - corrected` is the residual (uncorrectable
    /// three-way splits).
    pub fn guard_state_corrected(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.subops.guard_state_corrected)
            .sum()
    }

    /// Deepest any queue ever got, across all edges (units).
    pub fn max_queue_occupancy(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.max_queue_occupancy)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        let mut r = RunReport {
            app: "t".into(),
            completed: true,
            ..Default::default()
        };
        for (i, instr) in [(0usize, 1000u64), (1, 3000)] {
            let mut n = NodeReport {
                name: format!("n{i}"),
                instructions: instr,
                firings: 10,
                frames: 5,
                instructions_per_frame: instr as f64 / 5.0,
                ..Default::default()
            };
            n.subops.fsm_ops = 10;
            n.subops.accepted_items = 100;
            n.subops.padded_items = 1;
            n.max_queue_occupancy = 40 + i as u64;
            r.nodes.push(n);
        }
        r.queues.item_pushes = 200;
        r.queues.item_pops = 200;
        r.queues.header_pushes = 10;
        r.queues.header_pops = 10;
        r
    }

    #[test]
    fn aggregations() {
        let r = report();
        assert_eq!(r.total_instructions(), 4000);
        assert_eq!(r.total_subops().fsm_ops, 20);
        assert!((r.subop_ratio() - 20.0 / 4000.0).abs() < 1e-12);
        assert!(r.loss_ratio() > 0.0);
        assert_eq!(r.total_timeouts(), 0);
    }

    #[test]
    fn header_ratios_use_mem_model() {
        let r = report();
        let (lr, sr) = r.header_memory_ratios(&MemModel::default());
        // loads: 210 queue + 1000 compute = 1210; headers 10.
        assert!((lr - 10.0 / (210.0 + 4000.0 * 0.25)).abs() < 1e-12);
        assert!(sr > 0.0 && sr < 0.05);
    }

    #[test]
    fn median_ipf() {
        let r = report();
        assert_eq!(r.median_instructions_per_frame(), 600.0);
    }

    #[test]
    fn sink_output_empty_for_unknown() {
        let r = report();
        assert!(r.sink_output(NodeId::from_index(5)).is_empty());
    }

    #[test]
    fn max_queue_occupancy_is_the_max_over_nodes() {
        let r = report();
        assert_eq!(r.max_queue_occupancy(), 41);
        assert_eq!(RunReport::default().max_queue_occupancy(), 0);
    }

    #[test]
    fn guard_state_counters_sum_over_nodes() {
        let mut r = report();
        r.nodes[0].subops.guard_state_detected = 3;
        r.nodes[0].subops.guard_state_corrected = 2;
        r.nodes[1].subops.guard_state_detected = 1;
        r.nodes[1].subops.guard_state_corrected = 1;
        assert_eq!(r.guard_state_detected(), 4);
        assert_eq!(r.guard_state_corrected(), 3);
    }

    #[test]
    fn realignment_episodes_and_trace_default_empty() {
        let r = report();
        assert_eq!(r.realignment_episodes, 0);
        assert!(r.trace.is_none());
        assert!(r.telemetry.is_none());
        assert!(r.pacing.is_none());
    }
}
