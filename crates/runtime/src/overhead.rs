//! Analytic execution-time overhead model (paper §5.3 / Fig. 13).
//!
//! CommGuard's runtime cost has two parts: the extra queue traffic for
//! headers, and pipeline serialisation at frame-computation boundaries
//! (pushes/pops after a boundary stall until the boundary instruction
//! commits — measured with `lfence` on real hardware in the paper). Both
//! scale with frame *frequency*, so larger frame sizes shrink them.

use crate::config::OverheadModel;
use crate::report::RunReport;

/// Breakdown of estimated execution-time overhead, as fractions of the
/// baseline committed instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadEstimate {
    /// Overhead from header pushes and pops.
    pub header_fraction: f64,
    /// Overhead from frame-boundary serialisation stalls.
    pub serialize_fraction: f64,
}

impl OverheadEstimate {
    /// Total overhead fraction (Fig. 13's y-axis).
    pub fn total(&self) -> f64 {
        self.header_fraction + self.serialize_fraction
    }
}

/// Estimates CommGuard's execution-time overhead from a guarded run.
pub fn estimate_overhead(report: &RunReport, model: &OverheadModel) -> OverheadEstimate {
    let base = report.total_instructions() as f64;
    if base == 0.0 {
        return OverheadEstimate {
            header_fraction: 0.0,
            serialize_fraction: 0.0,
        };
    }
    let header_ops = (report.queues.header_pushes + report.queues.header_pops) as f64;
    let boundaries: f64 = report.nodes.iter().map(|n| n.frames as f64).sum();
    OverheadEstimate {
        header_fraction: header_ops * model.header_op_cost / base,
        serialize_fraction: boundaries * model.serialize_cycles / base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::NodeReport;

    #[test]
    fn overhead_scales_with_headers_and_frames() {
        let mut r = RunReport::default();
        r.nodes.push(NodeReport {
            instructions: 100_000,
            frames: 100,
            ..Default::default()
        });
        r.queues.header_pushes = 100;
        r.queues.header_pops = 100;
        let m = OverheadModel::default();
        let e = estimate_overhead(&r, &m);
        assert!((e.header_fraction - 200.0 * 2.0 / 100_000.0).abs() < 1e-12);
        assert!((e.serialize_fraction - 100.0 * 3.0 / 100_000.0).abs() < 1e-12);
        assert!(e.total() > 0.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let e = estimate_overhead(&RunReport::default(), &OverheadModel::default());
        assert_eq!(e.total(), 0.0);
    }
}
