//! The deterministic multicore executor.
//!
//! One stream-graph node runs per simulated core (the paper's layout).
//! Cores are multiplexed in topological round-robin; each visit advances a
//! node's micro-state machine (frame boundary → header drain → pop →
//! fire → push) as far as it can before blocking on a queue. Blocking is
//! resolved by later visits or, after a bounded number of fruitless
//! visits, by a queue-manager timeout that forces (incorrect but
//! progressing) data transfer — the PPU guarantee that nothing ever hangs.

use cg_fault::{CoreInjector, EffectKind};
use cg_graph::{EdgeId, NodeId, NodeKind};
use cg_queue::{QueueSpec, SimQueue, Which};
use commguard::qm::TimeoutTracker;
use commguard::CoreGuard;
use rand::Rng;

use crate::config::SimConfig;
use crate::faults::{apply_perturbation, flip_random_item, garble_random_item};
use crate::program::Program;
use crate::report::{NodeReport, RunReport};
use crate::work::WorkFn;

/// Errors that prevent a run from starting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A source/filter node has no work function bound.
    UnboundNode(String),
    /// The graph has no steady-state schedule.
    Schedule(String),
    /// The effect model is invalid.
    BadEffectModel(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnboundNode(m) => write!(f, "unbound node: {m}"),
            RunError::Schedule(m) => write!(f, "scheduling failed: {m}"),
            RunError::BadEffectModel(m) => write!(f, "bad effect model: {m}"),
        }
    }
}

impl std::error::Error for RunError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Boundary,
    DrainHeaders,
    PopInputs,
    Fire,
    PushOutputs,
    Finishing,
    Done,
}

/// Per-node (= per-core) runtime state.
struct NodeRt {
    id: NodeId,
    kind: NodeKind,
    name: String,
    in_edges: Vec<EdgeId>,
    out_edges: Vec<EdgeId>,
    pop_rates: Vec<u32>,
    push_rates: Vec<u32>,
    reps: u64,
    total_firings: u64,
    firings_done: u64,
    guard: CoreGuard,
    injector: CoreInjector,
    work: Option<Box<dyn WorkFn>>,
    in_timeouts: Vec<TimeoutTracker>,
    out_timeouts: Vec<TimeoutTracker>,
    staged_in: Vec<Vec<u32>>,
    staged_out: Vec<Vec<u32>>,
    out_pos: Vec<usize>,
    phase: Phase,
    instructions: u64,
    timeouts_fired: u64,
    sink_buf: Vec<u32>,
}

impl NodeRt {
    fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }
}

/// Runs `program` under `config` to completion (or the round cap).
///
/// # Errors
///
/// Returns [`RunError`] for unbound nodes, inconsistent schedules, or an
/// invalid effect model. Error-prone execution itself never errors — that
/// is the point — it only degrades output quality in the report.
pub fn run(program: Program, config: &SimConfig) -> Result<RunReport, RunError> {
    program
        .validate_bound()
        .map_err(RunError::UnboundNode)?;
    config
        .effect_model
        .validate()
        .map_err(RunError::BadEffectModel)?;
    let (graph, mut works) = program.into_parts();
    let schedule = graph
        .schedule()
        .map_err(|e| RunError::Schedule(e.to_string()))?;

    let guard_cfg = config.protection.guard_config();
    let pointer_mode = config.protection.pointer_mode();
    let errors_on = config.faults_enabled();

    // Queues, one per edge.
    let mut queues: Vec<SimQueue> = graph
        .edges()
        .map(|_| SimQueue::new(QueueSpec::with_capacity(config.queue_capacity).pointer_mode(pointer_mode)))
        .collect();

    // Per-node runtime state, one core per node.
    let mut nodes: Vec<NodeRt> = graph
        .nodes()
        .map(|(id, node)| {
            let in_edges = node.inputs().to_vec();
            let out_edges = node.outputs().to_vec();
            let reps = schedule.repetitions(id);
            let guard = match &guard_cfg {
                Some(cfg) => {
                    // Promoted frames over the whole run (§5.4 scaling).
                    let promoted = config.frames.div_ceil(u64::from(cfg.frame_scale));
                    CoreGuard::new(
                        in_edges.len(),
                        out_edges.len(),
                        cfg,
                        u32::try_from(promoted).ok(),
                    )
                }
                None => CoreGuard::disabled(in_edges.len(), out_edges.len()),
            };
            let injector = if errors_on {
                CoreInjector::new(
                    config.mtbe,
                    config.effect_model,
                    config.seed,
                    id.index() as u64,
                )
            } else {
                CoreInjector::disabled(config.seed, id.index() as u64)
            };
            NodeRt {
                id,
                kind: node.kind(),
                name: node.name().to_string(),
                pop_rates: in_edges.iter().map(|&e| graph.edge(e).pop_rate()).collect(),
                push_rates: out_edges.iter().map(|&e| graph.edge(e).push_rate()).collect(),
                staged_in: vec![Vec::new(); in_edges.len()],
                staged_out: vec![Vec::new(); out_edges.len()],
                out_pos: vec![0; out_edges.len()],
                in_timeouts: vec![TimeoutTracker::new(config.timeout_rounds); in_edges.len()],
                out_timeouts: vec![TimeoutTracker::new(config.timeout_rounds); out_edges.len()],
                in_edges,
                out_edges,
                reps,
                total_firings: reps * config.frames,
                firings_done: 0,
                guard,
                injector,
                work: works[id.index()].take(),
                phase: Phase::Boundary,
                instructions: 0,
                timeouts_fired: 0,
                sink_buf: Vec::new(),
            }
        })
        .collect();

    let order = graph.topo_order();
    let mut rounds: u64 = 0;
    let mut completed = false;
    let cost_models: Vec<_> = graph.nodes().map(|(_, n)| *n.cost()).collect();

    loop {
        rounds += 1;
        let mut all_done = true;
        for &nid in &order {
            step(
                &mut nodes[nid.index()],
                &mut queues,
                &cost_models[nid.index()],
                config,
            );
            all_done &= nodes[nid.index()].is_done();
        }
        if all_done {
            completed = true;
            break;
        }
        if rounds >= config.max_rounds {
            break;
        }
    }

    // Assemble the report.
    let mut report = RunReport {
        app: graph.name().to_string(),
        rounds,
        completed,
        ..Default::default()
    };
    for q in &queues {
        report.queues += *q.stats();
    }
    for n in nodes {
        let frames = if n.reps > 0 { n.firings_done / n.reps } else { 0 };
        if n.kind == NodeKind::Sink {
            report.sinks.insert(n.id.index(), n.sink_buf);
        }
        report.nodes.push(NodeReport {
            name: n.name,
            instructions: n.instructions,
            firings: n.firings_done,
            frames,
            instructions_per_frame: if frames > 0 {
                n.instructions as f64 / frames as f64
            } else {
                0.0
            },
            subops: n.guard.into_subops(),
            faults: *n.injector.stats(),
            timeouts: n.timeouts_fired,
        });
    }
    Ok(report)
}

/// Advances one node as far as possible this visit.
fn step(n: &mut NodeRt, queues: &mut [SimQueue], cost: &cg_graph::CostModel, config: &SimConfig) {
    loop {
        match n.phase {
            Phase::Done => return,
            Phase::Boundary => {
                if n.firings_done >= n.total_firings {
                    n.guard.finish();
                    n.phase = Phase::Finishing;
                    continue;
                }
                if n.firings_done == 0 {
                    n.guard.start();
                } else {
                    n.guard.scope_boundary();
                    // Publish partial working sets so downstream frames are
                    // visible promptly (the paper flushes at boundaries).
                    for &e in &n.out_edges {
                        queues[e.index()].flush();
                    }
                }
                n.phase = Phase::DrainHeaders;
            }
            Phase::DrainHeaders => {
                let mut clear = true;
                for (port, &e) in n.out_edges.iter().enumerate() {
                    let q = &mut queues[e.index()];
                    if !n.guard.hi_tick(port, q) {
                        if n.out_timeouts[port].on_block() {
                            n.timeouts_fired += 1;
                            n.guard.hi_force(port, q);
                        } else {
                            clear = false;
                        }
                    } else {
                        n.out_timeouts[port].on_progress();
                    }
                }
                if !clear {
                    return;
                }
                n.phase = Phase::PopInputs;
            }
            Phase::PopInputs => {
                for (port, &e) in n.in_edges.iter().enumerate() {
                    let need = n.pop_rates[port] as usize;
                    while n.staged_in[port].len() < need {
                        let q = &mut queues[e.index()];
                        match n.guard.pop(port, q) {
                            Some(v) => {
                                n.in_timeouts[port].on_progress();
                                n.staged_in[port].push(v);
                            }
                            None => {
                                if n.in_timeouts[port].on_block() {
                                    // QM timeout: transfer the whole
                                    // remaining firing's worth of (stale)
                                    // data at once rather than grinding
                                    // one forced item per timeout window.
                                    n.timeouts_fired += 1;
                                    while n.staged_in[port].len() < need {
                                        let v = n.guard.timeout_pop(port, q);
                                        n.staged_in[port].push(v);
                                    }
                                } else {
                                    return;
                                }
                            }
                        }
                    }
                }
                n.phase = Phase::Fire;
            }
            Phase::Fire => {
                fire(n, queues, cost, config);
                n.phase = Phase::PushOutputs;
            }
            Phase::PushOutputs => {
                for (port, &e) in n.out_edges.iter().enumerate() {
                    while n.out_pos[port] < n.staged_out[port].len() {
                        let q = &mut queues[e.index()];
                        let v = n.staged_out[port][n.out_pos[port]];
                        match n.guard.push(port, q, v) {
                            Ok(()) => {
                                n.out_timeouts[port].on_progress();
                                n.out_pos[port] += 1;
                            }
                            Err(_) => {
                                if n.out_timeouts[port].on_block() {
                                    // QM timeout: force the rest of this
                                    // firing's output out in one go.
                                    n.timeouts_fired += 1;
                                    while n.out_pos[port] < n.staged_out[port].len() {
                                        let v = n.staged_out[port][n.out_pos[port]];
                                        n.guard.timeout_push(port, q, v);
                                        n.out_pos[port] += 1;
                                    }
                                } else {
                                    return;
                                }
                            }
                        }
                    }
                }
                for (port, buf) in n.staged_out.iter_mut().enumerate() {
                    buf.clear();
                    n.out_pos[port] = 0;
                }
                for buf in &mut n.staged_in {
                    buf.clear();
                }
                n.firings_done += 1;
                n.phase = if n.firings_done % n.reps == 0 {
                    Phase::Boundary
                } else {
                    Phase::PopInputs
                };
            }
            Phase::Finishing => {
                let mut clear = true;
                for (port, &e) in n.out_edges.iter().enumerate() {
                    let q = &mut queues[e.index()];
                    if !n.guard.hi_tick(port, q) {
                        if n.out_timeouts[port].on_block() {
                            n.timeouts_fired += 1;
                            n.guard.hi_force(port, q);
                        } else {
                            clear = false;
                        }
                    }
                }
                if !clear {
                    return;
                }
                for &e in &n.out_edges {
                    queues[e.index()].flush();
                }
                n.phase = Phase::Done;
            }
        }
    }
}

/// Executes the firing body: charges instructions, collects fault events,
/// runs the work function (or the structural behaviour), and applies the
/// fault effects mechanically.
fn fire(n: &mut NodeRt, queues: &mut [SimQueue], cost: &cg_graph::CostModel, config: &SimConfig) {
    let items_moved: u64 = n.pop_rates.iter().map(|&r| u64::from(r)).sum::<u64>()
        + n.push_rates.iter().map(|&r| u64::from(r)).sum::<u64>();
    let instr = cost.firing_cost(items_moved);
    n.instructions += instr;
    let events = n.injector.advance(instr);

    // Partition events: data flips before/after compute, control
    // perturbations after, addressing immediately.
    let mut pre_flips = 0u32;
    let mut post_flips = 0u32;
    let mut perturbations = Vec::new();
    let mut addressing = 0u32;
    for ev in &events {
        match ev.kind {
            EffectKind::DataValue => {
                if n.injector.rng_mut().gen::<bool>() {
                    pre_flips += 1;
                } else {
                    post_flips += 1;
                }
            }
            EffectKind::ControlFlow => {
                let model = *n.injector.model();
                perturbations.push(model.sample_perturbation(n.injector.rng_mut()));
            }
            EffectKind::Addressing => addressing += 1,
            EffectKind::Silent => {}
        }
    }

    for _ in 0..pre_flips {
        let mut bufs: Vec<&mut Vec<u32>> = n.staged_in.iter_mut().collect();
        flip_random_item(&mut bufs, n.injector.rng_mut());
    }

    // The compute body.
    match n.kind {
        NodeKind::Source | NodeKind::Filter => {
            let work = n.work.as_mut().expect("validated: work bound");
            work.fire(&n.staged_in, &mut n.staged_out);
        }
        NodeKind::SplitDuplicate => {
            for out in &mut n.staged_out {
                out.extend_from_slice(&n.staged_in[0]);
            }
        }
        NodeKind::SplitRoundRobin => {
            let mut off = 0usize;
            for (port, out) in n.staged_out.iter_mut().enumerate() {
                let take = n.push_rates[port] as usize;
                let end = (off + take).min(n.staged_in[0].len());
                out.extend_from_slice(&n.staged_in[0][off..end]);
                // Short input (itself an upstream error effect): pad the
                // distribution with zeros to keep rates structural.
                out.resize(out.len() + take - (end - off), 0);
                off = end;
            }
        }
        NodeKind::JoinRoundRobin => {
            for inp in &n.staged_in {
                n.staged_out[0].extend_from_slice(inp);
            }
        }
        NodeKind::Sink => {
            for inp in &n.staged_in {
                n.sink_buf.extend_from_slice(inp);
            }
        }
    }

    for _ in 0..post_flips {
        let mut bufs: Vec<&mut Vec<u32>> = n.staged_out.iter_mut().collect();
        if !flip_random_item(&mut bufs, n.injector.rng_mut()) && n.kind == NodeKind::Sink {
            // Sinks have no outputs; the flip lands in the collected data.
            let mut bufs = [&mut n.sink_buf];
            flip_random_item(&mut bufs, n.injector.rng_mut());
        }
    }
    for pert in perturbations {
        apply_perturbation(&mut n.staged_out, pert, n.injector.rng_mut());
    }
    for _ in 0..addressing {
        apply_addressing_fault(n, queues, config);
    }
}

/// An addressing error: corrupts a shared queue pointer of a random
/// attached queue (silently fatal when pointers are unprotected — the
/// paper's QME class) or, when no queue is attached or on the local-buffer
/// side of the coin flip, garbles a staged item.
fn apply_addressing_fault(n: &mut NodeRt, queues: &mut [SimQueue], config: &SimConfig) {
    let attached: Vec<EdgeId> = n
        .in_edges
        .iter()
        .chain(&n.out_edges)
        .copied()
        .collect();
    let rng = n.injector.rng_mut();
    let hit_queue = !attached.is_empty() && rng.gen::<bool>();
    if hit_queue {
        let e = attached[rng.gen_range(0..attached.len())];
        let which = if rng.gen::<bool>() { Which::Head } else { Which::Tail };
        let bit = rng.gen_range(0..20u32); // pointers are small counters
        queues[e.index()].corrupt_shared_pointer(which, bit);
    } else {
        let mut bufs: Vec<&mut Vec<u32>> = n
            .staged_in
            .iter_mut()
            .chain(n.staged_out.iter_mut())
            .collect();
        garble_random_item(&mut bufs, rng);
    }
    // Unprotected-header ablation: addressing errors can also strike
    // in-flight header words, silently changing their ids.
    if let Some(cfg) = config.protection.guard_config() {
        if !cfg.protect_headers && !attached.is_empty() {
            let rng = n.injector.rng_mut();
            let e = attached[rng.gen_range(0..attached.len())];
            let slot_seed = rng.gen::<u32>();
            let bit = rng.gen_range(0..8u32); // low id bits: nearby frames
            queues[e.index()].corrupt_random_header_payload(slot_seed, bit);
        }
    }
}
