//! The deterministic multicore executor.
//!
//! One stream-graph node runs per simulated core (the paper's layout).
//! Cores are multiplexed in topological round-robin; each visit advances a
//! node's micro-state machine (frame boundary → header drain → pop →
//! fire → push) as far as it can before blocking on a queue. Blocking is
//! resolved by later visits or, after a bounded number of fruitless
//! visits, by a queue-manager timeout that forces (incorrect but
//! progressing) data transfer — the PPU guarantee that nothing ever hangs.

use cg_fault::{CoreInjector, StuckAtState};
use cg_graph::{EdgeId, NodeId, NodeKind};
use cg_queue::{QueueSpec, SimQueue, Which};
use cg_telemetry::{Clock, ClockMode, CoreProbe, RunCounters};
use cg_trace::{DirTag, Event, Tracer, MACHINE_CORE};
use commguard::qm::TimeoutTracker;
use commguard::CoreGuard;
use rand::Rng;

use crate::config::SimConfig;
use crate::faults::{
    apply_perturbation, burst_flip_random_item, flip_random_item, garble_random_item,
    partition_events,
};
use crate::pacing::{PacedSource, PacingReport};
use crate::program::Program;
use crate::report::{NodeReport, RunReport};
use crate::watchdog::{Watchdog, WatchdogAction};
use crate::work::WorkFn;

/// Errors that prevent a run from starting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A source/filter node has no work function bound.
    UnboundNode(String),
    /// The graph has no steady-state schedule.
    Schedule(String),
    /// The effect model is invalid.
    BadEffectModel(String),
    /// The threaded executor failed: a worker stalled past the transport
    /// timeout, found its peer dead, or panicked. The message names the
    /// node and edge involved.
    Parallel(String),
    /// A fan-in/fan-out graph's steady-state queue demand exceeds the
    /// configured ring capacity, so the frame schedule is not admissible
    /// and execution could wedge or silently degrade. Raised before any
    /// work runs; the message names the offending edge.
    CapacityExceeded {
        /// `"e<idx> (<src>→<dst>)"` label of the hottest offending edge.
        edge: String,
        /// Items (frame data + header slack) the edge needs in flight.
        demand: u64,
        /// The configured per-queue capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnboundNode(m) => write!(f, "unbound node: {m}"),
            RunError::Schedule(m) => write!(f, "scheduling failed: {m}"),
            RunError::BadEffectModel(m) => write!(f, "bad effect model: {m}"),
            RunError::Parallel(m) => write!(f, "threaded executor: {m}"),
            RunError::CapacityExceeded {
                edge,
                demand,
                capacity,
            } => write!(
                f,
                "queue capacity exceeded on {edge}: steady-state demand {demand} \
                 items > configured capacity {capacity}"
            ),
        }
    }
}

/// Rejects configurations whose per-edge steady-state demand cannot fit
/// the configured queue capacity.
///
/// Pure pipelines are exempt: backpressure alone schedules a chain at any
/// capacity ≥ 1 (the producer blocks until the consumer drains), and the
/// existing synthetic campaigns rely on running chains through small
/// (capacity-16) queues. With fan-in or fan-out, however, a splitter can
/// block pushing one branch while the joiner waits on another, so the
/// sufficient liveness condition is that every edge can hold one full
/// frame (`Schedule::items_per_iteration`) plus in-band header slack
/// ([`cg_graph::random::HEADER_SLACK`]).
///
/// # Errors
///
/// Returns [`RunError::CapacityExceeded`] naming the offending edge.
pub fn check_queue_capacity(
    graph: &cg_graph::StreamGraph,
    schedule: &cg_graph::schedule::Schedule,
    capacity: usize,
) -> Result<(), RunError> {
    let has_fan = graph.nodes().any(|(_, n)| {
        matches!(
            n.kind(),
            NodeKind::SplitDuplicate | NodeKind::SplitRoundRobin | NodeKind::JoinRoundRobin
        )
    });
    if !has_fan {
        return Ok(());
    }
    for (eid, e) in graph.edges() {
        let demand = schedule.items_per_iteration(eid) + cg_graph::random::HEADER_SLACK;
        if demand > capacity as u64 {
            return Err(RunError::CapacityExceeded {
                edge: format!(
                    "e{} ({}→{})",
                    eid.index(),
                    graph.node(e.src()).name(),
                    graph.node(e.dst()).name()
                ),
                demand,
                capacity,
            });
        }
    }
    Ok(())
}

impl std::error::Error for RunError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Boundary,
    DrainHeaders,
    PopInputs,
    Fire,
    PushOutputs,
    Finishing,
    Done,
}

/// Per-node (= per-core) runtime state.
struct NodeRt {
    id: NodeId,
    kind: NodeKind,
    name: String,
    in_edges: Vec<EdgeId>,
    out_edges: Vec<EdgeId>,
    pop_rates: Vec<u32>,
    push_rates: Vec<u32>,
    reps: u64,
    total_firings: u64,
    firings_done: u64,
    guard: CoreGuard,
    injector: CoreInjector,
    work: Option<Box<dyn WorkFn>>,
    in_timeouts: Vec<TimeoutTracker>,
    out_timeouts: Vec<TimeoutTracker>,
    staged_in: Vec<Vec<u32>>,
    staged_out: Vec<Vec<u32>>,
    out_pos: Vec<usize>,
    phase: Phase,
    instructions: u64,
    /// Latched stuck-at fault (the `StuckAt` fault class).
    stuck: Option<StuckAtState>,
    sink_buf: Vec<u32>,
}

impl NodeRt {
    fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// QM timeouts fired across this core's ports (tracker-derived).
    fn timeouts_fired(&self) -> u64 {
        self.in_timeouts
            .iter()
            .chain(&self.out_timeouts)
            .map(TimeoutTracker::fired)
            .sum()
    }
}

/// Runs `program` under `config` to completion (or the round cap).
///
/// # Errors
///
/// Returns [`RunError`] for unbound nodes, inconsistent schedules, or an
/// invalid effect model. Error-prone execution itself never errors — that
/// is the point — it only degrades output quality in the report.
pub fn run(program: Program, config: &SimConfig) -> Result<RunReport, RunError> {
    program.validate_bound().map_err(RunError::UnboundNode)?;
    config
        .effect_model
        .validate()
        .map_err(RunError::BadEffectModel)?;
    let (graph, mut works) = program.into_parts();
    let schedule = graph
        .schedule()
        .map_err(|e| RunError::Schedule(e.to_string()))?;
    check_queue_capacity(&graph, &schedule, config.queue_capacity)?;

    let guard_cfg = config.protection.guard_config();
    let pointer_mode = config.protection.pointer_mode();
    let errors_on = config.faults_enabled();
    let tracer = config.trace.tracer();
    // Deterministic clock: ticks are scheduler rounds, so enabled-path
    // snapshots are byte-identical per seed.
    let telem = config.telemetry.telemetry(ClockMode::Deterministic);
    let mut probes: Vec<CoreProbe> = graph
        .nodes()
        .map(|(id, node)| telem.probe(id.index() as u32, node.name()))
        .collect();

    // Queues, one per edge.
    let mut queues: Vec<SimQueue> = graph
        .edges()
        .map(|_| {
            SimQueue::new(
                QueueSpec::with_capacity(config.queue_capacity).pointer_mode(pointer_mode),
            )
        })
        .collect();
    if tracer.is_enabled() {
        for (edge, q) in queues.iter_mut().enumerate() {
            q.attach_tracer(tracer.clone(), edge as u32);
        }
    }

    // Per-node runtime state, one core per node.
    let mut nodes: Vec<NodeRt> = graph
        .nodes()
        .map(|(id, node)| {
            let in_edges = node.inputs().to_vec();
            let out_edges = node.outputs().to_vec();
            let reps = schedule.repetitions(id);
            let guard = match &guard_cfg {
                Some(cfg) => {
                    // Promoted frames over the whole run (§5.4 scaling).
                    let promoted = config.frames.div_ceil(u64::from(cfg.frame_scale));
                    CoreGuard::new(
                        in_edges.len(),
                        out_edges.len(),
                        cfg,
                        u32::try_from(promoted).ok(),
                    )
                }
                None => CoreGuard::disabled(in_edges.len(), out_edges.len()),
            };
            let injector = if errors_on {
                CoreInjector::new(
                    config.mtbe,
                    config.effect_model,
                    config.seed,
                    id.index() as u64,
                )
            } else {
                CoreInjector::disabled(config.seed, id.index() as u64)
            };
            NodeRt {
                id,
                kind: node.kind(),
                name: node.name().to_string(),
                pop_rates: in_edges.iter().map(|&e| graph.edge(e).pop_rate()).collect(),
                push_rates: out_edges
                    .iter()
                    .map(|&e| graph.edge(e).push_rate())
                    .collect(),
                staged_in: vec![Vec::new(); in_edges.len()],
                staged_out: vec![Vec::new(); out_edges.len()],
                out_pos: vec![0; out_edges.len()],
                in_timeouts: vec![TimeoutTracker::new(config.timeout_rounds); in_edges.len()],
                out_timeouts: vec![TimeoutTracker::new(config.timeout_rounds); out_edges.len()],
                in_edges,
                out_edges,
                reps,
                total_firings: reps * config.frames,
                firings_done: 0,
                guard,
                injector,
                work: works[id.index()].take(),
                phase: Phase::Boundary,
                instructions: 0,
                stuck: None,
                sink_buf: Vec::new(),
            }
        })
        .collect();
    if tracer.is_enabled() {
        for n in &mut nodes {
            n.guard.attach_tracer(tracer.clone());
            n.injector.attach_tracer(tracer.clone());
        }
    }

    let order = graph.topo_order();
    let mut rounds: u64 = 0;
    let mut completed = false;
    let cost_models: Vec<_> = graph.nodes().map(|(_, n)| *n.cost()).collect();
    let mut watchdog = Watchdog::new(config.watchdog);
    let mut last_fp = None;

    // Paced real-time mode: the virtual clock is the round counter, so a
    // paced deterministic run is a pure function of (program, config,
    // seed) — byte-reproducible like every other deterministic run.
    let paced_on = config.pacing.is_paced();
    let pace_clock = Clock::new(ClockMode::Deterministic);
    let paced = PacedSource::new(config.pacing, pace_clock.clone());
    let mut pacing_report = PacingReport::for_pacing(config.pacing, "rounds");
    let mut deadline_degrades: u64 = 0;
    let mut sink_seen: Vec<u64> = vec![0; nodes.len()];

    loop {
        rounds += 1;
        telem.advance_clock(rounds);
        pace_clock.advance_to(rounds);
        let mut all_done = true;
        let mut pacing_wait = false;
        for &nid in &order {
            let i = nid.index();
            let n = &mut nodes[i];
            // Paced source gating: a source sitting at its frame boundary
            // does not start frame f before the virtual clock reaches the
            // frame's release tick (f × period). The skipped visit is an
            // idle wait, not a stall.
            if paced_on
                && n.kind == NodeKind::Source
                && n.phase == Phase::Boundary
                && n.firings_done < n.total_firings
                && !paced.released(n.firings_done / n.reps)
            {
                pacing_wait = true;
                all_done = false;
                continue;
            }
            tracer.set_context(i as u32, rounds, n.guard.active_fc());
            // Busy/stall attribution: a visit that changes observable
            // node state (or moves data on an attached queue) was busy;
            // anything else was a stalled visit. Classification is only
            // paid for when telemetry is on.
            let before = if probes[i].is_enabled() && !n.is_done() {
                Some(node_visit_fingerprint(n, &queues))
            } else {
                None
            };
            step(
                n,
                &mut queues,
                &cost_models[i],
                config,
                &paced,
                &tracer,
                &mut probes[i],
            );
            if let Some(fp) = before {
                let after = node_visit_fingerprint(&nodes[i], &queues);
                probes[i].visit(after != fp);
            }
            all_done &= nodes[i].is_done();
        }
        if paced_on {
            // Deadline ladder: a frame still in flight past its absolute
            // deadline can no longer land on time, so it is discharged
            // through the terminal degrade rung *now* — recovery is
            // re-budgeted in time, not attempts. `degrade_frame` is a
            // no-op at boundaries, so a frame is degraded at most once.
            let mut any_degraded = false;
            let period = config.pacing.period().unwrap_or(0);
            for (idx, n) in nodes.iter_mut().enumerate() {
                if matches!(n.phase, Phase::Done | Phase::Finishing | Phase::Boundary) {
                    continue;
                }
                let frame = n.firings_done / n.reps;
                // Deadline-critical escalation: once a frame is within one
                // period of dying, any QM timeout that would land after
                // the deadline is useless — arm those ports now so a
                // blocked operation forces transfer while the frame can
                // still commit on time. Strictly a last-chance measure:
                // frames with healthy slack never reach it.
                let slack = paced.slack(frame);
                if slack > 0 && slack < period {
                    for t in n.in_timeouts.iter_mut().chain(&mut n.out_timeouts) {
                        if slack < t.time_to_fire() {
                            t.arm();
                        }
                    }
                }
                if rounds >= paced.deadline(frame) {
                    tracer.set_context(idx as u32, rounds, n.guard.active_fc());
                    tracer.emit(Event::FrameDegraded {
                        frame: n.guard.active_fc(),
                    });
                    degrade_frame(n, &mut queues);
                    deadline_degrades += 1;
                    any_degraded = true;
                }
            }
            if any_degraded {
                // The overdue frame was discharged — that IS progress; a
                // racing watchdog ladder must not go on to abort the
                // fresh frame (the terminal rung stays idempotent).
                watchdog.note_external_degrade();
            }
            // Deadline accounting happens where the paper's quality
            // metrics do: at sink frame commits.
            if let Some(acc) = pacing_report.as_mut() {
                for (idx, n) in nodes.iter().enumerate() {
                    if n.kind != NodeKind::Sink {
                        continue;
                    }
                    let committed = n.firings_done / n.reps;
                    while sink_seen[idx] < committed {
                        let f = sink_seen[idx];
                        acc.record_commit(
                            config.pacing.release(f),
                            config.pacing.deadline_for(f),
                            rounds,
                        );
                        sink_seen[idx] += 1;
                    }
                }
            }
        }
        if all_done {
            completed = true;
            break;
        }
        if rounds >= config.max_rounds {
            break;
        }
        let fp = progress_fingerprint(&nodes, &queues);
        let progressed = last_fp != Some(fp);
        last_fp = Some(fp);
        // A round spent gated on the release schedule is an idle wait,
        // not a stall — it must not walk the watchdog ladder.
        match watchdog.on_round(progressed || pacing_wait) {
            WatchdogAction::None => {}
            WatchdogAction::ArmTimeouts => {
                tracer.set_context(MACHINE_CORE, rounds, 0);
                tracer.emit(Event::Watchdog { rung: 1 });
                for n in &mut nodes {
                    for t in n.in_timeouts.iter_mut().chain(&mut n.out_timeouts) {
                        t.arm();
                    }
                }
            }
            WatchdogAction::ForceProgress => {
                tracer.set_context(MACHINE_CORE, rounds, 0);
                tracer.emit(Event::Watchdog { rung: 2 });
                for (idx, n) in nodes.iter_mut().enumerate() {
                    tracer.set_context(idx as u32, rounds, n.guard.active_fc());
                    force_phase(n, &mut queues);
                }
            }
            WatchdogAction::AbortFrame => {
                tracer.set_context(MACHINE_CORE, rounds, 0);
                tracer.emit(Event::Watchdog { rung: 3 });
                for n in &mut nodes {
                    abort_frame(n);
                }
            }
            WatchdogAction::DegradeFrame => {
                tracer.set_context(MACHINE_CORE, rounds, 0);
                tracer.emit(Event::Watchdog { rung: 4 });
                for (idx, n) in nodes.iter_mut().enumerate() {
                    if !matches!(n.phase, Phase::Done | Phase::Finishing | Phase::Boundary) {
                        tracer.set_context(idx as u32, rounds, n.guard.active_fc());
                        tracer.emit(Event::FrameDegraded {
                            frame: n.guard.active_fc(),
                        });
                    }
                    degrade_frame(n, &mut queues);
                }
            }
        }
    }

    tracer.set_context(MACHINE_CORE, rounds, 0);
    tracer.emit(Event::RunEnd { completed });

    // Assemble the report.
    let mut report = RunReport {
        app: graph.name().to_string(),
        rounds,
        completed,
        watchdog: watchdog.stats(),
        trace: tracer.finish(),
        ..Default::default()
    };
    if let Some(mut acc) = pacing_report {
        acc.degraded_for_deadline = deadline_degrades;
        report.pacing = Some(acc);
    }
    for q in &queues {
        report.queues += *q.stats();
    }
    for n in nodes {
        let frames = n.firings_done.checked_div(n.reps).unwrap_or(0);
        let timeouts = n.timeouts_fired();
        // High-water occupancy across the queues this core consumes
        // (queues are attributed to their consumer side).
        let max_queue_occupancy = n
            .in_edges
            .iter()
            .map(|&e| queues[e.index()].stats().max_occupancy)
            .max()
            .unwrap_or(0);
        if n.kind == NodeKind::Sink {
            report.sinks.insert(n.id.index(), n.sink_buf);
        }
        let subops = n.guard.into_subops();
        report.realignment_episodes += subops.pad_events + subops.discard_events;
        report.nodes.push(NodeReport {
            name: n.name,
            instructions: n.instructions,
            firings: n.firings_done,
            frames,
            instructions_per_frame: if frames > 0 {
                n.instructions as f64 / frames as f64
            } else {
                0.0
            },
            subops,
            faults: *n.injector.stats(),
            timeouts,
            max_queue_occupancy,
        });
    }
    report.telemetry = telem.finish(probes, run_counters(config.frames, &report));
    Ok(report)
}

/// Folds the assembled report's run-wide counters into the telemetry
/// section so exporters see one self-contained document.
pub(crate) fn run_counters(frames: u64, report: &RunReport) -> RunCounters {
    RunCounters {
        frames,
        ecc_checks: report.queues.ecc.checks,
        ecc_detected: report.queues.ecc.detections,
        ecc_corrected: report.queues.ecc.corrections,
        wd_arm_timeouts: report.watchdog.timeout_escalations,
        wd_forced_progress: report.watchdog.forced_progress,
        wd_frame_aborts: report.watchdog.frame_aborts,
        wd_frame_degrades: report.watchdog.frame_degrades,
        frame_retries: report.watchdog.frame_retries,
        realignment_episodes: report.realignment_episodes,
        faults_injected: report.total_faults().total(),
        blocked_ops: report.queues.blocked_pushes + report.queues.blocked_pops,
        queue_timeouts: report.total_timeouts(),
    }
}

/// Advances one node as far as possible this visit.
fn step(
    n: &mut NodeRt,
    queues: &mut [SimQueue],
    cost: &cg_graph::CostModel,
    config: &SimConfig,
    paced: &PacedSource,
    tracer: &Tracer,
    probe: &mut CoreProbe,
) {
    loop {
        match n.phase {
            Phase::Done => return,
            Phase::Boundary => {
                if n.firings_done >= n.total_firings {
                    n.guard.finish();
                    n.phase = Phase::Finishing;
                    continue;
                }
                // Paced source gating: hold the next frame at its
                // boundary until the release tick. This also catches the
                // mid-visit continuation where a source commits frame f
                // and would roll straight into frame f+1 within the same
                // visit. Waiting here is idle time, not a stall.
                if n.kind == NodeKind::Source && !paced.released(n.firings_done / n.reps) {
                    return;
                }
                if n.firings_done == 0 {
                    n.guard.start();
                } else {
                    n.guard.scope_boundary();
                    // Publish partial working sets so downstream frames are
                    // visible promptly (the paper flushes at boundaries).
                    for &e in &n.out_edges {
                        queues[e.index()].flush();
                    }
                }
                tracer.emit(Event::FrameBoundary {
                    frame: n.guard.active_fc(),
                });
                probe.frame_start();
                n.phase = Phase::DrainHeaders;
            }
            Phase::DrainHeaders => {
                let mut clear = true;
                for (port, &e) in n.out_edges.iter().enumerate() {
                    let q = &mut queues[e.index()];
                    if !n.guard.hi_tick(port, q) {
                        if n.out_timeouts[port].on_block() {
                            tracer.emit(Event::QmTimeout {
                                port: port as u32,
                                dir: DirTag::Out,
                            });
                            n.guard.hi_force(port, q);
                        } else {
                            clear = false;
                        }
                    } else {
                        n.out_timeouts[port].on_progress();
                    }
                }
                if !clear {
                    return;
                }
                n.phase = Phase::PopInputs;
            }
            Phase::PopInputs => {
                for (port, &e) in n.in_edges.iter().enumerate() {
                    let need = n.pop_rates[port] as usize;
                    while n.staged_in[port].len() < need {
                        let q = &mut queues[e.index()];
                        let want = need - n.staged_in[port].len();
                        // Zero-copy batch pop; a short count is exactly
                        // one blocked attempt (the guard accounts it), so
                        // the timeout tracker advances at the same cadence
                        // as per-unit popping — `on_progress` is a pure
                        // streak reset, so once per run equals once per
                        // unit.
                        let got = n.guard.pop_batch(port, q, &mut n.staged_in[port], want);
                        if got > 0 {
                            n.in_timeouts[port].on_progress();
                        }
                        if got == want {
                            continue;
                        }
                        if n.in_timeouts[port].on_block() {
                            tracer.emit(Event::QmTimeout {
                                port: port as u32,
                                dir: DirTag::In,
                            });
                            // QM timeout: transfer the whole remaining
                            // firing's worth of (stale) data at once
                            // rather than grinding one forced item per
                            // timeout window.
                            while n.staged_in[port].len() < need {
                                let v = n.guard.timeout_pop(port, q);
                                n.staged_in[port].push(v);
                            }
                        } else {
                            return;
                        }
                    }
                }
                n.phase = Phase::Fire;
            }
            Phase::Fire => {
                fire(n, queues, cost, config);
                n.phase = Phase::PushOutputs;
            }
            Phase::PushOutputs => {
                for (port, &e) in n.out_edges.iter().enumerate() {
                    while n.out_pos[port] < n.staged_out[port].len() {
                        let q = &mut queues[e.index()];
                        let pending = &n.staged_out[port][n.out_pos[port]..];
                        // Zero-copy batch push; a short count is exactly
                        // one blocked attempt (see `PopInputs`).
                        let got = n.guard.push_batch(port, q, pending);
                        n.out_pos[port] += got;
                        if got > 0 {
                            n.out_timeouts[port].on_progress();
                        }
                        if n.out_pos[port] >= n.staged_out[port].len() {
                            break;
                        }
                        if n.out_timeouts[port].on_block() {
                            tracer.emit(Event::QmTimeout {
                                port: port as u32,
                                dir: DirTag::Out,
                            });
                            // QM timeout: force the rest of this firing's
                            // output out in one go.
                            while n.out_pos[port] < n.staged_out[port].len() {
                                let v = n.staged_out[port][n.out_pos[port]];
                                n.guard.timeout_push(port, q, v);
                                n.out_pos[port] += 1;
                            }
                        } else {
                            return;
                        }
                    }
                }
                for (port, buf) in n.staged_out.iter_mut().enumerate() {
                    buf.clear();
                    n.out_pos[port] = 0;
                }
                for buf in &mut n.staged_in {
                    buf.clear();
                }
                n.firings_done += 1;
                n.phase = if n.firings_done.is_multiple_of(n.reps) {
                    if probe.is_enabled() {
                        let (occ, det, corr) = sample_consumer_edges(n, queues);
                        probe.ecc_sample(det, corr);
                        probe.frame_commit(occ, 0, 0);
                    }
                    Phase::Boundary
                } else {
                    Phase::PopInputs
                };
            }
            Phase::Finishing => {
                let mut clear = true;
                for (port, &e) in n.out_edges.iter().enumerate() {
                    let q = &mut queues[e.index()];
                    if !n.guard.hi_tick(port, q) {
                        if n.out_timeouts[port].on_block() {
                            tracer.emit(Event::QmTimeout {
                                port: port as u32,
                                dir: DirTag::Out,
                            });
                            n.guard.hi_force(port, q);
                        } else {
                            clear = false;
                        }
                    }
                }
                if !clear {
                    return;
                }
                for &e in &n.out_edges {
                    queues[e.index()].flush();
                }
                n.phase = Phase::Done;
            }
        }
    }
}

/// Executes the firing body: charges instructions, collects fault events,
/// runs the work function (or the structural behaviour), and applies the
/// fault effects mechanically.
fn fire(n: &mut NodeRt, queues: &mut [SimQueue], cost: &cg_graph::CostModel, config: &SimConfig) {
    let items_moved: u64 = n.pop_rates.iter().map(|&r| u64::from(r)).sum::<u64>()
        + n.push_rates.iter().map(|&r| u64::from(r)).sum::<u64>();
    let instr = cost.firing_cost(items_moved);
    n.instructions += instr;
    let events = n.injector.advance(instr);

    let faults = partition_events(config.fault_class, &events, &mut n.injector, &mut n.stuck);

    for _ in 0..faults.pre_flips {
        let mut bufs: Vec<&mut Vec<u32>> = n.staged_in.iter_mut().collect();
        flip_random_item(&mut bufs, n.injector.rng_mut());
    }
    let sink_mark = n.sink_buf.len();

    // The compute body.
    match n.kind {
        NodeKind::Source | NodeKind::Filter => {
            let work = n.work.as_mut().expect("validated: work bound");
            work.fire(&n.staged_in, &mut n.staged_out);
        }
        NodeKind::SplitDuplicate => {
            for out in &mut n.staged_out {
                out.extend_from_slice(&n.staged_in[0]);
            }
        }
        NodeKind::SplitRoundRobin => {
            let mut off = 0usize;
            for (port, out) in n.staged_out.iter_mut().enumerate() {
                let take = n.push_rates[port] as usize;
                let end = (off + take).min(n.staged_in[0].len());
                out.extend_from_slice(&n.staged_in[0][off..end]);
                // Short input (itself an upstream error effect): pad the
                // distribution with zeros to keep rates structural.
                out.resize(out.len() + take - (end - off), 0);
                off = end;
            }
        }
        NodeKind::JoinRoundRobin => {
            for inp in &n.staged_in {
                n.staged_out[0].extend_from_slice(inp);
            }
        }
        NodeKind::Sink => {
            for inp in &n.staged_in {
                n.sink_buf.extend_from_slice(inp);
            }
        }
    }

    for _ in 0..faults.post_flips {
        let mut bufs: Vec<&mut Vec<u32>> = n.staged_out.iter_mut().collect();
        if !flip_random_item(&mut bufs, n.injector.rng_mut()) && n.kind == NodeKind::Sink {
            // Sinks have no outputs; the flip lands in the collected data.
            let mut bufs = [&mut n.sink_buf];
            flip_random_item(&mut bufs, n.injector.rng_mut());
        }
    }
    for _ in 0..faults.bursts {
        let mut bufs: Vec<&mut Vec<u32>> = n.staged_out.iter_mut().collect();
        if !burst_flip_random_item(&mut bufs, n.injector.rng_mut()) && n.kind == NodeKind::Sink {
            let mut bufs = [&mut n.sink_buf];
            burst_flip_random_item(&mut bufs, n.injector.rng_mut());
        }
    }
    if let Some(st) = n.stuck {
        // A latched defect distorts every word the core produces.
        for out in &mut n.staged_out {
            for v in out.iter_mut() {
                *v = st.apply(*v);
            }
        }
        for v in n.sink_buf[sink_mark..].iter_mut() {
            *v = st.apply(*v);
        }
    }
    for pert in faults.perturbations {
        apply_perturbation(&mut n.staged_out, pert, n.injector.rng_mut());
    }
    for _ in 0..faults.addressing {
        apply_addressing_fault(n, queues, config);
    }
    for _ in 0..faults.pointer_hits {
        apply_pointer_fault(n, queues);
    }
    for _ in 0..faults.header_hits {
        apply_header_fault(n, queues);
    }
}

/// An addressing error: corrupts a shared queue pointer of a random
/// attached queue (silently fatal when pointers are unprotected — the
/// paper's QME class) or, when no queue is attached or on the local-buffer
/// side of the coin flip, garbles a staged item.
fn apply_addressing_fault(n: &mut NodeRt, queues: &mut [SimQueue], config: &SimConfig) {
    let attached: Vec<EdgeId> = n.in_edges.iter().chain(&n.out_edges).copied().collect();
    let rng = n.injector.rng_mut();
    let hit_queue = !attached.is_empty() && rng.gen::<bool>();
    if hit_queue {
        let e = attached[rng.gen_range(0..attached.len())];
        let which = if rng.gen::<bool>() {
            Which::Head
        } else {
            Which::Tail
        };
        let bit = rng.gen_range(0..20u32); // pointers are small counters
        queues[e.index()].corrupt_shared_pointer(which, bit);
    } else {
        let mut bufs: Vec<&mut Vec<u32>> = n
            .staged_in
            .iter_mut()
            .chain(n.staged_out.iter_mut())
            .collect();
        garble_random_item(&mut bufs, rng);
    }
    // Unprotected-header ablation: addressing errors can also strike
    // in-flight header words, silently changing their ids.
    if let Some(cfg) = config.protection.guard_config() {
        if !cfg.protect_headers && !attached.is_empty() {
            let rng = n.injector.rng_mut();
            let e = attached[rng.gen_range(0..attached.len())];
            let slot_seed = rng.gen::<u32>();
            let bit = rng.gen_range(0..8u32); // low id bits: nearby frames
            queues[e.index()].corrupt_random_header_payload(slot_seed, bit);
        }
    }
}

/// The `PointerCorruption` fault class: every event strikes the shared
/// head/tail pointer of a random attached queue (QME, concentrated).
/// Falls back to garbling a staged item when the node has no queues.
fn apply_pointer_fault(n: &mut NodeRt, queues: &mut [SimQueue]) {
    let attached: Vec<EdgeId> = n.in_edges.iter().chain(&n.out_edges).copied().collect();
    let rng = n.injector.rng_mut();
    if attached.is_empty() {
        let mut bufs: Vec<&mut Vec<u32>> = n
            .staged_in
            .iter_mut()
            .chain(n.staged_out.iter_mut())
            .collect();
        garble_random_item(&mut bufs, rng);
        return;
    }
    let e = attached[rng.gen_range(0..attached.len())];
    let which = if rng.gen::<bool>() {
        Which::Head
    } else {
        Which::Tail
    };
    let bit = rng.gen_range(0..20u32);
    queues[e.index()].corrupt_shared_pointer(which, bit);
}

/// The `HeaderCorruption` fault class: every event flips one or two bits
/// of an in-flight frame-header codeword on a random attached queue,
/// stressing the HI/AM SECDED path. When no header is in flight (or no
/// queue is attached) the event degrades to a plain item flip.
fn apply_header_fault(n: &mut NodeRt, queues: &mut [SimQueue]) {
    let attached: Vec<EdgeId> = n.in_edges.iter().chain(&n.out_edges).copied().collect();
    let rng = n.injector.rng_mut();
    let mut struck = false;
    if !attached.is_empty() {
        let e = attached[rng.gen_range(0..attached.len())];
        let slot_seed = rng.gen::<u32>();
        // Mostly single-bit (ECC corrects); occasionally double-bit
        // (SECDED detects, AM recovers conservatively).
        let bits = if rng.gen::<f64>() < 0.25 { 2 } else { 1 };
        struck = queues[e.index()].corrupt_random_header_codeword(slot_seed, bits);
    }
    if !struck {
        let rng = n.injector.rng_mut();
        let mut bufs: Vec<&mut Vec<u32>> = n
            .staged_in
            .iter_mut()
            .chain(n.staged_out.iter_mut())
            .collect();
        flip_random_item(&mut bufs, rng);
    }
}

/// Watchdog rung 2: forcibly completes the blocking phase of one node
/// with timeout semantics. Phase bookkeeping is left to the next
/// `step()` visit, which finds the phase satisfied and moves on.
fn force_phase(n: &mut NodeRt, queues: &mut [SimQueue]) {
    match n.phase {
        Phase::DrainHeaders | Phase::Finishing => {
            for (port, &e) in n.out_edges.iter().enumerate() {
                let q = &mut queues[e.index()];
                if !n.guard.hi_tick(port, q) {
                    n.guard.hi_force(port, q);
                }
            }
        }
        Phase::PopInputs => {
            for (port, &e) in n.in_edges.iter().enumerate() {
                let need = n.pop_rates[port] as usize;
                while n.staged_in[port].len() < need {
                    let v = n.guard.timeout_pop(port, &mut queues[e.index()]);
                    n.staged_in[port].push(v);
                }
            }
        }
        Phase::PushOutputs => {
            for (port, &e) in n.out_edges.iter().enumerate() {
                while n.out_pos[port] < n.staged_out[port].len() {
                    let v = n.staged_out[port][n.out_pos[port]];
                    n.guard.timeout_push(port, &mut queues[e.index()], v);
                    n.out_pos[port] += 1;
                }
            }
        }
        Phase::Boundary | Phase::Fire | Phase::Done => {}
    }
}

/// Watchdog rung 3: abandons the node's current frame computation.
/// Staged data is dropped and the node skips to its next frame boundary,
/// where the HI/AM machinery re-establishes alignment.
fn abort_frame(n: &mut NodeRt) {
    if matches!(n.phase, Phase::Done | Phase::Finishing | Phase::Boundary) {
        return;
    }
    for buf in &mut n.staged_in {
        buf.clear();
    }
    for (port, buf) in n.staged_out.iter_mut().enumerate() {
        buf.clear();
        n.out_pos[port] = 0;
    }
    let into_frame = n.firings_done % n.reps;
    n.firings_done = (n.firings_done + (n.reps - into_frame)).min(n.total_firings);
    n.phase = Phase::Boundary;
}

/// Watchdog rung 4: discharges the node's remaining frame obligations
/// rather than dropping them. Staged output already produced is flushed
/// with timeout semantics, the balance of the frame's output rate is
/// padded with forced zero pushes (sinks pad their collected data
/// instead), and the node advances to its next boundary. Downstream
/// consumers therefore see a complete — if degraded — frame, which
/// unwedges stalls that aborting alone could not clear.
fn degrade_frame(n: &mut NodeRt, queues: &mut [SimQueue]) {
    if matches!(n.phase, Phase::Done | Phase::Finishing | Phase::Boundary) {
        return;
    }
    let into_frame = n.firings_done % n.reps;
    let owed = n.reps - into_frame;
    // When the node was mid-push, the current firing's data is flushed
    // below and that firing no longer needs padding.
    let inflight_done = u64::from(n.phase == Phase::PushOutputs);
    for (port, &e) in n.out_edges.iter().enumerate() {
        let q = &mut queues[e.index()];
        // A header still pending from the boundary drain must go first so
        // the next frame's insertion finds the port clear.
        if !n.guard.hi_tick(port, q) {
            n.guard.hi_force(port, q);
        }
        while n.out_pos[port] < n.staged_out[port].len() {
            let v = n.staged_out[port][n.out_pos[port]];
            n.guard.timeout_push(port, q, v);
            n.out_pos[port] += 1;
        }
        let pad = (owed - inflight_done) * u64::from(n.push_rates[port]);
        for _ in 0..pad {
            n.guard.timeout_push(port, q, 0);
        }
    }
    if n.kind == NodeKind::Sink {
        let per_firing: u64 = n.pop_rates.iter().map(|&r| u64::from(r)).sum();
        let pad = (owed - inflight_done) * per_firing;
        n.sink_buf.resize(n.sink_buf.len() + pad as usize, 0);
    }
    for buf in &mut n.staged_in {
        buf.clear();
    }
    for (port, buf) in n.staged_out.iter_mut().enumerate() {
        buf.clear();
        n.out_pos[port] = 0;
    }
    n.firings_done = (n.firings_done + owed).min(n.total_firings);
    n.phase = Phase::Boundary;
}

/// Telemetry sampling at a frame commit: high-water occupancy and
/// cumulative ECC totals over the queues this core consumes (queues are
/// attributed to their consumer side, matching `NodeReport`).
fn sample_consumer_edges(n: &NodeRt, queues: &[SimQueue]) -> (u64, u64, u64) {
    let mut occ = 0u64;
    let mut det = 0u64;
    let mut corr = 0u64;
    for &e in &n.in_edges {
        let q = &queues[e.index()];
        occ = occ.max(u64::from(q.occupancy()));
        let ecc = q.stats().ecc;
        det += ecc.detections;
        corr += ecc.corrections;
    }
    (occ, det, corr)
}

/// Per-node progress digest for busy/stall visit classification: node
/// micro-state plus successful-transfer counters on its attached edges
/// (so a visit that only drained a header still counts as busy).
fn node_visit_fingerprint(n: &NodeRt, queues: &[SimQueue]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mix = |acc: u64, v: u64| (acc ^ v).wrapping_mul(FNV_PRIME);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h = mix(h, n.firings_done);
    h = mix(h, n.instructions);
    h = mix(h, phase_rank(n.phase));
    h = mix(h, n.staged_in.iter().map(|b| b.len() as u64).sum());
    h = mix(h, n.out_pos.iter().map(|&p| p as u64).sum());
    for &e in n.in_edges.iter().chain(&n.out_edges) {
        let s = queues[e.index()].stats();
        h = mix(
            h,
            s.item_pushes
                + s.header_pushes
                + s.item_pops
                + s.header_pops
                + s.timeout_pushes
                + s.timeout_pops,
        );
    }
    h
}

/// A cheap digest of all externally observable execution state, compared
/// round over round by the watchdog. Deliberately excludes blocked-attempt
/// counters: spinning on a full/empty queue is not progress.
fn progress_fingerprint(nodes: &[NodeRt], queues: &[SimQueue]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mix = |acc: u64, v: u64| (acc ^ v).wrapping_mul(FNV_PRIME);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for n in nodes {
        h = mix(h, n.firings_done);
        h = mix(h, n.instructions);
        h = mix(h, phase_rank(n.phase));
        h = mix(h, n.staged_in.iter().map(|b| b.len() as u64).sum());
        h = mix(h, n.out_pos.iter().map(|&p| p as u64).sum());
    }
    for q in queues {
        let s = q.stats();
        h = mix(
            h,
            s.item_pushes
                + s.header_pushes
                + s.item_pops
                + s.header_pops
                + s.timeout_pushes
                + s.timeout_pops,
        );
    }
    h
}

fn phase_rank(p: Phase) -> u64 {
    match p {
        Phase::Boundary => 0,
        Phase::DrainHeaders => 1,
        Phase::PopInputs => 2,
        Phase::Fire => 3,
        Phase::PushOutputs => 4,
        Phase::Finishing => 5,
        Phase::Done => 6,
    }
}
