//! Real-time pacing: frame release schedule, deadline/slack accounting,
//! and the run-level SLO verdict.
//!
//! Pacing turns the batch executors into a live media pipeline: a
//! [`PacedSource`] releases frame `f` no earlier than `f × period` on the
//! run's [`Clock`], every frame carries the absolute deadline
//! `f × period + deadline`, and recovery is re-budgeted in *time* — when
//! the remaining slack can no longer cover a checkpoint re-execution the
//! executor skips straight to the degrade rung rather than burning retry
//! budget and blowing the deadline.
//!
//! Ticks live in the clock's unit: microseconds under the threaded
//! executor's wall clock, scheduler rounds under the deterministic
//! executor's virtual clock (which is what keeps paced det runs
//! byte-reproducible — wall time never enters the schedule).

use std::time::Duration;

use cg_telemetry::{Clock, ClockMode, Histogram};

use crate::config::Pacing;

/// Drives a run's frame-release schedule against a [`Clock`].
///
/// One `PacedSource` is shared by every source node of a run (clones of a
/// wall [`Clock`] share their origin, so all workers agree on "now").
#[derive(Debug, Clone)]
pub struct PacedSource {
    pacing: Pacing,
    clock: Clock,
}

impl PacedSource {
    /// A driver for `pacing` reading time from `clock`.
    pub fn new(pacing: Pacing, clock: Clock) -> Self {
        PacedSource { pacing, clock }
    }

    /// The pacing policy being driven.
    pub fn pacing(&self) -> Pacing {
        self.pacing
    }

    /// Current tick of the underlying clock.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Whether 0-based frame `frame` may be released at the current tick.
    /// Always `true` when pacing is off.
    pub fn released(&self, frame: u64) -> bool {
        self.clock.now() >= self.pacing.release(frame)
    }

    /// Absolute deadline tick of frame `frame` (`u64::MAX` when off).
    pub fn deadline(&self, frame: u64) -> u64 {
        self.pacing.deadline_for(frame)
    }

    /// Remaining slack of frame `frame` at the current tick, saturating
    /// at zero once the deadline has passed. `u64::MAX` when pacing is
    /// off (infinite slack).
    pub fn slack(&self, frame: u64) -> u64 {
        let dl = self.pacing.deadline_for(frame);
        if dl == u64::MAX {
            return u64::MAX;
        }
        dl.saturating_sub(self.clock.now())
    }

    /// Whether frame `frame` is already past its deadline ("hopeless"):
    /// any work spent on it cannot land on time, so the overload ladder
    /// degrades it instead of executing it. Never `true` when off.
    pub fn hopeless(&self, frame: u64) -> bool {
        let dl = self.pacing.deadline_for(frame);
        dl != u64::MAX && self.clock.now() >= dl
    }

    /// Blocks (wall clock only) until frame `frame` is released. On the
    /// deterministic virtual clock this must never be called from inside
    /// the scheduler loop — the loop gates source steps on
    /// [`Self::released`] instead — so it returns immediately there.
    pub fn wait_release(&self, frame: u64) {
        if !self.pacing.is_paced() || self.clock.mode() == ClockMode::Deterministic {
            return;
        }
        let release = self.pacing.release(frame);
        loop {
            let now = self.clock.now();
            if now >= release {
                return;
            }
            // Wall ticks are microseconds; sleep the gap (the OS may wake
            // us early, hence the loop).
            std::thread::sleep(Duration::from_micros(release - now));
        }
    }
}

/// Per-run deadline accounting, accumulated at sink frame commits and
/// folded into [`crate::RunReport`] as `pacing`.
///
/// On multi-sink graphs each (sink, frame) commit is one observation, so
/// `frames_on_time + deadline_misses = sinks × frames`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PacingReport {
    /// Release period, in clock ticks.
    pub period: u64,
    /// Per-frame latency budget, in clock ticks.
    pub deadline: u64,
    /// p99 latency objective, in clock ticks.
    pub slo: u64,
    /// Clock unit label: `"us"` (threaded wall clock) or `"rounds"`
    /// (deterministic virtual clock).
    pub unit: &'static str,
    /// Sink frame commits that landed at or before their deadline.
    pub frames_on_time: u64,
    /// Sink frame commits that landed after their deadline.
    pub deadline_misses: u64,
    /// Frames degraded *because of the deadline ladder* (slack could no
    /// longer cover a re-execution, or the frame was already hopeless at
    /// entry), as opposed to degrades after an exhausted retry budget.
    pub degraded_for_deadline: u64,
    /// End-to-end latency (release → sink commit) per frame, in ticks.
    pub latency: Histogram,
    /// Remaining slack at sink commit per frame, in ticks; misses record
    /// zero slack.
    pub slack: Histogram,
}

impl PacingReport {
    /// An empty report carrying the schedule parameters of `pacing`.
    /// `None` when pacing is off.
    pub fn for_pacing(pacing: Pacing, unit: &'static str) -> Option<Self> {
        match pacing {
            Pacing::Off => None,
            Pacing::Paced {
                period,
                deadline,
                slo,
            } => Some(PacingReport {
                period,
                deadline,
                slo,
                unit,
                ..PacingReport::default()
            }),
        }
    }

    /// Records one sink frame commit: the frame was released at
    /// `release`, had absolute deadline `deadline`, and committed at
    /// `now`.
    pub fn record_commit(&mut self, release: u64, deadline: u64, now: u64) {
        let latency = now.saturating_sub(release);
        self.latency.record(latency);
        if now <= deadline {
            self.frames_on_time += 1;
            self.slack.record(deadline - now);
        } else {
            self.deadline_misses += 1;
            self.slack.record(0);
        }
    }

    /// Merges another report's observations (parallel sink workers).
    pub fn merge(&mut self, other: &PacingReport) {
        self.frames_on_time += other.frames_on_time;
        self.deadline_misses += other.deadline_misses;
        self.degraded_for_deadline += other.degraded_for_deadline;
        self.latency.merge(&other.latency);
        self.slack.merge(&other.slack);
    }

    /// Total sink frame commits observed.
    pub fn frames_observed(&self) -> u64 {
        self.frames_on_time + self.deadline_misses
    }

    /// Observed p99 end-to-end latency in ticks (0 when nothing was
    /// observed; upper bucket bound, ≤ 12.5% over the true value).
    pub fn p99_latency(&self) -> u64 {
        if self.latency.is_empty() {
            0
        } else {
            self.latency.quantile(0.99)
        }
    }

    /// The SLO verdict: observed p99 latency at or under the objective.
    /// Vacuously `true` when nothing was observed.
    pub fn slo_met(&self) -> bool {
        self.p99_latency() <= self.slo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paced(period: u64, deadline: u64, slo: u64) -> Pacing {
        Pacing::Paced {
            period,
            deadline,
            slo,
        }
    }

    #[test]
    fn det_clock_release_and_slack() {
        let clock = Clock::new(ClockMode::Deterministic);
        let src = PacedSource::new(paced(10, 25, 20), clock.clone());
        assert!(src.released(0));
        assert!(!src.released(1));
        clock.advance_to(10);
        assert!(src.released(1));
        assert!(!src.released(2));
        // Frame 1: release 10, deadline 35.
        assert_eq!(src.deadline(1), 35);
        assert_eq!(src.slack(1), 25);
        clock.advance_to(35);
        assert_eq!(src.slack(1), 0);
        assert!(src.hopeless(1));
        assert!(!src.hopeless(3));
        // wait_release is a no-op on the virtual clock.
        src.wait_release(4);
    }

    #[test]
    fn off_means_infinite_slack() {
        let src = PacedSource::new(Pacing::Off, Clock::new(ClockMode::Deterministic));
        assert!(src.released(u64::MAX));
        assert_eq!(src.slack(7), u64::MAX);
        assert!(!src.hopeless(7));
        assert_eq!(PacingReport::for_pacing(Pacing::Off, "rounds"), None);
    }

    #[test]
    fn report_accounting_and_verdict() {
        let mut r = PacingReport::for_pacing(paced(10, 25, 30), "rounds").unwrap();
        r.record_commit(0, 25, 20); // on time, latency 20, slack 5
        r.record_commit(10, 35, 40); // miss, latency 30, slack 0
        assert_eq!(r.frames_on_time, 1);
        assert_eq!(r.deadline_misses, 1);
        assert_eq!(r.frames_observed(), 2);
        assert_eq!(r.latency.count(), 2);
        assert_eq!(r.slack.min(), 0);
        assert!(r.p99_latency() >= 30);
        // p99 over {20, 30} lands in the 30 bucket; slo 30's bucket
        // upper bound still satisfies a generous objective…
        let generous = PacingReport {
            slo: 1000,
            ..r.clone()
        };
        assert!(generous.slo_met());
        // …and a 1-tick objective fails.
        let strict = PacingReport {
            slo: 1,
            ..r.clone()
        };
        assert!(!strict.slo_met());
    }

    #[test]
    fn report_merge_sums_everything() {
        let mut a = PacingReport::for_pacing(paced(10, 20, 20), "us").unwrap();
        a.record_commit(0, 20, 10);
        let mut b = PacingReport::for_pacing(paced(10, 20, 20), "us").unwrap();
        b.record_commit(10, 30, 40);
        b.degraded_for_deadline = 2;
        a.merge(&b);
        assert_eq!(a.frames_on_time, 1);
        assert_eq!(a.deadline_misses, 1);
        assert_eq!(a.degraded_for_deadline, 2);
        assert_eq!(a.latency.count(), 2);
    }

    #[test]
    fn wall_clock_wait_release_sleeps_to_schedule() {
        let clock = Clock::new(ClockMode::Wall);
        let src = PacedSource::new(paced(2000, 4000, 4000), clock.clone());
        src.wait_release(0); // immediate
        src.wait_release(1); // ~2 ms in
        assert!(clock.now() >= 2000);
        assert!(src.released(1));
    }
}
