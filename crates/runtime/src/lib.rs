//! # cg-runtime — functional multicore simulator for guarded streaming
//!
//! The execution substrate standing in for the paper's Simics-based
//! 10-core functional simulator (§6). A [`Program`] (stream graph + work
//! functions) runs on simulated cores — one node per core, as the paper's
//! StreamIt cluster backend pins threads — connected by
//! [`commguard::queue::SimQueue`]s and protected according to a
//! [`commguard::Protection`] mode.
//!
//! The simulator is **functional and deterministic**: cores are
//! multiplexed in a fixed round-robin; each firing charges an instruction
//! cost from the node's [`cg_graph::CostModel`]; per-core
//! [`cg_fault::CoreInjector`]s convert the configured MTBE into fault
//! events that strike specific firings and are applied mechanically (bit
//! flips in live data, bounded control-flow perturbation of item counts,
//! addressing errors that can corrupt unprotected queue pointers).
//!
//! PPU-core semantics (Yetim et al., DATE'13) are built in: scope
//! sequencing is authoritative — a thread always executes exactly its
//! scheduled firings in order, and queue operations time out rather than
//! hang — while the *bodies* of firings are error-prone.
//!
//! A second, threaded executor ([`run_parallel`]) runs the same guarded
//! programs with one OS thread per node. It injects the same fault
//! classes from per-core deterministic streams and recovers via
//! frame-level checkpoint/re-execute with a bounded retry budget and
//! graceful degradation (see [`SimConfig::par_faults`],
//! [`SimConfig::par_retry_budget`], [`SimConfig::stall_timeout`]).
//!
//! ```
//! use cg_runtime::{Program, SimConfig, run};
//! use commguard::graph::{GraphBuilder, NodeKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new("double");
//! let src = b.add_node("src", NodeKind::Source);
//! let dbl = b.add_node("dbl", NodeKind::Filter);
//! let snk = b.add_node("snk", NodeKind::Sink);
//! b.connect(src, dbl, 4, 4)?;
//! b.connect(dbl, snk, 4, 4)?;
//! let graph = b.build()?;
//!
//! let mut prog = Program::new(graph);
//! let mut counter = 0u32;
//! prog.set_source(src, move |out| {
//!     for _ in 0..4 { out.push(counter); counter += 1; }
//! });
//! prog.set_filter(dbl, |inp, out| {
//!     for &v in &inp[0] { out[0].push(v * 2); }
//! });
//!
//! let report = run(prog, &SimConfig::error_free(8))?;
//! let sunk = report.sink_output(snk);
//! assert_eq!(sunk.len(), 32);
//! assert_eq!(sunk[3], 6);
//! # Ok(())
//! # }
//! ```

mod config;
mod exec;
mod faults;
mod overhead;
mod pacing;
mod parallel;
mod program;
mod report;
pub mod watchdog;
pub mod work;

pub use cg_telemetry::{TelemetryConfig, TelemetryReport};
pub use cg_trace::{TraceConfig, TraceData};
pub use config::{MemModel, OverheadModel, Pacing, ParFaults, SimConfig};
pub use exec::{check_queue_capacity, run, RunError};
pub use overhead::{estimate_overhead, OverheadEstimate};
pub use pacing::{PacedSource, PacingReport};
pub use parallel::{run_parallel, run_parallel_with, ParTransport};
pub use program::Program;
pub use report::{NodeReport, RunReport};
pub use watchdog::{WatchdogAction, WatchdogConfig, WatchdogStats};
pub use work::{f32s, WorkFn};
