//! The threaded executor against the deterministic one on a real
//! benchmark graph (split-join, rate conversion, stateful filters):
//! error-free outputs must be bit-identical regardless of scheduling.

use cg_runtime::{run, run_parallel, SimConfig};
use commguard::Protection;

#[test]
fn parallel_matches_deterministic_on_beamformer() {
    // Use the beamformer app through the public crate boundary would be a
    // dependency cycle; rebuild an equivalent split-join pipeline here.
    use commguard::graph::{GraphBuilder, NodeKind};
    let build = || {
        let mut b = GraphBuilder::new("par-sj");
        let src = b.add_node("src", NodeKind::Source);
        let split = b.add_node("split", NodeKind::SplitRoundRobin);
        let join = b.add_node("join", NodeKind::JoinRoundRobin);
        let sum = b.add_node("sum", NodeKind::Filter);
        let snk = b.add_node("snk", NodeKind::Sink);
        b.connect(src, split, 4, 4).unwrap();
        let mut chans = Vec::new();
        for i in 0..4 {
            let c = b.add_node(format!("c{i}"), NodeKind::Filter);
            b.connect(split, c, 1, 1).unwrap();
            b.connect(c, join, 1, 1).unwrap();
            chans.push(c);
        }
        b.connect(join, sum, 4, 4).unwrap();
        b.connect(sum, snk, 1, 1).unwrap();
        let g = b.build().unwrap();
        let mut p = cg_runtime::Program::new(g);
        let mut next = 0u32;
        p.set_source(src, move |out| {
            for _ in 0..4 {
                out.push(next % 97);
                next += 1;
            }
        });
        for (i, &c) in chans.iter().enumerate() {
            // Stateful per-channel accumulator, like a FIR history.
            let mut acc = i as u32;
            p.set_filter(c, move |inp, out| {
                acc = acc.wrapping_mul(3).wrapping_add(inp[0][0]);
                out[0].push(acc);
            });
        }
        p.set_filter(sum, |inp, out| {
            out[0].push(inp[0].iter().fold(0u32, |a, &b| a.wrapping_add(b)));
        });
        (p, snk)
    };

    for protection in [Protection::ErrorFree, Protection::commguard()] {
        let cfg = SimConfig {
            protection,
            inject: false,
            ..SimConfig::error_free(300)
        };
        let (p, snk) = build();
        let det = run(p, &cfg).expect("deterministic run");
        let (p, _) = build();
        let par = run_parallel(p, &cfg).expect("parallel run");
        assert!(det.completed && par.completed);
        assert_eq!(
            det.sink_output(snk),
            par.sink_output(snk),
            "{}: outputs must be schedule-independent",
            protection.label()
        );
        assert_eq!(det.sink_output(snk).len(), 300);
    }
}
