//! Seeded stress suite for paced (real-time) execution under faults: the
//! degrade-don't-stall ladder must hold frame cadence on both executors.
//!
//! Covers the robustness acceptance surface of the paced mode:
//!
//! * threaded burst and pointer faults under tight deadlines across 10+
//!   seeds — zero hangs (hard liveness bound), frame-exact sink lengths
//!   (degraded pads allowed, truncation not), header conservation against
//!   a fault-free golden run;
//! * deterministic paced runs are a pure function of (program, config,
//!   seed): bit-identical sinks AND bit-identical deadline accounting
//!   across repeats, because the virtual clock is the round counter;
//! * the deadline ladder pre-empts the watchdog's terminal rung — a frame
//!   degraded for its deadline is never *also* degraded by a racing
//!   stall ladder (per-frame idempotence of the terminal rung).

use std::time::{Duration, Instant};

use cg_fault::{FaultClass, Mtbe};
use cg_graph::{GraphBuilder, NodeId, NodeKind};
use cg_runtime::{run, run_parallel, Pacing, Program, SimConfig};
use commguard::Protection;

const FRAMES: u64 = 24;
const RATE: u32 = 8;
const NODES: u64 = 4;
const RETRY_BUDGET: u32 = 3;

fn program() -> (Program, NodeId) {
    let mut b = GraphBuilder::new("paced-recovery");
    let s = b.add_node("s", NodeKind::Source);
    let f = b.add_node("f", NodeKind::Filter);
    let g = b.add_node("g", NodeKind::Filter);
    let k = b.add_node("k", NodeKind::Sink);
    b.pipeline(&[s, f, g, k], RATE).unwrap();
    let mut p = Program::new(b.build().unwrap());
    let mut next = 0u32;
    p.set_source(s, move |out| {
        for _ in 0..RATE {
            out.push(next);
            next = next.wrapping_add(1);
        }
    });
    p.set_filter(f, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v.rotate_left(3)));
    });
    p.set_filter(g, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v.wrapping_add(0x9e37)));
    });
    (p, k)
}

/// Threaded paced schedule: 200 µs cadence with a 5 ms budget — tight
/// enough that a stalled recovery cannot hide, loose enough that an
/// unloaded CI worker clears it.
fn paced_wall() -> Pacing {
    Pacing::Paced {
        period: 200,
        deadline: 5_000,
        slo: 5_000,
    }
}

fn faulty_paced_cfg(class: FaultClass, seed: u64) -> SimConfig {
    SimConfig {
        fault_class: class,
        par_retry_budget: RETRY_BUDGET,
        ..SimConfig::with_errors(
            FRAMES,
            Protection::commguard(),
            Mtbe::instructions(192),
            seed,
        )
    }
    .pacing(paced_wall())
}

/// Fault-free golden header traffic, from the deterministic executor
/// under the same protection mode.
fn golden_header_pushes() -> u64 {
    let (p, _) = program();
    let cfg = SimConfig {
        protection: Protection::commguard(),
        inject: false,
        ..SimConfig::error_free(FRAMES)
    };
    run(p, &cfg).unwrap().queues.header_pushes
}

/// The headline paced sweep: 12 seeds of threaded burst faults under the
/// tight schedule must all complete inside a hard liveness bound, keep
/// the sink frame-exact, conserve golden header traffic, and account for
/// every frame in the deadline report.
#[test]
fn paced_burst_faults_recover_across_seeds() {
    let golden_headers = golden_header_pushes();
    let mut total_faults = 0u64;
    for seed in 1..=12u64 {
        let (p, sink) = program();
        let cfg = faulty_paced_cfg(FaultClass::Burst, seed);
        let start = Instant::now();
        let report = run_parallel(p, &cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // Liveness: pacing floor (FRAMES × period) plus the recovery
        // worst case — every frame burning its stall-timeout-bounded
        // retry budget on every core.
        let bound = Duration::from_micros(FRAMES * 200)
            + cfg.stall_timeout
                * u32::try_from((u64::from(RETRY_BUDGET) + 2) * FRAMES * NODES).unwrap();
        assert!(
            start.elapsed() < bound,
            "seed {seed}: run exceeded the liveness bound ({:?})",
            start.elapsed()
        );
        assert!(report.completed, "seed {seed}: did not complete");
        assert_eq!(
            report.sink_output(sink).len(),
            (FRAMES * u64::from(RATE)) as usize,
            "seed {seed}: sink length must stay frame-exact (pads yes, truncation no)"
        );
        assert_eq!(
            report.queues.header_pushes, golden_headers,
            "seed {seed}: header conservation violated"
        );
        let pace = report
            .pacing
            .as_ref()
            .unwrap_or_else(|| panic!("seed {seed}: paced run must report pacing"));
        assert_eq!(
            pace.frames_observed(),
            FRAMES,
            "seed {seed}: every frame must reach a deadline verdict"
        );
        assert_eq!(pace.unit, "us");
        total_faults += report.total_faults().total();
    }
    assert!(total_faults > 0, "the sweep must actually inject faults");
}

/// Pointer corruption against unprotected shared queues, paced: the
/// nastiest liveness case must still hold cadence — terminate promptly
/// with a frame-exact sink, never hang, never error.
#[test]
fn paced_pointer_chaos_still_terminates() {
    for seed in [3u64, 11, 27] {
        let (p, sink) = program();
        let cfg = SimConfig {
            fault_class: FaultClass::PointerCorruption,
            par_retry_budget: 1,
            ..SimConfig::with_errors(
                8,
                Protection::PpuUnprotectedQueue,
                Mtbe::instructions(192),
                seed,
            )
        }
        .pacing(paced_wall());
        let start = Instant::now();
        let report = run_parallel(p, &cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(report.completed, "seed {seed}");
        assert_eq!(
            report.sink_output(sink).len(),
            (8 * u64::from(RATE)) as usize
        );
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "seed {seed}: liveness bound exceeded"
        );
        assert_eq!(report.pacing.as_ref().unwrap().frames_observed(), 8);
    }
}

/// Error-free deterministic pacing with a generous budget: the schedule
/// stretches the run (sources idle between releases) but the sink output
/// is bit-identical to the unpaced run, every frame lands on time, and
/// the SLO verdict passes.
#[test]
fn det_paced_matches_unpaced_sink_when_deadline_is_generous() {
    let (p, sink) = program();
    let golden = run(p, &SimConfig::error_free(FRAMES)).unwrap();

    let (p, _) = program();
    let cfg = SimConfig::error_free(FRAMES).pacing(Pacing::Paced {
        period: 16,
        deadline: 64,
        slo: 64,
    });
    let paced = run(p, &cfg).unwrap();
    assert!(paced.completed);
    assert_eq!(
        paced.sink_output(sink),
        golden.sink_output(sink),
        "pacing must not change error-free output"
    );
    // The release schedule actually gated the sources: the last frame
    // cannot start before its release tick.
    assert!(paced.rounds >= (FRAMES - 1) * 16);
    let pace = paced.pacing.as_ref().unwrap();
    assert_eq!(pace.unit, "rounds");
    assert_eq!(pace.frames_observed(), FRAMES);
    assert_eq!(pace.deadline_misses, 0);
    assert_eq!(pace.degraded_for_deadline, 0);
    assert!(pace.slo_met());
    // Unpaced runs carry no pacing section at all.
    assert!(golden.pacing.is_none());
}

/// Deterministic paced runs are byte-reproducible: same (program,
/// config, seed) twice — faults, deadline degrades and all — must agree
/// on the sink bytes, the round count, and the entire deadline report
/// (histograms included).
#[test]
fn det_paced_is_bit_identical_across_repeats() {
    let run_once = |seed: u64| {
        let (p, sink) = program();
        let cfg = SimConfig::with_errors(
            FRAMES,
            Protection::commguard(),
            Mtbe::instructions(256),
            seed,
        )
        .pacing(Pacing::Paced {
            period: 8,
            deadline: 24,
            slo: 24,
        });
        let r = run(p, &cfg).unwrap();
        (r.sink_output(sink).to_vec(), r.rounds, r.pacing.clone())
    };
    for seed in [1u64, 7, 13, 29, 71] {
        let a = run_once(seed);
        let b = run_once(seed);
        assert_eq!(a, b, "seed {seed}: paced det run must be reproducible");
        assert!(a.2.is_some(), "seed {seed}: pacing report missing");
    }
}

/// Tight deterministic deadlines under burst faults: overdue frames are
/// discharged by the deadline ladder (degrade, never stall), the sink
/// stays frame-exact, and the watchdog's terminal rung never double-fires
/// on a frame the deadline ladder already degraded — the deadline pass
/// resets the stall episode, so `frame_degrades` stays at zero while
/// `degraded_for_deadline` does the work.
#[test]
fn det_deadline_ladder_preempts_watchdog_terminal_rung() {
    let mut any_degraded = false;
    for seed in [2u64, 9, 17, 23, 31] {
        let (p, sink) = program();
        let cfg = SimConfig::with_errors(
            FRAMES,
            Protection::commguard(),
            Mtbe::instructions(128),
            seed,
        )
        .pacing(Pacing::Paced {
            // A 2-round budget sits below the pipeline's intrinsic
            // latency, so frames are still in flight at their deadline
            // even when the deadline-critical port arming forces
            // transfers — the hard degrade rung must discharge them.
            period: 4,
            deadline: 2,
            slo: 2,
        });
        let report = run(p, &cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(report.completed, "seed {seed}: paced det run must complete");
        assert_eq!(
            report.sink_output(sink).len(),
            (FRAMES * u64::from(RATE)) as usize,
            "seed {seed}: degraded frames pad, they never truncate"
        );
        let pace = report.pacing.as_ref().unwrap();
        assert_eq!(pace.frames_observed(), FRAMES, "seed {seed}");
        any_degraded |= pace.degraded_for_deadline > 0;
        assert_eq!(
            report.watchdog.frame_degrades, 0,
            "seed {seed}: watchdog terminal rung must not race the deadline ladder"
        );
    }
    assert!(
        any_degraded,
        "a 2-round budget under burst faults must trip the deadline ladder somewhere"
    );
}
