//! Determinism and acceptance guarantees of the metrics plane (ISSUE 8):
//! identical seed + config must yield byte-identical telemetry snapshots
//! on the deterministic executor, enabling telemetry must not perturb
//! execution at all, and the guarded threaded pipeline must deliver the
//! full observability contract (snapshots per frame, attribution summing
//! to 100%, valid Prometheus/JSONL exports).

use std::time::Duration;

use cg_fault::Mtbe;
use cg_runtime::{run, run_parallel_with, ParTransport, Program, SimConfig, TelemetryConfig};
use cg_telemetry::{from_jsonl, parse_prometheus, to_jsonl, to_prometheus};
use commguard::graph::{GraphBuilder, NodeId, NodeKind};
use commguard::Protection;

fn program() -> Program {
    let mut b = GraphBuilder::new("telem");
    let s = b.add_node("s", NodeKind::Source);
    let f = b.add_node("f", NodeKind::Filter);
    let k = b.add_node("k", NodeKind::Sink);
    b.pipeline(&[s, f, k], 8).unwrap();
    let graph = b.build().unwrap();
    let mut p = Program::new(graph);
    let mut next = 0u32;
    p.set_source(s, move |out| {
        for _ in 0..8 {
            out.push(next);
            next = next.wrapping_add(1);
        }
    });
    p.set_filter(f, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v.wrapping_mul(3)));
    });
    p
}

fn faulty_config(seed: u64) -> SimConfig {
    SimConfig::with_errors(40, Protection::commguard(), Mtbe::instructions(700), seed)
}

/// A guarded 4-stage pipeline for the threaded acceptance run.
fn pipeline4() -> (Program, NodeId) {
    let mut b = GraphBuilder::new("pipeline-4");
    let ids: Vec<NodeId> = (0..4)
        .map(|i| {
            let kind = match i {
                0 => NodeKind::Source,
                3 => NodeKind::Sink,
                _ => NodeKind::Filter,
            };
            b.add_node(format!("n{i}"), kind)
        })
        .collect();
    b.pipeline(&ids, 16).unwrap();
    let mut p = Program::new(b.build().unwrap());
    let mut next = 0u32;
    p.set_source(ids[0], move |out| {
        for _ in 0..16 {
            out.push(next);
            next = next.wrapping_add(1);
        }
    });
    for &id in &ids[1..3] {
        p.set_filter(id, |inp, out| {
            out[0].extend(inp[0].iter().map(|&v| v.wrapping_mul(0x9E37_79B1)));
        });
    }
    (p, ids[3])
}

#[test]
fn ten_seeds_yield_byte_identical_snapshots() {
    for seed in 1..=10u64 {
        let snapshot = || {
            let cfg = faulty_config(seed).telemetry(TelemetryConfig::enabled());
            let report = run(program(), &cfg).unwrap();
            let t = report.telemetry.expect("telemetry was enabled");
            // Every core commits one frame snapshot per completed frame.
            for node in &t.nodes {
                let rows = t.frames.iter().filter(|f| f.core == node.core).count() as u64;
                assert_eq!(rows, node.frames, "seed {seed}: one snapshot per frame");
            }
            to_jsonl(&t)
        };
        let a = snapshot();
        let b = snapshot();
        assert_eq!(a, b, "seed {seed}: same seed must snapshot identically");
        assert!(!a.is_empty());
    }
}

#[test]
fn different_seeds_yield_different_snapshots() {
    let snapshot = |seed| {
        let cfg = faulty_config(seed).telemetry(TelemetryConfig::enabled());
        to_jsonl(&run(program(), &cfg).unwrap().telemetry.expect("enabled"))
    };
    assert_ne!(snapshot(11), snapshot(12));
}

#[test]
fn telemetry_does_not_perturb_execution() {
    let run_with = |telemetry| run(program(), &faulty_config(11).telemetry(telemetry)).unwrap();
    let off = run_with(TelemetryConfig::Off);
    let on = run_with(TelemetryConfig::enabled());
    let dense = run_with(TelemetryConfig::Enabled { interval: 1 });

    assert!(off.telemetry.is_none());
    for probed in [&on, &dense] {
        assert!(probed.telemetry.is_some());
        assert_eq!(probed.rounds, off.rounds);
        assert_eq!(probed.completed, off.completed);
        assert_eq!(probed.sinks, off.sinks);
        assert_eq!(probed.queues, off.queues);
        assert_eq!(probed.realignment_episodes, off.realignment_episodes);
        for (a, b) in probed.nodes.iter().zip(&off.nodes) {
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.firings, b.firings);
            assert_eq!(a.subops, b.subops);
            assert_eq!(a.faults, b.faults);
            assert_eq!(a.timeouts, b.timeouts);
            assert_eq!(a.max_queue_occupancy, b.max_queue_occupancy);
        }
    }
}

#[test]
fn det_snapshots_reconcile_with_the_report() {
    let cfg = faulty_config(7).telemetry(TelemetryConfig::enabled());
    let report = run(program(), &cfg).unwrap();
    let t = report.telemetry.as_ref().expect("enabled");
    assert_eq!(t.clock_unit, "rounds");
    assert_eq!(t.run.frames, cfg.frames);
    assert_eq!(t.run.faults_injected, report.total_faults().total());
    assert_eq!(t.run.ecc_detected, report.queues.ecc.detections);
    assert_eq!(t.run.realignment_episodes, report.realignment_episodes);
    // Per-node occupancy high-water agrees with the queue stats the
    // report derives it from (consumer-side attribution in both).
    for (node, telem) in report.nodes.iter().zip(&t.nodes) {
        assert_eq!(node.name, telem.name);
        assert!(telem.max_queue_occupancy <= node.max_queue_occupancy);
    }
}

#[test]
fn guarded_threaded_pipeline_meets_the_observability_contract() {
    let (p, _snk) = pipeline4();
    let frames = 24u64;
    let cfg = SimConfig {
        protection: Protection::commguard(),
        inject: false,
        stall_timeout: Duration::from_secs(10),
        ..SimConfig::error_free(frames)
    }
    .telemetry(TelemetryConfig::enabled());
    let report = run_parallel_with(p, &cfg, ParTransport::LockFree).unwrap();
    assert!(report.completed);
    let t = report.telemetry.expect("telemetry was enabled");
    assert_eq!(t.clock_unit, "us");

    // At least one snapshot per frame, per core.
    assert_eq!(t.nodes.len(), 4);
    for node in &t.nodes {
        assert_eq!(node.frames, frames, "{}: every frame commits", node.name);
        let rows = t.frames.iter().filter(|f| f.core == node.core).count() as u64;
        assert!(rows >= frames, "{}: >=1 snapshot per frame", node.name);
        // Busy + wait attribution covers the core's whole accounted time.
        if node.total() > 0 {
            let pct = node.busy_pct() + node.wait_pct();
            assert!(
                (pct - 100.0).abs() < 1e-6,
                "{}: busy% + wait% = {pct}, expected 100",
                node.name
            );
        }
        // Percentiles come from a real histogram: ordered and bounded.
        let p50 = node.latency.quantile(0.50);
        let p99 = node.latency.quantile(0.99);
        assert!(p50 <= p99 && p99 <= node.latency.max());
    }

    // Both exports are machine-valid and the JSONL round-trips exactly.
    let prom = to_prometheus(&t);
    let samples = parse_prometheus(&prom).expect("prometheus output must scrape");
    assert!(samples
        .iter()
        .any(|s| s.name == "cg_frame_latency_ticks_bucket"));
    let jsonl = to_jsonl(&t);
    let back = from_jsonl(&jsonl).expect("jsonl parses back");
    assert_eq!(to_jsonl(&back), jsonl, "jsonl round-trip is byte-exact");
}

#[test]
fn threaded_faulty_run_reports_recovery_in_telemetry() {
    let (p, _snk) = pipeline4();
    let cfg = SimConfig {
        queue_capacity: 16,
        stall_timeout: Duration::from_millis(150),
        ..SimConfig::with_errors(16, Protection::commguard(), Mtbe::instructions(512), 3)
    }
    .telemetry(TelemetryConfig::enabled());
    let report = run_parallel_with(p, &cfg, ParTransport::LockFree).unwrap();
    let t = report.telemetry.as_ref().expect("enabled");
    assert_eq!(t.run.faults_injected, report.total_faults().total());
    assert_eq!(t.run.frame_retries, report.watchdog.frame_retries);
    assert_eq!(t.run.wd_frame_degrades, report.watchdog.frame_degrades);
    // Per-frame retry counts in the snapshots sum to the run total.
    let snapshot_retries: u64 = t.frames.iter().map(|f| f.retries).sum();
    assert_eq!(snapshot_retries, report.watchdog.frame_retries);
}
