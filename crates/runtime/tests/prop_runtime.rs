//! Property tests over the executor: random rate-converting pipelines,
//! random error rates — guarded runs always complete with structurally
//! exact output, and error-free runs are bit-exact.

use cg_fault::{EffectModel, Mtbe};
use cg_runtime::{run, Program, SimConfig};
use commguard::graph::{GraphBuilder, NodeId, NodeKind, StreamGraph};
use commguard::Protection;
use proptest::prelude::*;

/// Builds a random pipeline `src → f1 → … → fk → sink` with the given
/// per-hop (push, pop) rates.
fn pipeline(rates: &[(u32, u32)]) -> (StreamGraph, Vec<NodeId>) {
    let mut b = GraphBuilder::new("prop-pipeline");
    let n = rates.len() + 1;
    let mut ids = vec![b.add_node("src", NodeKind::Source)];
    for i in 1..n - 1 {
        ids.push(b.add_node(format!("f{i}"), NodeKind::Filter));
    }
    ids.push(b.add_node("snk", NodeKind::Sink));
    for (i, &(push, pop)) in rates.iter().enumerate() {
        b.connect(ids[i], ids[i + 1], push, pop).unwrap();
    }
    (b.build().unwrap(), ids)
}

/// Binds simple deterministic work: the source counts up; filters add a
/// stage-specific constant and reshape to their output rate.
fn bind(graph: StreamGraph, ids: &[NodeId], rates: &[(u32, u32)]) -> Program {
    let mut p = Program::new(graph);
    let src_push = rates[0].0;
    let mut next = 0u32;
    p.set_source(ids[0], move |out| {
        for _ in 0..src_push {
            out.push(next);
            next = next.wrapping_add(1);
        }
    });
    for (i, id) in ids.iter().enumerate().skip(1).take(ids.len() - 2) {
        let (push, _pop) = rates[i];
        let salt = i as u32 * 1000;
        p.set_filter(*id, move |inp, out| {
            // Reshape: fold the popped items into `push` outputs.
            let sum: u32 = inp[0].iter().fold(0, |a, &b| a.wrapping_add(b));
            for k in 0..push {
                let v = inp[0].get(k as usize).copied().unwrap_or(sum);
                out[0].push(v.wrapping_add(salt));
            }
        });
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Guarded execution under random error rates: always completes,
    /// sink item count is structurally exact, loss accounting balances.
    #[test]
    fn guarded_random_pipelines_complete(
        rates in prop::collection::vec((1u32..6, 1u32..6), 1..5),
        frames in 4u64..40,
        mtbe_k in 1u64..64,
        seed in 0u64..1000,
    ) {
        let (graph, ids) = pipeline(&rates);
        let sched = graph.schedule().unwrap();
        let sink = *ids.last().unwrap();
        let expected_items =
            frames * sched.repetitions(sink) * u64::from(rates.last().unwrap().1);
        let p = bind(graph, &ids, &rates);
        let cfg = SimConfig {
            protection: Protection::commguard(),
            inject: true,
            mtbe: Mtbe::kilo_instructions(mtbe_k),
            effect_model: EffectModel::calibrated(),
            seed,
            max_rounds: 5_000_000,
            ..SimConfig::error_free(frames)
        };
        let report = run(p, &cfg).expect("run starts");
        prop_assert!(report.completed, "must never hang");
        prop_assert_eq!(
            report.sink_output(sink).len() as u64,
            expected_items,
            "sink item count must stay structural"
        );
        let sub = report.total_subops();
        // Padded items were delivered; discarded were dropped; both are
        // consistent with the queue traffic (no invented data).
        prop_assert!(sub.accepted_items + sub.padded_items >= expected_items);
    }

    /// Error-free runs are identical with and without guards, for any
    /// pipeline shape.
    #[test]
    fn guards_transparent_for_random_pipelines(
        rates in prop::collection::vec((1u32..6, 1u32..6), 1..5),
        frames in 1u64..20,
    ) {
        let output = |protection: Protection| {
            let (graph, ids) = pipeline(&rates);
            let sink = *ids.last().unwrap();
            let p = bind(graph, &ids, &rates);
            let cfg = SimConfig {
                protection,
                ..SimConfig::error_free(frames)
            };
            let r = run(p, &cfg).expect("runs");
            assert!(r.completed);
            r.sink_output(sink).to_vec()
        };
        prop_assert_eq!(
            output(Protection::ErrorFree),
            output(Protection::commguard())
        );
    }
}
