//! Determinism guarantees of the event-trace layer (ISSUE 3):
//! identical seed + config must yield a byte-identical trace, and
//! enabling tracing must not perturb execution at all.

use cg_fault::Mtbe;
use cg_runtime::{run, Program, SimConfig, TraceConfig};
use cg_trace::text;
use commguard::graph::{GraphBuilder, NodeKind};
use commguard::Protection;

fn program() -> Program {
    let mut b = GraphBuilder::new("det");
    let s = b.add_node("s", NodeKind::Source);
    let f = b.add_node("f", NodeKind::Filter);
    let k = b.add_node("k", NodeKind::Sink);
    b.pipeline(&[s, f, k], 8).unwrap();
    let graph = b.build().unwrap();
    let mut p = Program::new(graph);
    let mut next = 0u32;
    p.set_source(s, move |out| {
        for _ in 0..8 {
            out.push(next);
            next = next.wrapping_add(1);
        }
    });
    p.set_filter(f, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v.wrapping_mul(3)));
    });
    p
}

fn faulty_config() -> SimConfig {
    SimConfig::with_errors(40, Protection::commguard(), Mtbe::instructions(700), 11)
}

#[test]
fn same_seed_yields_byte_identical_trace() {
    let trace = |()| {
        let report = run(program(), &faulty_config().trace(TraceConfig::ring())).unwrap();
        let data = report.trace.expect("tracing was enabled");
        assert!(!data.records.is_empty(), "a faulty run must trace events");
        text::to_text(&data.records)
    };
    let a = trace(());
    let b = trace(());
    assert_eq!(a, b, "identical seed + config must replay identically");
}

#[test]
fn different_seeds_yield_different_traces() {
    let trace = |seed| {
        let cfg = faulty_config().seed(seed).trace(TraceConfig::ring());
        let report = run(program(), &cfg).unwrap();
        text::to_text(&report.trace.expect("enabled").records)
    };
    assert_ne!(trace(11), trace(12));
}

#[test]
fn tracing_does_not_perturb_execution() {
    let run_with = |trace| run(program(), &faulty_config().trace(trace)).unwrap();
    let off = run_with(TraceConfig::Off);
    let ring = run_with(TraceConfig::ring());
    let counting = run_with(TraceConfig::Counting);

    assert!(off.trace.is_none());
    for traced in [&ring, &counting] {
        assert!(traced.trace.is_some());
        assert_eq!(traced.rounds, off.rounds);
        assert_eq!(traced.completed, off.completed);
        assert_eq!(traced.sinks, off.sinks);
        assert_eq!(traced.queues, off.queues);
        assert_eq!(traced.realignment_episodes, off.realignment_episodes);
        assert_eq!(traced.max_queue_occupancy(), off.max_queue_occupancy());
        for (a, b) in traced.nodes.iter().zip(&off.nodes) {
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.firings, b.firings);
            assert_eq!(a.subops, b.subops);
            assert_eq!(a.faults, b.faults);
            assert_eq!(a.timeouts, b.timeouts);
            assert_eq!(a.max_queue_occupancy, b.max_queue_occupancy);
        }
    }
}

#[test]
fn trace_counts_cross_check_report_figures() {
    let report = run(program(), &faulty_config().trace(TraceConfig::Counting)).unwrap();
    let counts = report.trace.as_ref().expect("enabled").counts.clone();
    assert_eq!(
        counts.realign_episodes(),
        report.realignment_episodes,
        "trace-side episode count must agree with the subop counters"
    );
    assert_eq!(counts.faults(), report.total_faults().total());
    assert_eq!(
        u64::from(counts.max_queue_depth),
        report.max_queue_occupancy(),
        "trace-side high-water mark must agree with queue stats"
    );
}

#[test]
fn realignment_episodes_match_subop_counters() {
    let report = run(program(), &faulty_config()).unwrap();
    let expect: u64 = report
        .nodes
        .iter()
        .map(|n| n.subops.pad_events + n.subops.discard_events)
        .sum();
    assert_eq!(report.realignment_episodes, expect);
    assert!(
        report.realignment_episodes > 0,
        "this MTBE must force at least one realignment"
    );
}
