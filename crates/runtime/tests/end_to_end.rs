//! End-to-end executor tests across the paper's protection configurations.

use cg_fault::{EffectModel, Mtbe};
use cg_runtime::{run, Program, SimConfig};
use commguard::graph::{CostModel, GraphBuilder, NodeId, NodeKind, StreamGraph};
use commguard::Protection;

/// A 5-node pipeline with a split-join, exercising every structural node
/// kind: src → split(dup) → {a, b} → join → sink.
fn splitjoin_graph() -> (StreamGraph, NodeId, NodeId) {
    let mut b = GraphBuilder::new("sj-test");
    let src = b.add_node("src", NodeKind::Source);
    let a = b.add_node("a", NodeKind::Filter);
    let c = b.add_node("c", NodeKind::Filter);
    let post = b.add_node("post", NodeKind::Filter);
    let snk = b.add_node("snk", NodeKind::Sink);
    b.split_join_duplicate("sj", src, &[a, c], post, 4, 4)
        .unwrap();
    b.connect(post, snk, 8, 8).unwrap();
    (b.build().unwrap(), src, snk)
}

fn splitjoin_program() -> (Program, NodeId) {
    let (g, src, snk) = splitjoin_graph();
    let mut p = Program::new(g);
    let mut next = 0u32;
    p.set_source(src, move |out| {
        for _ in 0..4 {
            out.push(next);
            next += 1;
        }
    });
    let pg = p.graph();
    let a = pg.node_by_name("a").unwrap();
    let c = pg.node_by_name("c").unwrap();
    let post = pg.node_by_name("post").unwrap();
    p.set_filter(a, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v + 1000));
    });
    p.set_filter(c, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v + 2000));
    });
    p.set_filter(post, |inp, out| {
        out[0].extend(inp[0].iter().copied());
    });
    (p, snk)
}

/// Expected sink stream for `frames` error-free iterations.
fn expected(frames: u64) -> Vec<u32> {
    let mut v = Vec::new();
    for f in 0..frames as u32 {
        let base = f * 4;
        // Join concatenates branch a then branch c, 4 items each.
        v.extend((0..4).map(|i| base + i + 1000));
        v.extend((0..4).map(|i| base + i + 2000));
    }
    v
}

#[test]
fn error_free_run_is_exact() {
    let (p, snk) = splitjoin_program();
    let report = run(p, &SimConfig::error_free(10)).unwrap();
    assert!(report.completed);
    assert_eq!(report.sink_output(snk), expected(10).as_slice());
    assert_eq!(report.total_timeouts(), 0, "paper: no timeouts error-free");
    assert_eq!(report.total_faults().total(), 0);
    assert_eq!(report.loss_ratio(), 0.0);
}

#[test]
fn error_free_commguard_run_is_exact_with_headers() {
    let (p, snk) = splitjoin_program();
    let cfg = SimConfig {
        protection: Protection::commguard(),
        ..SimConfig::error_free(10)
    };
    let report = run(p, &cfg).unwrap();
    assert!(report.completed);
    assert_eq!(report.sink_output(snk), expected(10).as_slice());
    // Headers: every node with outputs inserts 10 frame headers + 1 end
    // header per out-edge; the graph has 7 edges.
    assert_eq!(report.queues.header_pushes, 7 * 11);
    assert_eq!(report.loss_ratio(), 0.0);
    assert!(report.total_subops().total_subops() > 0);
}

#[test]
fn commguard_survives_extreme_control_errors() {
    let (p, snk) = splitjoin_program();
    let cfg = SimConfig {
        protection: Protection::commguard(),
        inject: true,
        effect_model: EffectModel::control_only(),
        mtbe: Mtbe::instructions(300),
        max_rounds: 2_000_000,
        ..SimConfig::error_free(50)
    };
    let report = run(p, &cfg).unwrap();
    assert!(report.completed, "CommGuard must keep the app running");
    // The sink receives exactly its structural item count: alignment held.
    assert_eq!(report.sink_output(snk).len(), 50 * 8);
    assert!(report.total_faults().control > 0, "faults did fire");
    let sub = report.total_subops();
    assert!(
        sub.padded_items + sub.discarded_items > 0,
        "realignment actually happened"
    );
}

#[test]
fn reliable_queue_without_guard_misaligns_but_progresses() {
    let (p, snk) = splitjoin_program();
    let cfg = SimConfig {
        protection: Protection::PpuReliableQueue,
        inject: true,
        effect_model: EffectModel::control_only(),
        mtbe: Mtbe::instructions(300),
        timeout_rounds: 64,
        max_rounds: 2_000_000,
        ..SimConfig::error_free(50)
    };
    let report = run(p, &cfg).unwrap();
    assert!(report.completed, "timeouts must prevent hangs");
    // The sink still collects its structural count (timeouts fabricate),
    // but the content has drifted: compare against the clean stream.
    let got = report.sink_output(snk);
    let want = expected(50);
    assert_eq!(got.len(), want.len());
    let wrong = got.iter().zip(&want).filter(|(a, b)| a != b).count();
    assert!(
        wrong > want.len() / 10,
        "expected heavy misalignment, got {wrong}/{} wrong",
        want.len()
    );
}

#[test]
fn unprotected_queue_collapses_but_progresses() {
    let (p, snk) = splitjoin_program();
    let cfg = SimConfig {
        protection: Protection::PpuUnprotectedQueue,
        inject: true,
        mtbe: Mtbe::instructions(200),
        timeout_rounds: 64,
        max_rounds: 2_000_000,
        ..SimConfig::error_free(50)
    };
    let report = run(p, &cfg).unwrap();
    assert!(report.completed, "timeouts must prevent hangs");
    assert_eq!(report.sink_output(snk).len(), 50 * 8);
}

#[test]
fn same_seed_same_result() {
    let mk = |seed| {
        let (p, snk) = splitjoin_program();
        let cfg = SimConfig {
            protection: Protection::commguard(),
            inject: true,
            mtbe: Mtbe::instructions(500),
            seed,
            max_rounds: 2_000_000,
            ..SimConfig::error_free(20)
        };
        let r = run(p, &cfg).unwrap();
        (r.sink_output(snk).to_vec(), r.total_instructions())
    };
    assert_eq!(mk(42), mk(42));
    assert_ne!(mk(42).0, mk(43).0);
}

#[test]
fn guarded_quality_beats_unguarded_under_control_errors() {
    // Measure how many sink words survive exactly; CommGuard should keep
    // strictly more of the stream intact than the reliable-queue baseline
    // at the same error rate and seeds.
    let run_mode = |protection, seed| {
        let (p, snk) = splitjoin_program();
        let cfg = SimConfig {
            protection,
            inject: true,
            effect_model: EffectModel::control_only(),
            mtbe: Mtbe::instructions(500),
            seed,
            timeout_rounds: 64,
            max_rounds: 2_000_000,
            ..SimConfig::error_free(60)
        };
        let r = run(p, &cfg).unwrap();
        let want = expected(60);
        let got = r.sink_output(snk);
        got.iter().zip(&want).filter(|(a, b)| a == b).count() as f64 / want.len() as f64
    };
    let mut guard_total = 0.0;
    let mut base_total = 0.0;
    for seed in 0..5 {
        guard_total += run_mode(Protection::commguard(), seed);
        base_total += run_mode(Protection::PpuReliableQueue, seed);
    }
    assert!(
        guard_total > base_total,
        "CommGuard {guard_total:.2} should beat baseline {base_total:.2}"
    );
}

#[test]
fn rate_converting_pipeline_runs() {
    // Rates 2→3 and 5→4 exercise non-unit repetition vectors end to end.
    let mut b = GraphBuilder::new("rc");
    let s = b.add_node_with_cost("s", NodeKind::Source, CostModel::new(20, 3));
    let f = b.add_node("f", NodeKind::Filter);
    let k = b.add_node("k", NodeKind::Sink);
    b.connect(s, f, 2, 3).unwrap();
    b.connect(f, k, 5, 4).unwrap();
    let g = b.build().unwrap();
    // reps = (6, 4, 5): per frame, source emits 12 items, sink gets 20...
    // no: f fires 4 times x5 push = 20, sink pops 4x5=20. Source 6x2=12?
    // Balance: 6*2 = 4*3 ✓, 4*5 = 5*4 ✓.
    let mut p = Program::new(g);
    let mut next = 0u32;
    p.set_source(s, move |out| {
        for _ in 0..2 {
            out.push(next);
            next += 1;
        }
    });
    p.set_filter(f, |inp, out| {
        // 3 in → 5 out: emit inputs plus two interpolated values.
        let v = &inp[0];
        out[0].extend([v[0], v[1], v[2], v[0] + v[2], v[1] * 2]);
    });
    let report = run(p, &SimConfig::error_free(7)).unwrap();
    assert!(report.completed);
    let sink_id = NodeId::from_index(2);
    assert_eq!(report.sink_output(sink_id).len(), 7 * 20);
}

#[test]
fn capacity_precheck_names_offending_edge() {
    // The splitjoin's hot edge (join→post) carries 8 items per iteration
    // plus header slack; capacity 8 must be rejected before any work
    // runs, on both executors, naming the edge.
    for threaded in [false, true] {
        let (p, _) = splitjoin_program();
        let cfg = SimConfig {
            queue_capacity: 8,
            ..SimConfig::error_free(2)
        };
        let res = if threaded {
            cg_runtime::run_parallel(p, &cfg)
        } else {
            run(p, &cfg)
        };
        match res {
            Err(cg_runtime::RunError::CapacityExceeded {
                edge,
                demand,
                capacity,
            }) => {
                assert_eq!(capacity, 8);
                assert!(demand > 8, "demand {demand}");
                assert!(edge.contains('→'), "edge label: {edge}");
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
    }
}

#[test]
fn capacity_precheck_exempts_pure_chains() {
    // Chains schedule at any capacity via backpressure; a capacity-8
    // pipeline moving 16 items per frame must still run exactly.
    let mut b = GraphBuilder::new("tight-chain");
    let s = b.add_node("s", NodeKind::Source);
    let f = b.add_node("f", NodeKind::Filter);
    let k = b.add_node("k", NodeKind::Sink);
    b.pipeline(&[s, f, k], 16).unwrap();
    let g = b.build().unwrap();
    let mut p = Program::new(g);
    let mut next = 0u32;
    p.set_source(s, move |out| {
        for _ in 0..16 {
            out.push(next);
            next += 1;
        }
    });
    p.set_filter(f, |inp, out| out[0].extend(inp[0].iter().copied()));
    let cfg = SimConfig {
        queue_capacity: 8,
        ..SimConfig::error_free(3)
    };
    let report = run(p, &cfg).unwrap();
    assert!(report.completed);
    assert_eq!(report.sink_output(NodeId::from_index(2)).len(), 48);
}
