//! Seeded stress suite for the threaded executor's fault-recovery path:
//! burst faults injected inside worker threads across many seeds, with
//! the run required to finish quickly, keep its retry count inside the
//! per-frame budget, and conserve both the sink length and the header
//! traffic of a fault-free golden run.

use std::time::{Duration, Instant};

use cg_fault::{FaultClass, Mtbe};
use cg_graph::{GraphBuilder, NodeId, NodeKind};
use cg_runtime::{run, run_parallel, Program, SimConfig};
use commguard::Protection;

const FRAMES: u64 = 24;
const RATE: u32 = 8;
const NODES: u64 = 4;
const RETRY_BUDGET: u32 = 3;

fn program() -> (Program, NodeId) {
    let mut b = GraphBuilder::new("recovery");
    let s = b.add_node("s", NodeKind::Source);
    let f = b.add_node("f", NodeKind::Filter);
    let g = b.add_node("g", NodeKind::Filter);
    let k = b.add_node("k", NodeKind::Sink);
    b.pipeline(&[s, f, g, k], RATE).unwrap();
    let mut p = Program::new(b.build().unwrap());
    let mut next = 0u32;
    p.set_source(s, move |out| {
        for _ in 0..RATE {
            out.push(next);
            next = next.wrapping_add(1);
        }
    });
    p.set_filter(f, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v.rotate_left(3)));
    });
    p.set_filter(g, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v.wrapping_add(0x9e37)));
    });
    (p, k)
}

fn faulty_cfg(class: FaultClass, seed: u64) -> SimConfig {
    SimConfig {
        fault_class: class,
        stall_timeout: Duration::from_millis(200),
        par_retry_budget: RETRY_BUDGET,
        ..SimConfig::with_errors(
            FRAMES,
            Protection::commguard(),
            Mtbe::instructions(192),
            seed,
        )
    }
}

/// Fault-free golden header traffic, from the deterministic executor
/// under the same protection mode.
fn golden_header_pushes() -> u64 {
    let (p, _) = program();
    let cfg = SimConfig {
        protection: Protection::commguard(),
        inject: false,
        ..SimConfig::error_free(FRAMES)
    };
    run(p, &cfg).unwrap().queues.header_pushes
}

/// The headline acceptance sweep: 20+ seeds of threaded burst faults must
/// all complete promptly, within the retry budget, with a frame-exact
/// sink and golden header conservation.
#[test]
fn burst_faults_recover_across_seeds() {
    let golden_headers = golden_header_pushes();
    let mut total_faults = 0u64;
    let mut total_retries = 0u64;
    for seed in 1..=22u64 {
        let (p, sink) = program();
        let cfg = faulty_cfg(FaultClass::Burst, seed);
        let start = Instant::now();
        let report = run_parallel(p, &cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // Liveness: worst case is every frame burning its full retry
        // budget on stall timeouts on every core; anything beyond that
        // is a hang escaping the recovery ladder.
        let bound = cfg.stall_timeout
            * u32::try_from((u64::from(RETRY_BUDGET) + 2) * FRAMES * NODES).unwrap();
        assert!(
            start.elapsed() < bound,
            "seed {seed}: run exceeded the liveness bound ({:?})",
            start.elapsed()
        );
        assert!(report.completed, "seed {seed}: did not complete");
        assert_eq!(
            report.sink_output(sink).len(),
            (FRAMES * u64::from(RATE)) as usize,
            "seed {seed}: sink length must stay frame-exact"
        );
        assert_eq!(
            report.queues.header_pushes, golden_headers,
            "seed {seed}: header conservation violated"
        );
        assert!(
            report.watchdog.frame_retries <= u64::from(RETRY_BUDGET) * FRAMES * NODES,
            "seed {seed}: retries blew the budget"
        );
        total_faults += report.total_faults().total();
        total_retries += report.watchdog.frame_retries;
    }
    assert!(total_faults > 0, "the sweep must actually inject faults");
    // Burst control perturbations trip the rate invariant, so across 22
    // seeds at this MTBE at least one frame re-execution is expected.
    assert!(total_retries > 0, "no frame was ever re-executed");
}

/// Guard-state strikes (threaded addressing faults land in the hardened
/// AM/QM/HI replicas) must be detected and healed, not propagated.
#[test]
fn guard_state_strikes_are_healed() {
    let mut detected = 0u64;
    let mut corrected = 0u64;
    for seed in 1..=10u64 {
        let (p, sink) = program();
        let cfg = faulty_cfg(FaultClass::Baseline, seed);
        let report = run_parallel(p, &cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(report.completed);
        assert_eq!(
            report.sink_output(sink).len(),
            (FRAMES * u64::from(RATE)) as usize
        );
        detected += report.guard_state_detected();
        corrected += report.guard_state_corrected();
    }
    assert!(
        detected > 0,
        "addressing faults must strike hardened guard state somewhere in 10 seeds"
    );
    assert!(corrected > 0, "majority vote must repair strikes");
    assert!(corrected <= detected);
}

/// Pointer corruption against unprotected shared queues is the nastiest
/// liveness case (queues can report garbage occupancy): the run must
/// still terminate via retry/degrade, never hang, never error.
#[test]
fn unprotected_pointer_chaos_still_terminates() {
    for seed in [3u64, 11, 27] {
        let (p, _) = program();
        let cfg = SimConfig {
            fault_class: FaultClass::PointerCorruption,
            stall_timeout: Duration::from_millis(100),
            par_retry_budget: 1,
            ..SimConfig::with_errors(
                8,
                Protection::PpuUnprotectedQueue,
                Mtbe::instructions(192),
                seed,
            )
        };
        let start = Instant::now();
        let report = run_parallel(p, &cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(report.completed, "seed {seed}");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "seed {seed}: liveness bound exceeded"
        );
    }
}
