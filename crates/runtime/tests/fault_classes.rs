//! Run-level tests for the structured fault classes and the stall
//! watchdog: every class must terminate under every protection mode, and
//! CommGuard must keep sink lengths structural under all of them.

use cg_fault::{FaultClass, Mtbe};
use cg_runtime::{run, Program, SimConfig, WatchdogConfig};
use commguard::graph::{GraphBuilder, NodeId, NodeKind};
use commguard::Protection;

const FRAMES: u64 = 40;

/// src → inc → dbl → snk, 4 items per firing.
fn pipeline() -> (Program, NodeId) {
    let mut b = GraphBuilder::new("fc-test");
    let src = b.add_node("src", NodeKind::Source);
    let inc = b.add_node("inc", NodeKind::Filter);
    let dbl = b.add_node("dbl", NodeKind::Filter);
    let snk = b.add_node("snk", NodeKind::Sink);
    b.connect(src, inc, 4, 4).unwrap();
    b.connect(inc, dbl, 4, 4).unwrap();
    b.connect(dbl, snk, 4, 4).unwrap();
    let g = b.build().unwrap();
    let mut p = Program::new(g);
    let mut next = 0u32;
    p.set_source(src, move |out| {
        for _ in 0..4 {
            out.push(next);
            next = next.wrapping_add(1);
        }
    });
    p.set_filter(inc, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v.wrapping_add(7)));
    });
    p.set_filter(dbl, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v.wrapping_mul(2)));
    });
    (p, snk)
}

fn config(protection: Protection, class: FaultClass, seed: u64) -> SimConfig {
    SimConfig {
        protection,
        inject: true,
        fault_class: class,
        mtbe: Mtbe::instructions(64), // brutal rate
        max_rounds: 2_000_000,
        ..SimConfig::error_free(FRAMES)
    }
    .seed(seed)
}

#[test]
fn every_class_terminates_under_every_protection() {
    for class in FaultClass::all() {
        for protection in [
            Protection::PpuUnprotectedQueue,
            Protection::PpuReliableQueue,
            Protection::commguard(),
        ] {
            for seed in 1..=3u64 {
                let (p, _snk) = pipeline();
                let report = run(p, &config(protection, class, seed)).unwrap();
                assert!(
                    report.completed,
                    "{class} under {protection:?} seed {seed} hit the round cap"
                );
            }
        }
    }
}

#[test]
fn commguard_keeps_sink_structural_under_every_class() {
    for class in FaultClass::all() {
        for seed in 1..=5u64 {
            let (p, snk) = pipeline();
            let report = run(p, &config(Protection::commguard(), class, seed)).unwrap();
            assert!(report.completed, "{class} seed {seed}");
            assert_eq!(
                report.sink_output(snk).len(),
                (FRAMES * 4) as usize,
                "{class} seed {seed}: CommGuard sink length must match the schedule"
            );
        }
    }
}

#[test]
fn structured_classes_actually_fire() {
    // Each structured class leaves its fingerprint in the statistics.
    let (p, _snk) = pipeline();
    let r = run(
        p,
        &config(
            Protection::PpuUnprotectedQueue,
            FaultClass::PointerCorruption,
            9,
        ),
    )
    .unwrap();
    assert!(
        r.queues.pointer_corruptions > 0,
        "pointer class must strike pointers"
    );

    let (p, _snk) = pipeline();
    let r = run(
        p,
        &config(Protection::commguard(), FaultClass::HeaderCorruption, 9),
    )
    .unwrap();
    assert!(
        r.queues.header_corruptions > 0,
        "header class must strike codewords"
    );

    let (p, snk) = pipeline();
    let r = run(p, &config(Protection::commguard(), FaultClass::StuckAt, 9)).unwrap();
    // A latched stuck-at bit distorts the output stream but not its shape.
    assert_eq!(r.sink_output(snk).len(), (FRAMES * 4) as usize);
    assert!(r.total_faults().total() > 0);
}

#[test]
fn watchdog_rescues_a_defeated_qm_layer() {
    // Raw (unprotected) shared pointers + concentrated pointer strikes can
    // wedge a queue in a full/empty lie. With QM timeouts effectively
    // disabled (huge threshold), only the watchdog can restore progress.
    let (p, _snk) = pipeline();
    let cfg = SimConfig {
        // Small queues force real cross-core blocking; corrupted raw
        // pointers then wedge full/empty views until the watchdog acts.
        queue_capacity: 8,
        timeout_rounds: u64::MAX / 2,
        watchdog: WatchdogConfig {
            enabled: true,
            stall_rounds: 64,
            escalation_rounds: 32,
        },
        max_rounds: 4_000_000,
        ..config(
            Protection::PpuUnprotectedQueue,
            FaultClass::PointerCorruption,
            3,
        )
    };
    let report = run(p, &cfg).unwrap();
    assert!(
        report.completed,
        "watchdog must drive the run to completion"
    );
    assert!(
        report.watchdog.total_escalations() > 0,
        "the QM layer was disabled; completion requires watchdog action"
    );
    assert!(report.watchdog.stall_events > 0);
    assert!(report.watchdog.max_stall_rounds >= 64);
}

#[test]
fn watchdog_timeouts_surface_in_node_reports() {
    // Rung 1 arms the per-port trackers; the forced operations then show
    // up as QM timeouts in the per-node reports.
    let (p, _snk) = pipeline();
    let cfg = SimConfig {
        // Small queues force real cross-core blocking; corrupted raw
        // pointers then wedge full/empty views until the watchdog acts.
        queue_capacity: 8,
        timeout_rounds: u64::MAX / 2,
        watchdog: WatchdogConfig {
            enabled: true,
            stall_rounds: 64,
            escalation_rounds: 32,
        },
        max_rounds: 4_000_000,
        ..config(
            Protection::PpuUnprotectedQueue,
            FaultClass::PointerCorruption,
            3,
        )
    };
    let report = run(p, &cfg).unwrap();
    if report.watchdog.timeout_escalations > 0 {
        assert!(
            report.total_timeouts() > 0,
            "armed trackers must fire and be reported"
        );
    }
}

#[test]
fn quiet_runs_never_wake_the_watchdog() {
    // Default watchdog thresholds sit far above the QM timeout: ordinary
    // error-free and guarded runs must never escalate.
    let (p, _snk) = pipeline();
    let r = run(p, &SimConfig::error_free(FRAMES)).unwrap();
    assert_eq!(r.watchdog.total_escalations(), 0);
    assert_eq!(r.watchdog.stall_events, 0);

    let (p, _snk) = pipeline();
    let r = run(
        p,
        &config(Protection::commguard(), FaultClass::Baseline, 11),
    )
    .unwrap();
    assert_eq!(r.watchdog.total_escalations(), 0);
}
