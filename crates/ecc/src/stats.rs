//! ECC operation counters.

use std::fmt;
use std::ops::AddAssign;

/// Counters for ECC suboperations.
///
/// Feeds the paper's Table 3 / Fig. 14 accounting: `check-ECC` and
/// `compute-ECC` are counted as distinct hardware suboperations; corrections
/// and detections additionally record how often stored state was actually
/// corrupted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EccStats {
    /// Decode (`check-ECC`) operations performed.
    pub checks: u64,
    /// Encode (`compute-ECC`) operations performed.
    pub computes: u64,
    /// Single-bit errors corrected during checks.
    pub corrections: u64,
    /// Uncorrectable errors detected during checks.
    pub detections: u64,
}

impl EccStats {
    /// Total ECC suboperations (checks + computes).
    pub fn total_ops(&self) -> u64 {
        self.checks + self.computes
    }
}

impl AddAssign for EccStats {
    fn add_assign(&mut self, rhs: Self) {
        self.checks += rhs.checks;
        self.computes += rhs.computes;
        self.corrections += rhs.corrections;
        self.detections += rhs.detections;
    }
}

impl fmt::Display for EccStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ecc: {} checks, {} computes, {} corrected, {} detected",
            self.checks, self.computes, self.corrections, self.detections
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = EccStats {
            checks: 1,
            computes: 2,
            corrections: 3,
            detections: 4,
        };
        a += EccStats {
            checks: 10,
            computes: 20,
            corrections: 30,
            detections: 40,
        };
        assert_eq!(a.checks, 11);
        assert_eq!(a.computes, 22);
        assert_eq!(a.corrections, 33);
        assert_eq!(a.detections, 44);
        assert_eq!(a.total_ops(), 33);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!EccStats::default().to_string().is_empty());
    }
}
