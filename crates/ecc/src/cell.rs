//! Protected and unprotected storage cells.
//!
//! The queue manager (paper §5.1, Fig. 6) keeps *shared* head/tail pointers
//! under ECC while the rest of the queue state may live in unreliable
//! storage. [`EccCell`] models an ECC-protected word; [`RawCell`] models an
//! unprotected word whose stored bits a fault injector may flip directly
//! (the failure surface behind queue-management errors, §3 "QME").

use crate::hamming::{decode, encode, Codeword, Decoded};
use crate::stats::EccStats;

/// An ECC-protected 32-bit storage cell.
///
/// Every store re-encodes (a `compute-ECC` suboperation) and every load
/// decodes (a `check-ECC` suboperation); the supplied [`EccStats`] is
/// incremented accordingly so that CommGuard's Table 3 accounting can be
/// derived from real call counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccCell {
    stored: Codeword,
}

impl EccCell {
    /// Creates a cell holding `value`.
    pub fn new(value: u32) -> Self {
        EccCell {
            stored: encode(value),
        }
    }

    /// Stores `value`, recording one `compute-ECC` operation.
    pub fn store(&mut self, value: u32, stats: &mut EccStats) {
        stats.computes += 1;
        self.stored = encode(value);
    }

    /// Loads the value, recording one `check-ECC` operation.
    ///
    /// Single-bit corruption is transparently corrected (and counted);
    /// uncorrectable corruption returns `None` and is counted as a
    /// detection.
    pub fn load(&self, stats: &mut EccStats) -> Option<u32> {
        stats.checks += 1;
        match decode(self.stored) {
            Decoded::Clean(v) => Some(v),
            Decoded::Corrected(v) => {
                stats.corrections += 1;
                Some(v)
            }
            Decoded::Detected => {
                stats.detections += 1;
                None
            }
        }
    }

    /// Loads and, if a single-bit error was present, rewrites the cell with
    /// the corrected encoding (scrubbing).
    pub fn load_scrub(&mut self, stats: &mut EccStats) -> Option<u32> {
        stats.checks += 1;
        match decode(self.stored) {
            Decoded::Clean(v) => Some(v),
            Decoded::Corrected(v) => {
                stats.corrections += 1;
                stats.computes += 1;
                self.stored = encode(v);
                Some(v)
            }
            Decoded::Detected => {
                stats.detections += 1;
                None
            }
        }
    }

    /// Flips a stored bit (fault-injection hook).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= cg_ecc::CODEWORD_BITS`.
    pub fn inject_flip(&mut self, bit: u32) {
        self.stored = self.stored.with_flipped_bit(bit);
    }

    /// Raw stored codeword (for inspection in tests).
    pub fn codeword(&self) -> Codeword {
        self.stored
    }
}

impl Default for EccCell {
    fn default() -> Self {
        EccCell::new(0)
    }
}

/// An unprotected 32-bit storage cell.
///
/// Loads return whatever bits are stored; fault injection silently corrupts
/// subsequent loads. Used for queue pointers in the "unprotected queue"
/// baseline configuration (paper Fig. 3b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct RawCell {
    stored: u32,
}

impl RawCell {
    /// Creates a cell holding `value`.
    pub fn new(value: u32) -> Self {
        RawCell { stored: value }
    }

    /// Stores `value`.
    #[inline]
    pub fn store(&mut self, value: u32) {
        self.stored = value;
    }

    /// Loads the (possibly corrupted) value.
    #[inline]
    pub fn load(&self) -> u32 {
        self.stored
    }

    /// Flips a stored bit (fault-injection hook).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn inject_flip(&mut self, bit: u32) {
        assert!(bit < 32, "bit {bit} out of range");
        self.stored ^= 1 << bit;
    }
}

/// A fixed-size array of [`EccCell`]s sharing one stats block.
///
/// Models small reliable register groups such as the QIT entries of §5.5.
#[derive(Debug, Clone, Default)]
pub struct EccCellArray {
    cells: Vec<EccCell>,
}

impl EccCellArray {
    /// Creates `n` cells initialised to zero.
    pub fn new(n: usize) -> Self {
        EccCellArray {
            cells: vec![EccCell::default(); n],
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` when the array holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Stores `value` at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn store(&mut self, idx: usize, value: u32, stats: &mut EccStats) {
        self.cells[idx].store(value, stats);
    }

    /// Loads the value at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn load(&self, idx: usize, stats: &mut EccStats) -> Option<u32> {
        self.cells[idx].load(stats)
    }

    /// Fault-injection access to a cell.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn cell_mut(&mut self, idx: usize) -> &mut EccCell {
        &mut self.cells[idx]
    }

    /// Stores `values` into the cells starting at `idx` via the batch
    /// encoder, recording one `compute-ECC` per word (identical stats to a
    /// per-cell [`EccCellArray::store`] loop).
    ///
    /// # Panics
    ///
    /// Panics if `idx + values.len()` exceeds the array.
    pub fn store_slice(&mut self, idx: usize, values: &[u32], stats: &mut EccStats) {
        let cells = &mut self.cells[idx..idx + values.len()];
        let mut cws = vec![Codeword::default(); values.len()];
        *stats += crate::batch::encode_slice(values, &mut cws);
        for (cell, cw) in cells.iter_mut().zip(cws) {
            cell.stored = cw;
        }
    }

    /// Loads `out.len()` values starting at `idx` via the batch decoder,
    /// recording one `check-ECC` per word plus corrections/detections
    /// (identical stats to a per-cell [`EccCellArray::load`] loop).
    /// Uncorrectable cells yield `None`.
    ///
    /// # Panics
    ///
    /// Panics if `idx + out.len()` exceeds the array.
    pub fn load_slice(&self, idx: usize, out: &mut [Option<u32>], stats: &mut EccStats) {
        let cells = &self.cells[idx..idx + out.len()];
        let cws: Vec<Codeword> = cells.iter().map(|c| c.stored).collect();
        let mut decoded = vec![Decoded::Detected; out.len()];
        *stats += crate::batch::decode_slice(&cws, &mut decoded);
        for (o, d) in out.iter_mut().zip(decoded) {
            *o = d.value();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecc_cell_store_load_counts_ops() {
        let mut stats = EccStats::default();
        let mut cell = EccCell::default();
        cell.store(42, &mut stats);
        assert_eq!(cell.load(&mut stats), Some(42));
        assert_eq!(stats.computes, 1);
        assert_eq!(stats.checks, 1);
        assert_eq!(stats.corrections, 0);
    }

    #[test]
    fn ecc_cell_corrects_single_flip() {
        let mut stats = EccStats::default();
        let mut cell = EccCell::new(0x1234_5678);
        cell.inject_flip(5);
        assert_eq!(cell.load(&mut stats), Some(0x1234_5678));
        assert_eq!(stats.corrections, 1);
    }

    #[test]
    fn ecc_cell_detects_double_flip() {
        let mut stats = EccStats::default();
        let mut cell = EccCell::new(7);
        cell.inject_flip(3);
        cell.inject_flip(21);
        assert_eq!(cell.load(&mut stats), None);
        assert_eq!(stats.detections, 1);
    }

    #[test]
    fn scrub_repairs_stored_bits() {
        let mut stats = EccStats::default();
        let mut cell = EccCell::new(99);
        cell.inject_flip(10);
        assert_eq!(cell.load_scrub(&mut stats), Some(99));
        // After scrubbing, a fresh load sees a clean word.
        let before = stats.corrections;
        assert_eq!(cell.load(&mut stats), Some(99));
        assert_eq!(stats.corrections, before);
    }

    #[test]
    fn raw_cell_is_silently_corruptible() {
        let mut cell = RawCell::new(0);
        cell.inject_flip(31);
        assert_eq!(cell.load(), 0x8000_0000);
    }

    #[test]
    fn cell_array_slice_ops_match_per_cell_loop() {
        let values = [7u32, 0, u32::MAX, 0xDEAD_BEEF];
        let mut batch_stats = EccStats::default();
        let mut batched = EccCellArray::new(6);
        batched.store_slice(1, &values, &mut batch_stats);

        let mut loop_stats = EccStats::default();
        let mut looped = EccCellArray::new(6);
        for (i, &v) in values.iter().enumerate() {
            looped.store(1 + i, v, &mut loop_stats);
        }
        assert_eq!(batch_stats, loop_stats);
        for i in 0..values.len() {
            assert_eq!(batched.cells[1 + i], looped.cells[1 + i]);
        }

        batched.cell_mut(2).inject_flip(4); // corrected on load
        batched.cell_mut(3).inject_flip(1);
        batched.cell_mut(3).inject_flip(9); // detected on load
        let mut out = [None; 4];
        batched.load_slice(1, &mut out, &mut batch_stats);
        assert_eq!(out, [Some(7), Some(0), None, Some(0xDEAD_BEEF)]);
        assert_eq!(batch_stats.checks, 4);
        assert_eq!(batch_stats.corrections, 1);
        assert_eq!(batch_stats.detections, 1);
    }

    #[test]
    fn cell_array_roundtrip() {
        let mut stats = EccStats::default();
        let mut arr = EccCellArray::new(4);
        assert_eq!(arr.len(), 4);
        assert!(!arr.is_empty());
        arr.store(2, 555, &mut stats);
        assert_eq!(arr.load(2, &mut stats), Some(555));
        arr.cell_mut(2).inject_flip(0);
        assert_eq!(arr.load(2, &mut stats), Some(555));
        assert_eq!(stats.corrections, 1);
    }
}
