//! Extended Hamming (39,32) SECDED code over 32-bit words.
//!
//! Layout: codeword bit positions are numbered 1..=38 in classic Hamming
//! fashion. Positions that are powers of two (1, 2, 4, 8, 16, 32) hold the
//! six Hamming parity bits; the remaining 32 positions hold data bits in
//! ascending order. Bit 0 of the `u64` holds the overall (even) parity bit
//! covering the whole 38-bit Hamming codeword, which upgrades the code from
//! SEC to SECDED.

/// Number of data bits protected by one codeword.
pub const DATA_BITS: u32 = 32;

/// Total significant bits in a codeword (38 Hamming bits + overall parity).
pub const CODEWORD_BITS: u32 = 39;

/// Number of Hamming parity bits (excluding the overall parity bit).
const PARITY_BITS: u32 = 6;

/// Mask selecting the 39 significant codeword bits.
pub(crate) const CODEWORD_MASK: u64 = (1u64 << CODEWORD_BITS) - 1;

/// A SECDED-encoded 32-bit word.
///
/// The raw `u64` can be freely corrupted (e.g. by a fault injector flipping
/// bits) and later passed to [`decode`], which corrects any single-bit error
/// and detects any double-bit error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Codeword(u64);

impl Codeword {
    /// Wraps a raw 64-bit value as a codeword without validation.
    ///
    /// Bits above [`CODEWORD_BITS`] are ignored by [`decode`]. This is the
    /// entry point used by fault injectors that flip stored bits.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        Codeword(raw)
    }

    /// Returns the raw stored bits.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Flips bit `bit` (0-based, `bit < CODEWORD_BITS`) of the codeword.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= CODEWORD_BITS`.
    #[inline]
    #[must_use]
    pub fn with_flipped_bit(self, bit: u32) -> Self {
        assert!(bit < CODEWORD_BITS, "bit {bit} out of range");
        Codeword(self.0 ^ (1u64 << bit))
    }
}

/// Outcome of decoding a [`Codeword`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decoded {
    /// No error was present; payload returned unchanged.
    Clean(u32),
    /// A single-bit error was corrected; corrected payload returned.
    Corrected(u32),
    /// An uncorrectable (two-bit or worse) error was detected.
    Detected,
}

impl Decoded {
    /// Returns the decoded payload if the word was clean or corrected.
    #[inline]
    pub fn value(self) -> Option<u32> {
        match self {
            Decoded::Clean(v) | Decoded::Corrected(v) => Some(v),
            Decoded::Detected => None,
        }
    }

    /// Returns `true` when decoding did not recover a payload.
    #[inline]
    pub fn is_detected(self) -> bool {
        matches!(self, Decoded::Detected)
    }
}

/// Maps data-bit index (0..32) to its Hamming position (1..=38, skipping
/// powers of two).
#[inline]
#[cfg_attr(not(test), allow(dead_code))]
fn data_position(data_idx: u32) -> u32 {
    // Positions 3,5,6,7,9,...: skip 1,2,4,8,16,32.
    debug_assert!(data_idx < DATA_BITS);
    let mut pos = data_idx + 3; // account for positions 1 and 2 up front
                                // Each power of two <= pos shifts data positions up by one.
    for p in [4u32, 8, 16, 32] {
        if pos >= p {
            pos += 1;
        }
    }
    pos
}

/// Coverage mask for Hamming parity bit `2^k`: positions 1..=38 whose
/// binary representation has bit `k` set.
const fn parity_mask(k: u32) -> u64 {
    let mut mask = 0u64;
    let mut pos = 1u32;
    while pos <= 38 {
        if pos & (1 << k) != 0 {
            mask |= 1u64 << pos;
        }
        pos += 1;
    }
    mask
}

const PARITY_MASKS: [u64; PARITY_BITS as usize] = [
    parity_mask(0),
    parity_mask(1),
    parity_mask(2),
    parity_mask(3),
    parity_mask(4),
    parity_mask(5),
];

/// Scatters the 32 data bits into their codeword positions.
///
/// Data bits occupy positions 3, 5-7, 9-15, 17-31, 33-38 (everything in
/// 1..=38 that is not a power of two), in ascending order, so the scatter
/// is five contiguous shifts.
#[inline]
const fn scatter(word: u32) -> u64 {
    let w = word as u64;
    ((w & 0x1) << 3)
        | ((w >> 1 & 0x7) << 5)
        | ((w >> 4 & 0x7F) << 9)
        | ((w >> 11 & 0x7FFF) << 17)
        | ((w >> 26 & 0x3F) << 33)
}

/// Encodes a 32-bit word into a SECDED codeword.
pub fn encode(word: u32) -> Codeword {
    Codeword(encode_raw(word))
}

/// Const-evaluable encode body. The batch lookup planes in [`crate::batch`]
/// are built by folding this function over single-byte words, so the table
/// path is bit-exact against the scalar path by construction.
pub(crate) const fn encode_raw(word: u32) -> u64 {
    let mut cw = scatter(word);
    let mut k = 0;
    while k < PARITY_BITS as usize {
        // Each mask covers only data positions plus its own (still-unset)
        // parity position, so this parity is over data bits alone.
        let parity = (cw & PARITY_MASKS[k]).count_ones() as u64 & 1;
        cw |= parity << (1u32 << k);
        k += 1;
    }
    // Overall parity (bit 0) over positions 1..=38, even parity.
    let overall = ((cw >> 1).count_ones() as u64) & 1;
    cw | overall // bit 0
}

/// Decodes a codeword, correcting single-bit errors and detecting doubles.
///
/// Triple or worse errors may be miscorrected (inherent to SECDED codes).
pub fn decode(cw: Codeword) -> Decoded {
    let bits = cw.0 & CODEWORD_MASK;
    // Syndrome bit k = parity over mask k; each mask covers its own parity
    // position (2^k has exactly bit k set), so the stored parity bit is
    // already folded in and a clean word yields parity 0.
    let mut syndrome: u32 = 0;
    for (k, mask) in PARITY_MASKS.iter().enumerate() {
        let p = (bits & mask).count_ones() & 1;
        syndrome |= p << k;
    }
    let overall_ok = bits.count_ones().is_multiple_of(2);

    let corrected_bits = match (syndrome, overall_ok) {
        (0, true) => return Decoded::Clean(extract(bits)),
        // Overall parity flipped but Hamming syndrome clean: the error hit
        // the overall parity bit itself. Data is intact.
        (0, false) => return Decoded::Corrected(extract(bits)),
        // Non-zero syndrome with consistent overall parity: two-bit error.
        (_, true) => return Decoded::Detected,
        // Single-bit error at position `syndrome`.
        (s, false) => {
            if s > 38 {
                // Syndrome points outside the codeword: uncorrectable.
                return Decoded::Detected;
            }
            bits ^ (1u64 << s)
        }
    };
    Decoded::Corrected(extract(corrected_bits))
}

/// Extracts the 32 data bits from a (corrected) codeword bit pattern
/// (inverse of [`scatter`]).
#[inline]
pub(crate) fn extract(bits: u64) -> u32 {
    ((bits >> 3 & 0x1)
        | (bits >> 5 & 0x7) << 1
        | (bits >> 9 & 0x7F) << 4
        | (bits >> 17 & 0x7FFF) << 11
        | (bits >> 33 & 0x3F) << 26) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_matches_positional_reference() {
        for w in [0u32, 1, u32::MAX, 0xDEAD_BEEF, 0x8000_0001, 0x0F0F_0F0F] {
            let mut reference = 0u64;
            for i in 0..DATA_BITS {
                if w & (1 << i) != 0 {
                    reference |= 1u64 << data_position(i);
                }
            }
            assert_eq!(scatter(w), reference, "word {w:#x}");
            assert_eq!(extract(reference), w, "word {w:#x}");
        }
    }

    #[test]
    fn data_positions_skip_parity_positions() {
        let positions: Vec<u32> = (0..DATA_BITS).map(data_position).collect();
        for p in &positions {
            assert!(!p.is_power_of_two(), "data landed on parity position {p}");
            assert!((3..=38).contains(p));
        }
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32, "positions must be distinct");
    }

    #[test]
    fn clean_roundtrip_various_words() {
        for w in [0, 1, 2, 3, 0xFFFF_FFFF, 0x8000_0001, 0x1234_5678] {
            assert_eq!(decode(encode(w)), Decoded::Clean(w));
        }
    }

    #[test]
    fn corrects_every_single_bit_flip() {
        for w in [0u32, 0xDEAD_BEEF, u32::MAX, 0x0F0F_0F0F] {
            let cw = encode(w);
            for bit in 0..CODEWORD_BITS {
                let got = decode(cw.with_flipped_bit(bit));
                assert_eq!(got, Decoded::Corrected(w), "word {w:#x} bit {bit}");
            }
        }
    }

    #[test]
    fn detects_every_double_bit_flip() {
        let w = 0xCAFE_F00D;
        let cw = encode(w);
        for b1 in 0..CODEWORD_BITS {
            for b2 in (b1 + 1)..CODEWORD_BITS {
                let got = decode(cw.with_flipped_bit(b1).with_flipped_bit(b2));
                assert_eq!(got, Decoded::Detected, "bits {b1},{b2}");
            }
        }
    }

    #[test]
    fn decoded_value_accessor() {
        assert_eq!(Decoded::Clean(7).value(), Some(7));
        assert_eq!(Decoded::Corrected(8).value(), Some(8));
        assert_eq!(Decoded::Detected.value(), None);
        assert!(Decoded::Detected.is_detected());
        assert!(!Decoded::Clean(0).is_detected());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_out_of_range_panics() {
        let _ = encode(0).with_flipped_bit(CODEWORD_BITS);
    }
}
