//! # cg-ecc — single-word SECDED error correction
//!
//! CommGuard (ASPLOS'15, §4.1/§5.1) relies on *single-word ECC* in two
//! places: frame headers travelling through unreliable queues, and the
//! shared head/tail pointers of the queue manager. This crate implements
//! the classic Hamming SECDED code — **single error correction, double
//! error detection** — over 32-bit words, along with protected storage
//! cells and operation counters used by the paper's overhead accounting
//! (Table 3: `check/compute-ECC` suboperations).
//!
//! The code is a (39,32) extended Hamming code: 32 data bits, 6 Hamming
//! parity bits and one overall parity bit, packed into a [`Codeword`]
//! (a `u64` with 39 significant bits).
//!
//! Hot paths that move whole frames use the batch API —
//! [`encode_slice`]/[`decode_slice`] — which folds the parity masks through
//! the scatter permutation into compile-time lookup planes and returns one
//! aggregated [`EccStats`] delta per batch (see `batch.rs` for the
//! construction and the bit-exactness argument).
//!
//! ```
//! use cg_ecc::{encode, decode, Decoded};
//!
//! let cw = encode(0xDEAD_BEEF);
//! // a single bit flip anywhere in the codeword is corrected:
//! let corrupted = cg_ecc::Codeword::from_raw(cw.raw() ^ (1 << 17));
//! assert_eq!(decode(corrupted), Decoded::Corrected(0xDEAD_BEEF));
//! ```

mod batch;
mod cell;
mod hamming;
mod stats;

pub use batch::{decode_slice, decode_slice_scalar, encode_slice, encode_slice_scalar};
pub use cell::{EccCell, EccCellArray, RawCell};
pub use hamming::{decode, encode, Codeword, Decoded, CODEWORD_BITS, DATA_BITS};
pub use stats::EccStats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_roundtrip() {
        for w in [0u32, 1, u32::MAX, 0x5555_5555, 0xAAAA_AAAA] {
            assert_eq!(decode(encode(w)), Decoded::Clean(w));
        }
    }
}
