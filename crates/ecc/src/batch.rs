//! Batch SECDED encode/decode over slices of words.
//!
//! The scalar [`encode`]/[`decode`] pair burns roughly seven software
//! popcounts per word (one per `PARITY_MASKS` entry plus the overall
//! parity). That is fine for the occasional header or pointer word, but it
//! is the dominant per-item cost once transport itself is cheap (lock-free
//! ring, zero-copy slice frames).
//!
//! The batch path removes the popcounts entirely by *folding the parity
//! masks through the scatter permutation* ahead of time, at compile time:
//!
//! * **Encode** uses four 256-entry `u64` planes, one per data byte. Entry
//!   `ENC[j][b]` is the complete codeword contribution of data byte `j`
//!   holding value `b`: its scattered data bits plus all seven parity bits
//!   (six Hamming + overall), each pre-placed at its final codeword
//!   position. Every parity bit is a GF(2)-linear function of the data
//!   bits, and `scatter` routes distinct bytes to disjoint positions, so
//!   the encode of a full word is simply the XOR of its four byte planes —
//!   4 loads and 3 XORs instead of 7 popcounts.
//! * **Decode** uses five 256-entry `u8` planes over the five codeword
//!   bytes (39 significant bits). Entry `SYN[j][b]` packs that byte's
//!   contribution to the 6-bit Hamming syndrome (low bits; the XOR of the
//!   set bit *positions*, which is exactly the per-bit parity over
//!   `PARITY_MASKS`) and to the overall parity (bit 6). XORing the five
//!   planes yields the same `(syndrome, overall)` pair the scalar decoder
//!   derives from masked popcounts; verdict classification and single-bit
//!   correction then proceed identically.
//!
//! The 8 KiB encode table and 1.25 KiB decode table stay L1-resident
//! across a batch. Tables are built by `const`-evaluating the *scalar*
//! routines over single-byte words, so the two paths cannot drift: any
//! change to the code layout reshapes the tables automatically, and the
//! differential tests (here and in `tests/prop.rs`) pin bit-exact
//! equivalence over random words and corruptions.
//!
//! Stats contract: the slice calls return one aggregated [`EccStats`]
//! delta for the whole batch (`computes == n` for encode; `checks == n`
//! plus per-word `corrections`/`detections` for decode) instead of
//! incrementing a shared counter per unit. Callers fold the delta into
//! their accounting with `+=`, which keeps batched and per-unit runs
//! bit-identical in every counter.

use crate::hamming::{decode, encode, encode_raw, extract, Codeword, Decoded, CODEWORD_MASK};
use crate::stats::EccStats;

/// Per-byte encode planes: `ENC[j][b]` is the codeword contribution of data
/// byte `j` holding value `b`, parity bits pre-placed (see module docs).
static ENC: [[u64; 256]; 4] = build_enc();

const fn build_enc() -> [[u64; 256]; 4] {
    let mut t = [[0u64; 256]; 4];
    let mut j = 0;
    while j < 4 {
        let mut b = 0;
        while b < 256 {
            t[j][b] = encode_raw((b as u32) << (8 * j as u32));
            b += 1;
        }
        j += 1;
    }
    t
}

/// Per-byte syndrome planes: `SYN[j][b]` packs byte `j`'s contribution to
/// the Hamming syndrome (low 6 bits) and overall parity (bit 6).
static SYN: [[u8; 256]; 5] = build_syn();

const fn build_syn() -> [[u8; 256]; 5] {
    let mut t = [[0u8; 256]; 5];
    let mut j = 0;
    while j < 5 {
        let mut b = 0;
        while b < 256 {
            let mut acc = 0u8;
            let mut i = 0;
            while i < 8 {
                let pos = 8 * (j as u32) + i;
                if pos < 39 && (b >> i) & 1 == 1 {
                    // Syndrome bit k flips iff position `pos` has bit k set,
                    // so XORing the position itself accumulates all six
                    // syndrome bits at once (positions fit in 6 bits).
                    acc ^= pos as u8;
                    acc ^= 0x40; // overall parity counts every set bit
                }
                i += 1;
            }
            t[j][b] = acc;
            b += 1;
        }
        j += 1;
    }
    t
}

#[inline]
fn encode_tabled(word: u32) -> u64 {
    let w = word as usize;
    ENC[0][w & 0xFF] ^ ENC[1][w >> 8 & 0xFF] ^ ENC[2][w >> 16 & 0xFF] ^ ENC[3][w >> 24]
}

#[inline]
fn decode_tabled(cw: Codeword) -> Decoded {
    let bits = cw.raw() & CODEWORD_MASK;
    let b = bits as usize;
    let t = SYN[0][b & 0xFF]
        ^ SYN[1][b >> 8 & 0xFF]
        ^ SYN[2][b >> 16 & 0xFF]
        ^ SYN[3][b >> 24 & 0xFF]
        ^ SYN[4][(bits >> 32) as usize & 0xFF];
    let syndrome = u32::from(t & 0x3F);
    let overall_ok = t & 0x40 == 0;
    match (syndrome, overall_ok) {
        (0, true) => Decoded::Clean(extract(bits)),
        (0, false) => Decoded::Corrected(extract(bits)),
        (_, true) => Decoded::Detected,
        (s, false) => {
            if s > 38 {
                Decoded::Detected
            } else {
                Decoded::Corrected(extract(bits ^ (1u64 << s)))
            }
        }
    }
}

/// Encodes a slice of words, one codeword per word, returning the
/// aggregated stats delta (`computes == words.len()`).
///
/// Bit-exact against per-word [`encode`]; see the module docs for the
/// table construction argument and `tests/prop.rs` for the differential
/// property tests.
///
/// # Panics
///
/// Panics if `words` and `out` differ in length.
pub fn encode_slice(words: &[u32], out: &mut [Codeword]) -> EccStats {
    assert_eq!(words.len(), out.len(), "encode_slice length mismatch");
    for (&w, o) in words.iter().zip(out.iter_mut()) {
        *o = Codeword::from_raw(encode_tabled(w));
    }
    EccStats {
        computes: words.len() as u64,
        ..EccStats::default()
    }
}

/// Decodes a slice of codewords, returning the aggregated stats delta
/// (`checks == cws.len()` plus per-word `corrections`/`detections`).
///
/// Verdicts and corrected payloads are bit-exact against per-word
/// [`decode`].
///
/// # Panics
///
/// Panics if `cws` and `out` differ in length.
pub fn decode_slice(cws: &[Codeword], out: &mut [Decoded]) -> EccStats {
    assert_eq!(cws.len(), out.len(), "decode_slice length mismatch");
    let mut stats = EccStats {
        checks: cws.len() as u64,
        ..EccStats::default()
    };
    for (&cw, o) in cws.iter().zip(out.iter_mut()) {
        let d = decode_tabled(cw);
        match d {
            Decoded::Corrected(_) => stats.corrections += 1,
            Decoded::Detected => stats.detections += 1,
            Decoded::Clean(_) => {}
        }
        *o = d;
    }
    stats
}

/// Scalar fallback for [`encode_slice`]: per-word [`encode`] with the same
/// aggregated-stats contract. Reference implementation for the
/// differential tests and the portable path for targets where the lookup
/// planes are not worth their cache footprint.
pub fn encode_slice_scalar(words: &[u32], out: &mut [Codeword]) -> EccStats {
    assert_eq!(words.len(), out.len(), "encode_slice length mismatch");
    for (&w, o) in words.iter().zip(out.iter_mut()) {
        *o = encode(w);
    }
    EccStats {
        computes: words.len() as u64,
        ..EccStats::default()
    }
}

/// Scalar fallback for [`decode_slice`] (same contract; see
/// [`encode_slice_scalar`]).
pub fn decode_slice_scalar(cws: &[Codeword], out: &mut [Decoded]) -> EccStats {
    assert_eq!(cws.len(), out.len(), "decode_slice length mismatch");
    let mut stats = EccStats {
        checks: cws.len() as u64,
        ..EccStats::default()
    };
    for (&cw, o) in cws.iter().zip(out.iter_mut()) {
        let d = decode(cw);
        match d {
            Decoded::Corrected(_) => stats.corrections += 1,
            Decoded::Detected => stats.detections += 1,
            Decoded::Clean(_) => {}
        }
        *o = d;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming::CODEWORD_BITS;

    /// Every single-byte word must encode identically through the planes
    /// and the scalar path — this is exhaustive over the table domain, so
    /// together with linearity it covers all 2^32 words.
    #[test]
    fn encode_planes_match_scalar_exhaustively_per_byte() {
        for j in 0..4 {
            for b in 0..=255u32 {
                let w = b << (8 * j);
                assert_eq!(encode_tabled(w), encode(w).raw(), "byte {j} value {b:#x}");
            }
        }
    }

    #[test]
    fn encode_slice_matches_scalar_on_mixed_words() {
        let words: Vec<u32> = (0..257u32)
            .map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(i % 31))
            .collect();
        let mut tabled = vec![Codeword::default(); words.len()];
        let mut scalar = vec![Codeword::default(); words.len()];
        let st = encode_slice(&words, &mut tabled);
        let ss = encode_slice_scalar(&words, &mut scalar);
        assert_eq!(tabled, scalar);
        assert_eq!(st, ss);
        assert_eq!(st.computes, words.len() as u64);
        assert_eq!(st.checks, 0);
    }

    #[test]
    fn decode_slice_matches_scalar_under_corruption() {
        // Clean, every single-bit flip, and a spread of double flips for a
        // handful of payloads; verdicts and stats must agree exactly.
        for w in [0u32, 1, u32::MAX, 0xDEAD_BEEF, 0x0F0F_0F0F] {
            let clean = encode(w);
            let mut cws = vec![clean];
            for b1 in 0..CODEWORD_BITS {
                cws.push(clean.with_flipped_bit(b1));
                cws.push(
                    clean
                        .with_flipped_bit(b1)
                        .with_flipped_bit((b1 + 7) % CODEWORD_BITS),
                );
            }
            let mut tabled = vec![Decoded::Detected; cws.len()];
            let mut scalar = vec![Decoded::Detected; cws.len()];
            let st = decode_slice(&cws, &mut tabled);
            let ss = decode_slice_scalar(&cws, &mut scalar);
            assert_eq!(tabled, scalar, "word {w:#x}");
            assert_eq!(st, ss, "word {w:#x}");
            assert_eq!(st.checks, cws.len() as u64);
        }
    }

    #[test]
    fn decode_ignores_bits_above_codeword() {
        let cw = encode(0x1234_5678);
        let noisy = Codeword::from_raw(cw.raw() | 0xFFFF_FF80_0000_0000);
        let mut out = [Decoded::Detected];
        decode_slice(&[noisy], &mut out);
        assert_eq!(out[0], Decoded::Clean(0x1234_5678));
    }

    #[test]
    fn aggregated_stats_count_corrections_and_detections() {
        let w = 0xCAFE_F00D;
        let clean = encode(w);
        let cws = [
            clean,
            clean.with_flipped_bit(5),
            clean.with_flipped_bit(1).with_flipped_bit(2),
        ];
        let mut out = [Decoded::Detected; 3];
        let st = decode_slice(&cws, &mut out);
        assert_eq!(st.checks, 3);
        assert_eq!(st.corrections, 1);
        assert_eq!(st.detections, 1);
        assert_eq!(out[0], Decoded::Clean(w));
        assert_eq!(out[1], Decoded::Corrected(w));
        assert_eq!(out[2], Decoded::Detected);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn encode_slice_length_mismatch_panics() {
        let mut out = [Codeword::default(); 2];
        let _ = encode_slice(&[1, 2, 3], &mut out);
    }
}
