//! Property tests for the SECDED implementation.

use cg_ecc::{decode, encode, Decoded, CODEWORD_BITS};
use proptest::prelude::*;

proptest! {
    /// Every word round-trips cleanly.
    #[test]
    fn roundtrip(word: u32) {
        prop_assert_eq!(decode(encode(word)), Decoded::Clean(word));
    }

    /// Any single flip is corrected back to the original word.
    #[test]
    fn single_flip_corrected(word: u32, bit in 0..CODEWORD_BITS) {
        let cw = encode(word).with_flipped_bit(bit);
        prop_assert_eq!(decode(cw), Decoded::Corrected(word));
    }

    /// Any double flip is detected, never silently miscorrected.
    #[test]
    fn double_flip_detected(word: u32, b1 in 0..CODEWORD_BITS, b2 in 0..CODEWORD_BITS) {
        prop_assume!(b1 != b2);
        let cw = encode(word).with_flipped_bit(b1).with_flipped_bit(b2);
        prop_assert_eq!(decode(cw), Decoded::Detected);
    }

    /// Distinct words never encode to the same codeword (injectivity).
    #[test]
    fn encoding_injective(a: u32, b: u32) {
        prop_assume!(a != b);
        prop_assert_ne!(encode(a), encode(b));
    }
}
