//! Property tests for the SECDED implementation.

use cg_ecc::{
    decode, decode_slice, decode_slice_scalar, encode, encode_slice, encode_slice_scalar, Codeword,
    Decoded, EccStats, CODEWORD_BITS,
};
use proptest::prelude::*;

proptest! {
    /// Every word round-trips cleanly.
    #[test]
    fn roundtrip(word: u32) {
        prop_assert_eq!(decode(encode(word)), Decoded::Clean(word));
    }

    /// Any single flip is corrected back to the original word.
    #[test]
    fn single_flip_corrected(word: u32, bit in 0..CODEWORD_BITS) {
        let cw = encode(word).with_flipped_bit(bit);
        prop_assert_eq!(decode(cw), Decoded::Corrected(word));
    }

    /// Any double flip is detected, never silently miscorrected.
    #[test]
    fn double_flip_detected(word: u32, b1 in 0..CODEWORD_BITS, b2 in 0..CODEWORD_BITS) {
        prop_assume!(b1 != b2);
        let cw = encode(word).with_flipped_bit(b1).with_flipped_bit(b2);
        prop_assert_eq!(decode(cw), Decoded::Detected);
    }

    /// Distinct words never encode to the same codeword (injectivity).
    #[test]
    fn encoding_injective(a: u32, b: u32) {
        prop_assume!(a != b);
        prop_assert_ne!(encode(a), encode(b));
    }

    /// The table-driven batch encoder is bit-exact against scalar encode
    /// over random batches, and its aggregated stats delta equals the sum
    /// of per-unit deltas.
    #[test]
    fn encode_slice_differential(words in proptest::collection::vec(any::<u32>(), 0..96)) {
        let mut tabled = vec![Codeword::default(); words.len()];
        let mut scalar = vec![Codeword::default(); words.len()];
        let ts = encode_slice(&words, &mut tabled);
        let ss = encode_slice_scalar(&words, &mut scalar);
        prop_assert_eq!(&tabled, &scalar);
        for (&w, &cw) in words.iter().zip(tabled.iter()) {
            prop_assert_eq!(cw, encode(w));
        }
        prop_assert_eq!(ts, ss);
        let mut per_unit = EccStats::default();
        for _ in &words {
            per_unit.computes += 1;
        }
        prop_assert_eq!(ts, per_unit);
    }

    /// The table-driven batch decoder agrees with scalar decode — verdicts
    /// (Clean/Corrected/Detected), corrected payloads, and aggregated
    /// stats — over batches where each codeword carries 0..=2 random bit
    /// flips.
    #[test]
    fn decode_slice_differential(
        seeds in proptest::collection::vec(
            (any::<u32>(), 0..=2usize, 0..CODEWORD_BITS, 0..CODEWORD_BITS),
            0..96,
        )
    ) {
        let cws: Vec<Codeword> = seeds
            .iter()
            .map(|&(w, flips, b1, b2)| {
                let mut cw = encode(w);
                if flips >= 1 {
                    cw = cw.with_flipped_bit(b1);
                }
                if flips == 2 {
                    cw = cw.with_flipped_bit(b2);
                }
                cw
            })
            .collect();
        let mut tabled = vec![Decoded::Detected; cws.len()];
        let mut scalar = vec![Decoded::Detected; cws.len()];
        let ts = decode_slice(&cws, &mut tabled);
        let ss = decode_slice_scalar(&cws, &mut scalar);
        prop_assert_eq!(&tabled, &scalar);
        for (&cw, &d) in cws.iter().zip(tabled.iter()) {
            prop_assert_eq!(d, decode(cw));
        }
        prop_assert_eq!(ts, ss);
        // Aggregated delta equals the fold of per-unit increments.
        let mut per_unit = EccStats::default();
        for &d in &scalar {
            per_unit.checks += 1;
            match d {
                Decoded::Corrected(_) => per_unit.corrections += 1,
                Decoded::Detected => per_unit.detections += 1,
                Decoded::Clean(_) => {}
            }
        }
        prop_assert_eq!(ts, per_unit);
    }
}
