//! Property tests for the fixed-bucket log-scale histogram.
//!
//! The metrics plane relies on two facts: sharded recording merges
//! exactly (per-core histograms summed at `finish()` equal one histogram
//! over all samples, in any order), and quantiles stay within one
//! bucket's resolution of the exact order statistics even on adversarial
//! distributions (all-equal, bimodal with extreme outliers, powers of
//! two straddling bucket boundaries).

use cg_telemetry::{bucket_index, bucket_upper_bound, Histogram};
use proptest::prelude::*;

/// Exact quantile by the same nearest-rank rule the histogram uses:
/// the smallest sample with rank `ceil(q * n)`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// An adversarial sample: a plain value, a bucket-boundary straddler, or
/// an extreme outlier, so generated distributions mix scales by design.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..100,
        (0u32..60).prop_map(|s| 1u64 << s),
        (0u32..60).prop_map(|s| (1u64 << s).wrapping_sub(1)),
        any::<u64>(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sharded merge is exact: splitting the samples across any number
    /// of per-core shards and merging equals recording every sample into
    /// one histogram, regardless of order.
    #[test]
    fn merge_of_shards_equals_single_histogram(
        shards in prop::collection::vec(
            prop::collection::vec(sample(), 0..40),
            1..8,
        ),
    ) {
        let mut single = Histogram::new();
        for s in shards.iter().flatten() {
            single.record(*s);
        }
        let mut merged = Histogram::new();
        for shard in &shards {
            let mut h = Histogram::new();
            for &s in shard {
                h.record(s);
            }
            merged.merge(&h);
        }
        prop_assert_eq!(&merged, &single);
        let n: u64 = shards.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(merged.count(), n);
    }

    /// p50/p99 stay within one bucket of the exact order statistic: the
    /// reported quantile is >= the exact one (it reports a bucket upper
    /// bound) and never exceeds the exact sample's own bucket ceiling.
    #[test]
    fn quantiles_within_one_bucket_of_exact(
        samples in prop::collection::vec(sample(), 1..200),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.50, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let approx = h.quantile(q);
            prop_assert!(
                approx >= exact,
                "q{q}: approx {approx} < exact {exact} (rounding must be up)"
            );
            prop_assert!(
                approx <= bucket_upper_bound(bucket_index(exact)),
                "q{q}: approx {approx} left the exact sample's bucket \
                 (exact {exact}, ceiling {})",
                bucket_upper_bound(bucket_index(exact))
            );
        }
        // The extremes are tracked exactly, not per-bucket.
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    /// Merge is commutative and associative (order independence is what
    /// makes per-core shards deterministic to combine).
    #[test]
    fn merge_is_order_independent(
        a in prop::collection::vec(sample(), 0..50),
        b in prop::collection::vec(sample(), 0..50),
        c in prop::collection::vec(sample(), 0..50),
    ) {
        let h = |samples: &[u64]| {
            let mut h = Histogram::new();
            for &s in samples {
                h.record(s);
            }
            h
        };
        let (ha, hb, hc) = (h(&a), h(&b), h(&c));
        let mut ab_c = ha.clone();
        ab_c.merge(&hb);
        ab_c.merge(&hc);
        let mut c_ba = hc.clone();
        c_ba.merge(&hb);
        c_ba.merge(&ha);
        prop_assert_eq!(ab_c, c_ba);
    }
}
