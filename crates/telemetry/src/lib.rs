//! `cg-telemetry`: the always-on metrics plane for the CommGuard
//! reproduction.
//!
//! Where `cg-trace` is an event-level post-mortem tool you switch on
//! to debug, this crate is quantitative, low-overhead instrumentation
//! meant to run during every run: fixed-bucket log-scale latency
//! histograms with exact merge, per-frame and per-interval snapshot
//! series, per-node busy/wait time attribution, and run-wide ECC /
//! watchdog / recovery counters — exported as Prometheus text format
//! or newline-delimited JSON, inspectable with the `cg-telemetry`
//! binary.
//!
//! Design invariants:
//!
//! - **Zero cost when off.** A disabled [`CoreProbe`] is `None`
//!   inside; every record call is one branch. The `noop` cargo feature
//!   additionally forces construction to the disabled handle. The
//!   `telemetry_overhead` bench gate in `cg-bench` holds the disabled
//!   path within 2% of a build that never heard of telemetry.
//! - **Lock-free by ownership.** Each core's worker owns its probe;
//!   shards merge after the run, ordered by core id, so the merged
//!   report is deterministic.
//! - **Deterministic bytes on the deterministic executor.** The clock
//!   is the scheduler round counter and every exported quantity is an
//!   integer, so JSONL snapshots are byte-identical per seed.

pub mod clock;
pub mod hist;
pub mod jsonl;
pub mod prom;
pub mod registry;
pub mod report;

pub use clock::{Clock, ClockMode};
pub use hist::{bucket_index, bucket_upper_bound, Histogram, BUCKETS};
pub use jsonl::{from_jsonl, parse_jsonl, parse_jsonl_line, to_jsonl, JsonlRecord, JsonlValue};
pub use prom::{parse_prometheus, to_prometheus, PromSample};
pub use registry::{CoreProbe, Telemetry, TelemetryConfig};
pub use report::{FrameSnapshot, IntervalSnapshot, NodeTelemetry, RunCounters, TelemetryReport};
