//! Fixed-bucket log-scale histogram with exact merge.
//!
//! The bucket layout is the classic HDR scheme: values are grouped by
//! their most-significant bit into octaves, and each octave is split
//! into `SUB = 8` linear sub-buckets, giving a worst-case relative
//! quantile error of `1/SUB = 12.5%` — i.e. a reported quantile is
//! always the upper bound of the bucket that contains the exact
//! rank-order statistic ("within one bucket of exact").
//!
//! Why fixed buckets instead of sampling or t-digests: the bucket
//! index of a value is a pure function of the value, so merging shard
//! histograms is elementwise addition of counts — *exact*, order
//! independent, and deterministic. Per-core shards recorded on worker
//! threads merge into the run-level histogram with no coordination and
//! no approximation drift, which is what makes byte-identical
//! snapshots per seed possible on the deterministic executor.

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// Bucket index for a value. Monotone in `v`; total over `u64`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        ((msb - SUB_BITS + 1) as usize) * SUB + ((v >> shift) as usize - SUB)
    }
}

/// Inclusive upper bound of bucket `b` (the value a quantile reports).
#[inline]
pub fn bucket_upper_bound(b: usize) -> u64 {
    debug_assert!(b < BUCKETS);
    if b < SUB {
        b as u64
    } else {
        let octave = (b / SUB) as u32;
        let sub = (b % SUB) as u64;
        let shift = octave - 1;
        // The bucket start has its low `shift` bits clear, so OR-ing
        // the mask in is exact and cannot overflow at the top octave.
        ((SUB as u64 + sub) << shift) | ((1u64 << shift) - 1)
    }
}

/// Fixed-bucket log-scale histogram over `u64` samples.
///
/// `merge` is exact: merging per-shard histograms is indistinguishable
/// from recording the concatenated sample stream into one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        // Saturating sum = min(true sum, MAX): order-independent, so
        // sharded recording still merges exactly.
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Elementwise-exact merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// exact rank-`ceil(q * count)` sample, clamped to the observed
    /// max. Guaranteed within one bucket of the exact percentile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(upper_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_upper_bound(b), c))
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_total() {
        let mut values: Vec<u64> = (0..4096).collect();
        for shift in 0..64u32 {
            for delta in [0u64, 1, 2, 3] {
                values.push((1u64 << shift).saturating_add(delta));
                values.push((1u64 << shift).saturating_sub(1));
            }
        }
        values.push(u64::MAX);
        values.sort_unstable();
        for w in values.windows(2) {
            let (a, b) = (bucket_index(w[0]), bucket_index(w[1]));
            assert!(
                a <= b,
                "index not monotone: {} -> {a}, {} -> {b}",
                w[0],
                w[1]
            );
            assert!(b < BUCKETS);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn upper_bound_is_tight() {
        // Every value maps to a bucket whose upper bound is >= the
        // value, and the next value after the bound maps to a later
        // bucket.
        for v in (0..4096u64).chain([1 << 20, 1 << 40, u64::MAX - 1, u64::MAX]) {
            let b = bucket_index(v);
            let ub = bucket_upper_bound(b);
            assert!(ub >= v, "bound {ub} < value {v}");
            if ub < u64::MAX {
                assert_eq!(bucket_index(ub + 1), b + 1, "bound {ub} not tight for {v}");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 28);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn merge_equals_concatenated() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1000u64 {
            let v = i.wrapping_mul(2654435761) % (1 << 24);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }
}
