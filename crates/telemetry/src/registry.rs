//! The metric registry: a zero-cost-when-disabled handle plus per-core
//! probes that are lock-free by *ownership* — each worker thread owns
//! its probe outright, records into private shards, and the shards are
//! merged deterministically (ordered by core id) after the run.
//!
//! The shape mirrors `cg_trace::Tracer`: a disabled probe is a `None`
//! inside, so every recording call is a single predictable branch. The
//! `noop` cargo feature hard-disables construction so the whole plane
//! compiles down to those branches and nothing else.

use crate::clock::{Clock, ClockMode};
use crate::hist::Histogram;
use crate::report::{FrameSnapshot, IntervalSnapshot, NodeTelemetry, RunCounters, TelemetryReport};

/// Telemetry configuration carried inside `SimConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryConfig {
    /// No metrics: probes are inert, `RunReport.telemetry` is `None`.
    #[default]
    Off,
    /// Per-frame snapshots always; interval snapshots every `interval`
    /// frames.
    Enabled { interval: u64 },
}

impl TelemetryConfig {
    pub const DEFAULT_INTERVAL: u64 = 16;

    /// Enabled with the default interval.
    pub fn enabled() -> Self {
        TelemetryConfig::Enabled {
            interval: Self::DEFAULT_INTERVAL,
        }
    }

    pub fn is_enabled(&self) -> bool {
        matches!(self, TelemetryConfig::Enabled { .. })
    }

    /// Build the run-scoped registry handle. With the `noop` feature
    /// the result is always disabled, whatever the config says.
    pub fn telemetry(&self, mode: ClockMode) -> Telemetry {
        if cfg!(feature = "noop") {
            return Telemetry::disabled();
        }
        match *self {
            TelemetryConfig::Off => Telemetry::disabled(),
            TelemetryConfig::Enabled { interval } => Telemetry {
                inner: Some(TelemetryInner {
                    clock: Clock::new(mode),
                    interval: interval.max(1),
                }),
            },
        }
    }
}

/// Run-scoped registry handle. Cheap to clone; carries the shared
/// clock and the snapshot interval.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Option<TelemetryInner>,
}

#[derive(Debug, Clone)]
struct TelemetryInner {
    clock: Clock,
    interval: u64,
}

impl Telemetry {
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Publish the deterministic tick (scheduler round). One relaxed
    /// store per round when enabled; a branch when not.
    #[inline]
    pub fn advance_clock(&self, tick: u64) {
        if let Some(inner) = &self.inner {
            inner.clock.advance_to(tick);
        }
    }

    /// Create the probe a core's worker will own for the whole run.
    pub fn probe(&self, core: u32, name: &str) -> CoreProbe {
        match &self.inner {
            None => CoreProbe::disabled(),
            Some(inner) => CoreProbe {
                state: Some(Box::new(ProbeState {
                    core,
                    name: name.to_string(),
                    clock: inner.clock.clone(),
                    interval: inner.interval,
                    frame_open: false,
                    frame_start_at: 0,
                    frames: 0,
                    busy_in_frame: 0,
                    wait_in_frame: 0,
                    busy_total: 0,
                    wait_total: 0,
                    max_queue_occupancy: 0,
                    latency: Histogram::new(),
                    occupancy: Histogram::new(),
                    frames_rows: Vec::new(),
                    interval_rows: Vec::new(),
                    win_frames: 0,
                    win_latency_sum: 0,
                    win_latency_max: 0,
                    win_busy: 0,
                    win_wait: 0,
                    ecc_detected_last: 0,
                    ecc_corrected_last: 0,
                    win_ecc_detected: 0,
                    win_ecc_corrected: 0,
                })),
            },
        }
    }

    /// Assemble the `RunReport.telemetry` section from the probes the
    /// workers handed back, ordered deterministically by core id.
    pub fn finish(&self, probes: Vec<CoreProbe>, run: RunCounters) -> Option<TelemetryReport> {
        let inner = self.inner.as_ref()?;
        let mut nodes = Vec::new();
        let mut frames = Vec::new();
        let mut intervals = Vec::new();
        let mut states: Vec<Box<ProbeState>> = probes.into_iter().filter_map(|p| p.state).collect();
        states.sort_by_key(|s| s.core);
        for mut s in states {
            s.flush_window();
            frames.extend(s.frames_rows.iter().copied());
            intervals.extend(s.interval_rows.iter().copied());
            nodes.push(NodeTelemetry {
                core: s.core,
                name: s.name,
                frames: s.frames,
                busy: s.busy_total,
                wait: s.wait_total,
                max_queue_occupancy: s.max_queue_occupancy,
                latency: s.latency,
                occupancy: s.occupancy,
            });
        }
        frames.sort_by_key(|f| (f.core, f.frame));
        intervals.sort_by_key(|i| (i.core, i.frame));
        Some(TelemetryReport {
            clock_unit: inner.clock.mode().unit().to_string(),
            interval: inner.interval,
            nodes,
            frames,
            intervals,
            run,
        })
    }
}

/// Per-core recording endpoint. Owned (not shared) by the worker that
/// drives the core, so every method is plain mutation — no atomics, no
/// locks on the hot path. Disabled probes are a single branch per call.
#[derive(Debug)]
pub struct CoreProbe {
    state: Option<Box<ProbeState>>,
}

#[derive(Debug)]
struct ProbeState {
    core: u32,
    name: String,
    clock: Clock,
    interval: u64,
    frame_open: bool,
    frame_start_at: u64,
    frames: u64,
    busy_in_frame: u64,
    wait_in_frame: u64,
    busy_total: u64,
    wait_total: u64,
    max_queue_occupancy: u64,
    latency: Histogram,
    occupancy: Histogram,
    frames_rows: Vec<FrameSnapshot>,
    interval_rows: Vec<IntervalSnapshot>,
    // Current interval window accumulators.
    win_frames: u64,
    win_latency_sum: u64,
    win_latency_max: u64,
    win_busy: u64,
    win_wait: u64,
    // ECC totals are sampled cumulatively; the probe differences them.
    ecc_detected_last: u64,
    ecc_corrected_last: u64,
    win_ecc_detected: u64,
    win_ecc_corrected: u64,
}

impl CoreProbe {
    pub fn disabled() -> Self {
        CoreProbe { state: None }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Deterministic executor: record one scheduler visit, classified
    /// as busy (observable node state advanced) or wait (no progress).
    #[inline]
    pub fn visit(&mut self, progressed: bool) {
        if let Some(s) = &mut self.state {
            if progressed {
                s.busy_in_frame += 1;
                s.busy_total += 1;
            } else {
                s.wait_in_frame += 1;
                s.wait_total += 1;
            }
        }
    }

    /// Open a frame. Latency for the frame is measured from here.
    #[inline]
    pub fn frame_start(&mut self) {
        if let Some(s) = &mut self.state {
            s.frame_open = true;
            s.frame_start_at = s.clock.now();
            s.busy_in_frame = 0;
            s.wait_in_frame = 0;
        }
    }

    /// Threaded executor: start timing a potentially blocking queue
    /// op. Returns the tick to hand to [`CoreProbe::wait_end`]; `0`
    /// and no-op when disabled.
    #[inline]
    pub fn wait_begin(&self) -> u64 {
        match &self.state {
            Some(s) => s.clock.now(),
            None => 0,
        }
    }

    /// Close a wait window opened by [`CoreProbe::wait_begin`].
    #[inline]
    pub fn wait_end(&mut self, begin: u64) {
        if let Some(s) = &mut self.state {
            let d = s.clock.now().saturating_sub(begin);
            s.wait_in_frame += d;
            s.wait_total += d;
        }
    }

    /// Sample cumulative ECC totals for this core's input edges; the
    /// probe turns them into per-window deltas.
    #[inline]
    pub fn ecc_sample(&mut self, detected_total: u64, corrected_total: u64) {
        if let Some(s) = &mut self.state {
            s.win_ecc_detected += detected_total.saturating_sub(s.ecc_detected_last);
            s.win_ecc_corrected += corrected_total.saturating_sub(s.ecc_corrected_last);
            s.ecc_detected_last = detected_total;
            s.ecc_corrected_last = corrected_total;
        }
    }

    /// Commit the open frame: emit its snapshot row and roll the
    /// interval window. `queue_occupancy` is the max occupancy over
    /// the core's input edges observed at commit time.
    pub fn frame_commit(&mut self, queue_occupancy: u64, retries: u64, degrades: u64) {
        let Some(s) = &mut self.state else { return };
        if !s.frame_open {
            return;
        }
        s.frame_open = false;
        let at = s.clock.now();
        let latency = at.saturating_sub(s.frame_start_at);
        // Threaded attribution: busy is whatever part of the frame was
        // not spent waiting on queues. The deterministic executor
        // counts busy visits directly instead, and its latency in
        // rounds equals busy + wait visits by construction.
        let busy = if s.busy_in_frame > 0 {
            s.busy_in_frame
        } else {
            let b = latency.saturating_sub(s.wait_in_frame);
            s.busy_total += b;
            b
        };
        let frame = s.frames;
        s.frames += 1;
        s.latency.record(latency);
        s.occupancy.record(queue_occupancy);
        s.max_queue_occupancy = s.max_queue_occupancy.max(queue_occupancy);
        s.frames_rows.push(FrameSnapshot {
            core: s.core,
            frame,
            at,
            latency,
            busy,
            wait: s.wait_in_frame,
            queue_occupancy,
            retries,
            degrades,
        });
        s.win_frames += 1;
        s.win_latency_sum += latency;
        s.win_latency_max = s.win_latency_max.max(latency);
        s.win_busy += busy;
        s.win_wait += s.wait_in_frame;
        if s.win_frames >= s.interval {
            s.emit_window(frame, at);
        }
    }
}

impl ProbeState {
    fn emit_window(&mut self, frame: u64, at: u64) {
        self.interval_rows.push(IntervalSnapshot {
            core: self.core,
            frame,
            at,
            frames: self.win_frames,
            latency_sum: self.win_latency_sum,
            latency_max: self.win_latency_max,
            busy: self.win_busy,
            wait: self.win_wait,
            ecc_detected: self.win_ecc_detected,
            ecc_corrected: self.win_ecc_corrected,
        });
        self.win_frames = 0;
        self.win_latency_sum = 0;
        self.win_latency_max = 0;
        self.win_busy = 0;
        self.win_wait = 0;
        self.win_ecc_detected = 0;
        self.win_ecc_corrected = 0;
    }

    /// Emit a final partial window so no committed frame goes
    /// unreported in the interval series.
    fn flush_window(&mut self) {
        if self.win_frames > 0 {
            let frame = self.frames.saturating_sub(1);
            let at = self.frames_rows.last().map(|f| f.at).unwrap_or(0);
            self.emit_window(frame, at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_is_inert() {
        let telem = TelemetryConfig::Off.telemetry(ClockMode::Deterministic);
        assert!(!telem.is_enabled());
        let mut p = telem.probe(0, "src");
        assert!(!p.is_enabled());
        p.frame_start();
        p.visit(true);
        let w = p.wait_begin();
        p.wait_end(w);
        p.frame_commit(3, 0, 0);
        assert!(telem.finish(vec![p], RunCounters::default()).is_none());
    }

    #[test]
    fn deterministic_frames_attribute_visits() {
        let telem = TelemetryConfig::Enabled { interval: 2 }.telemetry(ClockMode::Deterministic);
        let mut p = telem.probe(1, "fir");
        for frame in 0..4u64 {
            telem.advance_clock(frame * 10);
            p.frame_start();
            p.visit(true);
            p.visit(false);
            p.visit(true);
            telem.advance_clock(frame * 10 + 3);
            p.ecc_sample(frame + 1, 0);
            p.frame_commit(frame, 0, 0);
        }
        let rep = telem.finish(vec![p], RunCounters::default()).unwrap();
        assert_eq!(rep.clock_unit, "rounds");
        assert_eq!(rep.frames.len(), 4);
        let f0 = rep.frames[0];
        assert_eq!(
            (f0.core, f0.frame, f0.latency, f0.busy, f0.wait),
            (1, 0, 3, 2, 1)
        );
        assert_eq!(rep.intervals.len(), 2);
        assert_eq!(rep.intervals[0].frames, 2);
        assert_eq!(rep.intervals[0].ecc_detected, 2);
        let n = &rep.nodes[0];
        assert_eq!(n.frames, 4);
        assert_eq!(n.busy + n.wait, 12);
        assert_eq!(n.max_queue_occupancy, 3);
        assert!((n.busy_pct() + n.wait_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn wall_frames_split_latency_into_busy_and_wait() {
        let telem = TelemetryConfig::enabled().telemetry(ClockMode::Wall);
        let mut p = telem.probe(0, "sink");
        p.frame_start();
        let w = p.wait_begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.wait_end(w);
        p.frame_commit(1, 1, 0);
        let rep = telem.finish(vec![p], RunCounters::default()).unwrap();
        assert_eq!(rep.clock_unit, "us");
        let f = rep.frames[0];
        assert!(f.wait >= 1000, "wait {} too small", f.wait);
        assert_eq!(f.latency, f.busy + f.wait);
        assert_eq!(f.retries, 1);
        // Partial interval window flushed at finish.
        assert_eq!(rep.intervals.len(), 1);
        assert_eq!(rep.intervals[0].frames, 1);
    }

    #[test]
    fn finish_orders_shards_by_core() {
        let telem = TelemetryConfig::enabled().telemetry(ClockMode::Deterministic);
        let mut a = telem.probe(2, "late");
        let mut b = telem.probe(0, "early");
        for p in [&mut a, &mut b] {
            p.frame_start();
            p.visit(true);
            p.frame_commit(0, 0, 0);
        }
        let rep = telem.finish(vec![a, b], RunCounters::default()).unwrap();
        let cores: Vec<u32> = rep.nodes.iter().map(|n| n.core).collect();
        assert_eq!(cores, vec![0, 2]);
        let frame_cores: Vec<u32> = rep.frames.iter().map(|f| f.core).collect();
        assert_eq!(frame_cores, vec![0, 2]);
    }
}
