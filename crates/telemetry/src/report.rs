//! Run-level telemetry: per-node summaries, the snapshot series, and
//! run-wide counters, assembled after both executors finish.

use crate::hist::Histogram;

/// One row per committed frame per core. The always-on series: with
/// telemetry enabled every frame emits at least one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSnapshot {
    pub core: u32,
    pub frame: u64,
    /// Clock tick at commit (rounds on the deterministic executor,
    /// microseconds since run start on the threaded one).
    pub at: u64,
    /// Ticks from frame start to commit.
    pub latency: u64,
    /// Ticks attributed to forward progress within the frame.
    pub busy: u64,
    /// Ticks spent blocked or transferring on queue endpoints.
    pub wait: u64,
    /// Max input-queue occupancy observed at commit.
    pub queue_occupancy: u64,
    /// Frame retries charged to this frame (threaded recovery ladder).
    pub retries: u64,
    /// Degraded commits charged to this frame.
    pub degrades: u64,
}

/// Aggregate row emitted every `interval` frames per core, carrying
/// window deltas that would be noisy per frame (ECC activity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalSnapshot {
    pub core: u32,
    /// Last frame included in the window.
    pub frame: u64,
    pub at: u64,
    /// Frames in the window.
    pub frames: u64,
    pub latency_sum: u64,
    pub latency_max: u64,
    pub busy: u64,
    pub wait: u64,
    /// ECC detections observed on this core's input edges in the window.
    pub ecc_detected: u64,
    /// ECC single-bit corrections in the window.
    pub ecc_corrected: u64,
}

/// Per-node (= per-core) telemetry summary.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTelemetry {
    pub core: u32,
    pub name: String,
    pub frames: u64,
    /// Total busy ticks across the run.
    pub busy: u64,
    /// Total wait ticks (blocked / transferring on queues).
    pub wait: u64,
    pub max_queue_occupancy: u64,
    pub latency: Histogram,
    pub occupancy: Histogram,
}

impl NodeTelemetry {
    /// Ticks attributed to either bucket. Attribution percentages are
    /// taken against this total, so busy% + wait% == 100 by
    /// construction whenever the node did any work.
    pub fn total(&self) -> u64 {
        self.busy + self.wait
    }

    pub fn busy_pct(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            100.0 * self.busy as f64 / t as f64
        }
    }

    pub fn wait_pct(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            100.0 * self.wait as f64 / t as f64
        }
    }
}

/// Run-wide counters folded in from the executor's report so exporters
/// see one self-contained document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunCounters {
    pub frames: u64,
    pub ecc_checks: u64,
    pub ecc_detected: u64,
    pub ecc_corrected: u64,
    /// Watchdog rung 1: armed pop timeouts.
    pub wd_arm_timeouts: u64,
    /// Watchdog rung 2: forced progress.
    pub wd_forced_progress: u64,
    /// Watchdog rung 3: frame aborts.
    pub wd_frame_aborts: u64,
    /// Watchdog rung 4: degraded frames.
    pub wd_frame_degrades: u64,
    pub frame_retries: u64,
    pub realignment_episodes: u64,
    pub faults_injected: u64,
    pub blocked_ops: u64,
    pub queue_timeouts: u64,
}

/// The `RunReport.telemetry` section.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Clock unit: `"rounds"` (deterministic) or `"us"` (wall).
    pub clock_unit: String,
    /// Interval-snapshot period in frames.
    pub interval: u64,
    /// Per-node summaries, ordered by core id.
    pub nodes: Vec<NodeTelemetry>,
    /// Per-frame snapshots, ordered by (core, frame).
    pub frames: Vec<FrameSnapshot>,
    /// Per-interval snapshots, ordered by (core, frame).
    pub intervals: Vec<IntervalSnapshot>,
    pub run: RunCounters,
}

impl TelemetryReport {
    /// Frame-latency histogram merged across all cores — exact, since
    /// fixed-bucket merge is elementwise addition.
    pub fn merged_latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for n in &self.nodes {
            h.merge(&n.latency);
        }
        h
    }

    /// Human-oriented one-screen summary (used by the binary and the
    /// campaign runner's verbose mode).
    pub fn render_summary(&self) -> String {
        let lat = self.merged_latency();
        let mut out = String::new();
        out.push_str(&format!(
            "frame latency ({unit}): p50={} p90={} p99={} max={}  ({} frames, {} snapshots)\n",
            lat.quantile(0.50),
            lat.quantile(0.90),
            lat.quantile(0.99),
            lat.max(),
            lat.count(),
            self.frames.len(),
            unit = self.clock_unit,
        ));
        out.push_str(&format!(
            "{:<18} {:>7} {:>10} {:>10} {:>6} {:>6} {:>7} {:>7} {:>5}\n",
            "node", "frames", "busy", "wait", "busy%", "wait%", "p50", "p99", "maxq"
        ));
        for n in &self.nodes {
            out.push_str(&format!(
                "{:<18} {:>7} {:>10} {:>10} {:>5.1}% {:>5.1}% {:>7} {:>7} {:>5}\n",
                n.name,
                n.frames,
                n.busy,
                n.wait,
                n.busy_pct(),
                n.wait_pct(),
                n.latency.quantile(0.50),
                n.latency.quantile(0.99),
                n.max_queue_occupancy,
            ));
        }
        let r = &self.run;
        out.push_str(&format!(
            "ecc: {} checks, {} detected, {} corrected | watchdog rungs: {}/{}/{}/{} | \
             retries {} realign {} faults {}\n",
            r.ecc_checks,
            r.ecc_detected,
            r.ecc_corrected,
            r.wd_arm_timeouts,
            r.wd_forced_progress,
            r.wd_frame_aborts,
            r.wd_frame_degrades,
            r.frame_retries,
            r.realignment_episodes,
            r.faults_injected,
        ));
        out
    }
}
