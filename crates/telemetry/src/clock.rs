//! Time sources for the metrics plane.
//!
//! The deterministic executor measures time in *scheduler rounds*: the
//! executor publishes the round counter into a shared atomic once per
//! round and every probe reads it, so identical seeds produce
//! byte-identical timestamps. The threaded executor measures wall
//! clock in microseconds since run start — real latency, inherently
//! non-deterministic, which is fine because the determinism contract
//! only covers the deterministic executor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which time source a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Ticks are scheduler rounds, advanced explicitly by the executor.
    Deterministic,
    /// Ticks are microseconds of wall clock since the clock was built.
    Wall,
}

impl ClockMode {
    pub fn unit(self) -> &'static str {
        match self {
            ClockMode::Deterministic => "rounds",
            ClockMode::Wall => "us",
        }
    }
}

/// A cloneable handle on the run's time source.
#[derive(Debug, Clone)]
pub struct Clock {
    inner: ClockInner,
}

#[derive(Debug, Clone)]
enum ClockInner {
    Det(Arc<AtomicU64>),
    Wall(Instant),
}

impl Clock {
    pub fn new(mode: ClockMode) -> Self {
        let inner = match mode {
            ClockMode::Deterministic => ClockInner::Det(Arc::new(AtomicU64::new(0))),
            ClockMode::Wall => ClockInner::Wall(Instant::now()),
        };
        Self { inner }
    }

    pub fn mode(&self) -> ClockMode {
        match self.inner {
            ClockInner::Det(_) => ClockMode::Deterministic,
            ClockInner::Wall(_) => ClockMode::Wall,
        }
    }

    /// Publish the current tick. No-op for wall clocks; the
    /// deterministic executor calls this once per scheduler round.
    #[inline]
    pub fn advance_to(&self, tick: u64) {
        if let ClockInner::Det(t) = &self.inner {
            t.store(tick, Ordering::Relaxed);
        }
    }

    /// Current tick: published round count, or elapsed microseconds.
    #[inline]
    pub fn now(&self) -> u64 {
        match &self.inner {
            ClockInner::Det(t) => t.load(Ordering::Relaxed),
            ClockInner::Wall(origin) => origin.elapsed().as_micros() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_clock_reads_published_ticks() {
        let c = Clock::new(ClockMode::Deterministic);
        assert_eq!(c.now(), 0);
        c.advance_to(17);
        let c2 = c.clone();
        assert_eq!(c2.now(), 17);
        assert_eq!(c.mode().unit(), "rounds");
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = Clock::new(ClockMode::Wall);
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        c.advance_to(99); // no-op
        assert_eq!(c.mode().unit(), "us");
    }
}
