//! Newline-delimited JSON snapshot export and its inverse.
//!
//! One flat object per line, integer-valued throughout (derived
//! floats are left to readers), so the bytes are a pure function of
//! the recorded counters — this is what the deterministic-executor
//! byte-identity test hashes. The parser here is deliberately tiny:
//! flat objects of strings and unsigned integers, exactly the shape
//! the writer emits, so the `cg-telemetry` binary and tests can round
//! trip files without a JSON dependency.

use crate::hist::Histogram;
use crate::report::{FrameSnapshot, IntervalSnapshot, NodeTelemetry, RunCounters, TelemetryReport};

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the report as newline-delimited JSON snapshots.
pub fn to_jsonl(report: &TelemetryReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"version\":1,\"clock\":\"{}\",\"interval\":{}}}\n",
        escape_json(&report.clock_unit),
        report.interval
    ));
    for n in &report.nodes {
        out.push_str(&format!(
            "{{\"type\":\"node\",\"core\":{},\"name\":\"{}\",\"frames\":{},\"busy\":{},\
             \"wait\":{},\"max_queue_occupancy\":{},\"latency_p50\":{},\"latency_p90\":{},\
             \"latency_p99\":{},\"latency_max\":{},\"latency_sum\":{}}}\n",
            n.core,
            escape_json(&n.name),
            n.frames,
            n.busy,
            n.wait,
            n.max_queue_occupancy,
            n.latency.quantile(0.50),
            n.latency.quantile(0.90),
            n.latency.quantile(0.99),
            n.latency.max(),
            n.latency.sum(),
        ));
    }
    for f in &report.frames {
        out.push_str(&format!(
            "{{\"type\":\"frame\",\"core\":{},\"frame\":{},\"at\":{},\"latency\":{},\
             \"busy\":{},\"wait\":{},\"occupancy\":{},\"retries\":{},\"degrades\":{}}}\n",
            f.core,
            f.frame,
            f.at,
            f.latency,
            f.busy,
            f.wait,
            f.queue_occupancy,
            f.retries,
            f.degrades,
        ));
    }
    for i in &report.intervals {
        out.push_str(&format!(
            "{{\"type\":\"interval\",\"core\":{},\"frame\":{},\"at\":{},\"frames\":{},\
             \"latency_sum\":{},\"latency_max\":{},\"busy\":{},\"wait\":{},\
             \"ecc_detected\":{},\"ecc_corrected\":{}}}\n",
            i.core,
            i.frame,
            i.at,
            i.frames,
            i.latency_sum,
            i.latency_max,
            i.busy,
            i.wait,
            i.ecc_detected,
            i.ecc_corrected,
        ));
    }
    let r = &report.run;
    out.push_str(&format!(
        "{{\"type\":\"run\",\"frames\":{},\"ecc_checks\":{},\"ecc_detected\":{},\
         \"ecc_corrected\":{},\"wd_arm_timeouts\":{},\"wd_forced_progress\":{},\
         \"wd_frame_aborts\":{},\"wd_frame_degrades\":{},\"frame_retries\":{},\
         \"realign_episodes\":{},\"faults_injected\":{},\"blocked_ops\":{},\
         \"queue_timeouts\":{}}}\n",
        r.frames,
        r.ecc_checks,
        r.ecc_detected,
        r.ecc_corrected,
        r.wd_arm_timeouts,
        r.wd_forced_progress,
        r.wd_frame_aborts,
        r.wd_frame_degrades,
        r.frame_retries,
        r.realignment_episodes,
        r.faults_injected,
        r.blocked_ops,
        r.queue_timeouts,
    ));
    out
}

/// Value in a flat snapshot object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonlValue {
    Int(u64),
    Str(String),
}

impl JsonlValue {
    pub fn as_int(&self) -> Option<u64> {
        match self {
            JsonlValue::Int(v) => Some(*v),
            JsonlValue::Str(_) => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonlValue::Str(s) => Some(s),
            JsonlValue::Int(_) => None,
        }
    }
}

/// One parsed snapshot line: ordered key/value pairs.
pub type JsonlRecord = Vec<(String, JsonlValue)>;

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    let mut s = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => return Ok(s),
            Some('\\') => match chars.next() {
                Some('n') => s.push('\n'),
                Some('r') => s.push('\r'),
                Some('t') => s.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars.next().ok_or("bad \\u escape")?;
                        code = code * 16 + d.to_digit(16).ok_or("bad \\u digit")?;
                    }
                    s.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                }
                Some(other) => s.push(other),
                None => return Err("dangling escape".to_string()),
            },
            Some(c) => s.push(c),
        }
    }
}

/// Parse one flat-object line.
pub fn parse_jsonl_line(line: &str) -> Result<JsonlRecord, String> {
    let mut chars = line.trim().chars().peekable();
    if chars.next() != Some('{') {
        return Err(format!("line does not start an object: {line:?}"));
    }
    let mut rec = JsonlRecord::new();
    loop {
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some(',') | Some(' ') => {
                chars.next();
            }
            Some('"') => {
                chars.next();
                let key = parse_string(&mut chars)?;
                if chars.next() != Some(':') {
                    return Err(format!("missing ':' after key {key:?}"));
                }
                while chars.peek() == Some(&' ') {
                    chars.next();
                }
                match chars.peek() {
                    Some('"') => {
                        chars.next();
                        let v = parse_string(&mut chars)?;
                        rec.push((key, JsonlValue::Str(v)));
                    }
                    Some(c) if c.is_ascii_digit() => {
                        let mut n: u64 = 0;
                        while let Some(c) = chars.peek() {
                            if let Some(d) = c.to_digit(10) {
                                n = n
                                    .checked_mul(10)
                                    .and_then(|n| n.checked_add(d as u64))
                                    .ok_or("integer overflow")?;
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        rec.push((key, JsonlValue::Int(n)));
                    }
                    other => return Err(format!("unsupported value start {other:?}")),
                }
            }
            other => return Err(format!("unexpected token {other:?} in {line:?}")),
        }
    }
    Ok(rec)
}

/// Parse a whole snapshot document into records (blank lines skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<JsonlRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(n, l)| parse_jsonl_line(l).map_err(|e| format!("line {}: {e}", n + 1)))
        .collect()
}

fn get_int(rec: &JsonlRecord, key: &str) -> Result<u64, String> {
    rec.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_int())
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

fn get_str<'a>(rec: &'a JsonlRecord, key: &str) -> Result<&'a str, String> {
    rec.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// Rebuild a [`TelemetryReport`] from its JSONL export. Histograms are
/// reconstructed from the per-frame rows (every committed frame has
/// one), so a round trip reproduces the original report exactly.
pub fn from_jsonl(text: &str) -> Result<TelemetryReport, String> {
    let records = parse_jsonl(text)?;
    let mut clock_unit = String::from("rounds");
    let mut interval = 1u64;
    let mut nodes: Vec<NodeTelemetry> = Vec::new();
    let mut frames: Vec<FrameSnapshot> = Vec::new();
    let mut intervals: Vec<IntervalSnapshot> = Vec::new();
    let mut run = RunCounters::default();
    for rec in &records {
        match get_str(rec, "type")? {
            "meta" => {
                clock_unit = get_str(rec, "clock")?.to_string();
                interval = get_int(rec, "interval")?;
            }
            "node" => nodes.push(NodeTelemetry {
                core: get_int(rec, "core")? as u32,
                name: get_str(rec, "name")?.to_string(),
                frames: get_int(rec, "frames")?,
                busy: get_int(rec, "busy")?,
                wait: get_int(rec, "wait")?,
                max_queue_occupancy: get_int(rec, "max_queue_occupancy")?,
                latency: Histogram::new(),
                occupancy: Histogram::new(),
            }),
            "frame" => frames.push(FrameSnapshot {
                core: get_int(rec, "core")? as u32,
                frame: get_int(rec, "frame")?,
                at: get_int(rec, "at")?,
                latency: get_int(rec, "latency")?,
                busy: get_int(rec, "busy")?,
                wait: get_int(rec, "wait")?,
                queue_occupancy: get_int(rec, "occupancy")?,
                retries: get_int(rec, "retries")?,
                degrades: get_int(rec, "degrades")?,
            }),
            "interval" => intervals.push(IntervalSnapshot {
                core: get_int(rec, "core")? as u32,
                frame: get_int(rec, "frame")?,
                at: get_int(rec, "at")?,
                frames: get_int(rec, "frames")?,
                latency_sum: get_int(rec, "latency_sum")?,
                latency_max: get_int(rec, "latency_max")?,
                busy: get_int(rec, "busy")?,
                wait: get_int(rec, "wait")?,
                ecc_detected: get_int(rec, "ecc_detected")?,
                ecc_corrected: get_int(rec, "ecc_corrected")?,
            }),
            "run" => {
                run = RunCounters {
                    frames: get_int(rec, "frames")?,
                    ecc_checks: get_int(rec, "ecc_checks")?,
                    ecc_detected: get_int(rec, "ecc_detected")?,
                    ecc_corrected: get_int(rec, "ecc_corrected")?,
                    wd_arm_timeouts: get_int(rec, "wd_arm_timeouts")?,
                    wd_forced_progress: get_int(rec, "wd_forced_progress")?,
                    wd_frame_aborts: get_int(rec, "wd_frame_aborts")?,
                    wd_frame_degrades: get_int(rec, "wd_frame_degrades")?,
                    frame_retries: get_int(rec, "frame_retries")?,
                    realignment_episodes: get_int(rec, "realign_episodes")?,
                    faults_injected: get_int(rec, "faults_injected")?,
                    blocked_ops: get_int(rec, "blocked_ops")?,
                    queue_timeouts: get_int(rec, "queue_timeouts")?,
                };
            }
            other => return Err(format!("unknown record type {other:?}")),
        }
    }
    for f in &frames {
        if let Some(n) = nodes.iter_mut().find(|n| n.core == f.core) {
            n.latency.record(f.latency);
            n.occupancy.record(f.queue_occupancy);
        }
    }
    Ok(TelemetryReport {
        clock_unit,
        interval,
        nodes,
        frames,
        intervals,
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockMode;
    use crate::registry::TelemetryConfig;

    fn sample_report() -> TelemetryReport {
        let telem = TelemetryConfig::Enabled { interval: 2 }.telemetry(ClockMode::Deterministic);
        let mut a = telem.probe(0, "src \"quoted\"");
        let mut b = telem.probe(1, "sink");
        for frame in 0..5u64 {
            telem.advance_clock(frame * 7);
            for p in [&mut a, &mut b] {
                p.frame_start();
                p.visit(true);
                p.visit(frame % 2 == 0);
            }
            telem.advance_clock(frame * 7 + 4);
            a.ecc_sample(frame, frame / 2);
            a.frame_commit(frame % 3, 0, 0);
            b.frame_commit(1, frame % 2, 0);
        }
        telem
            .finish(
                vec![a, b],
                RunCounters {
                    frames: 5,
                    ecc_checks: 10,
                    faults_injected: 2,
                    ..Default::default()
                },
            )
            .unwrap()
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let rep = sample_report();
        let text = to_jsonl(&rep);
        let back = from_jsonl(&text).expect("parse");
        assert_eq!(back, rep);
        // And the re-export is byte-identical.
        assert_eq!(to_jsonl(&back), text);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_jsonl("{\"type\":\"frame\"").is_err());
        assert!(parse_jsonl("[1,2,3]").is_err());
        assert!(parse_jsonl("{\"x\":-1}").is_err());
        assert!(from_jsonl("{\"type\":\"mystery\"}").is_err());
    }

    #[test]
    fn every_committed_frame_has_a_snapshot_line() {
        let rep = sample_report();
        let text = to_jsonl(&rep);
        let frames = parse_jsonl(&text)
            .unwrap()
            .into_iter()
            .filter(|r| get_str(r, "type") == Ok("frame"))
            .count();
        assert_eq!(
            frames as u64,
            rep.nodes.iter().map(|n| n.frames).sum::<u64>()
        );
    }
}
