//! Inspection CLI for telemetry snapshot files.
//!
//! ```text
//! cg-telemetry summary RUN.jsonl            # one-screen latency/attribution digest
//! cg-telemetry top RUN.jsonl [--by busy|wait|latency] [-n N]
//! cg-telemetry export RUN.jsonl --format prom [--out FILE]
//! ```

use cg_telemetry::{from_jsonl, to_jsonl, to_prometheus, TelemetryReport};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cg-telemetry <summary|top|export> FILE.jsonl [options]\n\
         \n\
         summary FILE.jsonl\n\
         top FILE.jsonl [--by busy|wait|latency] [-n N]\n\
         export FILE.jsonl --format prom|jsonl [--out FILE]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<TelemetryReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    from_jsonl(&text)
}

fn cmd_summary(report: &TelemetryReport) {
    print!("{}", report.render_summary());
}

fn cmd_top(report: &TelemetryReport, by: &str, n: usize) -> Result<(), String> {
    let mut rows: Vec<_> = report.nodes.iter().collect();
    match by {
        "busy" => rows.sort_by_key(|r| std::cmp::Reverse((r.busy, r.core))),
        "wait" => rows.sort_by_key(|r| std::cmp::Reverse((r.wait, r.core))),
        "latency" => rows.sort_by_key(|r| std::cmp::Reverse((r.latency.quantile(0.99), r.core))),
        other => return Err(format!("unknown --by {other:?} (busy|wait|latency)")),
    }
    println!(
        "{:<18} {:>6} {:>10} {:>10} {:>6} {:>8} {:>8}",
        "node", "core", "busy", "wait", "busy%", "p99", "maxq"
    );
    for node in rows.into_iter().take(n) {
        println!(
            "{:<18} {:>6} {:>10} {:>10} {:>5.1}% {:>8} {:>8}",
            node.name,
            node.core,
            node.busy,
            node.wait,
            node.busy_pct(),
            node.latency.quantile(0.99),
            node.max_queue_occupancy,
        );
    }
    Ok(())
}

fn cmd_export(report: &TelemetryReport, format: &str, out: Option<&str>) -> Result<(), String> {
    let text = match format {
        "prom" | "prometheus" => to_prometheus(report),
        "jsonl" => to_jsonl(report),
        other => return Err(format!("unknown --format {other:?} (prom|jsonl)")),
    };
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args
        .first()
        .map(String::as_str)
        .ok_or("missing subcommand")?;
    // The snapshot file is the first non-flag operand, wherever it
    // appears: `top FILE --by wait` and `top --by wait FILE` both work.
    let mut file = None;
    let mut by = "busy".to_string();
    let mut n = 10usize;
    let mut format = "prom".to_string();
    let mut out = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--by" => by = it.next().ok_or("--by needs a value")?.clone(),
            "-n" => {
                n = it
                    .next()
                    .ok_or("-n needs a value")?
                    .parse()
                    .map_err(|_| "-n needs an integer")?
            }
            "--format" => format = it.next().ok_or("--format needs a value")?.clone(),
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            operand if file.is_none() => file = Some(operand.to_string()),
            extra => return Err(format!("unexpected operand {extra:?}")),
        }
    }
    let report = load(file.as_deref().ok_or("missing snapshot file")?)?;
    match cmd {
        "summary" => {
            cmd_summary(&report);
            Ok(())
        }
        "top" => cmd_top(&report, &by, n),
        "export" => cmd_export(&report, &format, out.as_deref()),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cg-telemetry: {e}");
            usage()
        }
    }
}
