//! Prometheus text-exposition export and a small scrape validator.
//!
//! The writer emits the classic text format (`# HELP` / `# TYPE`
//! comments, cumulative `_bucket{le="..."}` histogram series ending in
//! `+Inf`, `_sum` / `_count`). The validator re-parses the output with
//! the same grammar a scraper uses — metric names, label syntax,
//! numeric values, bucket monotonicity, and count/+Inf agreement — so
//! tests can assert "scrape-parseable" without a Prometheus binary.

use crate::report::TelemetryReport;
use std::fmt::Write as _;

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn write_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    node: &str,
    hist: &crate::hist::Histogram,
    typed: &mut std::collections::BTreeSet<String>,
) {
    if typed.insert(name.to_string()) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
    }
    let node = escape_label(node);
    let mut cum = 0u64;
    for (ub, c) in hist.nonzero_buckets() {
        cum += c;
        let _ = writeln!(out, "{name}_bucket{{node=\"{node}\",le=\"{ub}\"}} {cum}");
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{node=\"{node}\",le=\"+Inf\"}} {}",
        hist.count()
    );
    let _ = writeln!(out, "{name}_sum{{node=\"{node}\"}} {}", hist.sum());
    let _ = writeln!(out, "{name}_count{{node=\"{node}\"}} {}", hist.count());
}

/// Render the report in Prometheus text-exposition format.
pub fn to_prometheus(report: &TelemetryReport) -> String {
    let mut out = String::new();
    let mut typed = std::collections::BTreeSet::new();
    let unit = escape_label(&report.clock_unit);
    let _ = writeln!(
        out,
        "# HELP cg_clock_info Clock unit for all tick-valued metrics."
    );
    let _ = writeln!(out, "# TYPE cg_clock_info gauge");
    let _ = writeln!(out, "cg_clock_info{{unit=\"{unit}\"}} 1");

    for n in &report.nodes {
        write_histogram(
            &mut out,
            "cg_frame_latency_ticks",
            "Per-frame commit latency per node, in clock ticks.",
            &n.name,
            &n.latency,
            &mut typed,
        );
    }
    for n in &report.nodes {
        write_histogram(
            &mut out,
            "cg_queue_occupancy_items",
            "Input-queue occupancy sampled at frame commits.",
            &n.name,
            &n.occupancy,
            &mut typed,
        );
    }

    let _ = writeln!(
        out,
        "# HELP cg_node_busy_ticks_total Ticks attributed to forward progress."
    );
    let _ = writeln!(out, "# TYPE cg_node_busy_ticks_total counter");
    for n in &report.nodes {
        let _ = writeln!(
            out,
            "cg_node_busy_ticks_total{{node=\"{}\"}} {}",
            escape_label(&n.name),
            n.busy
        );
    }
    let _ = writeln!(
        out,
        "# HELP cg_node_wait_ticks_total Ticks blocked or transferring on queues."
    );
    let _ = writeln!(out, "# TYPE cg_node_wait_ticks_total counter");
    for n in &report.nodes {
        let _ = writeln!(
            out,
            "cg_node_wait_ticks_total{{node=\"{}\"}} {}",
            escape_label(&n.name),
            n.wait
        );
    }
    let _ = writeln!(
        out,
        "# HELP cg_node_frames_total Frames committed per node."
    );
    let _ = writeln!(out, "# TYPE cg_node_frames_total counter");
    for n in &report.nodes {
        let _ = writeln!(
            out,
            "cg_node_frames_total{{node=\"{}\"}} {}",
            escape_label(&n.name),
            n.frames
        );
    }
    let _ = writeln!(
        out,
        "# HELP cg_queue_max_occupancy_items High-water input-queue occupancy."
    );
    let _ = writeln!(out, "# TYPE cg_queue_max_occupancy_items gauge");
    for n in &report.nodes {
        let _ = writeln!(
            out,
            "cg_queue_max_occupancy_items{{node=\"{}\"}} {}",
            escape_label(&n.name),
            n.max_queue_occupancy
        );
    }

    let r = &report.run;
    let scalars: [(&str, &str, u64); 9] = [
        ("cg_run_frames", "Frames configured for the run.", r.frames),
        (
            "cg_ecc_checks_total",
            "ECC syndrome checks performed.",
            r.ecc_checks,
        ),
        (
            "cg_ecc_detected_total",
            "ECC detections (uncorrectable included).",
            r.ecc_detected,
        ),
        (
            "cg_ecc_corrected_total",
            "ECC single-bit corrections.",
            r.ecc_corrected,
        ),
        (
            "cg_frame_retries_total",
            "Frame-level re-executions.",
            r.frame_retries,
        ),
        (
            "cg_realign_episodes_total",
            "Alignment-manager realignment episodes.",
            r.realignment_episodes,
        ),
        (
            "cg_faults_injected_total",
            "Faults injected by the campaign.",
            r.faults_injected,
        ),
        (
            "cg_queue_blocked_ops_total",
            "Blocked pushes plus blocked pops.",
            r.blocked_ops,
        ),
        (
            "cg_queue_timeouts_total",
            "Queue-manager pop/push timeouts.",
            r.queue_timeouts,
        ),
    ];
    for (name, help, v) in scalars {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    let _ = writeln!(
        out,
        "# HELP cg_watchdog_escalations_total Watchdog ladder escalations by rung."
    );
    let _ = writeln!(out, "# TYPE cg_watchdog_escalations_total counter");
    for (rung, v) in [
        ("arm_timeouts", r.wd_arm_timeouts),
        ("forced_progress", r.wd_forced_progress),
        ("frame_aborts", r.wd_frame_aborts),
        ("frame_degrades", r.wd_frame_degrades),
    ] {
        let _ = writeln!(out, "cg_watchdog_escalations_total{{rung=\"{rung}\"}} {v}");
    }
    out
}

/// A parsed sample line: metric name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].trim();
        if !valid_metric_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value not quoted near {rest:?}"));
        }
        rest = &rest[1..];
        let mut val = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| "dangling escape in label".to_string())?;
                    val.push(match esc {
                        'n' => '\n',
                        other => other,
                    });
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                other => val.push(other),
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_string())?;
        labels.push((key.to_string(), val));
        rest = rest[end + 1..].trim_start_matches(',');
    }
    Ok(labels)
}

/// Parse one sample line (`name{labels} value`).
fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (head, value) = match line.rfind(|c: char| c.is_ascii_whitespace()) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => return Err(format!("no value on line {line:?}")),
    };
    let value: f64 = if value == "+Inf" {
        f64::INFINITY
    } else {
        value
            .parse()
            .map_err(|_| format!("bad value {value:?} on {line:?}"))?
    };
    let head = head.trim();
    let (name, labels) = match head.find('{') {
        None => (head.to_string(), Vec::new()),
        Some(open) => {
            if !head.ends_with('}') {
                return Err(format!("unterminated label set: {head:?}"));
            }
            (
                head[..open].to_string(),
                parse_labels(&head[open + 1..head.len() - 1])?,
            )
        }
    };
    if !valid_metric_name(&name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

/// Parse a full exposition document into samples, enforcing the
/// constraints a scraper enforces. Returns the samples on success.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let c = comment.trim_start();
            if !(c.starts_with("HELP ") || c.starts_with("TYPE ") || c.is_empty()) {
                // Plain comments are legal; HELP/TYPE must be well formed.
                if c.starts_with("HELP") || c.starts_with("TYPE") {
                    return Err(format!("line {}: malformed directive {line:?}", ln + 1));
                }
            }
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", ln + 1))?);
    }
    // Histogram coherence: per (name, non-le labels) series, `le`
    // bounds strictly increase, cumulative counts are monotone, and
    // the +Inf bucket equals the matching _count sample.
    type Labels = Vec<(String, String)>;
    let mut inf_counts: Vec<(String, Labels, f64)> = Vec::new();
    let mut counts: Vec<(String, Labels, f64)> = Vec::new();
    let mut last_bucket: Option<(String, Labels, f64, f64)> = None;
    for s in &samples {
        if let Some(base) = s.name.strip_suffix("_bucket") {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("{}: bucket without le", s.name))?
                .1
                .clone();
            let bound: f64 = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().map_err(|_| format!("bad le {le:?}"))?
            };
            let rest: Vec<(String, String)> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            if let Some((pname, plabels, pbound, pcum)) = &last_bucket {
                if *pname == s.name && *plabels == rest {
                    if bound <= *pbound {
                        return Err(format!("{}: le bounds not increasing", s.name));
                    }
                    if s.value < *pcum {
                        return Err(format!("{}: cumulative counts decreasing", s.name));
                    }
                }
            }
            if bound.is_infinite() {
                inf_counts.push((base.to_string(), rest, s.value));
                last_bucket = None;
            } else {
                last_bucket = Some((s.name.clone(), rest, bound, s.value));
            }
        } else if let Some(base) = s.name.strip_suffix("_count") {
            counts.push((base.to_string(), s.labels.clone(), s.value));
        }
    }
    for (base, labels, v) in &inf_counts {
        let found = counts.iter().find(|(b, l, _)| b == base && l == labels);
        match found {
            Some((_, _, c)) if c == v => {}
            Some((_, _, c)) => {
                return Err(format!("{base}: +Inf bucket {v} != count {c}"));
            }
            None => return Err(format!("{base}: histogram missing _count")),
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::report::{NodeTelemetry, RunCounters, TelemetryReport};

    fn sample_report() -> TelemetryReport {
        let mut lat = Histogram::new();
        let mut occ = Histogram::new();
        for v in [3u64, 5, 5, 900, 17] {
            lat.record(v);
        }
        for v in [0u64, 2, 4, 4, 1] {
            occ.record(v);
        }
        TelemetryReport {
            clock_unit: "rounds".to_string(),
            interval: 16,
            nodes: vec![NodeTelemetry {
                core: 0,
                name: "fir\"odd".to_string(),
                frames: 5,
                busy: 40,
                wait: 10,
                max_queue_occupancy: 4,
                latency: lat,
                occupancy: occ,
            }],
            frames: Vec::new(),
            intervals: Vec::new(),
            run: RunCounters {
                frames: 5,
                ecc_checks: 123,
                ..Default::default()
            },
        }
    }

    #[test]
    fn export_is_scrape_parseable() {
        let text = to_prometheus(&sample_report());
        let samples = parse_prometheus(&text).expect("must parse");
        assert!(samples
            .iter()
            .any(|s| s.name == "cg_frame_latency_ticks_bucket"));
        let count = samples
            .iter()
            .find(|s| s.name == "cg_frame_latency_ticks_count")
            .expect("count sample");
        assert_eq!(count.value, 5.0);
        let esc = samples
            .iter()
            .find(|s| s.name == "cg_node_busy_ticks_total")
            .expect("busy sample");
        assert_eq!(esc.labels[0].1, "fir\"odd");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(parse_prometheus("not a metric line at all!").is_err());
        assert!(parse_prometheus("cg_x_bucket{le=\"5\"} 3\ncg_x_bucket{le=\"2\"} 4").is_err());
        assert!(parse_prometheus("1bad_name 3").is_err());
        assert!(
            parse_prometheus("cg_h_bucket{le=\"+Inf\"} 4").is_err(),
            "missing _count"
        );
    }

    #[test]
    fn bucket_counts_are_cumulative() {
        let text = to_prometheus(&sample_report());
        let samples = parse_prometheus(&text).unwrap();
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "cg_frame_latency_ticks_bucket")
            .map(|s| s.value)
            .collect();
        for w in buckets.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(*buckets.last().unwrap(), 5.0);
    }
}
