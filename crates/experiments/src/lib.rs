//! # cg-experiments — regenerating every table and figure of the paper
//!
//! One binary per experiment (see `src/bin/`): `graphs` (Figs. 1–2),
//! `table1`, `table23`, `fig3`, `fig7`, `fig8`, `fig9`, `fig10`,
//! `fig11`, `fig12`, `fig13`, `fig14`, `calibrate` (the VM effect-rate
//! measurement) and `run_all`. Each prints the paper's rows/series to
//! stdout and writes CSV (and PPM images where applicable) under
//! `results/`.
//!
//! Common flags: `--quick` (small workloads, fewer seeds), `--seeds N`,
//! `--out DIR`, `--paper` (full-size workloads).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use cg_apps::{BenchApp, Size, Workload};
use cg_fault::Mtbe;
use cg_runtime::{run, RunReport, SimConfig};
use commguard::Protection;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Use small workloads and fewer seeds.
    pub quick: bool,
    /// Use paper-scale workloads.
    pub paper: bool,
    /// Seeds per configuration (the paper uses 5).
    pub seeds: u64,
    /// Output directory for CSV/PPM artifacts.
    pub out: PathBuf,
    /// Remaining free-form flags.
    pub flags: Vec<String>,
}

impl Cli {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        let mut cli = Cli {
            quick: false,
            paper: false,
            seeds: 5,
            out: PathBuf::from("results"),
            flags: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => {
                    cli.quick = true;
                    cli.seeds = 2;
                }
                "--paper" => cli.paper = true,
                "--seeds" => {
                    cli.seeds = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seeds needs a number");
                }
                "--out" => {
                    cli.out = PathBuf::from(args.next().expect("--out needs a path"));
                }
                other => cli.flags.push(other.to_string()),
            }
        }
        fs::create_dir_all(&cli.out).expect("create output dir");
        cli
    }

    /// Workload size implied by the flags.
    pub fn size(&self) -> Size {
        if self.paper {
            Size::Paper
        } else {
            Size::Small
        }
    }

    /// Whether a free-form flag was passed.
    pub fn has_flag(&self, f: &str) -> bool {
        self.flags.iter().any(|x| x == f)
    }
}

/// The MTBE sweep used by the figures, in kilo-instructions.
pub fn mtbe_sweep(quick: bool) -> Vec<u64> {
    if quick {
        vec![64, 512, 4096]
    } else {
        vec![64, 128, 256, 512, 1024, 2048, 4096, 8192]
    }
}

/// Runs one configuration of a prepared workload.
pub fn run_once(w: &Workload, protection: Protection, mtbe_k: u64, seed: u64) -> (RunReport, f64) {
    let (program, sink) = w.build();
    let cfg = SimConfig {
        max_rounds: 50_000_000,
        ..SimConfig::with_errors(
            w.frames(),
            protection,
            Mtbe::kilo_instructions(mtbe_k),
            seed,
        )
    };
    let report = run(program, &cfg).expect("run starts");
    let q = w.quality_db(report.sink_output(sink));
    (report, q)
}

/// Runs one configuration with the guard hardware active but fault
/// injection off (for pure-overhead measurements).
pub fn run_once_no_faults(w: &Workload, protection: Protection) -> (RunReport, f64) {
    let (program, sink) = w.build();
    let cfg = SimConfig {
        protection,
        inject: false,
        max_rounds: 50_000_000,
        ..SimConfig::error_free(w.frames())
    };
    let report = run(program, &cfg).expect("run starts");
    let q = w.quality_db(report.sink_output(sink));
    (report, q)
}

/// A CSV writer that also echoes nothing (callers print their own rows).
pub struct Csv {
    file: fs::File,
}

impl Csv {
    /// Creates `out/<name>` and writes the header row.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (experiment binaries fail loudly).
    pub fn create(dir: &Path, name: &str, header: &str) -> Self {
        let mut file = fs::File::create(dir.join(name)).expect("create csv");
        writeln!(file, "{header}").expect("write header");
        Csv { file }
    }

    /// Appends one row.
    pub fn row(&mut self, fields: std::fmt::Arguments<'_>) {
        writeln!(self.file, "{fields}").expect("write row");
    }
}

/// Formats a dB value the way the figures label them (∞ → "inf").
pub fn db(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.2}")
    }
}

/// Prepares all six workloads (reusing each across a sweep).
pub fn all_workloads(size: Size) -> Vec<Workload> {
    BenchApp::all()
        .into_iter()
        .map(|a| {
            eprintln!("preparing {a} ...");
            Workload::new(a, size)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_contents() {
        assert_eq!(mtbe_sweep(true), vec![64, 512, 4096]);
        assert_eq!(mtbe_sweep(false).len(), 8);
    }

    #[test]
    fn db_formatting() {
        assert_eq!(db(f64::INFINITY), "inf");
        assert_eq!(db(9.4321), "9.43");
    }
}
