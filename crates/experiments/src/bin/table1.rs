//! Table 1: the Alignment Manager FSM — prints the state transition
//! table and exercises every row against a live queue, asserting each
//! transition lands in the state the paper specifies.

use commguard::queue::{QueueSpec, SimQueue, Unit};
use commguard::{AlignmentManager, AmState, PadPolicy, SubopCounters};

fn queue() -> SimQueue {
    SimQueue::new(QueueSpec::with_capacity(256))
}

/// Builds an AM in the requested state by replaying a scripted stream.
fn am_in(state: AmState) -> (AlignmentManager, SimQueue, SubopCounters) {
    let mut q = queue();
    let mut am = AlignmentManager::new(PadPolicy::Zero);
    let mut sub = SubopCounters::default();
    match state {
        AmState::ExpHdr => {}
        AmState::RcvCmp => {
            q.try_push(Unit::header(0)).unwrap();
            q.try_push(Unit::Item(1)).unwrap();
            q.flush();
            assert_eq!(am.pop(&mut q, &mut sub), Some(1));
        }
        AmState::DiscFr => {
            q.try_push(Unit::Item(9)).unwrap(); // item in ExpHdr → DiscFr
            q.flush();
            assert_eq!(am.pop(&mut q, &mut sub), None);
        }
        AmState::Disc => {
            q.try_push(Unit::header(0)).unwrap();
            q.try_push(Unit::Item(1)).unwrap();
            q.try_push(Unit::header(0)).unwrap(); // past header in RcvCmp
            q.flush();
            assert_eq!(am.pop(&mut q, &mut sub), Some(1));
            assert_eq!(am.pop(&mut q, &mut sub), None);
        }
        AmState::Pdg => {
            q.try_push(Unit::header(2)).unwrap(); // future header
            q.flush();
            assert_eq!(am.pop(&mut q, &mut sub), Some(0));
        }
    }
    assert_eq!(am.state(), state, "setup must land in {state:?}");
    (am, q, sub)
}

fn check(
    from: AmState,
    event: &str,
    drive: impl FnOnce(&mut AlignmentManager, &mut SimQueue, &mut SubopCounters),
    expect: AmState,
) {
    let (mut am, mut q, mut sub) = am_in(from);
    drive(&mut am, &mut q, &mut sub);
    assert_eq!(am.state(), expect, "Table 1 row {from:?} / event '{event}'");
    println!("  {from:?} --[{event}]--> {expect:?}   ✓");
}

fn push_and_pop(
    unit: Unit,
) -> impl FnOnce(&mut AlignmentManager, &mut SimQueue, &mut SubopCounters) {
    move |am, q, sub| {
        q.try_push(unit).unwrap();
        q.flush();
        let _ = am.pop(q, sub);
    }
}

fn main() {
    println!("Table 1: Alignment manager FSM states and transitions\n");

    // RcvCmp row.
    check(
        AmState::RcvCmp,
        "new frame computation",
        |am, _q, sub| am.new_frame_computation(1, sub),
        AmState::ExpHdr,
    );
    check(
        AmState::RcvCmp,
        "received future header",
        push_and_pop(Unit::header(5)),
        AmState::Pdg,
    );
    check(
        AmState::RcvCmp,
        "received past header",
        push_and_pop(Unit::header(0)),
        AmState::Disc,
    );

    // ExpHdr row.
    check(
        AmState::ExpHdr,
        "received correct header",
        |am, q, sub| {
            q.try_push(Unit::header(0)).unwrap();
            q.try_push(Unit::Item(7)).unwrap();
            q.flush();
            assert_eq!(am.pop(q, sub), Some(7));
        },
        AmState::RcvCmp,
    );
    check(
        AmState::ExpHdr,
        "received item",
        push_and_pop(Unit::Item(9)),
        AmState::DiscFr,
    );
    check(
        AmState::ExpHdr,
        "received future header",
        push_and_pop(Unit::header(7)),
        AmState::Pdg,
    );

    // DiscFr row.
    check(
        AmState::DiscFr,
        "received correct header",
        |am, q, sub| {
            q.try_push(Unit::header(0)).unwrap();
            q.try_push(Unit::Item(7)).unwrap();
            q.flush();
            assert_eq!(am.pop(q, sub), Some(7));
        },
        AmState::RcvCmp,
    );
    check(
        AmState::DiscFr,
        "received future header",
        push_and_pop(Unit::header(3)),
        AmState::Pdg,
    );

    // Disc row.
    check(
        AmState::Disc,
        "received future header",
        push_and_pop(Unit::header(4)),
        AmState::Pdg,
    );

    // Pdg row.
    check(
        AmState::Pdg,
        "new frame computation matched header",
        |am, _q, sub| am.new_frame_computation(2, sub),
        AmState::RcvCmp,
    );

    println!("\nAll Table 1 transitions verified.");
}
