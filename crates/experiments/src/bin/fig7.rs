//! Fig. 7: an example jpeg run with CommGuard at MTBE = 512k
//! instructions — writes the output image and annotates which 8-pixel
//! bands had pad/discard realignment operations, as the paper's arrows
//! do.

use cg_apps::{BenchApp, Workload};
use cg_experiments::{db, run_once, Cli, Csv};
use commguard::{Protection, RealignKind};

fn main() {
    let cli = Cli::parse();
    let w = Workload::new(BenchApp::Jpeg, cli.size());
    let (report, psnr) = run_once(&w, Protection::commguard(), 512, 1);

    if let Some(img) = w.decode_image(report.sink_output(w.sink())) {
        img.save_ppm(cli.out.join("fig7.ppm")).expect("write ppm");
    }

    let sub = report.total_subops();
    println!("Fig. 7: jpeg with CommGuard, MTBE = 512k instructions");
    println!("  PSNR: {} dB (paper example: 20.2 dB)", db(psnr));
    println!(
        "  realignment operations: {} pads, {} discards \
         (paper example: 16 pad+discard operations)",
        sub.pad_events, sub.discard_events
    );
    println!(
        "  padded items: {}, discarded items: {}",
        sub.padded_items, sub.discarded_items
    );

    let mut csv = Csv::create(&cli.out, "fig7.csv", "frame_band,kind");
    println!("\n  per-band annotations (frame = one 8-pixel-high band):");
    let mut events = sub.events.clone();
    events.sort_by_key(|e| e.frame);
    for ev in &events {
        let kind = match ev.kind {
            RealignKind::Pad => "pad",
            RealignKind::Discard => "discard",
        };
        println!("    band {:>3}  <- {kind}", ev.frame);
        csv.row(format_args!("{},{kind}", ev.frame));
    }
    assert!(report.completed, "CommGuard run must finish");
    assert!(
        sub.pad_events + sub.discard_events > 0,
        "expected at least one realignment at this error rate"
    );
}
