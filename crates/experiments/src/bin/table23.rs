//! Tables 2–3 and §5.5: drives a guarded producer/consumer pair and
//! prints the observed CommGuard suboperation mix per interface event,
//! plus the reliable-storage budget of the QIT.

use commguard::queue::{QueueSpec, SimQueue};
use commguard::{CoreGuard, Qit};

fn main() {
    let frames = 100u32;
    let items_per_frame = 50u32;
    let mut q = SimQueue::new(QueueSpec::with_capacity(65_536));
    let cfg = commguard::config::GuardConfig::default();
    let mut prod = CoreGuard::new(0, 1, &cfg, Some(frames));
    let mut cons = CoreGuard::new(1, 0, &cfg, Some(frames));

    prod.start();
    cons.start();
    for f in 0..frames {
        if f > 0 {
            prod.scope_boundary();
            cons.scope_boundary();
        }
        assert!(prod.hi_tick(0, &mut q));
        for i in 0..items_per_frame {
            prod.push(0, &mut q, f * 1000 + i).unwrap();
        }
        q.flush();
        for _ in 0..items_per_frame {
            cons.pop(0, &mut q)
                .expect("aligned stream never blocks here");
        }
    }
    prod.finish();
    assert!(prod.hi_tick(0, &mut q));

    let ps = prod.subops();
    let cs = cons.subops();
    let total_pops = u64::from(frames) * u64::from(items_per_frame);

    println!("Table 2/3: observed CommGuard suboperations");
    println!("  workload: {frames} frames x {items_per_frame} items, one edge\n");
    println!("producer (push + new-frame-computation events):");
    println!(
        "  prepare-header ops : {:>8}  (1 per frame boundary incl. end)",
        ps.prepare_header_ops
    );
    println!("  compute-ECC ops    : {:>8}  (1 per header)", ps.ecc_ops);
    println!("  header-bit sets    : {:>8}", ps.header_bit_ops);
    println!(
        "  FSM updates        : {:>8}  (1 per out-queue per boundary)",
        ps.fsm_ops
    );
    println!(
        "  counter ops        : {:>8}  (active-fc + saturating counter)",
        ps.counter_ops
    );
    assert_eq!(ps.prepare_header_ops, u64::from(frames) + 1);

    println!("\nconsumer (pop events):");
    println!(
        "  FSM check/updates  : {:>8}  ({} pops issued)",
        cs.fsm_ops, total_pops
    );
    println!(
        "  header-bit tests   : {:>8}  (1 per unit examined)",
        cs.header_bit_ops
    );
    println!(
        "  check-ECC ops      : {:>8}  (1 per header examined)",
        cs.ecc_ops
    );
    println!("  accepted items     : {:>8}", cs.accepted_items);
    assert_eq!(cs.accepted_items, total_pops);
    assert_eq!(cs.ecc_ops, u64::from(frames), "one header check per frame");

    println!("\nqueue manager (per §5.1 working sets):");
    let qs = q.stats();
    println!("  item stores        : {:>8}", qs.item_pushes);
    println!("  header stores      : {:>8}", qs.header_pushes);
    println!("  workset publishes  : {:>8}", qs.workset_publishes);
    println!("  shared-ptr ECC ops : {:>8}", qs.ecc.total_ops());

    println!("\n§5.5 reliable storage (QIT):");
    for n in [1usize, 2, 4, 8] {
        let qit = Qit::new(n);
        println!(
            "  {} queues/core -> {:>3} bytes{}",
            n,
            qit.reliable_storage_bytes(),
            if n == 4 { "   (paper: ~82 B)" } else { "" }
        );
    }
    assert_eq!(Qit::new(4).reliable_storage_bytes(), 82);
    println!("\nAll Table 2/3 invariants verified.");
}
