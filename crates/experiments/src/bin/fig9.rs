//! Fig. 9: jpeg visual results and PSNR at MTBE ∈ {128k, 512k, 2048k,
//! 8192k}, with CommGuard. Writes one PPM per panel.

use cg_apps::{BenchApp, Workload};
use cg_experiments::{db, run_once, Cli, Csv};
use commguard::Protection;

fn main() {
    let cli = Cli::parse();
    let w = Workload::new(BenchApp::Jpeg, cli.size());
    let error_free = w.error_free_quality_db();
    let mut csv = Csv::create(&cli.out, "fig9.csv", "mtbe_k,psnr_db");

    println!("Fig. 9: jpeg with CommGuard at rising MTBE");
    println!(
        "  error-free PSNR: {} dB (paper: 35.6 dB)\n",
        db(error_free)
    );
    let paper = [(128u64, 14.7), (512, 18.6), (2048, 28.6), (8192, 35.6)];
    let mut last = 0.0;
    for (mtbe_k, paper_db) in paper {
        let (report, psnr) = run_once(&w, Protection::commguard(), mtbe_k, 1);
        if let Some(img) = w.decode_image(report.sink_output(w.sink())) {
            img.save_ppm(cli.out.join(format!("fig9_mtbe{mtbe_k}k.ppm")))
                .expect("write ppm");
        }
        println!(
            "  MTBE {mtbe_k:>5}k: PSNR = {:>7} dB   (paper panel: {paper_db} dB)",
            db(psnr)
        );
        csv.row(format_args!("{mtbe_k},{}", db(psnr)));
        assert!(psnr >= last - 3.0, "quality should broadly rise with MTBE");
        last = psnr.max(last);
    }
    println!(
        "\nexpected shape (paper): heavily corrupted but recognisable at \
         128k, approaching the error-free PSNR by 8192k."
    );
    assert!(
        last >= error_free - 6.0,
        "at 8192k the output should be near error-free quality"
    );
    println!("✓ quality rises towards the error-free ceiling");
}
