//! Fig. 11: SNR vs MTBE for the four kernel benchmarks
//! (audiobeamformer, channelvocoder, complex-fir, fft), mean over seeds,
//! with frame-size scaling on complex-fir as in panel (c).

use cg_apps::{BenchApp, Workload};
use cg_experiments::{db, mtbe_sweep, run_once, Cli, Csv};
use cg_metrics::Summary;
use commguard::config::GuardConfig;
use commguard::Protection;

fn main() {
    let cli = Cli::parse();
    let sweep = mtbe_sweep(cli.quick);
    let mut csv = Csv::create(
        &cli.out,
        "fig11.csv",
        "app,frame_scale,mtbe_k,snr_mean_db,snr_stddev_db",
    );

    let apps = [
        BenchApp::AudioBeamformer,
        BenchApp::ChannelVocoder,
        BenchApp::ComplexFir,
        BenchApp::Fft,
    ];
    println!("Fig. 11: kernel SNR vs MTBE (error-free SNR is infinity)");
    for app in apps {
        let w = Workload::new(app, cli.size());
        let scales: &[u32] = if app == BenchApp::ComplexFir && !cli.quick {
            &[1, 2, 4, 8] // panel (c) carries the frame-size ablation
        } else {
            &[1]
        };
        for &scale in scales {
            let protection = Protection::CommGuard(GuardConfig::with_frame_scale(scale));
            print!("{:>18} {}x:", app.name(), scale);
            for &mtbe_k in &sweep {
                let qs: Vec<f64> = (0..cli.seeds)
                    .map(|seed| run_once(&w, protection, mtbe_k, seed).1)
                    .collect();
                let s = Summary::of(&qs);
                print!("  {:>7}", db(s.mean));
                csv.row(format_args!(
                    "{app},{scale},{mtbe_k},{},{:.3}",
                    db(s.mean),
                    s.stddev
                ));
            }
            println!();
        }

        // Shape: SNR improves with MTBE.
        let low = run_once(&w, Protection::commguard(), sweep[0], 0).1;
        let high = run_once(&w, Protection::commguard(), *sweep.last().unwrap(), 0).1;
        assert!(
            high >= low,
            "{app}: SNR must not degrade with MTBE ({low:.1} -> {high:.1})"
        );
    }
    println!("    (columns: MTBE = {sweep:?} k instructions)");
    println!(
        "\nexpected shape (paper): SNR rises with MTBE; complex-fir and \
         audiobeamformer stay resilient even at extreme rates, while fft \
         and channelvocoder drop faster at low MTBE."
    );
    println!("✓ SNR rises with MTBE for all four kernels");
}
