//! Effect-model calibration: runs the mechanistic register-file bit-flip
//! experiments on the `cg-vm` PPU cores and prints the measured
//! manifestation rates next to the rates `EffectModel::calibrated()`
//! hard-codes for the app-scale simulator.

use cg_experiments::Cli;
use cg_fault::EffectModel;
use cg_vm::measure_effect_rates;

fn main() {
    let cli = Cli::parse();
    let trials = if cli.quick { 150 } else { 600 };
    println!("Calibration: single register-bit flips on PPU VM kernels");
    println!("  ({} trials per kernel, 3 kernels)\n", trials);
    let measured = measure_effect_rates(trials, 2015);
    let coded = EffectModel::calibrated();
    println!("  class        measured   EffectModel::calibrated()");
    for (name, m, c) in [
        ("data", measured.data, coded.p_data),
        ("control", measured.control, coded.p_control),
        ("addressing", measured.addressing, coded.p_addressing),
        ("silent", measured.silent, coded.p_silent),
    ] {
        println!("  {name:<12} {m:>8.3}   {c:>8.3}");
        assert!(
            (m - c).abs() < 0.12,
            "{name}: measured {m:.3} drifted from coded {c:.3}; \
             re-run and update EffectModel::calibrated()"
        );
    }
    println!("\n✓ coded effect rates within ±0.12 of the mechanistic measurement");
}
