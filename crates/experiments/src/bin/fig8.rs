//! Fig. 8: ratio of lost (padded + discarded) data to accepted data vs.
//! MTBE, for all six benchmarks under CommGuard.
//!
//! `--unprotected-headers` runs the ablation showing why §4.1 demands
//! ECC on headers.

use cg_apps::Workload;
use cg_experiments::{all_workloads, mtbe_sweep, run_once, Cli, Csv};
use cg_metrics::mean;
use commguard::config::GuardConfig;
use commguard::Protection;

fn main() {
    let cli = Cli::parse();
    let protection = if cli.has_flag("--unprotected-headers") {
        Protection::CommGuard(GuardConfig {
            protect_headers: false,
            ..GuardConfig::default()
        })
    } else {
        Protection::commguard()
    };

    let workloads = all_workloads(cli.size());
    let sweep = mtbe_sweep(cli.quick);
    let mut csv = Csv::create(&cli.out, "fig8.csv", "app,mtbe_k,loss_ratio");

    println!(
        "Fig. 8: lost/accepted data ratio vs MTBE ({})",
        protection.label()
    );
    print!("{:>18}", "MTBE(k):");
    for m in &sweep {
        print!("{m:>11}");
    }
    println!();

    for w in &workloads {
        print!("{:>18}", w.app().name());
        for &mtbe_k in &sweep {
            let ratios: Vec<f64> = (0..cli.seeds)
                .map(|seed| run_once(w, protection, mtbe_k, seed).0.loss_ratio())
                .collect();
            let r = mean(&ratios);
            print!("{:>11.3e}", r);
            csv.row(format_args!("{},{mtbe_k},{r:e}", w.app().name()));
        }
        println!();
    }

    println!(
        "\nexpected shape (paper): loss < 0.2% for five benchmarks even at \
         64k; jpeg loses the most (lowest frame/item ratio) but stays \
         < 0.2% at 512k; loss falls monotonically as MTBE grows."
    );
    sanity(&workloads, &sweep, protection, cli.seeds);
}

/// Checks the monotone-ish trend: loss at the highest MTBE must be lower
/// than at the lowest, for every app.
fn sanity(workloads: &[Workload], sweep: &[u64], protection: Protection, seeds: u64) {
    for w in workloads {
        let at = |mtbe: u64| -> f64 {
            mean(
                &(0..seeds)
                    .map(|s| run_once(w, protection, mtbe, s).0.loss_ratio())
                    .collect::<Vec<_>>(),
            )
        };
        let low = at(sweep[0]);
        let high = at(*sweep.last().unwrap());
        assert!(
            high <= low || low < 1e-6,
            "{}: loss did not shrink with MTBE ({low:e} -> {high:e})",
            w.app().name()
        );
    }
    println!("✓ loss shrinks with rising MTBE for every benchmark");
}
