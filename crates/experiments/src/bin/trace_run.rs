//! Traces one faulty benchmark run end to end: executes the app under
//! CommGuard with fault injection and a ring-buffer tracer, then writes
//! the text trace, the Chrome-trace/Perfetto JSON, and the propagation
//! post-mortem. The CI trace smoke test drives this binary.
//!
//! ```text
//! trace_run [--app NAME] [--mtbe K] [--seed N] [--paper] [--ring N]
//!           [--out DIR] [--expect-chains N]
//! ```
//!
//! Exits nonzero when the analyzer finds fewer propagation chains than
//! `--expect-chains` (default 1), so a silent tracing regression fails CI.

use std::path::PathBuf;
use std::process::ExitCode;

use cg_apps::{BenchApp, Size, Workload};
use cg_fault::Mtbe;
use cg_runtime::{run, SimConfig, TraceConfig};
use cg_trace::{analyze, json_check, text, to_chrome_json};
use commguard::Protection;

fn usage() -> ! {
    eprintln!(
        "usage: trace_run [--app NAME] [--mtbe K] [--seed N] [--paper] [--ring N]\n\
         \x20                [--out DIR] [--expect-chains N]\n\
         \n\
         app:           benchmark name (default: complex-fir)\n\
         mtbe:          mean kilo-instructions between errors (default: 32)\n\
         seed:          run seed (default: 1)\n\
         ring:          trace ring capacity in records (default: 1048576)\n\
         out:           artifact directory (default: results)\n\
         expect-chains: minimum propagation chains, else exit 1 (default: 1)"
    );
    std::process::exit(2)
}

struct Args {
    app: BenchApp,
    mtbe_k: u64,
    seed: u64,
    size: Size,
    ring: usize,
    out: PathBuf,
    expect_chains: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        app: BenchApp::ComplexFir,
        mtbe_k: 32,
        seed: 1,
        size: Size::Small,
        ring: 1 << 20,
        out: PathBuf::from("results"),
        expect_chains: 1,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--app" => {
                let name = value(&mut i);
                args.app = BenchApp::all()
                    .into_iter()
                    .find(|a| a.name() == name)
                    .unwrap_or_else(|| {
                        eprintln!("unknown app: {name}");
                        usage()
                    });
            }
            "--mtbe" => args.mtbe_k = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--paper" => args.size = Size::Paper,
            "--ring" => args.ring = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = PathBuf::from(value(&mut i)),
            "--expect-chains" => {
                args.expect_chains = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create output dir");

    eprintln!(
        "trace_run: {} mtbe={}k seed={} under {}",
        args.app,
        args.mtbe_k,
        args.seed,
        Protection::commguard().label()
    );
    let w = Workload::new(args.app, args.size);
    let (program, sink) = w.build();
    let cfg = SimConfig {
        max_rounds: 50_000_000,
        trace: TraceConfig::Ring {
            capacity: args.ring,
        },
        ..SimConfig::with_errors(
            w.frames(),
            Protection::commguard(),
            Mtbe::kilo_instructions(args.mtbe_k),
            args.seed,
        )
    };
    let report = run(program, &cfg).expect("traced run starts");
    let data = report.trace.as_ref().expect("tracing was enabled");
    println!(
        "run: completed={} rounds={} quality={:.2}dB realign_episodes={} \
         max_queue_occupancy={}",
        report.completed,
        report.rounds,
        w.quality_db(report.sink_output(sink)),
        report.realignment_episodes,
        report.max_queue_occupancy(),
    );
    println!(
        "trace: {} events recorded ({} retained, {} dropped)",
        data.counts.events,
        data.records.len(),
        data.dropped
    );

    let stem = format!("trace_{}_{}k_{}", args.app.name(), args.mtbe_k, args.seed);
    let base = args.out.join(&stem);

    let trace_path = base.with_extension("trace");
    std::fs::write(&trace_path, text::to_text(&data.records)).expect("write text trace");

    let chrome = to_chrome_json(&stem, &data.records);
    json_check::validate(&chrome).expect("emitted Chrome trace must be valid JSON");
    let chrome_path = base.with_extension("chrome.json");
    std::fs::write(&chrome_path, &chrome).expect("write chrome trace");

    let analysis = analyze(&data.records);
    let prop_path = base.with_extension("propagation.txt");
    std::fs::write(&prop_path, analysis.to_string()).expect("write propagation summary");

    println!("{analysis}");
    println!("wrote {}", trace_path.display());
    println!(
        "wrote {} (load in Perfetto / chrome://tracing)",
        chrome_path.display()
    );
    println!("wrote {}", prop_path.display());

    if analysis.chains.len() < args.expect_chains {
        eprintln!(
            "trace_run: FAIL — {} propagation chain(s), expected >= {}",
            analysis.chains.len(),
            args.expect_chains
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
