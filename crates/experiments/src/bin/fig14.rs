//! Fig. 14: CommGuard suboperations (FSM/counter, ECC, header-bit) as a
//! fraction of committed processor instructions, per benchmark plus the
//! geometric mean. `--detail` also prints the §5.3 instructions-per-
//! frame-computation medians.

use cg_experiments::{all_workloads, run_once_no_faults, Cli, Csv};
use cg_metrics::geometric_mean;
use commguard::Protection;

fn main() {
    let cli = Cli::parse();
    let workloads = all_workloads(cli.size());
    let mut csv = Csv::create(
        &cli.out,
        "fig14.csv",
        "app,fsm_counter_pct,ecc_pct,header_bit_pct,total_pct",
    );

    println!("Fig. 14: CommGuard suboperations / committed instructions\n");
    println!(
        "{:>18} {:>12} {:>8} {:>12} {:>8}",
        "app", "FSM/Counter", "ECC", "Header-Bit", "Total"
    );
    let mut totals = Vec::new();
    for w in &workloads {
        let (report, _) = run_once_no_faults(w, Protection::commguard());
        let instr = report.total_instructions() as f64;
        let sub = report.total_subops();
        let fsm = (sub.fsm_ops + sub.counter_ops) as f64 / instr * 100.0;
        let ecc = sub.ecc_ops as f64 / instr * 100.0;
        let hdr = sub.header_bit_ops as f64 / instr * 100.0;
        let total = sub.total_subops() as f64 / instr * 100.0;
        println!(
            "{:>18} {:>11.3}% {:>7.3}% {:>11.3}% {:>7.3}%",
            w.app().name(),
            fsm,
            ecc,
            hdr,
            total
        );
        csv.row(format_args!(
            "{},{fsm:.4},{ecc:.4},{hdr:.4},{total:.4}",
            w.app().name()
        ));
        totals.push(total.max(1e-9));

        if cli.has_flag("--detail") {
            println!(
                "{:>18} median instructions/frame-computation: {:.0}",
                "",
                report.median_instructions_per_frame()
            );
            for n in &report.nodes {
                if n.frames > 0 {
                    println!(
                        "{:>22} {:>16}: {:>10.0} instr/frame",
                        "", n.name, n.instructions_per_frame
                    );
                }
            }
        }
    }
    let gm = geometric_mean(&totals);
    println!("{:>18} {:>48.3}%  <- GMean", "GMean", gm);
    csv.row(format_args!("GMean,,,,{gm:.4}"));

    println!(
        "\nexpected shape (paper): GMean ≈ 2%, worst case audiobeamformer \
         ≈ 4.9%; header-bit ops are the most frequent class; ECC the \
         rarest."
    );
    assert!(gm < 10.0, "geomean should be a few percent, got {gm:.2}%");
    println!("✓ suboperation rates in the paper's range");
}
