//! Runs every experiment binary in sequence (the full reproduction),
//! forwarding common flags.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "graphs",
        "table1",
        "table23",
        "calibrate",
        "fig3",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
    ];
    for bin in bins {
        println!(
            "\n=== {bin} {}",
            "=".repeat(60_usize.saturating_sub(bin.len()))
        );
        let status = Command::new(
            std::env::current_exe()
                .expect("self path")
                .parent()
                .expect("bin dir")
                .join(bin),
        )
        .args(&args)
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nAll experiments completed. Artifacts are in results/.");
}
