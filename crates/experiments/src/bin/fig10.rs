//! Fig. 10: jpeg PSNR and mp3 SNR vs MTBE, mean ± stddev over seeds,
//! at frame scales 1×/2×/4×/8× (§5.4).

use cg_apps::{BenchApp, Size, Workload};
use cg_experiments::{db, mtbe_sweep, run_once, Cli, Csv};
use cg_metrics::Summary;
use commguard::config::GuardConfig;
use commguard::Protection;

fn main() {
    let cli = Cli::parse();
    let sweep = mtbe_sweep(cli.quick);
    let scales: &[u32] = if cli.quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut csv = Csv::create(
        &cli.out,
        "fig10.csv",
        "app,frame_scale,mtbe_k,quality_mean_db,quality_stddev_db",
    );

    for app in [BenchApp::Jpeg, BenchApp::Mp3] {
        let w = Workload::new(app, cli.size());
        println!(
            "\nFig. 10 ({app}): error-free quality {} dB (paper: {} dB)",
            db(w.error_free_quality_db()),
            if app == BenchApp::Jpeg { "35.6" } else { "9.4" },
        );
        for &scale in scales {
            let protection = Protection::CommGuard(GuardConfig::with_frame_scale(scale));
            print!("  {scale}x frames:");
            for &mtbe_k in &sweep {
                let qs: Vec<f64> = (0..cli.seeds)
                    .map(|seed| run_once(&w, protection, mtbe_k, seed).1)
                    .collect();
                let s = Summary::of(&qs);
                print!("  {}±{:.1}", db(s.mean), s.stddev);
                csv.row(format_args!(
                    "{app},{scale},{mtbe_k},{},{:.3}",
                    db(s.mean),
                    s.stddev
                ));
            }
            println!();
        }
        println!("    (columns: MTBE = {:?} k instructions)", sweep);

        // Shape check: default-scale quality rises with MTBE.
        let wq = |mtbe: u64| run_once(&w, Protection::commguard(), mtbe, 0).1;
        let low = wq(sweep[0]);
        let high = wq(*sweep.last().unwrap());
        assert!(
            high > low,
            "{app}: quality must improve with MTBE ({low:.1} -> {high:.1})"
        );
    }
    println!(
        "\nexpected shape (paper): quality climbs with MTBE; larger frames \
         reduce overhead but cost jpeg quality at high error rates."
    );
    println!("✓ quality climbs with MTBE for both decoders");
    let _ = Size::Small;
}
