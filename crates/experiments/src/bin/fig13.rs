//! Fig. 13: execution-time overhead of CommGuard (header pushes/pops +
//! pipeline serialisation at frame boundaries), per benchmark and frame
//! scale, from the analytic model of §5.3. The companion Criterion bench
//! (`cargo bench -p cg-bench -- overhead`) measures the same quantity as
//! host wall-clock.

use cg_experiments::{all_workloads, run_once_no_faults, Cli, Csv};
use cg_metrics::geometric_mean;
use cg_runtime::{estimate_overhead, OverheadModel};
use commguard::config::GuardConfig;
use commguard::Protection;

fn main() {
    let cli = Cli::parse();
    let workloads = all_workloads(cli.size());
    let model = OverheadModel::default();
    let scales: &[u32] = if cli.quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut csv = Csv::create(
        &cli.out,
        "fig13.csv",
        "app,frame_scale,header_pct,serialize_pct,total_pct",
    );

    println!("Fig. 13: CommGuard execution-time overhead (analytic model)\n");
    print!("{:>18}", "app");
    for s in scales {
        print!("{:>9}x", s);
    }
    println!();

    let mut defaults = Vec::new();
    for w in &workloads {
        print!("{:>18}", w.app().name());
        for &scale in scales {
            let protection = Protection::CommGuard(GuardConfig::with_frame_scale(scale));
            let (report, _) = run_once_no_faults(w, protection);
            let e = estimate_overhead(&report, &model);
            print!("{:>9.2}%", e.total() * 100.0);
            csv.row(format_args!(
                "{},{scale},{:.4},{:.4},{:.4}",
                w.app().name(),
                e.header_fraction * 100.0,
                e.serialize_fraction * 100.0,
                e.total() * 100.0
            ));
            if scale == 1 {
                defaults.push(e.total().max(1e-9));
            }
        }
        println!();
    }
    let gm = geometric_mean(&defaults) * 100.0;
    println!("{:>18}{:>9.2}%  (default frames)", "GMean", gm);
    csv.row(format_args!("GMean,1,,,{gm:.4}"));

    println!(
        "\nexpected shape (paper): worst cases audiobeamformer and \
         complex-fir still < 4%; mean ≈ 1%; larger frames shrink the \
         already-small overheads."
    );
    assert!(
        gm < 5.0,
        "mean overhead should be a few percent, got {gm:.2}%"
    );
    assert!(
        defaults.iter().all(|&d| d < 0.25),
        "every app must stay well under 25% overhead"
    );
    println!("✓ overheads in the single-digit percent range");
}
