//! Fig. 3: jpeg output under the four protection configurations at an
//! MTBE of 1M instructions per core. Writes the four images as PPM and
//! prints their PSNR against the raw input.

use cg_apps::{BenchApp, Workload};
use cg_experiments::{db, run_once, Cli, Csv};
use commguard::Protection;

fn main() {
    let cli = Cli::parse();
    let w = Workload::new(BenchApp::Jpeg, cli.size());
    let mtbe_k = 1024; // "mean time between errors of 1M instructions"
    let seed = 0;

    let modes: [(&str, Protection); 4] = [
        ("fig3a", Protection::ErrorFree),
        ("fig3b", Protection::PpuUnprotectedQueue),
        ("fig3c", Protection::PpuReliableQueue),
        ("fig3d", Protection::commguard()),
    ];

    let mut csv = Csv::create(
        &cli.out,
        "fig3.csv",
        "panel,protection,psnr_db,completed,timeouts",
    );
    println!("Fig. 3: jpeg on 10 cores, MTBE = {mtbe_k}k instructions\n");
    let mut psnrs = Vec::new();
    for (panel, protection) in modes {
        let (report, q) = run_once(&w, protection, mtbe_k, seed);
        let (program_sink,) = (w.sink(),);
        if let Some(img) = w.decode_image(report.sink_output(program_sink)) {
            let path = cli.out.join(format!("{panel}.ppm"));
            img.save_ppm(&path).expect("write ppm");
        }
        println!(
            "  {panel} {:<24} PSNR = {:>8} dB   (completed: {}, timeouts: {})",
            protection.label(),
            db(q),
            report.completed,
            report.total_timeouts()
        );
        csv.row(format_args!(
            "{panel},{},{},{},{}",
            protection.label(),
            db(q),
            report.completed,
            report.total_timeouts()
        ));
        psnrs.push(q);
    }

    println!("\nexpected shape (paper): 3a pristine; 3b collapsed; 3c heavily");
    println!("degraded; 3d near the error-free quality.");
    assert!(
        psnrs[3] > psnrs[1] && psnrs[3] > psnrs[2],
        "CommGuard must beat both unprotected baselines"
    );
    println!(
        "✓ CommGuard ({}) beats unprotected ({}) and reliable-queue ({})",
        db(psnrs[3]),
        db(psnrs[1]),
        db(psnrs[2])
    );
}
