//! Fig. 12: CommGuard's overhead on memory events — header loads/stores
//! as a fraction of all processor loads/stores, per benchmark plus the
//! geometric mean, from an error-free guarded run.

use cg_experiments::{all_workloads, run_once_no_faults, Cli, Csv};
use cg_metrics::geometric_mean;
use cg_runtime::MemModel;
use commguard::Protection;

fn main() {
    let cli = Cli::parse();
    let workloads = all_workloads(cli.size());
    let mem = MemModel::default();
    let mut csv = Csv::create(
        &cli.out,
        "fig12.csv",
        "app,header_load_pct,header_store_pct",
    );

    println!("Fig. 12: header memory events / all memory events (error-free)\n");
    println!("{:>18} {:>10} {:>10}", "app", "loads", "stores");
    let mut loads = Vec::new();
    let mut stores = Vec::new();
    for w in &workloads {
        // Guard hardware on, fault injection off.
        let (report, _) = run_once_no_faults(w, Protection::commguard());
        let (lr, sr) = report.header_memory_ratios(&mem);
        println!(
            "{:>18} {:>9.3}% {:>9.3}%",
            w.app().name(),
            lr * 100.0,
            sr * 100.0
        );
        csv.row(format_args!(
            "{},{:.4},{:.4}",
            w.app().name(),
            lr * 100.0,
            sr * 100.0
        ));
        loads.push(lr.max(1e-12));
        stores.push(sr.max(1e-12));
    }
    let gl = geometric_mean(&loads) * 100.0;
    let gs = geometric_mean(&stores) * 100.0;
    println!("{:>18} {:>9.3}% {:>9.3}%", "GMean", gl, gs);
    csv.row(format_args!("GMean,{gl:.4},{gs:.4}"));

    println!(
        "\nexpected shape (paper): GMean < 0.2%; audiobeamformer worst \
         (≈0.66% loads / 0.75% stores) because some threads have 1-item \
         frames."
    );
    let worst = loads.iter().cloned().fold(0.0f64, f64::max);
    assert!(gl < 0.5 && gs < 0.5, "geomean must stay well under 1%");
    assert!(
        (worst - loads[0]).abs() < 1e-12,
        "audiobeamformer should be the worst case"
    );
    println!("✓ geomean under 0.5%, audiobeamformer is the worst case");
}
