//! Figs. 1–2: prints every benchmark's stream graph, steady-state
//! repetition vector and frame analysis, and checks the jpeg numbers of
//! the paper's Fig. 2.

use cg_apps::jpeg::JpegApp;
use cg_apps::{BenchApp, Size, Workload};

fn main() {
    std::fs::create_dir_all("results").expect("create results dir");
    for app in BenchApp::all() {
        let w = Workload::new(app, Size::Small);
        let (program, _) = w.build();
        let g = program.graph();
        println!("{}", g.describe());
        // Graphviz rendering of the topology (Fig. 1 style).
        std::fs::write(format!("results/graph_{app}.dot"), g.to_dot()).expect("write dot file");
        let sched = g.schedule().expect("consistent");
        let fa = g.frame_analysis().expect("consistent");
        println!("  repetition vector: {:?}", sched.repetition_vector());
        println!(
            "  mean items/frame: {:.1}, min frame/item ratio: {:.2e}",
            fa.mean_items_per_frame(),
            fa.min_frame_item_ratio()
        );
        println!();
    }

    // The Fig. 2 linkage at paper scale (640-wide image).
    let jpeg = JpegApp::paper();
    let g = jpeg.graph();
    let sched = g.schedule().expect("consistent");
    let f6 = g.node_by_name("F5_combine").unwrap();
    let f7 = g.node_by_name("F7_sink").unwrap();
    let edge = g.node(f7).inputs()[0];
    println!("Fig. 2 check (640-wide jpeg):");
    println!(
        "  F6 pushes 192/firing, fires {} times per frame; F7 pops {} per firing — \
         paper: 80 firings, 15360 items",
        sched.repetitions(f6),
        sched.items_per_iteration(edge)
    );
    assert_eq!(sched.repetitions(f6), 80);
    assert_eq!(sched.items_per_iteration(edge), 15_360);
    println!("  ✓ matches the paper");
}
