//! Single-flip calibration: measuring how register bit flips manifest.
//!
//! For each trial a kernel runs once cleanly (golden output), then again
//! with exactly one bit of one register flipped at a random point in the
//! dynamic instruction stream. The manifestation is classified as the
//! paper's §3 taxonomy:
//!
//! * output identical → **silent** (architecturally masked);
//! * output length (item count) changed → **control flow** (the
//!   alignment-error source);
//! * otherwise, by the tainted register's first post-flip use:
//!   address operand → **addressing**, branch operand → **control
//!   flow**, else → **data value**.
//!
//! The aggregated rates are what `cg_fault::EffectModel::calibrated()`
//! hard-codes for the app-scale effect injector.

use rand::Rng;

use cg_fault::{core_rng, splitmix64};

use crate::core::Vm;
use crate::isa::{Instr, Reg, RegUse, NUM_REGS};
use crate::kernels;

/// Measured manifestation rates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EffectRates {
    /// Fraction manifesting as data-value corruption.
    pub data: f64,
    /// Fraction manifesting as control-flow perturbation.
    pub control: f64,
    /// Fraction manifesting as addressing errors.
    pub addressing: f64,
    /// Fraction with no architectural effect.
    pub silent: f64,
    /// Trials behind the rates.
    pub trials: u64,
}

impl std::fmt::Display for EffectRates {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data {:.3}, control {:.3}, addressing {:.3}, silent {:.3} ({} trials)",
            self.data, self.control, self.addressing, self.silent, self.trials
        )
    }
}

/// Outcome classes of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Data,
    Control,
    Addressing,
    Silent,
}

/// Runs one single-flip trial of `prog` over `input`.
fn trial(prog: &[Instr], input: &[u32], golden: &[u32], at: u64, reg: Reg, bit: u32) -> Class {
    let mut vm = Vm::new(prog.to_vec(), input.to_vec());
    let _ = vm.run_until(u64::MAX, at);
    vm.inject_flip(reg, bit);
    // Generous fuel: the watchdog guarantees scoped progress.
    let _ = vm.run_until(50_000_000, u64::MAX);
    if vm.output() == golden {
        return Class::Silent;
    }
    // Root-cause priority: a corrupted address register is an addressing
    // error even when its downstream symptom is a changed item count
    // (that is exactly how the paper's QME class cascades into AE).
    match vm.taint_class() {
        Some(RegUse::Address) => Class::Addressing,
        Some(RegUse::Control) => Class::Control,
        _ if vm.output().len() != golden.len() => Class::Control,
        _ => Class::Data,
    }
}

/// Measures effect rates over all bundled kernels with `trials_per_kernel`
/// single-flip experiments each.
pub fn measure_effect_rates(trials_per_kernel: u64, seed: u64) -> EffectRates {
    let mut counts = [0u64; 4];
    let mut total = 0u64;
    for (k, (_name, prog)) in kernels::all().into_iter().enumerate() {
        let input = kernels::input(96);
        let mut clean = Vm::new(prog.clone(), input.clone());
        let golden = clean.run(50_000_000).expect("kernels halt");
        let span = clean.executed();
        let mut rng = core_rng(splitmix64(seed, k as u64), 0);
        for _ in 0..trials_per_kernel {
            let at = rng.gen_range(1..span);
            let reg = Reg(rng.gen_range(0..NUM_REGS as u8));
            let bit = rng.gen_range(0..32u32);
            let class = trial(&prog, &input, &golden, at, reg, bit);
            counts[match class {
                Class::Data => 0,
                Class::Control => 1,
                Class::Addressing => 2,
                Class::Silent => 3,
            }] += 1;
            total += 1;
        }
    }
    EffectRates {
        data: counts[0] as f64 / total as f64,
        control: counts[1] as f64 / total as f64,
        addressing: counts[2] as f64 / total as f64,
        silent: counts[3] as f64 / total as f64,
        trials: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_form_a_distribution() {
        let r = measure_effect_rates(40, 7);
        let sum = r.data + r.control + r.addressing + r.silent;
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(r.trials, 4 * 40);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn every_class_occurs() {
        let r = measure_effect_rates(60, 3);
        assert!(r.data > 0.0, "data flips must occur: {r}");
        assert!(r.control > 0.0, "control flips must occur: {r}");
        assert!(r.addressing > 0.0, "addressing flips must occur: {r}");
        assert!(r.silent > 0.0, "masked flips must occur: {r}");
    }

    #[test]
    fn rates_are_deterministic_per_seed() {
        assert_eq!(measure_effect_rates(25, 11), measure_effect_rates(25, 11));
    }
}
