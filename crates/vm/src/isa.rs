//! The PPU-core instruction set.

/// A register index (0..16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// Number of architectural registers.
pub const NUM_REGS: usize = 16;

impl Reg {
    /// The register's index.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if out of range when used; construction is
    /// unchecked for assembler ergonomics.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One instruction. `usize` operands of branch/jump instructions are
/// absolute instruction addresses (the assembler resolves labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `rd = imm`.
    Li(Reg, u32),
    /// `rd = rs`.
    Mov(Reg, Reg),
    /// `rd = ra + rb` (wrapping).
    Add(Reg, Reg, Reg),
    /// `rd = ra + imm` (wrapping).
    Addi(Reg, Reg, i32),
    /// `rd = ra - rb` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `rd = ra * rb` (wrapping).
    Mul(Reg, Reg, Reg),
    /// `rd = ra ^ rb`.
    Xor(Reg, Reg, Reg),
    /// `rd = ra >> imm`.
    Shri(Reg, Reg, u32),
    /// `rd = mem[ra + offset]` (address wraps modulo memory size — PPU
    /// cores never fault on wild addresses).
    Load(Reg, Reg, u32),
    /// `mem[ra + offset] = rs`.
    Store(Reg, Reg, u32),
    /// Branch to `target` if `ra == rb`.
    Beq(Reg, Reg, usize),
    /// Branch to `target` if `ra != rb`.
    Bne(Reg, Reg, usize),
    /// Branch to `target` if `ra < rb` (unsigned).
    Bltu(Reg, Reg, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Pop the next input item into `rd` (0 when input is exhausted —
    /// the hardware-queue timeout path).
    Pop(Reg),
    /// Push `rs` to the output stream.
    Push(Reg),
    /// Enter a protected scope (PPU watchdog begins a fresh budget).
    ScopeEnter(u32),
    /// Leave a protected scope.
    ScopeExit(u32),
    /// Stop the core.
    Halt,
}

/// How an instruction uses each register, for the calibration taint
/// analysis: the manifestation class of a register flip is decided by the
/// first post-flip use of that register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegUse {
    /// Used as an arithmetic/data operand (or pushed).
    Data,
    /// Used as a memory address base.
    Address,
    /// Used as a branch comparison operand.
    Control,
    /// Overwritten without being read.
    Overwritten,
}

impl Instr {
    /// Reports how this instruction uses register `r`: the strongest use
    /// wins in the order address > control > data; a pure overwrite
    /// masks the old value.
    pub fn classify_use(&self, r: Reg) -> Option<RegUse> {
        use Instr::*;
        let reads_data: &[Reg] = match self {
            Mov(_, a) => &[*a],
            Add(_, a, b) | Sub(_, a, b) | Mul(_, a, b) | Xor(_, a, b) => &[*a, *b],
            Addi(_, a, _) | Shri(_, a, _) => &[*a],
            Store(s, _, _) => &[*s],
            Push(s) => &[*s],
            _ => &[],
        };
        let reads_addr: &[Reg] = match self {
            Load(_, a, _) | Store(_, a, _) => &[*a],
            _ => &[],
        };
        let reads_ctrl: &[Reg] = match self {
            Beq(a, b, _) | Bne(a, b, _) | Bltu(a, b, _) => &[*a, *b],
            _ => &[],
        };
        if reads_addr.contains(&r) {
            return Some(RegUse::Address);
        }
        if reads_ctrl.contains(&r) {
            return Some(RegUse::Control);
        }
        if reads_data.contains(&r) {
            return Some(RegUse::Data);
        }
        if self.dest() == Some(r) {
            return Some(RegUse::Overwritten);
        }
        None
    }

    /// The register this instruction writes, if any.
    pub fn dest(&self) -> Option<Reg> {
        use Instr::*;
        match self {
            Li(d, _)
            | Mov(d, _)
            | Add(d, _, _)
            | Addi(d, _, _)
            | Sub(d, _, _)
            | Mul(d, _, _)
            | Xor(d, _, _)
            | Shri(d, _, _)
            | Load(d, _, _)
            | Pop(d) => Some(*d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn use_classification() {
        let (a, b, c) = (Reg(1), Reg(2), Reg(3));
        assert_eq!(Instr::Load(a, b, 0).classify_use(b), Some(RegUse::Address));
        assert_eq!(Instr::Store(a, b, 0).classify_use(a), Some(RegUse::Data));
        assert_eq!(Instr::Beq(a, b, 0).classify_use(a), Some(RegUse::Control));
        assert_eq!(Instr::Add(c, a, b).classify_use(a), Some(RegUse::Data));
        assert_eq!(Instr::Li(a, 7).classify_use(a), Some(RegUse::Overwritten));
        assert_eq!(Instr::Add(c, a, b).classify_use(Reg(9)), None);
        // Dest that is also read counts as a read, not an overwrite.
        assert_eq!(Instr::Addi(a, a, 1).classify_use(a), Some(RegUse::Data));
    }

    #[test]
    fn dest_reporting() {
        assert_eq!(Instr::Pop(Reg(4)).dest(), Some(Reg(4)));
        assert_eq!(Instr::Push(Reg(4)).dest(), None);
        assert_eq!(Instr::Halt.dest(), None);
    }
}
