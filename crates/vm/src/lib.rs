//! # cg-vm — a mechanistic PPU-core model with register-file fault injection
//!
//! The CommGuard paper injects faults by flipping random bits in the
//! architectural register file of its simulated x86 cores (§6), under the
//! PPU execution model of Yetim et al. (DATE'13): coarse-grained scope
//! sequencing is protected, everything else may go wrong, and nothing
//! hangs or crashes. This crate reproduces that *mechanism* on a small
//! word-sized register VM:
//!
//! * [`isa`] — a 16-register integer ISA with loads/stores, branches,
//!   queue push/pop, and PPU scope markers;
//! * [`asm`] — a tiny assembler with labels;
//! * [`core`] — the interpreter: per-instruction execution, a scope
//!   watchdog that bounds runaway control flow (forced scope exit), and
//!   register bit-flip injection;
//! * [`kernels`] — streaming kernels written against the ISA in the
//!   software-queue idiom (pointer registers live across iterations, like
//!   compiled StreamIt);
//! * [`calibration`] — single-flip experiments that classify each flip's
//!   architecture-level manifestation (data / control / addressing /
//!   silent) by tainting the flipped register and observing its first
//!   use. These measured rates are what
//!   [`cg_fault::EffectModel::calibrated`] encodes, letting the
//!   app-scale simulator inject *effects* at the rates the *mechanism*
//!   produces.
//!
//! ```
//! use cg_vm::kernels;
//! use cg_vm::core::Vm;
//!
//! let prog = kernels::moving_average(4);
//! let input = kernels::input(16); // 16 items behind a count prefix
//! let mut vm = Vm::new(prog, input);
//! let out = vm.run(100_000).expect("kernel halts");
//! assert_eq!(out.len(), 16);
//! ```

pub mod asm;
pub mod calibration;
pub mod core;
pub mod isa;
pub mod kernels;

pub use calibration::{measure_effect_rates, EffectRates};
pub use core::{Vm, VmError};
pub use isa::{Instr, Reg};
