//! Streaming kernels written against the PPU ISA, in the *software
//! queue* idiom of compiled StreamIt: pointer registers stay live across
//! iterations, loop counters govern item counts, and every item moves
//! through memory. This register pressure profile is what makes the
//! calibration representative of the paper's workloads (a communication
//! event every ~7 instructions).
//!
//! Input convention for all kernels: the first input word is the item
//! count `n`, followed by `n` items.

use crate::asm::Assembler;
use crate::isa::{Instr::*, Reg};

const R_I: Reg = Reg(0); // item counter
const R_N: Reg = Reg(1); // item count
const R_V: Reg = Reg(2); // value in flight
const R_PTR: Reg = Reg(3); // buffer pointer (address register)
const R_ACC: Reg = Reg(4);
const R_T: Reg = Reg(5);
const R_TMP: Reg = Reg(6);
const R_J: Reg = Reg(7);
const R_ADDR: Reg = Reg(8);

/// A `taps`-point moving-average filter over a circular buffer.
///
/// # Panics
///
/// Panics if `taps` is 0 or not a power of two (the divide is a shift).
pub fn moving_average(taps: u32) -> Vec<crate::isa::Instr> {
    assert!(
        taps.is_power_of_two() && taps > 0,
        "taps must be a power of two"
    );
    let shift = taps.trailing_zeros();
    let mut a = Assembler::new();
    let top = a.label();
    let end = a.label();
    let sumtop = a.label();
    let sumend = a.label();
    let nowrap = a.label();
    a.emit(ScopeEnter(0));
    a.emit(Pop(R_N));
    a.emit(Li(R_I, 0));
    a.emit(Li(R_PTR, 0));
    a.emit(Li(R_T, taps));
    a.bind(top);
    a.emit_branch(Beq(R_I, R_N, 0), end);
    a.emit(ScopeEnter(1));
    a.emit(Pop(R_V));
    a.emit(Store(R_V, R_PTR, 0));
    a.emit(Li(R_ACC, 0));
    a.emit(Li(R_J, 0));
    a.bind(sumtop);
    a.emit_branch(Beq(R_J, R_T, 0), sumend);
    a.emit(Sub(R_ADDR, R_PTR, R_J));
    a.emit(Load(R_TMP, R_ADDR, 0));
    a.emit(Add(R_ACC, R_ACC, R_TMP));
    a.emit(Addi(R_J, R_J, 1));
    a.emit_branch(Jmp(0), sumtop);
    a.bind(sumend);
    a.emit(Shri(R_ACC, R_ACC, shift));
    a.emit(Push(R_ACC));
    a.emit(Addi(R_PTR, R_PTR, 1));
    a.emit(Li(R_TMP, 64));
    a.emit_branch(Bne(R_PTR, R_TMP, 0), nowrap);
    a.emit(Li(R_PTR, 0));
    a.bind(nowrap);
    a.emit(Addi(R_I, R_I, 1));
    a.emit(ScopeExit(1));
    a.emit_branch(Jmp(0), top);
    a.bind(end);
    a.emit(ScopeExit(0));
    a.emit(Halt);
    a.finish()
}

/// Copies items through an in-memory software queue: a producer phase
/// stores a chunk via a tail pointer, a consumer phase reloads it via a
/// head pointer and pushes — the StreamIt queue structure in miniature.
pub fn sw_queue_copy() -> Vec<crate::isa::Instr> {
    const HEAD: Reg = R_PTR; // address registers dominate this kernel
    const TAIL: Reg = R_ADDR;
    let mut a = Assembler::new();
    let top = a.label();
    let end = a.label();
    let prod = a.label();
    let prod_end = a.label();
    let cons = a.label();
    let cons_end = a.label();
    a.emit(ScopeEnter(0));
    a.emit(Pop(R_N));
    a.emit(Li(R_I, 0));
    a.emit(Li(HEAD, 128));
    a.emit(Li(TAIL, 128));
    a.bind(top);
    a.emit_branch(Beq(R_I, R_N, 0), end);
    a.emit(ScopeEnter(1));
    // Producer: store up to 8 items at the tail.
    a.emit(Li(R_J, 0));
    a.bind(prod);
    a.emit(Li(R_TMP, 8));
    a.emit_branch(Beq(R_J, R_TMP, 0), prod_end);
    a.emit_branch(Beq(R_I, R_N, 0), prod_end);
    a.emit(Pop(R_V));
    a.emit(Store(R_V, TAIL, 0));
    a.emit(Addi(TAIL, TAIL, 1));
    a.emit(Addi(R_J, R_J, 1));
    a.emit(Addi(R_I, R_I, 1));
    a.emit_branch(Jmp(0), prod);
    a.bind(prod_end);
    // Consumer: drain the head up to the tail.
    a.bind(cons);
    a.emit_branch(Beq(HEAD, TAIL, 0), cons_end);
    a.emit(Load(R_V, HEAD, 0));
    a.emit(Push(R_V));
    a.emit(Addi(HEAD, HEAD, 1));
    a.emit_branch(Jmp(0), cons);
    a.bind(cons_end);
    a.emit(ScopeExit(1));
    a.emit_branch(Jmp(0), top);
    a.bind(end);
    a.emit(ScopeExit(0));
    a.emit(Halt);
    a.finish()
}

/// Dot-product-style reduction: sums groups of 4 products of consecutive
/// items. Compute-register heavy (the data-dominant profile).
pub fn dot4() -> Vec<crate::isa::Instr> {
    let mut a = Assembler::new();
    let top = a.label();
    let end = a.label();
    let inner = a.label();
    let inner_end = a.label();
    a.emit(ScopeEnter(0));
    a.emit(Pop(R_N));
    a.emit(Li(R_I, 0));
    a.bind(top);
    a.emit_branch(Beq(R_I, R_N, 0), end);
    a.emit(ScopeEnter(1));
    a.emit(Li(R_ACC, 0));
    a.emit(Li(R_J, 0));
    a.emit(Li(R_T, 4));
    a.bind(inner);
    a.emit_branch(Beq(R_J, R_T, 0), inner_end);
    a.emit_branch(Beq(R_I, R_N, 0), inner_end);
    a.emit(Pop(R_V));
    a.emit(Mul(R_TMP, R_V, R_V));
    a.emit(Add(R_ACC, R_ACC, R_TMP));
    a.emit(Addi(R_J, R_J, 1));
    a.emit(Addi(R_I, R_I, 1));
    a.emit_branch(Jmp(0), inner);
    a.bind(inner_end);
    a.emit(Push(R_ACC));
    a.emit(ScopeExit(1));
    a.emit_branch(Jmp(0), top);
    a.bind(end);
    a.emit(ScopeExit(0));
    a.emit(Halt);
    a.finish()
}

/// A polynomial/IIR-style kernel with six accumulator registers live
/// across iterations — the data-register-heavy profile of DSP inner
/// loops (FIR taps, transform butterflies).
pub fn poly6() -> Vec<crate::isa::Instr> {
    let acc: [Reg; 6] = [Reg(4), Reg(9), Reg(10), Reg(11), Reg(12), Reg(13)];
    let mut a = Assembler::new();
    let top = a.label();
    let end = a.label();
    a.emit(ScopeEnter(0));
    a.emit(Pop(R_N));
    a.emit(Li(R_I, 0));
    for (k, &r) in acc.iter().enumerate() {
        a.emit(Li(r, k as u32 + 1));
    }
    a.bind(top);
    a.emit_branch(Beq(R_I, R_N, 0), end);
    a.emit(ScopeEnter(1));
    a.emit(Pop(R_V));
    // Horner-like update chain keeps all six accumulators live.
    for w in acc.windows(2) {
        a.emit(Mul(w[1], w[1], R_V));
        a.emit(Add(w[0], w[0], w[1]));
        a.emit(Shri(w[1], w[1], 1));
    }
    a.emit(Add(R_TMP, acc[0], acc[5]));
    a.emit(Push(R_TMP));
    a.emit(Addi(R_I, R_I, 1));
    a.emit(ScopeExit(1));
    a.emit_branch(Jmp(0), top);
    a.bind(end);
    a.emit(ScopeExit(0));
    a.emit(Halt);
    a.finish()
}

/// All calibration kernels, named.
pub fn all() -> Vec<(&'static str, Vec<crate::isa::Instr>)> {
    vec![
        ("moving_average", moving_average(4)),
        ("sw_queue_copy", sw_queue_copy()),
        ("dot4", dot4()),
        ("poly6", poly6()),
    ]
}

/// A deterministic input stream of `n` small items with the count
/// prefix.
pub fn input(n: u32) -> Vec<u32> {
    let mut v = Vec::with_capacity(n as usize + 1);
    v.push(n);
    let mut x = 0x1234_5678u32;
    for _ in 0..n {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        v.push(x % 1000);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Vm;

    #[test]
    fn moving_average_matches_scalar_model() {
        let inp = input(40);
        let mut vm = Vm::new(moving_average(4), inp.clone());
        let out = vm.run(1_000_000).unwrap();
        assert_eq!(out.len(), 40);
        // Scalar model with the same 64-entry circular buffer semantics.
        let mut buf = [0u32; 64];
        let mut pos = 0usize;
        for (i, &x) in inp[1..].iter().enumerate() {
            buf[pos] = x;
            let mut acc = 0u32;
            for j in 0..4 {
                // Address arithmetic wraps modulo memory, the VM's rule.
                let idx = (pos as u32).wrapping_sub(j) as usize % 1024;
                acc = acc.wrapping_add(if idx < 64 { buf[idx] } else { 0 });
            }
            assert_eq!(out[i], acc >> 2, "item {i}");
            pos = (pos + 1) % 64;
        }
    }

    #[test]
    fn sw_queue_copy_is_identity() {
        let inp = input(50);
        let mut vm = Vm::new(sw_queue_copy(), inp.clone());
        let out = vm.run(1_000_000).unwrap();
        assert_eq!(out, inp[1..].to_vec());
    }

    #[test]
    fn dot4_sums_squares() {
        let inp = input(8);
        let mut vm = Vm::new(dot4(), inp.clone());
        let out = vm.run(1_000_000).unwrap();
        assert_eq!(out.len(), 2);
        let want: u32 = inp[1..5].iter().map(|&x| x * x).sum();
        assert_eq!(out[0], want);
    }

    #[test]
    fn kernels_list_runs() {
        for (name, prog) in all() {
            let mut vm = Vm::new(prog, input(24));
            let out = vm.run(1_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!out.is_empty(), "{name} produced nothing");
        }
    }
}
