//! A tiny two-pass assembler with symbolic labels.

use std::collections::HashMap;

use crate::isa::Instr;

/// A forward-referenceable jump target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds an instruction vector with label fix-up.
#[derive(Debug, Default)]
pub struct Assembler {
    instrs: Vec<Instr>,
    /// label id → resolved address.
    resolved: HashMap<usize, usize>,
    /// (instruction index, label id) pairs awaiting fix-up.
    fixups: Vec<(usize, usize)>,
    next_label: usize,
}

impl Assembler {
    /// An empty program.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Allocates a fresh label (bind it later with [`Assembler::bind`]).
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let prev = self.resolved.insert(label.0, self.instrs.len());
        assert!(prev.is_none(), "label bound twice");
    }

    /// Emits a non-branching instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Emits a branch/jump towards `label` (resolved at [`Assembler::finish`]).
    pub fn emit_branch(&mut self, template: Instr, label: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), label.0));
        self.instrs.push(template);
        self
    }

    /// Resolves all labels and returns the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound, or a fix-up targets a
    /// non-branch instruction.
    pub fn finish(mut self) -> Vec<Instr> {
        for (at, label) in &self.fixups {
            let target = *self
                .resolved
                .get(label)
                .unwrap_or_else(|| panic!("unbound label {label}"));
            use Instr::*;
            self.instrs[*at] = match self.instrs[*at] {
                Beq(a, b, _) => Beq(a, b, target),
                Bne(a, b, _) => Bne(a, b, target),
                Bltu(a, b, _) => Bltu(a, b, target),
                Jmp(_) => Jmp(target),
                other => panic!("fixup on non-branch {other:?}"),
            };
        }
        self.instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        let top = a.label();
        let end = a.label();
        a.emit(Instr::Li(Reg(0), 3));
        a.bind(top);
        a.emit_branch(Instr::Beq(Reg(0), Reg(1), 0), end);
        a.emit(Instr::Addi(Reg(0), Reg(0), -1));
        a.emit_branch(Instr::Jmp(0), top);
        a.bind(end);
        a.emit(Instr::Halt);
        let prog = a.finish();
        assert_eq!(prog[1], Instr::Beq(Reg(0), Reg(1), 4));
        assert_eq!(prog[3], Instr::Jmp(1));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Assembler::new();
        let l = a.label();
        a.emit_branch(Instr::Jmp(0), l);
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Assembler::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }
}
