//! The PPU-core interpreter.

use std::collections::HashMap;

use crate::isa::{Instr, Reg, RegUse, NUM_REGS};

/// Local scratch memory size in words.
const MEM_WORDS: usize = 1024;

/// Per-scope instruction budget enforced by the PPU watchdog: a scope
/// whose (possibly error-corrupted) control flow exceeds this is forced
/// to its exit, guaranteeing forward progress through the scope sequence.
const SCOPE_BUDGET: u64 = 65_536;

/// Errors that stop a [`Vm`] run abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Global fuel exhausted before `Halt` (only possible for programs
    /// that spin outside any scope — the kernels never do).
    FuelExhausted,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::FuelExhausted => write!(f, "fuel exhausted before halt"),
        }
    }
}

impl std::error::Error for VmError {}

/// A single simulated PPU core executing one program over an input
/// stream.
#[derive(Debug, Clone)]
pub struct Vm {
    prog: Vec<Instr>,
    regs: [u32; NUM_REGS],
    pc: usize,
    mem: Vec<u32>,
    input: Vec<u32>,
    in_pos: usize,
    output: Vec<u32>,
    executed: u64,
    /// (scope id, remaining budget) stack.
    scopes: Vec<(u32, u64)>,
    /// Scope id → address of its `ScopeExit`.
    scope_exits: HashMap<u32, usize>,
    /// Pops issued after the input ran dry (timeout zeros delivered).
    pub input_underruns: u64,
    /// Scope-watchdog interventions.
    pub watchdog_fires: u64,
    /// `(scope id, output length at entry)` for every `ScopeEnter`
    /// executed — the PPU protection module's view of frame-computation
    /// boundaries, used to segment the output stream into frames.
    pub scope_entries: Vec<(u32, usize)>,
    /// Register tainted by the last injected flip, tracked until it is
    /// overwritten.
    taint: Option<Reg>,
    /// Strongest observed use of the tainted register
    /// (Address > Control > Data).
    taint_class: Option<RegUse>,
}

/// Merges taint-use observations with Address > Control > Data priority.
fn merge_use(current: Option<RegUse>, new: RegUse) -> RegUse {
    fn rank(u: RegUse) -> u8 {
        match u {
            RegUse::Address => 3,
            RegUse::Control => 2,
            RegUse::Data => 1,
            RegUse::Overwritten => 0,
        }
    }
    match current {
        Some(c) if rank(c) >= rank(new) => c,
        _ => new,
    }
}

impl Vm {
    /// A core ready to run `prog` over `input`.
    pub fn new(prog: Vec<Instr>, input: Vec<u32>) -> Self {
        let mut scope_exits = HashMap::new();
        for (i, instr) in prog.iter().enumerate() {
            if let Instr::ScopeExit(id) = instr {
                scope_exits.entry(*id).or_insert(i);
            }
        }
        Vm {
            prog,
            regs: [0; NUM_REGS],
            pc: 0,
            mem: vec![0; MEM_WORDS],
            input,
            in_pos: 0,
            output: Vec::new(),
            executed: 0,
            scopes: Vec::new(),
            scope_exits,
            input_underruns: 0,
            watchdog_fires: 0,
            scope_entries: Vec::new(),
            taint: None,
            taint_class: None,
        }
    }

    /// Instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The output stream produced so far.
    pub fn output(&self) -> &[u32] {
        &self.output
    }

    /// Flips `bit` of register `r` (the paper's injection mechanism) and
    /// begins taint tracking for effect classification.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `bit` is out of range.
    pub fn inject_flip(&mut self, r: Reg, bit: u32) {
        assert!(r.index() < NUM_REGS, "register out of range");
        assert!(bit < 32, "bit out of range");
        self.regs[r.index()] ^= 1 << bit;
        self.taint = Some(r);
        self.taint_class = None;
    }

    /// The strongest observed use of the tainted register so far
    /// (Address > Control > Data); `None` if it was never read.
    pub fn taint_class(&self) -> Option<RegUse> {
        self.taint_class
    }

    /// Runs until `Halt` or `fuel` instructions, returning the output.
    ///
    /// # Errors
    ///
    /// [`VmError::FuelExhausted`] if the program did not halt; the output
    /// produced so far is available via [`Vm::output`].
    pub fn run(&mut self, fuel: u64) -> Result<Vec<u32>, VmError> {
        self.run_until(fuel, u64::MAX)?;
        Ok(self.output.clone())
    }

    /// Runs until `Halt`, `fuel` total instructions, or `stop_at` total
    /// executed instructions (for mid-run fault injection). Returns
    /// `true` when the program halted.
    ///
    /// # Errors
    ///
    /// [`VmError::FuelExhausted`] when `fuel` ran out before `Halt`.
    pub fn run_until(&mut self, fuel: u64, stop_at: u64) -> Result<bool, VmError> {
        let mut remaining = fuel;
        while remaining > 0 && self.executed < stop_at {
            if self.pc >= self.prog.len() {
                // A corrupted sequence ran off the end: PPU semantics say
                // the thread's outermost scope has exited — halt.
                return Ok(true);
            }
            let instr = self.prog[self.pc];
            if let Some(t) = self.taint {
                match instr.classify_use(t) {
                    Some(RegUse::Overwritten) => self.taint = None,
                    Some(u) => {
                        self.taint_class = Some(merge_use(self.taint_class, u));
                    }
                    None => {}
                }
            }
            if self.step(instr) {
                return Ok(true);
            }
            remaining -= 1;
        }
        if self.executed >= stop_at {
            Ok(false)
        } else {
            Err(VmError::FuelExhausted)
        }
    }

    /// Executes one instruction; returns `true` on `Halt`.
    fn step(&mut self, instr: Instr) -> bool {
        use Instr::*;
        self.executed += 1;
        // Scope watchdog: charge the innermost scope.
        if let Some((id, budget)) = self.scopes.last_mut() {
            if *budget == 0 {
                let id = *id;
                // Refresh the budget so the forced ScopeExit itself can
                // execute (it pops the scope), then redirect control.
                *budget = SCOPE_BUDGET;
                self.watchdog_fires += 1;
                if let Some(&exit) = self.scope_exits.get(&id) {
                    self.pc = exit; // execute the ScopeExit next
                } else {
                    self.scopes.pop();
                }
                return false;
            }
            *budget -= 1;
        }
        let mut next = self.pc + 1;
        match instr {
            Li(d, v) => self.regs[d.index() % NUM_REGS] = v,
            Mov(d, a) => self.regs[d.index() % NUM_REGS] = self.r(a),
            Add(d, a, b) => self.regs[d.index() % NUM_REGS] = self.r(a).wrapping_add(self.r(b)),
            Addi(d, a, imm) => self.regs[d.index() % NUM_REGS] = self.r(a).wrapping_add(imm as u32),
            Sub(d, a, b) => self.regs[d.index() % NUM_REGS] = self.r(a).wrapping_sub(self.r(b)),
            Mul(d, a, b) => self.regs[d.index() % NUM_REGS] = self.r(a).wrapping_mul(self.r(b)),
            Xor(d, a, b) => self.regs[d.index() % NUM_REGS] = self.r(a) ^ self.r(b),
            Shri(d, a, s) => self.regs[d.index() % NUM_REGS] = self.r(a) >> (s % 32),
            Load(d, a, off) => {
                let addr = (self.r(a) as usize + off as usize) % MEM_WORDS;
                self.regs[d.index() % NUM_REGS] = self.mem[addr];
            }
            Store(s, a, off) => {
                let addr = (self.r(a) as usize + off as usize) % MEM_WORDS;
                self.mem[addr] = self.r(s);
            }
            Beq(a, b, t) => {
                if self.r(a) == self.r(b) {
                    next = t;
                }
            }
            Bne(a, b, t) => {
                if self.r(a) != self.r(b) {
                    next = t;
                }
            }
            Bltu(a, b, t) => {
                if self.r(a) < self.r(b) {
                    next = t;
                }
            }
            Jmp(t) => next = t,
            Pop(d) => {
                let v = if self.in_pos < self.input.len() {
                    let v = self.input[self.in_pos];
                    self.in_pos += 1;
                    v
                } else {
                    self.input_underruns += 1;
                    0
                };
                self.regs[d.index() % NUM_REGS] = v;
            }
            Push(s) => self.output.push(self.r(s)),
            ScopeEnter(id) => {
                self.scope_entries.push((id, self.output.len()));
                self.scopes.push((id, SCOPE_BUDGET));
            }
            ScopeExit(id) => {
                // Pop to (and including) the matching scope; tolerate
                // corrupted nesting.
                while let Some((top, _)) = self.scopes.pop() {
                    if top == id {
                        break;
                    }
                }
            }
            Halt => return true,
        }
        self.pc = next;
        false
    }

    #[inline]
    fn r(&self, reg: Reg) -> u32 {
        self.regs[reg.index() % NUM_REGS]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    /// A loop that copies 5 inputs to the output.
    fn copy5() -> Vec<Instr> {
        use Instr::*;
        let (c, lim, v) = (Reg(0), Reg(1), Reg(2));
        let mut a = Assembler::new();
        let top = a.label();
        let end = a.label();
        a.emit(ScopeEnter(1));
        a.emit(Li(c, 0));
        a.emit(Li(lim, 5));
        a.bind(top);
        a.emit_branch(Beq(c, lim, 0), end);
        a.emit(Pop(v));
        a.emit(Push(v));
        a.emit(Addi(c, c, 1));
        a.emit_branch(Jmp(0), top);
        a.bind(end);
        a.emit(ScopeExit(1));
        a.emit(Halt);
        a.finish()
    }

    #[test]
    fn copy_loop_copies() {
        let mut vm = Vm::new(copy5(), vec![10, 20, 30, 40, 50]);
        let out = vm.run(10_000).unwrap();
        assert_eq!(out, vec![10, 20, 30, 40, 50]);
        assert_eq!(vm.input_underruns, 0);
        assert!(vm.executed() > 0);
    }

    #[test]
    fn pop_underrun_returns_zero() {
        let mut vm = Vm::new(copy5(), vec![1, 2]);
        let out = vm.run(10_000).unwrap();
        assert_eq!(out, vec![1, 2, 0, 0, 0]);
        assert_eq!(vm.input_underruns, 3);
    }

    /// Corrupting the loop limit register makes the loop run away; the
    /// scope watchdog must force the exit — no hang (the PPU guarantee).
    #[test]
    fn watchdog_bounds_runaway_loop() {
        let mut vm = Vm::new(copy5(), (0..100).collect());
        // Run 4 instructions, then blast the limit register to u32::MAX.
        vm.run_until(u64::MAX, 4).unwrap();
        vm.inject_flip(Reg(1), 31);
        let halted = vm.run_until(10 * SCOPE_BUDGET, u64::MAX).unwrap();
        assert!(halted, "PPU cores never hang");
        assert!(vm.watchdog_fires >= 1);
        // Control-flow damage: way more than 5 items were pushed.
        assert!(vm.output().len() > 5);
    }

    #[test]
    fn flip_taint_classifies_first_use() {
        let mut vm = Vm::new(copy5(), vec![1, 2, 3, 4, 5]);
        vm.run_until(u64::MAX, 4).unwrap();
        vm.inject_flip(Reg(1), 1); // loop limit: only used by the Beq
        vm.run_until(u64::MAX, 10).unwrap();
        assert_eq!(vm.taint_class(), Some(crate::isa::RegUse::Control));
    }

    #[test]
    fn fuel_exhaustion_reported() {
        use Instr::*;
        // An unscoped infinite loop (not something kernels do).
        let prog = vec![Jmp(0)];
        let mut vm = Vm::new(prog, vec![]);
        assert_eq!(vm.run(100), Err(VmError::FuelExhausted));
    }

    #[test]
    fn running_off_the_end_halts() {
        use Instr::*;
        let prog = vec![Li(Reg(0), 1)];
        let mut vm = Vm::new(prog, vec![]);
        assert!(vm.run(100).is_ok());
    }
}
