//! Fuzz-layer integration tests: generated graphs execute error-free to
//! frame-exact sinks across many seeds, and the committed regression
//! corpus replays to its recorded verdicts.

use std::path::{Path, PathBuf};

use cg_campaign::fuzz::{
    self, case_to_json, minimize, replay_file, write_artifact, Oracle, ReproCase, SHRINK_BUDGET,
};
use cg_campaign::ExecutorKind;
use cg_fault::FaultClass;
use cg_graph::random::{generate, GenConfig};
use cg_graph::NodeKind;
use cg_runtime::ParTransport;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz_corpus")
}

fn golden_case(seed: u64, gen: &GenConfig) -> ReproCase {
    let spec = generate(seed, gen);
    let (_, profile) = spec.build_validated().expect("generated graphs validate");
    ReproCase {
        spec,
        oracle: Oracle::Golden,
        seed,
        frames: 6,
        queue_capacity: profile.queue_demand.max(8) as usize,
        executor: ExecutorKind::Deterministic,
        transport: ParTransport::LockFree,
        class: FaultClass::Baseline,
        mtbe: 256,
    }
}

/// The generator-invariant satellite: beyond schedulability (covered by
/// the cg-graph proptests), every generated graph must actually execute
/// error-free to frame-exact sinks on the deterministic executor.
#[test]
fn hundred_seeds_execute_error_free_to_frame_exact_sinks() {
    let gen = GenConfig::default();
    for seed in 0..100u64 {
        let case = golden_case(seed, &gen);
        let violations = case.check().expect("generated specs are valid");
        assert!(
            violations.is_empty(),
            "seed {seed} ({} nodes): {violations:?}",
            case.spec.nodes.len()
        );
    }
}

/// Every committed corpus artifact must replay to its recorded verdict.
#[test]
fn fuzz_corpus_replays_to_recorded_verdicts() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 5,
        "corpus must hold at least 5 regression graphs, found {}",
        entries.len()
    );
    for path in entries {
        let replay = replay_file(path.to_str().expect("utf8 path"))
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            replay.matched,
            "{}: recorded verdict `{}` but fresh run said `{}` ({:?})",
            path.display(),
            replay.recorded_verdict,
            replay.verdict,
            replay.violations
        );
    }
}

/// Rebuilds the committed corpus deterministically. Run by hand after a
/// semantics change that legitimately alters verdicts:
///
/// ```text
/// cargo test -p cg-campaign --test fuzz_replay -- --ignored regenerate
/// ```
#[test]
#[ignore = "writes tests/fuzz_corpus; run explicitly to refresh the corpus"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");

    let record = |name: &str, case: &ReproCase| {
        let violations = case.check().expect("corpus specs are valid");
        let verdict = if violations.is_empty() {
            "pass"
        } else {
            "fail"
        };
        let path = dir.join(name);
        std::fs::write(&path, case_to_json(case, verdict, &violations).pretty())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {} ({verdict})", path.display());
    };

    // 1. A deep chain-only pipeline, golden oracle.
    let deep = GenConfig {
        splitjoin_prob: 0.0,
        max_nodes: 16,
        ..GenConfig::default()
    };
    record("01_deep_pipeline_golden.json", &golden_case(11, &deep));

    // 2. A wide splitjoin under the det-vs-threaded parity oracle.
    let wide = GenConfig {
        splitjoin_prob: 1.0,
        max_branches: 4,
        ..GenConfig::default()
    };
    let seed = (0..500u64)
        .find(|&s| {
            let g = generate(s, &wide);
            g.nodes.iter().enumerate().any(|(i, n)| {
                matches!(n.kind, NodeKind::SplitDuplicate | NodeKind::SplitRoundRobin)
                    && g.edges.iter().filter(|e| e.src == i).count() >= 3
            })
        })
        .expect("a wide splitjoin exists");
    let parity = ReproCase {
        oracle: Oracle::Parity,
        ..golden_case(seed, &wide)
    };
    record("02_wide_splitjoin_parity.json", &parity);

    // 3. Skewed rates, deterministic executor under header corruption.
    //    Loose capacity and moderate demand keep the replay fast: at
    //    tight capacity every fault-induced stall costs `4 × demand`
    //    blocked scheduler visits, which makes hot graphs take minutes.
    let skewed_seed = (20..500u64)
        .find(|&s| {
            generate(s, &GenConfig::default())
                .build_validated()
                .map(|(_, p)| (10..=24).contains(&p.queue_demand))
                .unwrap_or(false)
        })
        .expect("a moderate-demand graph exists");
    let base = golden_case(skewed_seed, &GenConfig::default());
    let faulted_det = ReproCase {
        oracle: Oracle::Faulted,
        class: FaultClass::HeaderCorruption,
        frames: 10,
        queue_capacity: base.queue_capacity * 4,
        ..base
    };
    record("03_skewed_rates_faulted_det.json", &faulted_det);

    // 4. Threaded lock-free executor under pointer corruption.
    let faulted_thr = ReproCase {
        oracle: Oracle::Faulted,
        executor: ExecutorKind::Threaded,
        class: FaultClass::PointerCorruption,
        ..golden_case(37, &GenConfig::default())
    };
    record("04_threaded_pointer_faulted.json", &faulted_thr);

    // 5. A minimized capacity-starvation failure: fan-out demand above
    //    the configured ring capacity must fail cleanly (a named
    //    `CapacityExceeded` error, not a hang) — recorded verdict: fail.
    let starved_seed = (0..500u64)
        .find(|&s| {
            let g = generate(s, &GenConfig::default());
            g.build_validated()
                .map(|(_, p)| p.queue_demand > 12)
                .unwrap_or(false)
                && g.nodes
                    .iter()
                    .any(|n| matches!(n.kind, NodeKind::SplitDuplicate | NodeKind::SplitRoundRobin))
        })
        .expect("a demanding splitjoin exists");
    let starved = ReproCase {
        queue_capacity: 8,
        ..golden_case(starved_seed, &GenConfig::default())
    };
    assert!(!starved.check().unwrap().is_empty(), "starved case fails");
    let (minimized, violations, _) = minimize(&starved, SHRINK_BUDGET);
    let path = write_artifact(&dir, &minimized, "fail", &violations).expect("write artifact");
    let renamed = dir.join("05_capacity_starved_fail.json");
    std::fs::rename(&path, &renamed).expect("rename artifact");
    println!("wrote {} (fail)", renamed.display());

    // 6. Tight (near-full) capacity under the batched-transport parity
    //    oracle: capacity exactly equals the hottest edge's demand.
    let base = golden_case(53, &GenConfig::default());
    let tight = ReproCase {
        oracle: Oracle::Parity,
        transport: ParTransport::Batched,
        ..base
    };
    record("06_tight_capacity_parity_batched.json", &tight);

    // Every artifact must round-trip through the replay path.
    for name in [
        "01_deep_pipeline_golden.json",
        "02_wide_splitjoin_parity.json",
        "03_skewed_rates_faulted_det.json",
        "04_threaded_pointer_faulted.json",
        "05_capacity_starved_fail.json",
        "06_tight_capacity_parity_batched.json",
    ] {
        let replay = fuzz::replay_file(dir.join(name).to_str().unwrap()).expect("replayable");
        assert!(replay.matched, "{name}: fresh verdict {}", replay.verdict);
    }
}
